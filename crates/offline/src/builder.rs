//! Materializing recommended indexes, optionally under a budget.

use std::collections::BTreeMap;

use holistic_storage::Column;

use crate::advisor::IndexRecommendation;
use crate::cost::CostModel;
use crate::sorted_index::SortedIndex;
use crate::ColumnId;

/// The outcome of an offline build pass.
#[derive(Debug, Default)]
pub struct BuildOutcome {
    /// Fully built indexes, keyed by column.
    pub built: BTreeMap<ColumnId, SortedIndex>,
    /// Recommendations that did not fit in the budget.
    pub skipped: Vec<IndexRecommendation>,
    /// Work units actually spent building.
    pub work_spent: f64,
}

/// Builds full sorted indexes for advisor recommendations.
///
/// The builder charges each index its model build cost against the supplied
/// budget and stops when the next index no longer fits — this is the paper's
/// Exp2 setup, where the a-priori idle time suffices for only 2 of the 10
/// desired indexes.
#[derive(Debug, Clone, Default)]
pub struct OfflineIndexBuilder {
    model: CostModel,
}

impl OfflineIndexBuilder {
    /// Creates a builder with the default cost model.
    #[must_use]
    pub fn new() -> Self {
        OfflineIndexBuilder {
            model: CostModel::new(),
        }
    }

    /// Creates a builder with a custom cost model.
    #[must_use]
    pub fn with_model(model: CostModel) -> Self {
        OfflineIndexBuilder { model }
    }

    /// Builds a single full index over a column (no budget).
    #[must_use]
    pub fn build_full(&self, column: &Column) -> SortedIndex {
        SortedIndex::build(column)
    }

    /// Builds the recommended indexes in order until `budget` work units are
    /// exhausted. `resolve` maps a recommendation's column id to the base
    /// column data.
    pub fn build_within_budget<'a>(
        &self,
        recommendations: &[IndexRecommendation],
        budget: f64,
        mut resolve: impl FnMut(ColumnId) -> Option<&'a Column>,
    ) -> BuildOutcome {
        let mut outcome = BuildOutcome::default();
        let mut remaining = budget;
        for rec in recommendations {
            let cost = self.model.full_build_cost(rec.rows);
            let Some(column) = resolve(rec.column) else {
                outcome.skipped.push(rec.clone());
                continue;
            };
            if cost <= remaining {
                outcome.built.insert(rec.column, SortedIndex::build(column));
                outcome.work_spent += cost;
                remaining -= cost;
            } else {
                outcome.skipped.push(rec.clone());
            }
        }
        outcome
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_storage::TableId;

    fn col(i: u32) -> ColumnId {
        ColumnId::new(TableId(0), i)
    }

    fn rec(i: u32, rows: usize, model: &CostModel) -> IndexRecommendation {
        IndexRecommendation {
            column: col(i),
            rows,
            benefit: 1e12,
            build_cost: model.full_build_cost(rows),
        }
    }

    #[test]
    fn build_full_creates_usable_index() {
        let builder = OfflineIndexBuilder::new();
        let column = Column::from_values("a", vec![5, 3, 9, 1]);
        let idx = builder.build_full(&column);
        assert_eq!(idx.count(2, 6), 2);
    }

    #[test]
    fn budget_limits_number_of_built_indexes() {
        let builder = OfflineIndexBuilder::new();
        let model = CostModel::new();
        let columns: Vec<Column> = (0..4)
            .map(|i| Column::from_values(format!("c{i}"), (0..1000).rev().collect()))
            .collect();
        let recs: Vec<IndexRecommendation> = (0..4).map(|i| rec(i, 1000, &model)).collect();
        // Budget for exactly two builds.
        let budget = model.full_build_cost(1000) * 2.0;
        let outcome =
            builder.build_within_budget(&recs, budget, |id| columns.get(id.column as usize));
        assert_eq!(outcome.built.len(), 2);
        assert_eq!(outcome.skipped.len(), 2);
        assert!(outcome.work_spent <= budget + 1e-9);
        assert!(outcome.built.contains_key(&col(0)));
        assert!(outcome.built.contains_key(&col(1)));
        // Built indexes are fully functional.
        assert_eq!(outcome.built[&col(0)].count(0, 100), 100);
    }

    #[test]
    fn unresolvable_columns_are_skipped() {
        let builder = OfflineIndexBuilder::new();
        let model = CostModel::new();
        let recs = vec![rec(9, 100, &model)];
        let outcome = builder.build_within_budget(&recs, f64::INFINITY, |_| None);
        assert!(outcome.built.is_empty());
        assert_eq!(outcome.skipped.len(), 1);
        assert_eq!(outcome.work_spent, 0.0);
    }

    #[test]
    fn zero_budget_builds_nothing() {
        let builder = OfflineIndexBuilder::new();
        let model = CostModel::new();
        let column = Column::from_values("a", vec![1, 2, 3]);
        let recs = vec![rec(0, 3, &model)];
        let outcome = builder.build_within_budget(&recs, 0.0, |_| Some(&column));
        assert!(outcome.built.is_empty());
        assert_eq!(outcome.skipped.len(), 1);
    }
}
