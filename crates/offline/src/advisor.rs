//! The offline index advisor: greedy index selection under a build budget.

use crate::cost::CostModel;
use crate::whatif::{HypotheticalConfiguration, HypotheticalIndex};
use crate::workload_summary::WorkloadSummary;
use crate::ColumnId;

/// One index the advisor recommends building.
#[derive(Debug, Clone, PartialEq)]
pub struct IndexRecommendation {
    /// The column to index.
    pub column: ColumnId,
    /// Number of rows the index will cover.
    pub rows: usize,
    /// Expected workload-cost reduction (work units over the whole workload).
    pub benefit: f64,
    /// Cost of building the index (work units).
    pub build_cost: f64,
}

impl IndexRecommendation {
    /// Benefit per unit of build cost (the greedy selection key).
    #[must_use]
    pub fn benefit_per_cost(&self) -> f64 {
        if self.build_cost <= 0.0 {
            f64::INFINITY
        } else {
            self.benefit / self.build_cost
        }
    }
}

/// The offline index advisor.
///
/// Mirrors the structure of classic auto-tuning tools: enumerate candidates
/// (one single-column index per workload column), cost each with the what-if
/// model, then greedily pick the candidates with the best benefit-per-build-
/// cost ratio until the build budget is exhausted.
#[derive(Debug, Clone, Default)]
pub struct Advisor {
    model: CostModel,
}

impl Advisor {
    /// Creates an advisor with the default cost model.
    #[must_use]
    pub fn new() -> Self {
        Advisor {
            model: CostModel::new(),
        }
    }

    /// Creates an advisor with a custom cost model.
    #[must_use]
    pub fn with_model(model: CostModel) -> Self {
        Advisor { model }
    }

    /// The advisor's cost model.
    #[must_use]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Enumerates and costs all single-column candidates for the workload,
    /// sorted by decreasing benefit-per-build-cost.
    #[must_use]
    pub fn candidates(
        &self,
        workload: &WorkloadSummary,
        column_rows: impl Fn(ColumnId) -> usize,
    ) -> Vec<IndexRecommendation> {
        let mut out = Vec::new();
        for (column, stats) in workload.iter() {
            if stats.queries == 0 {
                continue;
            }
            let rows = column_rows(column);
            let candidate =
                HypotheticalConfiguration::empty().with(HypotheticalIndex { column, rows });
            let benefit = candidate.benefit_over_scan(workload, &self.model, &column_rows);
            let build_cost = self.model.full_build_cost(rows);
            out.push(IndexRecommendation {
                column,
                rows,
                benefit,
                build_cost,
            });
        }
        out.sort_by(|a, b| {
            b.benefit_per_cost()
                .partial_cmp(&a.benefit_per_cost())
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.column.cmp(&b.column))
        });
        out
    }

    /// Recommends the set of indexes to build within `build_budget` work
    /// units (use `f64::INFINITY` for an unbounded budget).
    ///
    /// Candidates whose expected benefit does not exceed their build cost
    /// are never recommended, even with an unlimited budget — building them
    /// would be a net loss for the given workload.
    #[must_use]
    pub fn recommend(
        &self,
        workload: &WorkloadSummary,
        column_rows: impl Fn(ColumnId) -> usize,
        build_budget: f64,
    ) -> Vec<IndexRecommendation> {
        let mut remaining = build_budget;
        let mut picked = Vec::new();
        for candidate in self.candidates(workload, &column_rows) {
            if candidate.benefit <= candidate.build_cost {
                continue;
            }
            if candidate.build_cost <= remaining {
                remaining -= candidate.build_cost;
                picked.push(candidate);
            }
        }
        picked
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_storage::TableId;

    fn col(i: u32) -> ColumnId {
        ColumnId::new(TableId(0), i)
    }

    const ROWS: usize = 1_000_000;

    fn skewed_workload() -> WorkloadSummary {
        let mut w = WorkloadSummary::new();
        w.declare(col(0), 1000, 0.01); // hot
        w.declare(col(1), 100, 0.01); // warm
        w.declare(col(2), 1, 0.01); // cold: one query never pays for a sort
        w
    }

    #[test]
    fn candidates_are_ordered_by_benefit_density() {
        let advisor = Advisor::new();
        let candidates = advisor.candidates(&skewed_workload(), |_| ROWS);
        assert_eq!(candidates.len(), 3);
        assert_eq!(candidates[0].column, col(0));
        assert_eq!(candidates[1].column, col(1));
        assert!(candidates[0].benefit > candidates[1].benefit);
        assert!(candidates[0].benefit_per_cost() >= candidates[1].benefit_per_cost());
    }

    #[test]
    fn unbounded_budget_picks_only_profitable_indexes() {
        let advisor = Advisor::new();
        let picks = advisor.recommend(&skewed_workload(), |_| ROWS, f64::INFINITY);
        let picked_columns: Vec<ColumnId> = picks.iter().map(|p| p.column).collect();
        assert!(picked_columns.contains(&col(0)));
        assert!(picked_columns.contains(&col(1)));
        // A single query on a million-row column never amortizes a full sort.
        assert!(!picked_columns.contains(&col(2)));
    }

    #[test]
    fn tight_budget_prefers_the_hottest_column() {
        let advisor = Advisor::new();
        let one_build = advisor.model().full_build_cost(ROWS);
        let picks = advisor.recommend(&skewed_workload(), |_| ROWS, one_build * 1.5);
        assert_eq!(picks.len(), 1);
        assert_eq!(picks[0].column, col(0));
    }

    #[test]
    fn zero_budget_recommends_nothing() {
        let advisor = Advisor::new();
        assert!(advisor
            .recommend(&skewed_workload(), |_| ROWS, 0.0)
            .is_empty());
    }

    #[test]
    fn empty_workload_recommends_nothing() {
        let advisor = Advisor::new();
        let picks = advisor.recommend(&WorkloadSummary::new(), |_| ROWS, f64::INFINITY);
        assert!(picks.is_empty());
        assert!(advisor
            .candidates(&WorkloadSummary::new(), |_| ROWS)
            .is_empty());
    }

    #[test]
    fn budget_spent_never_exceeds_budget() {
        let advisor = Advisor::new();
        let mut w = WorkloadSummary::new();
        for i in 0..10 {
            w.declare(col(i), 500, 0.01);
        }
        let budget = advisor.model().full_build_cost(ROWS) * 3.2;
        let picks = advisor.recommend(&w, |_| ROWS, budget);
        let spent: f64 = picks.iter().map(|p| p.build_cost).sum();
        assert!(spent <= budget);
        assert_eq!(picks.len(), 3);
    }

    #[test]
    fn benefit_per_cost_handles_zero_build_cost() {
        let rec = IndexRecommendation {
            column: col(0),
            rows: 0,
            benefit: 5.0,
            build_cost: 0.0,
        };
        assert!(rec.benefit_per_cost().is_infinite());
    }
}
