//! # holistic-offline
//!
//! Offline indexing for the holistic indexing kernel.
//!
//! Offline indexing is the classic auto-tuning approach (index advisors such
//! as the SQL Server tuning wizard, DB2 Design Advisor, Oracle automatic SQL
//! tuning — refs 1,2,3,5,6,17 in the paper): given a *representative
//! workload* known a priori and enough idle time before queries arrive, the
//! advisor enumerates candidate indexes, costs them with a *what-if* model
//! (hypothetical indexes that are simulated rather than materialized), and
//! selects the configuration with the best expected benefit, which is then
//! built in full before the workload runs.
//!
//! The crate provides:
//!
//! * [`SortedIndex`] — the full index structure itself (sorted values plus
//!   row ids, binary-search range lookups).
//! * [`CostModel`] — optimizer-style cost estimates for scans, index probes,
//!   cracking passes and full index builds.
//! * [`WorkloadSummary`] — the per-column workload statistics the advisor
//!   consumes.
//! * [`whatif`] — hypothetical-index configuration costing.
//! * [`Advisor`] — greedy index selection under a build-time budget.
//! * [`OfflineIndexBuilder`] — materializes the chosen indexes, respecting a
//!   budget so that "not enough idle time to build everything" (the paper's
//!   Exp2 scenario) can be modelled faithfully.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod advisor;
pub mod builder;
pub mod cost;
pub mod sorted_index;
pub mod whatif;
pub mod workload_summary;

pub use advisor::{Advisor, IndexRecommendation};
pub use builder::OfflineIndexBuilder;
pub use cost::CostModel;
pub use sorted_index::SortedIndex;
pub use whatif::{HypotheticalConfiguration, HypotheticalIndex};
pub use workload_summary::{ColumnWorkload, WorkloadSummary};

pub use holistic_storage::{ColumnId, RowId, Value};
