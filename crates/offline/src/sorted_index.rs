//! Full sorted indexes: the structure offline indexing materializes.

use std::sync::OnceLock;

use holistic_storage::{Column, PrefixSums, SelectionVector};

use crate::{RowId, Value};

/// A full, read-optimized index over one column: all values sorted, each
/// paired with the row id it came from.
///
/// Range lookups are two binary searches; this is the "efficient binary
/// searches for the select operators" the paper grants offline indexing in
/// its experiments. Building it costs a full sort of the column, which is
/// exactly the cost the paper charges offline indexing up front
/// (`Time_sort = 28.4 s` for one 10^8-value column on their hardware).
///
/// # Aggregates
///
/// Range *counts* are always two binary searches. Range *sums* come in two
/// flavors: [`SortedIndex::range_sum`] scans the qualifying slice (the
/// pre-prefix behavior, kept as the explicit fallback), while
/// [`SortedIndex::query_sum`] answers from a [`PrefixSums`] array — the
/// same structure the cracking layer attaches to sorted pieces — with one
/// subtraction and zero value reads. The array is built once by
/// [`SortedIndex::seed_prefix`] (the engine seeds during offline
/// preparation, online tuner builds, and idle time); `query_sum` reports
/// `None` until then so callers can observe — and count — the miss instead
/// of paying a hidden build on a query's critical path.
#[derive(Debug, Clone)]
pub struct SortedIndex {
    values: Vec<Value>,
    rowids: Vec<RowId>,
    /// Lazily seeded prefix sums over `values` (base 0). `OnceLock` gives
    /// build-once/read-many semantics through `&self`, matching the
    /// engine's shared-reference query path.
    prefix: OnceLock<PrefixSums>,
}

impl SortedIndex {
    /// Builds the index from raw values (row ids are the positions).
    #[must_use]
    pub fn build_from_values(values: &[Value]) -> Self {
        let mut pairs: Vec<(Value, RowId)> = values
            .iter()
            .copied()
            .enumerate()
            .map(|(i, v)| (v, i as RowId))
            .collect();
        pairs.sort_unstable();
        let mut sorted_values = Vec::with_capacity(pairs.len());
        let mut rowids = Vec::with_capacity(pairs.len());
        for (v, r) in pairs {
            sorted_values.push(v);
            rowids.push(r);
        }
        SortedIndex {
            values: sorted_values,
            rowids,
            prefix: OnceLock::new(),
        }
    }

    /// Builds the index from a base column.
    #[must_use]
    pub fn build(column: &Column) -> Self {
        Self::build_from_values(column.values())
    }

    /// Number of indexed values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sorted values.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The row ids aligned with [`SortedIndex::values`].
    #[must_use]
    pub fn rowids(&self) -> &[RowId] {
        &self.rowids
    }

    /// Counts the values in `[lo, hi)` with two binary searches.
    #[must_use]
    pub fn count(&self, lo: Value, hi: Value) -> u64 {
        if hi <= lo {
            return 0;
        }
        let start = self.values.partition_point(|&v| v < lo);
        let end = self.values.partition_point(|&v| v < hi);
        (end - start) as u64
    }

    /// Builds the prefix-sum array if it is not seeded yet. Returns `true`
    /// if this call built it (one streaming pass over the sorted values),
    /// `false` if it was already there.
    pub fn seed_prefix(&self) -> bool {
        let mut built = false;
        self.prefix.get_or_init(|| {
            built = true;
            PrefixSums::build(0, &self.values)
        });
        built
    }

    /// Whether the prefix-sum array has been seeded.
    #[must_use]
    pub fn prefix_seeded(&self) -> bool {
        self.prefix.get().is_some()
    }

    /// Counts the values in `[lo, hi)` — the aggregate-query spelling of
    /// [`SortedIndex::count`] (counts never need the prefix array; the
    /// extent between two binary searches is the count).
    #[must_use]
    pub fn query_count(&self, lo: Value, hi: Value) -> u64 {
        self.count(lo, hi)
    }

    /// Sums the values in `[lo, hi)` from the prefix-sum array: two binary
    /// searches and one subtraction, zero value reads. Returns `None` while
    /// the array is unseeded (see [`SortedIndex::seed_prefix`]), so callers
    /// can fall back to [`SortedIndex::range_sum`] and report the miss.
    #[must_use]
    pub fn query_sum(&self, lo: Value, hi: Value) -> Option<i128> {
        let prefix = self.prefix.get()?;
        if hi <= lo {
            return Some(0);
        }
        let start = self.values.partition_point(|&v| v < lo);
        let end = self.values.partition_point(|&v| v < hi);
        Some(prefix.sum_range(start..end))
    }

    /// Returns the qualifying values for `[lo, hi)` (already sorted).
    #[must_use]
    pub fn range_values(&self, lo: Value, hi: Value) -> &[Value] {
        if hi <= lo {
            return &[];
        }
        let start = self.values.partition_point(|&v| v < lo);
        let end = self.values.partition_point(|&v| v < hi);
        &self.values[start..end]
    }

    /// Returns the row ids of qualifying values for `[lo, hi)`.
    #[must_use]
    pub fn range_rowids(&self, lo: Value, hi: Value) -> SelectionVector {
        if hi <= lo {
            return SelectionVector::new();
        }
        let start = self.values.partition_point(|&v| v < lo);
        let end = self.values.partition_point(|&v| v < hi);
        SelectionVector::from_rows(self.rowids[start..end].to_vec())
    }

    /// Sum of qualifying values for `[lo, hi)` by scanning the qualifying
    /// slice — the masked-scan fallback [`SortedIndex::query_sum`] replaces
    /// once the prefix array is seeded.
    #[must_use]
    pub fn range_sum(&self, lo: Value, hi: Value) -> i128 {
        self.range_values(lo, hi)
            .iter()
            .map(|&v| i128::from(v))
            .sum()
    }

    /// Approximate heap footprint in bytes (including the prefix array once
    /// seeded).
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<Value>()
            + self.rowids.len() * std::mem::size_of::<RowId>()
            + self.prefix.get().map_or(0, PrefixSums::memory_bytes)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Vec<Value> {
        vec![42, 7, 19, 3, 88, 23, 51, 64, 5, 91, 30, 12]
    }

    fn scan_count(values: &[Value], lo: Value, hi: Value) -> u64 {
        values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
    }

    #[test]
    fn build_sorts_values_and_keeps_rowids() {
        let values = data();
        let idx = SortedIndex::build_from_values(&values);
        assert_eq!(idx.len(), values.len());
        assert!(idx.values().windows(2).all(|w| w[0] <= w[1]));
        for (&v, &r) in idx.values().iter().zip(idx.rowids()) {
            assert_eq!(values[r as usize], v);
        }
    }

    #[test]
    fn count_matches_scan() {
        let values = data();
        let idx = SortedIndex::build_from_values(&values);
        for &(lo, hi) in &[(0, 100), (10, 50), (50, 10), (23, 24), (92, 200)] {
            assert_eq!(
                idx.count(lo, hi),
                scan_count(&values, lo, hi),
                "[{lo},{hi})"
            );
        }
    }

    #[test]
    fn range_values_and_rowids_are_consistent() {
        let values = data();
        let idx = SortedIndex::build_from_values(&values);
        let vals = idx.range_values(10, 50);
        let rows = idx.range_rowids(10, 50);
        assert_eq!(vals.len(), rows.len());
        for (&v, r) in vals.iter().zip(rows.iter()) {
            assert_eq!(values[r as usize], v);
        }
        assert!(idx.range_values(50, 10).is_empty());
        assert!(idx.range_rowids(50, 10).is_empty());
    }

    #[test]
    fn range_sum_matches_manual_sum() {
        let values = data();
        let idx = SortedIndex::build_from_values(&values);
        let expected: i128 = values
            .iter()
            .filter(|&&v| (10..50).contains(&v))
            .map(|&v| i128::from(v))
            .sum();
        assert_eq!(idx.range_sum(10, 50), expected);
    }

    #[test]
    fn query_sum_needs_seeding_and_then_matches_the_scan() {
        let values = data();
        let idx = SortedIndex::build_from_values(&values);
        assert!(!idx.prefix_seeded());
        assert_eq!(idx.query_sum(10, 50), None, "unseeded: caller falls back");
        assert!(idx.seed_prefix());
        assert!(!idx.seed_prefix(), "second seed is a no-op");
        assert!(idx.prefix_seeded());
        for &(lo, hi) in &[(0, 100), (10, 50), (50, 10), (23, 24), (92, 200)] {
            assert_eq!(
                idx.query_sum(lo, hi),
                Some(idx.range_sum(lo, hi)),
                "[{lo},{hi})"
            );
            assert_eq!(idx.query_count(lo, hi), idx.count(lo, hi));
        }
        assert!(idx.memory_bytes() > values.len() * 12, "prefix is counted");
    }

    #[test]
    fn empty_index() {
        let idx = SortedIndex::build_from_values(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.count(0, 10), 0);
        assert_eq!(idx.memory_bytes(), 0);
        assert!(idx.seed_prefix());
        assert_eq!(idx.query_sum(0, 10), Some(0));
    }

    #[test]
    fn build_from_column_matches_build_from_values() {
        let column = Column::from_values("a", data());
        let a = SortedIndex::build(&column);
        let b = SortedIndex::build_from_values(&data());
        assert_eq!(a.values(), b.values());
        assert_eq!(a.rowids(), b.rowids());
        assert!(a.memory_bytes() > 0);
    }

    #[test]
    fn duplicates_are_preserved() {
        let values = vec![5, 5, 5, 1, 9];
        let idx = SortedIndex::build_from_values(&values);
        assert_eq!(idx.count(5, 6), 3);
        assert_eq!(idx.range_values(5, 6), &[5, 5, 5]);
    }
}
