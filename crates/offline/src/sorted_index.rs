//! Full sorted indexes: the structure offline indexing materializes.

use holistic_storage::{Column, SelectionVector};

use crate::{RowId, Value};

/// A full, read-optimized index over one column: all values sorted, each
/// paired with the row id it came from.
///
/// Range lookups are two binary searches; this is the "efficient binary
/// searches for the select operators" the paper grants offline indexing in
/// its experiments. Building it costs a full sort of the column, which is
/// exactly the cost the paper charges offline indexing up front
/// (`Time_sort = 28.4 s` for one 10^8-value column on their hardware).
#[derive(Debug, Clone)]
pub struct SortedIndex {
    values: Vec<Value>,
    rowids: Vec<RowId>,
}

impl SortedIndex {
    /// Builds the index from raw values (row ids are the positions).
    #[must_use]
    pub fn build_from_values(values: &[Value]) -> Self {
        let mut pairs: Vec<(Value, RowId)> = values
            .iter()
            .copied()
            .enumerate()
            .map(|(i, v)| (v, i as RowId))
            .collect();
        pairs.sort_unstable();
        let mut sorted_values = Vec::with_capacity(pairs.len());
        let mut rowids = Vec::with_capacity(pairs.len());
        for (v, r) in pairs {
            sorted_values.push(v);
            rowids.push(r);
        }
        SortedIndex {
            values: sorted_values,
            rowids,
        }
    }

    /// Builds the index from a base column.
    #[must_use]
    pub fn build(column: &Column) -> Self {
        Self::build_from_values(column.values())
    }

    /// Number of indexed values.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the index is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The sorted values.
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// The row ids aligned with [`SortedIndex::values`].
    #[must_use]
    pub fn rowids(&self) -> &[RowId] {
        &self.rowids
    }

    /// Counts the values in `[lo, hi)` with two binary searches.
    #[must_use]
    pub fn count(&self, lo: Value, hi: Value) -> u64 {
        if hi <= lo {
            return 0;
        }
        let start = self.values.partition_point(|&v| v < lo);
        let end = self.values.partition_point(|&v| v < hi);
        (end - start) as u64
    }

    /// Returns the qualifying values for `[lo, hi)` (already sorted).
    #[must_use]
    pub fn range_values(&self, lo: Value, hi: Value) -> &[Value] {
        if hi <= lo {
            return &[];
        }
        let start = self.values.partition_point(|&v| v < lo);
        let end = self.values.partition_point(|&v| v < hi);
        &self.values[start..end]
    }

    /// Returns the row ids of qualifying values for `[lo, hi)`.
    #[must_use]
    pub fn range_rowids(&self, lo: Value, hi: Value) -> SelectionVector {
        if hi <= lo {
            return SelectionVector::new();
        }
        let start = self.values.partition_point(|&v| v < lo);
        let end = self.values.partition_point(|&v| v < hi);
        SelectionVector::from_rows(self.rowids[start..end].to_vec())
    }

    /// Sum of qualifying values for `[lo, hi)`.
    #[must_use]
    pub fn range_sum(&self, lo: Value, hi: Value) -> i128 {
        self.range_values(lo, hi)
            .iter()
            .map(|&v| i128::from(v))
            .sum()
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<Value>()
            + self.rowids.len() * std::mem::size_of::<RowId>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn data() -> Vec<Value> {
        vec![42, 7, 19, 3, 88, 23, 51, 64, 5, 91, 30, 12]
    }

    fn scan_count(values: &[Value], lo: Value, hi: Value) -> u64 {
        values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
    }

    #[test]
    fn build_sorts_values_and_keeps_rowids() {
        let values = data();
        let idx = SortedIndex::build_from_values(&values);
        assert_eq!(idx.len(), values.len());
        assert!(idx.values().windows(2).all(|w| w[0] <= w[1]));
        for (&v, &r) in idx.values().iter().zip(idx.rowids()) {
            assert_eq!(values[r as usize], v);
        }
    }

    #[test]
    fn count_matches_scan() {
        let values = data();
        let idx = SortedIndex::build_from_values(&values);
        for &(lo, hi) in &[(0, 100), (10, 50), (50, 10), (23, 24), (92, 200)] {
            assert_eq!(
                idx.count(lo, hi),
                scan_count(&values, lo, hi),
                "[{lo},{hi})"
            );
        }
    }

    #[test]
    fn range_values_and_rowids_are_consistent() {
        let values = data();
        let idx = SortedIndex::build_from_values(&values);
        let vals = idx.range_values(10, 50);
        let rows = idx.range_rowids(10, 50);
        assert_eq!(vals.len(), rows.len());
        for (&v, r) in vals.iter().zip(rows.iter()) {
            assert_eq!(values[r as usize], v);
        }
        assert!(idx.range_values(50, 10).is_empty());
        assert!(idx.range_rowids(50, 10).is_empty());
    }

    #[test]
    fn range_sum_matches_manual_sum() {
        let values = data();
        let idx = SortedIndex::build_from_values(&values);
        let expected: i128 = values
            .iter()
            .filter(|&&v| (10..50).contains(&v))
            .map(|&v| i128::from(v))
            .sum();
        assert_eq!(idx.range_sum(10, 50), expected);
    }

    #[test]
    fn empty_index() {
        let idx = SortedIndex::build_from_values(&[]);
        assert!(idx.is_empty());
        assert_eq!(idx.count(0, 10), 0);
        assert_eq!(idx.memory_bytes(), 0);
    }

    #[test]
    fn build_from_column_matches_build_from_values() {
        let column = Column::from_values("a", data());
        let a = SortedIndex::build(&column);
        let b = SortedIndex::build_from_values(&data());
        assert_eq!(a.values(), b.values());
        assert_eq!(a.rowids(), b.rowids());
        assert!(a.memory_bytes() > 0);
    }

    #[test]
    fn duplicates_are_preserved() {
        let values = vec![5, 5, 5, 1, 9];
        let idx = SortedIndex::build_from_values(&values);
        assert_eq!(idx.count(5, 6), 3);
        assert_eq!(idx.range_values(5, 6), &[5, 5, 5]);
    }
}
