//! Workload summaries: the statistics an index advisor consumes.

use std::collections::BTreeMap;

use crate::{ColumnId, Value};

/// Per-column workload statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnWorkload {
    /// Number of range queries observed (or predicted) on this column.
    pub queries: u64,
    /// Average selectivity of those queries (fraction of rows qualifying).
    pub avg_selectivity: f64,
    /// Smallest predicate lower bound seen, if any.
    pub min_bound: Option<Value>,
    /// Largest predicate upper bound seen, if any.
    pub max_bound: Option<Value>,
}

impl Default for ColumnWorkload {
    fn default() -> Self {
        ColumnWorkload {
            queries: 0,
            avg_selectivity: 0.0,
            min_bound: None,
            max_bound: None,
        }
    }
}

/// A summary of a (known or observed) workload: how often each column is
/// queried and with what selectivity.
///
/// For offline indexing this is the "representative workload W" handed to
/// the advisor a priori; for online/holistic indexing the same structure is
/// filled in incrementally by the monitor.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct WorkloadSummary {
    columns: BTreeMap<ColumnId, ColumnWorkload>,
    total_queries: u64,
}

impl WorkloadSummary {
    /// Creates an empty summary.
    #[must_use]
    pub fn new() -> Self {
        WorkloadSummary::default()
    }

    /// Records one range query on `column` with the given selectivity and
    /// predicate bounds.
    pub fn record_query(&mut self, column: ColumnId, selectivity: f64, lo: Value, hi: Value) {
        let entry = self.columns.entry(column).or_default();
        let n = entry.queries as f64;
        entry.avg_selectivity =
            (entry.avg_selectivity * n + selectivity.clamp(0.0, 1.0)) / (n + 1.0);
        entry.queries += 1;
        entry.min_bound = Some(entry.min_bound.map_or(lo, |m| m.min(lo)));
        entry.max_bound = Some(entry.max_bound.map_or(hi, |m| m.max(hi)));
        self.total_queries += 1;
    }

    /// Declares an expected workload on `column` without individual queries
    /// (the "known a priori" form used by offline indexing).
    pub fn declare(&mut self, column: ColumnId, queries: u64, avg_selectivity: f64) {
        let entry = self.columns.entry(column).or_default();
        entry.queries += queries;
        entry.avg_selectivity = avg_selectivity.clamp(0.0, 1.0);
        self.total_queries += queries;
    }

    /// Forgets a column (dropped table): its entry is removed and its
    /// queries no longer count toward the total, so the frequencies of the
    /// remaining columns stay consistent. Returns whether it existed.
    pub fn remove_column(&mut self, column: ColumnId) -> bool {
        match self.columns.remove(&column) {
            Some(entry) => {
                self.total_queries = self.total_queries.saturating_sub(entry.queries);
                true
            }
            None => false,
        }
    }

    /// Total number of queries across all columns.
    #[must_use]
    pub fn total_queries(&self) -> u64 {
        self.total_queries
    }

    /// Number of distinct columns referenced by the workload.
    #[must_use]
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Per-column statistics, if the column appears in the workload.
    #[must_use]
    pub fn column(&self, id: ColumnId) -> Option<&ColumnWorkload> {
        self.columns.get(&id)
    }

    /// Fraction of all queries that touch `column` (0 if no queries at all).
    #[must_use]
    pub fn frequency(&self, id: ColumnId) -> f64 {
        if self.total_queries == 0 {
            return 0.0;
        }
        self.columns
            .get(&id)
            .map_or(0.0, |c| c.queries as f64 / self.total_queries as f64)
    }

    /// Iterates over `(column, statistics)` pairs, most-queried first.
    #[must_use]
    pub fn by_frequency(&self) -> Vec<(ColumnId, &ColumnWorkload)> {
        let mut entries: Vec<(ColumnId, &ColumnWorkload)> =
            self.columns.iter().map(|(id, w)| (*id, w)).collect();
        entries.sort_by(|a, b| b.1.queries.cmp(&a.1.queries).then(a.0.cmp(&b.0)));
        entries
    }

    /// Iterates over all `(column, statistics)` pairs in column order.
    pub fn iter(&self) -> impl Iterator<Item = (ColumnId, &ColumnWorkload)> {
        self.columns.iter().map(|(id, w)| (*id, w))
    }

    /// Merges another summary into this one (used when combining a-priori
    /// knowledge with observed statistics).
    pub fn merge(&mut self, other: &WorkloadSummary) {
        for (id, w) in &other.columns {
            let entry = self.columns.entry(*id).or_default();
            let total = entry.queries + w.queries;
            if total > 0 {
                entry.avg_selectivity = (entry.avg_selectivity * entry.queries as f64
                    + w.avg_selectivity * w.queries as f64)
                    / total as f64;
            }
            entry.queries = total;
            entry.min_bound = match (entry.min_bound, w.min_bound) {
                (Some(a), Some(b)) => Some(a.min(b)),
                (a, b) => a.or(b),
            };
            entry.max_bound = match (entry.max_bound, w.max_bound) {
                (Some(a), Some(b)) => Some(a.max(b)),
                (a, b) => a.or(b),
            };
        }
        self.total_queries += other.total_queries;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_storage::TableId;

    fn col(i: u32) -> ColumnId {
        ColumnId::new(TableId(0), i)
    }

    #[test]
    fn empty_summary() {
        let s = WorkloadSummary::new();
        assert_eq!(s.total_queries(), 0);
        assert_eq!(s.column_count(), 0);
        assert_eq!(s.frequency(col(0)), 0.0);
        assert!(s.column(col(0)).is_none());
    }

    #[test]
    fn record_query_accumulates_statistics() {
        let mut s = WorkloadSummary::new();
        s.record_query(col(0), 0.01, 100, 200);
        s.record_query(col(0), 0.03, 50, 150);
        s.record_query(col(1), 0.5, 0, 1000);
        assert_eq!(s.total_queries(), 3);
        assert_eq!(s.column_count(), 2);
        let c0 = s.column(col(0)).unwrap();
        assert_eq!(c0.queries, 2);
        assert!((c0.avg_selectivity - 0.02).abs() < 1e-9);
        assert_eq!(c0.min_bound, Some(50));
        assert_eq!(c0.max_bound, Some(200));
        assert!((s.frequency(col(0)) - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn declare_sets_expected_workload() {
        let mut s = WorkloadSummary::new();
        s.declare(col(3), 100, 0.01);
        assert_eq!(s.total_queries(), 100);
        assert_eq!(s.column(col(3)).unwrap().queries, 100);
        assert!((s.frequency(col(3)) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn by_frequency_orders_most_queried_first() {
        let mut s = WorkloadSummary::new();
        s.declare(col(0), 5, 0.1);
        s.declare(col(1), 50, 0.1);
        s.declare(col(2), 20, 0.1);
        let order: Vec<ColumnId> = s.by_frequency().into_iter().map(|(id, _)| id).collect();
        assert_eq!(order, vec![col(1), col(2), col(0)]);
    }

    #[test]
    fn merge_combines_summaries() {
        let mut a = WorkloadSummary::new();
        a.record_query(col(0), 0.02, 10, 20);
        let mut b = WorkloadSummary::new();
        b.record_query(col(0), 0.04, 5, 40);
        b.record_query(col(1), 0.1, 0, 100);
        a.merge(&b);
        assert_eq!(a.total_queries(), 3);
        let c0 = a.column(col(0)).unwrap();
        assert_eq!(c0.queries, 2);
        assert!((c0.avg_selectivity - 0.03).abs() < 1e-9);
        assert_eq!(c0.min_bound, Some(5));
        assert_eq!(c0.max_bound, Some(40));
        assert_eq!(a.column(col(1)).unwrap().queries, 1);
    }

    #[test]
    fn selectivity_is_clamped() {
        let mut s = WorkloadSummary::new();
        s.record_query(col(0), 7.5, 0, 10);
        assert!(s.column(col(0)).unwrap().avg_selectivity <= 1.0);
        s.declare(col(1), 1, -0.5);
        assert!(s.column(col(1)).unwrap().avg_selectivity >= 0.0);
    }
}
