//! "What-if" analysis: costing hypothetical index configurations without
//! materializing them.
//!
//! This is the technique introduced by the 1997 index-selection paper the
//! paper cites as the seminal offline work (ref 5): candidate indexes are
//! *simulated* — described only by their metadata — and the optimizer's cost
//! model is asked what the workload would cost if they existed.

use std::collections::BTreeSet;

use crate::cost::CostModel;
use crate::workload_summary::WorkloadSummary;
use crate::ColumnId;

/// A hypothetical (simulated, not materialized) index on one column.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub struct HypotheticalIndex {
    /// The column the index would be built on.
    pub column: ColumnId,
    /// Number of rows the index would cover.
    pub rows: usize,
}

/// A set of hypothetical indexes under evaluation.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct HypotheticalConfiguration {
    indexes: BTreeSet<HypotheticalIndex>,
}

impl HypotheticalConfiguration {
    /// Creates an empty configuration (no indexes at all).
    #[must_use]
    pub fn empty() -> Self {
        HypotheticalConfiguration::default()
    }

    /// Adds a hypothetical index; returns `self` for chaining.
    #[must_use]
    pub fn with(mut self, index: HypotheticalIndex) -> Self {
        self.indexes.insert(index);
        self
    }

    /// Adds a hypothetical index in place.
    pub fn add(&mut self, index: HypotheticalIndex) {
        self.indexes.insert(index);
    }

    /// Whether the configuration contains an index on `column`.
    #[must_use]
    pub fn covers(&self, column: ColumnId) -> bool {
        self.indexes.iter().any(|i| i.column == column)
    }

    /// Number of hypothetical indexes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.indexes.len()
    }

    /// Whether the configuration is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.indexes.is_empty()
    }

    /// Iterates over the hypothetical indexes.
    pub fn iter(&self) -> impl Iterator<Item = &HypotheticalIndex> {
        self.indexes.iter()
    }

    /// Total cost of *building* every index in the configuration.
    #[must_use]
    pub fn build_cost(&self, model: &CostModel) -> f64 {
        self.indexes
            .iter()
            .map(|i| model.full_build_cost(i.rows))
            .sum()
    }

    /// Expected cost of *running* the workload with this configuration:
    /// indexed columns answer with probes, everything else scans.
    ///
    /// `column_rows` supplies the row count for columns the configuration
    /// does not cover (they still have to be scanned).
    #[must_use]
    pub fn workload_cost(
        &self,
        workload: &WorkloadSummary,
        model: &CostModel,
        column_rows: impl Fn(ColumnId) -> usize,
    ) -> f64 {
        let mut total = 0.0;
        for (column, stats) in workload.iter() {
            let rows = self
                .indexes
                .iter()
                .find(|i| i.column == column)
                .map_or_else(|| column_rows(column), |i| i.rows);
            let per_query = if self.covers(column) {
                model.index_probe_cost(rows, stats.avg_selectivity)
            } else {
                model.scan_cost(rows)
            };
            total += per_query * stats.queries as f64;
        }
        total
    }

    /// Benefit of this configuration over running the workload with no
    /// indexes at all (positive = the configuration helps).
    #[must_use]
    pub fn benefit_over_scan(
        &self,
        workload: &WorkloadSummary,
        model: &CostModel,
        column_rows: impl Fn(ColumnId) -> usize,
    ) -> f64 {
        let baseline =
            HypotheticalConfiguration::empty().workload_cost(workload, model, &column_rows);
        baseline - self.workload_cost(workload, model, &column_rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_storage::TableId;

    fn col(i: u32) -> ColumnId {
        ColumnId::new(TableId(0), i)
    }

    fn workload() -> WorkloadSummary {
        let mut w = WorkloadSummary::new();
        w.declare(col(0), 100, 0.01);
        w.declare(col(1), 10, 0.01);
        w
    }

    #[test]
    fn empty_configuration_costs_equal_scan_baseline() {
        let model = CostModel::new();
        let cfg = HypotheticalConfiguration::empty();
        assert!(cfg.is_empty());
        let cost = cfg.workload_cost(&workload(), &model, |_| 1_000_000);
        let expected = model.scan_cost(1_000_000) * 110.0;
        assert!((cost - expected).abs() < 1e-6);
        assert_eq!(
            cfg.benefit_over_scan(&workload(), &model, |_| 1_000_000),
            0.0
        );
    }

    #[test]
    fn covering_the_hot_column_brings_most_benefit() {
        let model = CostModel::new();
        let hot = HypotheticalConfiguration::empty().with(HypotheticalIndex {
            column: col(0),
            rows: 1_000_000,
        });
        let cold = HypotheticalConfiguration::empty().with(HypotheticalIndex {
            column: col(1),
            rows: 1_000_000,
        });
        let rows = |_| 1_000_000;
        let hot_benefit = hot.benefit_over_scan(&workload(), &model, rows);
        let cold_benefit = cold.benefit_over_scan(&workload(), &model, rows);
        assert!(hot_benefit > cold_benefit);
        assert!(cold_benefit > 0.0);
    }

    #[test]
    fn build_cost_sums_member_indexes() {
        let model = CostModel::new();
        let cfg = HypotheticalConfiguration::empty()
            .with(HypotheticalIndex {
                column: col(0),
                rows: 1000,
            })
            .with(HypotheticalIndex {
                column: col(1),
                rows: 2000,
            });
        assert_eq!(cfg.len(), 2);
        assert!(cfg.covers(col(0)));
        assert!(!cfg.covers(col(2)));
        let expected = model.full_build_cost(1000) + model.full_build_cost(2000);
        assert!((cfg.build_cost(&model) - expected).abs() < 1e-9);
    }

    #[test]
    fn duplicate_indexes_are_deduplicated() {
        let idx = HypotheticalIndex {
            column: col(0),
            rows: 500,
        };
        let mut cfg = HypotheticalConfiguration::empty().with(idx);
        cfg.add(idx);
        assert_eq!(cfg.len(), 1);
        assert_eq!(cfg.iter().count(), 1);
    }

    #[test]
    fn workload_cost_ignores_columns_not_in_workload() {
        let model = CostModel::new();
        let cfg = HypotheticalConfiguration::empty().with(HypotheticalIndex {
            column: col(7),
            rows: 1_000_000,
        });
        // Index on a column the workload never touches: same cost as baseline.
        let baseline =
            HypotheticalConfiguration::empty().workload_cost(&workload(), &model, |_| 1_000_000);
        let with_useless = cfg.workload_cost(&workload(), &model, |_| 1_000_000);
        assert!((baseline - with_useless).abs() < 1e-9);
    }
}
