//! Optimizer-style cost model.
//!
//! All automated indexing approaches in the paper lean on cost estimates:
//! offline advisors ask the optimizer "what would this workload cost with
//! this hypothetical index?", online tuners compare observed scan costs with
//! predicted index costs, and the holistic ranking model needs to know when
//! further refinement of a cracked column stops paying off (once pieces fit
//! in the CPU cache).
//!
//! Costs are expressed in abstract **work units** — one unit is one value
//! touched sequentially. The conversion to wall-clock time depends on the
//! machine and is irrelevant for the decisions the model drives (all
//! comparisons are relative).

/// Cost model parameters and estimation functions.
#[derive(Debug, Clone, PartialEq)]
pub struct CostModel {
    /// Cost of touching one value during a sequential scan (work units).
    pub scan_unit: f64,
    /// Cost of one binary-search step (work units); a probe costs
    /// `log2(n) * probe_unit`.
    pub probe_unit: f64,
    /// Cost of moving one value during a sort (work units); a full sort
    /// costs `n * log2(n) * sort_unit`.
    pub sort_unit: f64,
    /// Cost of touching one value during a cracking partition pass.
    pub crack_unit: f64,
    /// Cost of materializing one result value.
    pub materialize_unit: f64,
    /// Number of values that fit in the target CPU cache; refinement below
    /// this piece size no longer improves query latency (the paper's stop
    /// condition for the ranking model).
    pub cache_piece_values: usize,
}

impl Default for CostModel {
    fn default() -> Self {
        CostModel {
            scan_unit: 1.0,
            probe_unit: 4.0,
            sort_unit: 2.0,
            crack_unit: 1.5,
            materialize_unit: 1.0,
            // ~1 MiB of i64 values: a conservative L2-sized target.
            cache_piece_values: 128 * 1024,
        }
    }
}

impl CostModel {
    /// A cost model with default constants.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Cost of a full scan of `n` values.
    #[must_use]
    pub fn scan_cost(&self, n: usize) -> f64 {
        n as f64 * self.scan_unit
    }

    /// Cost of answering a range query with a full sorted index:
    /// two binary probes plus materialization of the qualifying rows.
    #[must_use]
    pub fn index_probe_cost(&self, n: usize, selectivity: f64) -> f64 {
        if n == 0 {
            return 0.0;
        }
        let probes = 2.0 * (n as f64).log2().max(1.0) * self.probe_unit;
        let materialize = n as f64 * selectivity.clamp(0.0, 1.0) * self.materialize_unit;
        probes + materialize
    }

    /// Cost of building a full sorted index over `n` values.
    #[must_use]
    pub fn full_build_cost(&self, n: usize) -> f64 {
        if n == 0 {
            return 0.0;
        }
        n as f64 * (n as f64).log2().max(1.0) * self.sort_unit
    }

    /// Cost of one cracking partition pass over a piece of `piece_len` values.
    #[must_use]
    pub fn crack_pass_cost(&self, piece_len: usize) -> f64 {
        piece_len as f64 * self.crack_unit
    }

    /// Expected cost of a cracked-column range query when the average piece
    /// length is `avg_piece_len`: crack the (at most two) boundary pieces
    /// plus materialize the result.
    #[must_use]
    pub fn cracked_query_cost(&self, n: usize, avg_piece_len: f64, selectivity: f64) -> f64 {
        let crack = 2.0 * avg_piece_len.max(0.0) * self.crack_unit;
        let materialize = n as f64 * selectivity.clamp(0.0, 1.0) * self.materialize_unit;
        crack + materialize
    }

    /// Expected benefit (work units saved per query) of refining a cracked
    /// column from `current_piece_len` to `target_piece_len` average pieces.
    ///
    /// Clamped at zero once pieces fit in the cache: the paper observes that
    /// "once columns are cracked enough such that pieces fit into the CPU
    /// caches, performance does not further improve by extra index
    /// refinement".
    #[must_use]
    pub fn refinement_benefit(&self, current_piece_len: f64, target_piece_len: f64) -> f64 {
        let floor = self.cache_piece_values as f64;
        let current = current_piece_len.max(floor);
        let target = target_piece_len.max(floor);
        ((current - target) * 2.0 * self.crack_unit).max(0.0)
    }

    /// Number of values that can be sorted within `budget` work units
    /// (inverse of [`CostModel::full_build_cost`], solved approximately).
    #[must_use]
    pub fn values_sortable_within(&self, budget: f64) -> usize {
        if budget <= 0.0 {
            return 0;
        }
        // Solve n * log2(n) * sort_unit = budget by fixed-point iteration.
        let target = budget / self.sort_unit;
        let mut n = target.max(2.0);
        for _ in 0..32 {
            n = target / n.log2().max(1.0);
        }
        n as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scan_cost_is_linear() {
        let m = CostModel::new();
        assert_eq!(m.scan_cost(0), 0.0);
        assert_eq!(m.scan_cost(1000), 1000.0);
        assert!(m.scan_cost(2000) > m.scan_cost(1000));
    }

    #[test]
    fn index_probe_is_much_cheaper_than_scan_for_selective_queries() {
        let m = CostModel::new();
        let n = 10_000_000;
        let probe = m.index_probe_cost(n, 0.0001);
        let scan = m.scan_cost(n);
        assert!(probe < scan / 100.0, "probe={probe} scan={scan}");
        assert_eq!(m.index_probe_cost(0, 0.5), 0.0);
    }

    #[test]
    fn full_build_dominates_single_scan() {
        let m = CostModel::new();
        let n = 1_000_000;
        assert!(m.full_build_cost(n) > m.scan_cost(n));
        assert_eq!(m.full_build_cost(0), 0.0);
    }

    #[test]
    fn cracked_query_cost_decreases_with_piece_size() {
        let m = CostModel::new();
        let big = m.cracked_query_cost(1_000_000, 1_000_000.0, 0.01);
        let small = m.cracked_query_cost(1_000_000, 10_000.0, 0.01);
        assert!(small < big);
    }

    #[test]
    fn refinement_benefit_clamps_at_cache_size() {
        let m = CostModel::new();
        let floor = m.cache_piece_values as f64;
        // Below the cache threshold there is no benefit.
        assert_eq!(m.refinement_benefit(floor / 2.0, floor / 4.0), 0.0);
        // Above the threshold benefit is positive and monotone.
        let b1 = m.refinement_benefit(10.0 * floor, 5.0 * floor);
        let b2 = m.refinement_benefit(10.0 * floor, 2.0 * floor);
        assert!(b1 > 0.0);
        assert!(b2 > b1);
        // Negative "benefit" (refining to larger pieces) clamps to zero.
        assert_eq!(m.refinement_benefit(floor, 10.0 * floor), 0.0);
    }

    #[test]
    fn values_sortable_within_is_inverse_of_build_cost() {
        let m = CostModel::new();
        for &n in &[10_000usize, 1_000_000, 50_000_000] {
            let budget = m.full_build_cost(n);
            let recovered = m.values_sortable_within(budget);
            let rel = (recovered as f64 - n as f64).abs() / n as f64;
            assert!(rel < 0.05, "n={n} recovered={recovered}");
        }
        assert_eq!(m.values_sortable_within(0.0), 0);
        assert_eq!(m.values_sortable_within(-5.0), 0);
    }

    #[test]
    fn crack_pass_cost_is_linear_in_piece_length() {
        let m = CostModel::new();
        assert_eq!(m.crack_pass_cost(0), 0.0);
        assert!(m.crack_pass_cost(2048) == 2.0 * m.crack_pass_cost(1024));
    }
}
