//! Property-based tests for the offline-indexing crate: the sorted index is
//! scan-equivalent, the cost model is monotone, and the advisor respects its
//! budget on arbitrary workloads.

use proptest::prelude::*;

use holistic_offline::{Advisor, CostModel, SortedIndex, WorkloadSummary};
use holistic_storage::{ColumnId, TableId};

fn reference_count(values: &[i64], lo: i64, hi: i64) -> u64 {
    values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn sorted_index_is_scan_equivalent(
        values in prop::collection::vec(-1000i64..1000, 0..400),
        lo in -1200i64..1200,
        width in 0i64..600,
    ) {
        let hi = lo + width;
        let index = SortedIndex::build_from_values(&values);
        prop_assert_eq!(index.count(lo, hi), reference_count(&values, lo, hi));
        let range_values = index.range_values(lo, hi);
        prop_assert!(range_values.windows(2).all(|w| w[0] <= w[1]));
        prop_assert!(range_values.iter().all(|&v| v >= lo && v < hi));
        let sum: i128 = range_values.iter().map(|&v| i128::from(v)).sum();
        prop_assert_eq!(index.range_sum(lo, hi), sum);
        // Row ids still address the original values.
        for (v, row) in range_values.iter().zip(index.range_rowids(lo, hi).iter()) {
            prop_assert_eq!(values[row as usize], *v);
        }
    }

    #[test]
    fn cost_model_is_monotone_in_input_size(
        small in 1usize..100_000,
        extra in 1usize..100_000,
        selectivity in 0.0f64..1.0,
    ) {
        let model = CostModel::new();
        let large = small + extra;
        prop_assert!(model.scan_cost(large) >= model.scan_cost(small));
        prop_assert!(model.full_build_cost(large) >= model.full_build_cost(small));
        prop_assert!(model.crack_pass_cost(large) >= model.crack_pass_cost(small));
        prop_assert!(
            model.index_probe_cost(large, selectivity) >= model.index_probe_cost(small, selectivity) - 1e-9
        );
        // Probing is never more expensive than scanning the same column at
        // full selectivity plus the probe overhead.
        prop_assert!(model.index_probe_cost(small, selectivity) <= model.scan_cost(small) + 200.0);
    }

    #[test]
    fn refinement_benefit_is_nonnegative_and_zero_below_cache(
        current in 0.0f64..1e8,
        target in 0.0f64..1e8,
    ) {
        let model = CostModel::new();
        let benefit = model.refinement_benefit(current, target);
        prop_assert!(benefit >= 0.0);
        if current <= model.cache_piece_values as f64 {
            prop_assert_eq!(benefit, 0.0);
        }
    }

    #[test]
    fn advisor_never_exceeds_its_budget(
        queries in prop::collection::vec(1u64..2000, 1..12),
        rows in 1000usize..200_000,
        budget_factor in 0.0f64..6.0,
    ) {
        let advisor = Advisor::new();
        let mut workload = WorkloadSummary::new();
        for (i, &q) in queries.iter().enumerate() {
            workload.declare(ColumnId::new(TableId(0), i as u32), q, 0.01);
        }
        let budget = advisor.model().full_build_cost(rows) * budget_factor;
        let picks = advisor.recommend(&workload, |_| rows, budget);
        let spent: f64 = picks.iter().map(|p| p.build_cost).sum();
        prop_assert!(spent <= budget + 1e-6);
        // Picks are unique columns and each is profitable.
        let mut columns: Vec<ColumnId> = picks.iter().map(|p| p.column).collect();
        columns.sort();
        columns.dedup();
        prop_assert_eq!(columns.len(), picks.len());
        for p in &picks {
            prop_assert!(p.benefit > p.build_cost);
        }
    }

    #[test]
    fn workload_summary_frequencies_sum_to_one(
        queries in prop::collection::vec(1u64..500, 1..10),
    ) {
        let mut workload = WorkloadSummary::new();
        for (i, &q) in queries.iter().enumerate() {
            workload.declare(ColumnId::new(TableId(0), i as u32), q, 0.05);
        }
        let total: f64 = (0..queries.len())
            .map(|i| workload.frequency(ColumnId::new(TableId(0), i as u32)))
            .sum();
        prop_assert!((total - 1.0).abs() < 1e-9);
    }
}
