//! Per-query metrics and cumulative timing.
//!
//! The paper's figures plot *cumulative response time* over the query
//! sequence; the engine therefore records, for every executed query, the
//! wall-clock latency, the access path taken and the column touched, plus
//! the time spent on tuning (idle-time refinement, offline builds) so the
//! benches can attribute every microsecond.

use std::time::Duration;

use holistic_cracking::KernelDispatches;
use holistic_storage::ColumnId;

use crate::engine::query::AccessPath;

/// The record of one executed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRecord {
    /// Position of the query in the execution sequence (0-based).
    pub sequence: u64,
    /// The column the query touched.
    pub column: ColumnId,
    /// The access path the planner chose.
    pub path: AccessPath,
    /// Wall-clock latency of the query.
    pub latency: Duration,
    /// Number of qualifying rows.
    pub result_count: u64,
}

/// Engine-wide metrics.
#[derive(Debug, Clone, Default)]
pub struct EngineMetrics {
    queries: Vec<QueryRecord>,
    tuning_time: Duration,
    offline_build_time: Duration,
    auxiliary_actions: u64,
    kernel_dispatches: KernelDispatches,
}

impl EngineMetrics {
    /// Creates an empty metrics store.
    #[must_use]
    pub fn new() -> Self {
        EngineMetrics::default()
    }

    /// Records one executed query.
    pub fn record_query(&mut self, record: QueryRecord) {
        self.queries.push(record);
    }

    /// Adds time spent on idle-time tuning.
    pub fn add_tuning_time(&mut self, d: Duration, actions: u64) {
        self.tuning_time += d;
        self.auxiliary_actions += actions;
    }

    /// Adds time spent building full (offline/online) indexes.
    pub fn add_build_time(&mut self, d: Duration) {
        self.offline_build_time += d;
    }

    /// Accumulates crack-kernel dispatch counts (branchy vs. predicated).
    pub fn add_kernel_dispatches(&mut self, delta: KernelDispatches) {
        self.kernel_dispatches.add(delta);
    }

    /// Crack-kernel dispatches recorded so far, split by physical form —
    /// lets benches report which kernel path actually served a workload.
    #[must_use]
    pub fn kernel_dispatches(&self) -> KernelDispatches {
        self.kernel_dispatches
    }

    /// All query records, in execution order.
    #[must_use]
    pub fn queries(&self) -> &[QueryRecord] {
        &self.queries
    }

    /// Number of executed queries.
    #[must_use]
    pub fn query_count(&self) -> u64 {
        self.queries.len() as u64
    }

    /// Total query latency so far.
    #[must_use]
    pub fn total_query_time(&self) -> Duration {
        self.queries.iter().map(|q| q.latency).sum()
    }

    /// Cumulative query latency after each query, in microseconds — the
    /// series the paper's Figures 3 and 4 plot on the y-axis.
    #[must_use]
    pub fn cumulative_micros(&self) -> Vec<u128> {
        let mut acc = 0u128;
        self.queries
            .iter()
            .map(|q| {
                acc += q.latency.as_micros();
                acc
            })
            .collect()
    }

    /// Time spent on idle-time tuning.
    #[must_use]
    pub fn tuning_time(&self) -> Duration {
        self.tuning_time
    }

    /// Time spent building full indexes.
    #[must_use]
    pub fn build_time(&self) -> Duration {
        self.offline_build_time
    }

    /// Auxiliary refinement actions applied so far.
    #[must_use]
    pub fn auxiliary_actions(&self) -> u64 {
        self.auxiliary_actions
    }

    /// How many queries used each access path: `(scan, full index, crack)`.
    #[must_use]
    pub fn path_breakdown(&self) -> (u64, u64, u64) {
        let mut scan = 0;
        let mut index = 0;
        let mut crack = 0;
        for q in &self.queries {
            match q.path {
                AccessPath::Scan => scan += 1,
                AccessPath::FullIndex => index += 1,
                AccessPath::Crack => crack += 1,
            }
        }
        (scan, index, crack)
    }

    /// Clears all recorded metrics (e.g. between benchmark phases).
    pub fn reset(&mut self) {
        self.queries.clear();
        self.tuning_time = Duration::ZERO;
        self.offline_build_time = Duration::ZERO;
        self.auxiliary_actions = 0;
        self.kernel_dispatches = KernelDispatches::default();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_storage::TableId;

    fn record(seq: u64, micros: u64, path: AccessPath) -> QueryRecord {
        QueryRecord {
            sequence: seq,
            column: ColumnId::new(TableId(0), 0),
            path,
            latency: Duration::from_micros(micros),
            result_count: 10,
        }
    }

    #[test]
    fn empty_metrics() {
        let m = EngineMetrics::new();
        assert_eq!(m.query_count(), 0);
        assert_eq!(m.total_query_time(), Duration::ZERO);
        assert!(m.cumulative_micros().is_empty());
        assert_eq!(m.path_breakdown(), (0, 0, 0));
    }

    #[test]
    fn cumulative_series_is_monotone_and_correct() {
        let mut m = EngineMetrics::new();
        m.record_query(record(0, 100, AccessPath::Scan));
        m.record_query(record(1, 50, AccessPath::Crack));
        m.record_query(record(2, 25, AccessPath::FullIndex));
        assert_eq!(m.cumulative_micros(), vec![100, 150, 175]);
        assert_eq!(m.total_query_time(), Duration::from_micros(175));
        assert_eq!(m.query_count(), 3);
        assert_eq!(m.path_breakdown(), (1, 1, 1));
    }

    #[test]
    fn tuning_and_build_time_accumulate() {
        let mut m = EngineMetrics::new();
        m.add_tuning_time(Duration::from_micros(30), 5);
        m.add_tuning_time(Duration::from_micros(20), 7);
        m.add_build_time(Duration::from_millis(2));
        assert_eq!(m.tuning_time(), Duration::from_micros(50));
        assert_eq!(m.auxiliary_actions(), 12);
        assert_eq!(m.build_time(), Duration::from_millis(2));
    }

    #[test]
    fn reset_clears_everything() {
        let mut m = EngineMetrics::new();
        m.record_query(record(0, 1, AccessPath::Scan));
        m.add_tuning_time(Duration::from_micros(5), 1);
        m.add_kernel_dispatches(KernelDispatches {
            branchy: 2,
            predicated: 3,
        });
        m.reset();
        assert_eq!(m.query_count(), 0);
        assert_eq!(m.tuning_time(), Duration::ZERO);
        assert_eq!(m.auxiliary_actions(), 0);
        assert_eq!(m.kernel_dispatches(), KernelDispatches::default());
    }

    #[test]
    fn kernel_dispatches_accumulate() {
        let mut m = EngineMetrics::new();
        m.add_kernel_dispatches(KernelDispatches {
            branchy: 1,
            predicated: 0,
        });
        m.add_kernel_dispatches(KernelDispatches {
            branchy: 0,
            predicated: 4,
        });
        let d = m.kernel_dispatches();
        assert_eq!((d.branchy, d.predicated), (1, 4));
        assert_eq!(d.total(), 5);
    }
}
