//! Per-query metrics and cumulative timing.
//!
//! The paper's figures plot *cumulative response time* over the query
//! sequence; the engine therefore records, for every executed query, the
//! wall-clock latency, the access path taken and the column touched, plus
//! the time spent on tuning (idle-time refinement, offline builds) so the
//! benches can attribute every microsecond.
//!
//! Recording happens on the hot query path from many threads at once, so
//! all methods take `&self`: durations and counters are atomics, and the
//! per-query record log sits behind a mutex that is held only for the push.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use holistic_sync::{LockLevel, OrderedMutex};

use holistic_cracking::{AggregateCacheDelta, KernelDispatches};
use holistic_storage::ColumnId;

use crate::engine::query::AccessPath;

/// The record of one executed query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRecord {
    /// Position of the query in the execution sequence (0-based).
    pub sequence: u64,
    /// The column the query touched.
    pub column: ColumnId,
    /// The access path the planner chose.
    pub path: AccessPath,
    /// Wall-clock latency of the query.
    pub latency: Duration,
    /// Number of qualifying rows.
    pub result_count: u64,
}

/// Snapshot of the service-layer overload counters: how admission
/// control, deadline shedding and saturation degradation treated the
/// traffic a front-door service pushed at the engine.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ServiceCounters {
    /// Queries accepted into an admission queue.
    pub admitted: u64,
    /// Queries rejected because the global queue bound was hit.
    pub rejected_global: u64,
    /// Queries rejected because a per-client queue bound was hit.
    pub rejected_client: u64,
    /// Queries shed (at admission or dispatch) because their deadline
    /// expired before execution.
    pub shed_deadline: u64,
    /// Queries abandoned cooperatively (client disconnected while queued).
    pub cancelled: u64,
    /// Queries answered on the degraded read-only (zero-reorganization)
    /// path while the service was saturated.
    pub degraded_answers: u64,
    /// Times the service flipped from normal into saturation mode.
    pub saturation_entries: u64,
    /// High-water mark of the global admission queue depth.
    pub peak_queue_depth: u64,
}

/// Snapshot of the runtime-integrity counters: how containment,
/// quarantine and the background scrubber treated learned state.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct IntegrityCounters {
    /// Columns quarantined (panic containment, paranoia, or scrub).
    pub quarantined: u64,
    /// Quarantined columns rebuilt from base data by the tuner.
    pub rebuilt: u64,
    /// Queries answered through the degraded base-storage scan path
    /// while their column was quarantined or rebuilding.
    pub degraded_scans: u64,
    /// Pieces the background scrubber has re-validated.
    pub scrubbed_pieces: u64,
    /// Faults the scrubber detected (each one quarantined a column).
    pub scrub_faults: u64,
}

/// Engine-wide metrics. Safe to record into from multiple threads.
#[derive(Debug)]
pub struct EngineMetrics {
    queries: OrderedMutex<Vec<QueryRecord>>,
    /// The recovery outcome of the engine's birth, if it was recovered
    /// from a persistence directory. Behind its own (Metrics-level) lock;
    /// never nested with the query log's.
    recovery: OrderedMutex<Option<crate::engine::persist::RecoveryOutcome>>,
    integ_quarantined: AtomicU64,
    integ_rebuilt: AtomicU64,
    integ_degraded_scans: AtomicU64,
    integ_scrubbed_pieces: AtomicU64,
    integ_scrub_faults: AtomicU64,
    tuning_nanos: AtomicU64,
    build_nanos: AtomicU64,
    auxiliary_actions: AtomicU64,
    dispatches_branchy: AtomicU64,
    dispatches_predicated: AtomicU64,
    batches: AtomicU64,
    batched_queries: AtomicU64,
    aggregate_hits: AtomicU64,
    aggregate_prefix: AtomicU64,
    aggregate_partials: AtomicU64,
    aggregate_misses: AtomicU64,
    aggregate_scanned_values: AtomicU64,
    svc_admitted: AtomicU64,
    svc_rejected_global: AtomicU64,
    svc_rejected_client: AtomicU64,
    svc_shed_deadline: AtomicU64,
    svc_cancelled: AtomicU64,
    svc_degraded_answers: AtomicU64,
    svc_saturation_entries: AtomicU64,
    svc_peak_queue_depth: AtomicU64,
}

impl Default for EngineMetrics {
    fn default() -> Self {
        EngineMetrics {
            queries: OrderedMutex::new(LockLevel::Metrics, "EngineMetrics::queries", Vec::new()),
            recovery: OrderedMutex::new(LockLevel::Metrics, "EngineMetrics::recovery", None),
            integ_quarantined: AtomicU64::new(0),
            integ_rebuilt: AtomicU64::new(0),
            integ_degraded_scans: AtomicU64::new(0),
            integ_scrubbed_pieces: AtomicU64::new(0),
            integ_scrub_faults: AtomicU64::new(0),
            tuning_nanos: AtomicU64::new(0),
            build_nanos: AtomicU64::new(0),
            auxiliary_actions: AtomicU64::new(0),
            dispatches_branchy: AtomicU64::new(0),
            dispatches_predicated: AtomicU64::new(0),
            batches: AtomicU64::new(0),
            batched_queries: AtomicU64::new(0),
            aggregate_hits: AtomicU64::new(0),
            aggregate_prefix: AtomicU64::new(0),
            aggregate_partials: AtomicU64::new(0),
            aggregate_misses: AtomicU64::new(0),
            aggregate_scanned_values: AtomicU64::new(0),
            svc_admitted: AtomicU64::new(0),
            svc_rejected_global: AtomicU64::new(0),
            svc_rejected_client: AtomicU64::new(0),
            svc_shed_deadline: AtomicU64::new(0),
            svc_cancelled: AtomicU64::new(0),
            svc_degraded_answers: AtomicU64::new(0),
            svc_saturation_entries: AtomicU64::new(0),
            svc_peak_queue_depth: AtomicU64::new(0),
        }
    }
}

impl EngineMetrics {
    /// Creates an empty metrics store.
    #[must_use]
    pub fn new() -> Self {
        EngineMetrics::default()
    }

    /// Records one executed query.
    pub fn record_query(&self, record: QueryRecord) {
        self.queries.lock().push(record);
    }

    /// Records a whole batch of executed queries under a single lock
    /// acquisition (the bulk counterpart of [`EngineMetrics::record_query`]).
    pub fn record_queries(&self, records: Vec<QueryRecord>) {
        self.queries.lock().extend(records);
    }

    /// Records that one `execute_batch` call served `queries` queries.
    pub fn record_batch(&self, queries: u64) {
        self.batches.fetch_add(1, Ordering::Relaxed);
        self.batched_queries.fetch_add(queries, Ordering::Relaxed);
    }

    /// Number of `execute_batch` calls recorded so far.
    #[must_use]
    pub fn batches_executed(&self) -> u64 {
        self.batches.load(Ordering::Relaxed)
    }

    /// Number of queries served through the batched path so far.
    #[must_use]
    pub fn batched_queries(&self) -> u64 {
        self.batched_queries.load(Ordering::Relaxed)
    }

    /// Adds time spent on idle-time tuning.
    pub fn add_tuning_time(&self, d: Duration, actions: u64) {
        self.tuning_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
        self.auxiliary_actions.fetch_add(actions, Ordering::Relaxed);
    }

    /// Adds time spent building full (offline/online) indexes.
    pub fn add_build_time(&self, d: Duration) {
        self.build_nanos
            .fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Accumulates aggregate-cache classifications: how many count/sum
    /// answers were composed purely from cached whole-piece sums (hits),
    /// needed a prefix-sum difference while still reading no data (prefix —
    /// sorted-piece interiors and prefix-backed full-index probes), mixed
    /// cached pieces and scans (partials), or found no cache at all
    /// (misses), plus the data values the scan fallback had to read.
    pub fn record_aggregate_cache(&self, delta: AggregateCacheDelta) {
        if delta.hits > 0 {
            self.aggregate_hits.fetch_add(delta.hits, Ordering::Relaxed);
        }
        if delta.prefix > 0 {
            self.aggregate_prefix
                .fetch_add(delta.prefix, Ordering::Relaxed);
        }
        if delta.partials > 0 {
            self.aggregate_partials
                .fetch_add(delta.partials, Ordering::Relaxed);
        }
        if delta.misses > 0 {
            self.aggregate_misses
                .fetch_add(delta.misses, Ordering::Relaxed);
        }
        if delta.scanned_values > 0 {
            self.aggregate_scanned_values
                .fetch_add(delta.scanned_values, Ordering::Relaxed);
        }
    }

    /// Aggregate-cache totals recorded so far.
    #[must_use]
    pub fn aggregate_cache(&self) -> AggregateCacheDelta {
        AggregateCacheDelta {
            hits: self.aggregate_hits.load(Ordering::Relaxed),
            prefix: self.aggregate_prefix.load(Ordering::Relaxed),
            partials: self.aggregate_partials.load(Ordering::Relaxed),
            misses: self.aggregate_misses.load(Ordering::Relaxed),
            scanned_values: self.aggregate_scanned_values.load(Ordering::Relaxed),
        }
    }

    /// Accumulates crack-kernel dispatch counts (branchy vs. predicated).
    pub fn add_kernel_dispatches(&self, delta: KernelDispatches) {
        self.dispatches_branchy
            .fetch_add(delta.branchy, Ordering::Relaxed);
        self.dispatches_predicated
            .fetch_add(delta.predicated, Ordering::Relaxed);
    }

    /// Crack-kernel dispatches recorded so far, split by physical form —
    /// lets benches report which kernel path actually served a workload.
    #[must_use]
    pub fn kernel_dispatches(&self) -> KernelDispatches {
        KernelDispatches {
            branchy: self.dispatches_branchy.load(Ordering::Relaxed),
            predicated: self.dispatches_predicated.load(Ordering::Relaxed),
        }
    }

    /// A copy of all query records, in recording order.
    #[must_use]
    pub fn queries(&self) -> Vec<QueryRecord> {
        self.queries.lock().clone()
    }

    /// Number of executed queries.
    #[must_use]
    pub fn query_count(&self) -> u64 {
        self.queries.lock().len() as u64
    }

    /// Total query latency so far.
    #[must_use]
    pub fn total_query_time(&self) -> Duration {
        self.queries.lock().iter().map(|q| q.latency).sum()
    }

    /// Cumulative query latency after each query, in microseconds — the
    /// series the paper's Figures 3 and 4 plot on the y-axis.
    #[must_use]
    pub fn cumulative_micros(&self) -> Vec<u128> {
        let mut acc = 0u128;
        self.queries
            .lock()
            .iter()
            .map(|q| {
                acc += q.latency.as_micros();
                acc
            })
            .collect()
    }

    /// Time spent on idle-time tuning.
    #[must_use]
    pub fn tuning_time(&self) -> Duration {
        Duration::from_nanos(self.tuning_nanos.load(Ordering::Relaxed))
    }

    /// Time spent building full indexes.
    #[must_use]
    pub fn build_time(&self) -> Duration {
        Duration::from_nanos(self.build_nanos.load(Ordering::Relaxed))
    }

    /// Auxiliary refinement actions applied so far.
    #[must_use]
    pub fn auxiliary_actions(&self) -> u64 {
        self.auxiliary_actions.load(Ordering::Relaxed)
    }

    /// How many queries used each access path: `(scan, full index, crack)`.
    #[must_use]
    pub fn path_breakdown(&self) -> (u64, u64, u64) {
        let mut scan = 0;
        let mut index = 0;
        let mut crack = 0;
        for q in self.queries.lock().iter() {
            match q.path {
                AccessPath::Scan => scan += 1,
                AccessPath::FullIndex => index += 1,
                AccessPath::Crack => crack += 1,
            }
        }
        (scan, index, crack)
    }

    /// Records queries accepted into a service admission queue.
    pub fn service_admitted(&self, n: u64) {
        self.svc_admitted.fetch_add(n, Ordering::Relaxed);
    }

    /// Records queries rejected with `Overloaded`; `global` distinguishes
    /// the global queue bound from a per-client bound.
    pub fn service_rejected(&self, n: u64, global: bool) {
        if global {
            self.svc_rejected_global.fetch_add(n, Ordering::Relaxed);
        } else {
            self.svc_rejected_client.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Records queries shed with `DeadlineExceeded`.
    pub fn service_shed_deadline(&self, n: u64) {
        self.svc_shed_deadline.fetch_add(n, Ordering::Relaxed);
    }

    /// Records queries abandoned with `Cancelled`.
    pub fn service_cancelled(&self, n: u64) {
        self.svc_cancelled.fetch_add(n, Ordering::Relaxed);
    }

    /// Records queries served on the saturated read-only path.
    pub fn service_degraded_answers(&self, n: u64) {
        self.svc_degraded_answers.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one normal→saturated mode transition.
    pub fn service_saturation_entered(&self) {
        self.svc_saturation_entries.fetch_add(1, Ordering::Relaxed);
    }

    /// Raises the global-queue-depth high-water mark to at least `depth`.
    pub fn service_queue_depth(&self, depth: u64) {
        self.svc_peak_queue_depth
            .fetch_max(depth, Ordering::Relaxed);
    }

    /// Records one column quarantine (containment event).
    pub fn record_quarantine(&self) {
        self.integ_quarantined.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one completed quarantine→rebuild heal.
    pub fn record_rebuild(&self) {
        self.integ_rebuilt.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one query answered through the degraded scan path.
    pub fn record_degraded_scan(&self) {
        self.integ_degraded_scans.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one scrub window: `pieces` re-validated, and whether the
    /// window found a fault (which quarantined the column).
    pub fn record_scrub(&self, pieces: u64, fault: bool) {
        self.integ_scrubbed_pieces
            .fetch_add(pieces, Ordering::Relaxed);
        if fault {
            self.integ_scrub_faults.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Snapshot of the runtime-integrity counters.
    #[must_use]
    pub fn integrity(&self) -> IntegrityCounters {
        IntegrityCounters {
            quarantined: self.integ_quarantined.load(Ordering::Relaxed),
            rebuilt: self.integ_rebuilt.load(Ordering::Relaxed),
            degraded_scans: self.integ_degraded_scans.load(Ordering::Relaxed),
            scrubbed_pieces: self.integ_scrubbed_pieces.load(Ordering::Relaxed),
            scrub_faults: self.integ_scrub_faults.load(Ordering::Relaxed),
        }
    }

    /// Stores the recovery outcome of the engine's birth (called by
    /// `Database::recover` so operators can read *how* the engine came up
    /// — generations skipped, learned state dropped — from the metrics
    /// instead of having to thread the outcome through by hand).
    pub fn record_recovery(&self, outcome: crate::engine::persist::RecoveryOutcome) {
        *self.recovery.lock() = Some(outcome);
    }

    /// The recovery outcome of the engine's birth, if it was recovered.
    #[must_use]
    pub fn recovery(&self) -> Option<crate::engine::persist::RecoveryOutcome> {
        self.recovery.lock().clone()
    }

    /// Snapshot of the service-layer overload counters.
    #[must_use]
    pub fn service(&self) -> ServiceCounters {
        ServiceCounters {
            admitted: self.svc_admitted.load(Ordering::Relaxed),
            rejected_global: self.svc_rejected_global.load(Ordering::Relaxed),
            rejected_client: self.svc_rejected_client.load(Ordering::Relaxed),
            shed_deadline: self.svc_shed_deadline.load(Ordering::Relaxed),
            cancelled: self.svc_cancelled.load(Ordering::Relaxed),
            degraded_answers: self.svc_degraded_answers.load(Ordering::Relaxed),
            saturation_entries: self.svc_saturation_entries.load(Ordering::Relaxed),
            peak_queue_depth: self.svc_peak_queue_depth.load(Ordering::Relaxed),
        }
    }

    /// Clears all recorded metrics (e.g. between benchmark phases).
    pub fn reset(&self) {
        self.queries.lock().clear();
        *self.recovery.lock() = None;
        self.integ_quarantined.store(0, Ordering::Relaxed);
        self.integ_rebuilt.store(0, Ordering::Relaxed);
        self.integ_degraded_scans.store(0, Ordering::Relaxed);
        self.integ_scrubbed_pieces.store(0, Ordering::Relaxed);
        self.integ_scrub_faults.store(0, Ordering::Relaxed);
        self.tuning_nanos.store(0, Ordering::Relaxed);
        self.build_nanos.store(0, Ordering::Relaxed);
        self.auxiliary_actions.store(0, Ordering::Relaxed);
        self.dispatches_branchy.store(0, Ordering::Relaxed);
        self.dispatches_predicated.store(0, Ordering::Relaxed);
        self.batches.store(0, Ordering::Relaxed);
        self.batched_queries.store(0, Ordering::Relaxed);
        self.aggregate_hits.store(0, Ordering::Relaxed);
        self.aggregate_prefix.store(0, Ordering::Relaxed);
        self.aggregate_partials.store(0, Ordering::Relaxed);
        self.aggregate_misses.store(0, Ordering::Relaxed);
        self.aggregate_scanned_values.store(0, Ordering::Relaxed);
        self.svc_admitted.store(0, Ordering::Relaxed);
        self.svc_rejected_global.store(0, Ordering::Relaxed);
        self.svc_rejected_client.store(0, Ordering::Relaxed);
        self.svc_shed_deadline.store(0, Ordering::Relaxed);
        self.svc_cancelled.store(0, Ordering::Relaxed);
        self.svc_degraded_answers.store(0, Ordering::Relaxed);
        self.svc_saturation_entries.store(0, Ordering::Relaxed);
        self.svc_peak_queue_depth.store(0, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_storage::TableId;

    fn record(seq: u64, micros: u64, path: AccessPath) -> QueryRecord {
        QueryRecord {
            sequence: seq,
            column: ColumnId::new(TableId(0), 0),
            path,
            latency: Duration::from_micros(micros),
            result_count: 10,
        }
    }

    #[test]
    fn empty_metrics() {
        let m = EngineMetrics::new();
        assert_eq!(m.query_count(), 0);
        assert_eq!(m.total_query_time(), Duration::ZERO);
        assert!(m.cumulative_micros().is_empty());
        assert_eq!(m.path_breakdown(), (0, 0, 0));
    }

    #[test]
    fn cumulative_series_is_monotone_and_correct() {
        let m = EngineMetrics::new();
        m.record_query(record(0, 100, AccessPath::Scan));
        m.record_query(record(1, 50, AccessPath::Crack));
        m.record_query(record(2, 25, AccessPath::FullIndex));
        assert_eq!(m.cumulative_micros(), vec![100, 150, 175]);
        assert_eq!(m.total_query_time(), Duration::from_micros(175));
        assert_eq!(m.query_count(), 3);
        assert_eq!(m.path_breakdown(), (1, 1, 1));
    }

    #[test]
    fn tuning_and_build_time_accumulate() {
        let m = EngineMetrics::new();
        m.add_tuning_time(Duration::from_micros(30), 5);
        m.add_tuning_time(Duration::from_micros(20), 7);
        m.add_build_time(Duration::from_millis(2));
        assert_eq!(m.tuning_time(), Duration::from_micros(50));
        assert_eq!(m.auxiliary_actions(), 12);
        assert_eq!(m.build_time(), Duration::from_millis(2));
    }

    #[test]
    fn reset_clears_everything() {
        let m = EngineMetrics::new();
        m.record_query(record(0, 1, AccessPath::Scan));
        m.add_tuning_time(Duration::from_micros(5), 1);
        m.add_kernel_dispatches(KernelDispatches {
            branchy: 2,
            predicated: 3,
        });
        m.record_batch(8);
        m.record_aggregate_cache(AggregateCacheDelta {
            hits: 1,
            prefix: 1,
            partials: 2,
            misses: 3,
            scanned_values: 4,
        });
        m.reset();
        assert_eq!(m.query_count(), 0);
        assert_eq!(m.tuning_time(), Duration::ZERO);
        assert_eq!(m.auxiliary_actions(), 0);
        assert_eq!(m.kernel_dispatches(), KernelDispatches::default());
        assert_eq!(m.batches_executed(), 0);
        assert_eq!(m.batched_queries(), 0);
        assert_eq!(m.aggregate_cache(), AggregateCacheDelta::default());
    }

    #[test]
    fn aggregate_cache_counters_accumulate() {
        let m = EngineMetrics::new();
        assert_eq!(m.aggregate_cache(), AggregateCacheDelta::default());
        m.record_aggregate_cache(AggregateCacheDelta {
            hits: 2,
            prefix: 0,
            partials: 0,
            misses: 1,
            scanned_values: 100,
        });
        m.record_aggregate_cache(AggregateCacheDelta {
            hits: 3,
            prefix: 4,
            partials: 1,
            misses: 0,
            scanned_values: 0,
        });
        let total = m.aggregate_cache();
        assert_eq!(
            (
                total.hits,
                total.prefix,
                total.partials,
                total.misses,
                total.scanned_values
            ),
            (5, 4, 1, 1, 100)
        );
        assert_eq!(total.zero_read(), 9);
    }

    #[test]
    fn batch_counters_and_bulk_recording() {
        let m = EngineMetrics::new();
        m.record_queries(vec![
            record(0, 10, AccessPath::Crack),
            record(1, 20, AccessPath::Crack),
        ]);
        m.record_batch(2);
        m.record_batch(5);
        assert_eq!(m.query_count(), 2);
        assert_eq!(m.batches_executed(), 2);
        assert_eq!(m.batched_queries(), 7);
        assert_eq!(m.cumulative_micros(), vec![10, 30]);
    }

    #[test]
    fn kernel_dispatches_accumulate() {
        let m = EngineMetrics::new();
        m.add_kernel_dispatches(KernelDispatches {
            branchy: 1,
            predicated: 0,
        });
        m.add_kernel_dispatches(KernelDispatches {
            branchy: 0,
            predicated: 4,
        });
        let d = m.kernel_dispatches();
        assert_eq!((d.branchy, d.predicated), (1, 4));
        assert_eq!(d.total(), 5);
    }

    #[test]
    fn service_counters_accumulate_and_reset() {
        let m = EngineMetrics::new();
        m.service_admitted(3);
        m.service_rejected(2, true);
        m.service_rejected(1, false);
        m.service_shed_deadline(4);
        m.service_cancelled(1);
        m.service_degraded_answers(5);
        m.service_saturation_entered();
        m.service_queue_depth(9);
        m.service_queue_depth(4); // high-water mark keeps the max
        let s = m.service();
        assert_eq!(s.admitted, 3);
        assert_eq!(s.rejected_global, 2);
        assert_eq!(s.rejected_client, 1);
        assert_eq!(s.shed_deadline, 4);
        assert_eq!(s.cancelled, 1);
        assert_eq!(s.degraded_answers, 5);
        assert_eq!(s.saturation_entries, 1);
        assert_eq!(s.peak_queue_depth, 9);
        m.reset();
        assert_eq!(m.service(), ServiceCounters::default());
    }

    #[test]
    fn integrity_counters_accumulate_and_reset() {
        let m = EngineMetrics::new();
        assert_eq!(m.integrity(), IntegrityCounters::default());
        m.record_quarantine();
        m.record_rebuild();
        m.record_degraded_scan();
        m.record_degraded_scan();
        m.record_scrub(64, false);
        m.record_scrub(3, true);
        let i = m.integrity();
        assert_eq!(i.quarantined, 1);
        assert_eq!(i.rebuilt, 1);
        assert_eq!(i.degraded_scans, 2);
        assert_eq!(i.scrubbed_pieces, 67);
        assert_eq!(i.scrub_faults, 1);
        m.reset();
        assert_eq!(m.integrity(), IntegrityCounters::default());
        assert_eq!(m.recovery(), None);
    }

    #[test]
    fn concurrent_recording_loses_nothing() {
        let m = std::sync::Arc::new(EngineMetrics::new());
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let m = std::sync::Arc::clone(&m);
            handles.push(std::thread::spawn(move || {
                for i in 0..100 {
                    m.record_query(record(t * 100 + i, 1, AccessPath::Crack));
                    m.add_tuning_time(Duration::from_nanos(10), 1);
                }
            }));
        }
        for h in handles {
            h.join().expect("metrics writer panicked");
        }
        assert_eq!(m.query_count(), 400);
        assert_eq!(m.auxiliary_actions(), 400);
        assert_eq!(m.tuning_time(), Duration::from_nanos(4000));
    }
}
