//! The engine's typed error: every failure an engine operation can hit,
//! including persistence and recovery failures, as one enum.
//!
//! Before persistence existed the engine returned raw
//! [`StorageError`]s. Recovery adds failure modes the storage layer
//! cannot express — corrupt snapshots, injected crashes, validation
//! failures of recovered state — and the paranoia mode turns invariant
//! violations into errors instead of aborts, so the engine now wraps
//! everything in [`HolisticError`].

use holistic_persist::PersistError;
use holistic_storage::{ColumnId, StorageError};

/// Any error an engine operation can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum HolisticError {
    /// A storage-layer failure (unknown table/column, arity mismatch, …).
    Storage(StorageError),
    /// A full sorted index was expected on the column but is missing —
    /// e.g. it was dropped between the access-path decision and the probe,
    /// or a recovered snapshot no longer carries it.
    FullIndexMissing(ColumnId),
    /// A persistence I/O or format failure (snapshot/WAL read or write).
    Persist(String),
    /// The fault injector killed the process at this I/O operation. Kept
    /// distinct from [`HolisticError::Persist`] so the recovery harness can
    /// tell an injected crash from a real failure.
    Crashed {
        /// The I/O operation that was killed (`write`, `fsync`, `rename`).
        op: String,
        /// The global operation index the injector was armed at.
        index: u64,
    },
    /// A validation pass found an invariant violation (paranoia mode, or
    /// recovered state that fails [`CrackerColumn::validate`]).
    ///
    /// [`CrackerColumn::validate`]: holistic_cracking::CrackerColumn::validate
    Validation(String),
    /// Recovery could not reconstruct a usable database from the
    /// persistence directory (no valid snapshot and no WAL genesis).
    Recovery(String),
    /// A runtime integrity failure was contained: a kernel panic or a
    /// paranoia validation failure quarantined the column's learned
    /// state. The base data is untouched — queries keep getting correct
    /// answers via the scan path while the background tuner rebuilds the
    /// cracker — so this error reports containment, not data loss.
    Integrity {
        /// The column whose learned state was quarantined.
        column: ColumnId,
        /// What tripped the containment boundary (panic payload or
        /// validation message).
        reason: String,
    },
    /// The operation is not supported in the engine's current shape
    /// (e.g. single-value updates on a multi-column table).
    Unsupported(String),
    /// The service refused admission because a bounded queue was full.
    ///
    /// The string names the queue that rejected (`"global"`, or the
    /// client id for a per-client bound) so load generators can tell
    /// global saturation from a single noisy tenant.
    Overloaded(String),
    /// The query's deadline expired before results were produced: shed at
    /// admission or dispatch, never half-executed.
    DeadlineExceeded,
    /// The query was abandoned cooperatively (e.g. its client connection
    /// dropped while it was still queued).
    Cancelled,
}

impl std::fmt::Display for HolisticError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            HolisticError::Storage(e) => write!(f, "storage error: {e}"),
            HolisticError::FullIndexMissing(id) => {
                write!(f, "full index missing on column {id:?}")
            }
            HolisticError::Persist(msg) => write!(f, "persistence error: {msg}"),
            HolisticError::Crashed { op, index } => {
                write!(f, "injected crash at {op} (operation #{index})")
            }
            HolisticError::Validation(msg) => write!(f, "validation failure: {msg}"),
            HolisticError::Recovery(msg) => write!(f, "recovery failure: {msg}"),
            HolisticError::Integrity { column, reason } => {
                write!(
                    f,
                    "integrity failure on column {column:?} (quarantined): {reason}"
                )
            }
            HolisticError::Unsupported(msg) => write!(f, "unsupported operation: {msg}"),
            HolisticError::Overloaded(queue) => {
                write!(f, "overloaded: admission queue {queue:?} is full")
            }
            HolisticError::DeadlineExceeded => write!(f, "deadline exceeded: query shed"),
            HolisticError::Cancelled => write!(f, "cancelled: query abandoned by its client"),
        }
    }
}

impl std::error::Error for HolisticError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            HolisticError::Storage(e) => Some(e),
            _ => None,
        }
    }
}

impl From<StorageError> for HolisticError {
    fn from(e: StorageError) -> Self {
        HolisticError::Storage(e)
    }
}

impl From<PersistError> for HolisticError {
    fn from(e: PersistError) -> Self {
        match e {
            PersistError::Crashed { op, index } => HolisticError::Crashed {
                op: op.to_string(),
                index,
            },
            other => HolisticError::Persist(other.to_string()),
        }
    }
}

impl HolisticError {
    /// Whether this error is an injected crash (the fault injector fired).
    #[must_use]
    pub fn is_crash(&self) -> bool {
        matches!(self, HolisticError::Crashed { .. })
    }

    /// Whether this error is a typed load shed (`Overloaded`,
    /// `DeadlineExceeded`, or `Cancelled`): the query was never executed
    /// — not even partially — and is safe to retry.
    #[must_use]
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            HolisticError::Overloaded(_)
                | HolisticError::DeadlineExceeded
                | HolisticError::Cancelled
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_persist::IoOp;

    #[test]
    fn storage_errors_convert_and_expose_source() {
        let e: HolisticError = StorageError::ColumnNotFound("x".into()).into();
        assert!(matches!(e, HolisticError::Storage(_)));
        assert!(std::error::Error::source(&e).is_some());
    }

    #[test]
    fn injected_crashes_stay_distinguishable() {
        let crash: HolisticError = PersistError::Crashed {
            op: IoOp::Fsync,
            index: 7,
        }
        .into();
        assert!(crash.is_crash());
        let io: HolisticError = PersistError::Io("disk on fire".into()).into();
        assert!(!io.is_crash());
        assert!(matches!(io, HolisticError::Persist(_)));
    }
}
