//! The ranking model: which column deserves the next refinement action?
//!
//! The paper's cost model "continuously monitors several parameters and can
//! give us the answer to the question: if we detect a couple of idle
//! milliseconds, on which column should we apply a random crack action?"
//! The key observations encoded here:
//!
//! * the benefit of one more crack on a column is proportional to how much
//!   the expected piece length still exceeds the CPU-cache-sized target —
//!   once pieces fit in the cache, extra refinement does not pay off;
//! * columns that appear more often in the workload should be refined first
//!   (weighting by observed frequency), with catalog knowledge (column size)
//!   as the fallback when no workload knowledge exists yet.

use holistic_offline::CostModel;
use holistic_storage::ColumnId;

use crate::stats::KernelStatistics;

/// A scored tuning candidate.
#[derive(Debug, Clone, PartialEq)]
pub struct TuningCandidate {
    /// The column to refine.
    pub column: ColumnId,
    /// The expected benefit score (work units saved per future query,
    /// weighted by the column's observed frequency).
    pub score: f64,
    /// Current average piece length of the column's cracker index.
    pub avg_piece_len: f64,
}

/// The holistic ranking model.
#[derive(Debug, Clone)]
pub struct RankingModel {
    model: CostModel,
    /// Piece length (values) below which refinement is considered done.
    pub cache_piece_target: usize,
}

impl RankingModel {
    /// Creates a ranking model with the given cache-resident piece target.
    #[must_use]
    pub fn new(cache_piece_target: usize) -> Self {
        let mut model = CostModel::new();
        model.cache_piece_values = cache_piece_target.max(1);
        RankingModel {
            model,
            cache_piece_target: cache_piece_target.max(1),
        }
    }

    /// The benefit score of applying one more random crack to a column with
    /// the given statistics.
    ///
    /// A random crack halves the expected piece length, so the benefit is
    /// the refinement gain from `avg_piece_len` to `avg_piece_len / 2`,
    /// weighted by how often the column is queried. Columns that no query
    /// has touched yet still get a small score proportional to their size
    /// ("no knowledge" case: spread actions using catalog information only).
    #[must_use]
    pub fn score(&self, frequency: f64, avg_piece_len: f64, column_len: usize) -> f64 {
        let refinement = self
            .model
            .refinement_benefit(avg_piece_len, avg_piece_len / 2.0);
        if refinement <= 0.0 {
            return 0.0;
        }
        let weight = if frequency > 0.0 {
            frequency
        } else {
            // Catalog-only fallback: large, untouched columns get a small
            // positive weight so idle time is still spread over them.
            0.01 * (column_len.max(1) as f64).log2() / 64.0
        };
        refinement * weight
    }

    /// Ranks all known columns by descending benefit score, dropping columns
    /// whose score is zero (already refined past the cache target).
    ///
    /// Reads only the statistics' atomic counters
    /// ([`KernelStatistics::ranking_rows`]) — the idle loop calls this once
    /// per refinement action, so it must not clone histograms or contend
    /// with concurrent query recording.
    #[must_use]
    pub fn rank(&self, stats: &KernelStatistics) -> Vec<TuningCandidate> {
        let total_queries = stats.total_queries();
        let mut candidates: Vec<TuningCandidate> = stats
            .ranking_rows()
            .into_iter()
            .map(|(id, queries, avg_piece_len, column_len)| {
                let frequency = if total_queries == 0 {
                    0.0
                } else {
                    queries as f64 / total_queries as f64
                };
                TuningCandidate {
                    column: id,
                    score: self.score(frequency, avg_piece_len, column_len),
                    avg_piece_len,
                }
            })
            .filter(|c| c.score > 0.0)
            .collect();
        candidates.sort_by(|a, b| {
            b.score
                .partial_cmp(&a.score)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.column.cmp(&b.column))
        });
        candidates
    }

    /// The single best column to refine next, if any still benefits.
    #[must_use]
    pub fn choose_next(&self, stats: &KernelStatistics) -> Option<ColumnId> {
        self.rank(stats).first().map(|c| c.column)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_storage::TableId;

    fn col(i: u32) -> ColumnId {
        ColumnId::new(TableId(0), i)
    }

    #[test]
    fn refined_columns_score_zero() {
        let m = RankingModel::new(1024);
        assert_eq!(m.score(0.5, 512.0, 1_000_000), 0.0);
        assert!(m.score(0.5, 1_000_000.0, 1_000_000) > 0.0);
    }

    #[test]
    fn hotter_columns_score_higher() {
        let m = RankingModel::new(1024);
        let hot = m.score(0.8, 100_000.0, 1_000_000);
        let cold = m.score(0.1, 100_000.0, 1_000_000);
        assert!(hot > cold);
    }

    #[test]
    fn unqueried_columns_still_get_a_small_score() {
        let m = RankingModel::new(1024);
        let s = m.score(0.0, 1_000_000.0, 1_000_000);
        assert!(s > 0.0);
        assert!(s < m.score(0.5, 1_000_000.0, 1_000_000));
    }

    #[test]
    fn rank_orders_by_benefit_and_drops_finished_columns() {
        let m = RankingModel::new(256);
        let stats = KernelStatistics::new(8);
        stats.register_column(col(0), 100_000);
        stats.register_column(col(1), 100_000);
        stats.register_column(col(2), 100_000);
        // col 0: hot but already refined to tiny pieces.
        for _ in 0..10 {
            stats.record_query(col(0), 0, 100, 0.001);
        }
        stats.record_refinement(col(0), 1000, 100.0);
        // col 1: hot and coarse.
        for _ in 0..10 {
            stats.record_query(col(1), 0, 100, 0.001);
        }
        stats.record_refinement(col(1), 4, 25_000.0);
        // col 2: never queried, coarse.
        let ranked = m.rank(&stats);
        assert_eq!(ranked.len(), 2, "refined col 0 must be dropped: {ranked:?}");
        assert_eq!(ranked[0].column, col(1));
        assert_eq!(ranked[1].column, col(2));
        assert_eq!(m.choose_next(&stats), Some(col(1)));
    }

    #[test]
    fn choose_next_is_none_when_everything_is_refined() {
        let m = RankingModel::new(1 << 20);
        let stats = KernelStatistics::new(8);
        stats.register_column(col(0), 1000);
        stats.record_refinement(col(0), 100, 10.0);
        assert_eq!(m.choose_next(&stats), None);
        // Empty statistics: nothing to do either.
        assert_eq!(m.choose_next(&KernelStatistics::new(8)), None);
    }
}
