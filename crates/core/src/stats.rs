//! Continuous kernel statistics.
//!
//! Holistic indexing keeps its statistics *inside* the kernel and up to date
//! at all times: every select operator reports the column and value range it
//! touched, every refinement action reports the new piece counts. The
//! ranking model (see [`crate::ranking`]) reads these statistics to answer
//! the paper's key question: *"if we detect a couple of idle milliseconds,
//! on which column should we apply a random crack action?"* — and the
//! hot-range detector answers the companion question for the "No Time"
//! case: *which value ranges deserve extra refinement right now, during
//! query processing.*
//!
//! Because statistics are recorded on the hot query path, every recording
//! method takes `&self`: plain counters are atomics, and the per-column
//! predicate histogram sits behind its own small mutex, so queries on
//! different columns contend only on the short push into the shared
//! [`WorkloadSummary`] (a process-wide mutex held for a few field updates;
//! shard it per column if profiles ever show it hot). Readers receive
//! [`ColumnActivity`] snapshots.

use std::collections::BTreeMap;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use holistic_sync::{LockLevel, OrderedMutex, OrderedRwLock};

use holistic_offline::WorkloadSummary;
use holistic_storage::{ColumnId, Value};

/// Snapshot of one column's activity statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnActivity {
    /// Queries that touched this column.
    pub queries: u64,
    /// Auxiliary (idle-time or boost) refinement actions applied.
    pub auxiliary_actions: u64,
    /// Number of pieces the column's cracker index currently has
    /// (1 means "completely unindexed or fully sorted single piece").
    pub piece_count: usize,
    /// Average piece length of the cracker column.
    pub avg_piece_len: f64,
    /// Number of values in the column.
    pub column_len: usize,
    /// Domain seen in predicates: smallest lower bound.
    pub predicate_min: Option<Value>,
    /// Domain seen in predicates: largest upper bound.
    pub predicate_max: Option<Value>,
    /// Histogram of predicate hits over the predicate domain, used to find
    /// hot ranges. Bucket `i` counts queries whose range overlapped bucket
    /// `i` of `[predicate_min, predicate_max)`.
    hot_buckets: Vec<u64>,
}

impl ColumnActivity {
    /// Number of queries whose predicate overlapped the bucket containing
    /// the value range `[lo, hi)` (maximum over the overlapped buckets).
    /// Ranges disjoint from the observed predicate domain return 0.
    #[must_use]
    pub fn hot_hits(&self, lo: Value, hi: Value) -> u64 {
        hot_hits_in(
            self.predicate_min,
            self.predicate_max,
            &self.hot_buckets,
            lo,
            hi,
        )
    }
}

/// Shared hot-hits computation over a predicate histogram.
///
/// A range entirely outside the observed predicate domain (`lo >= pmax` or
/// `hi <= pmin`) has never been queried and returns 0 — clamping it into an
/// edge bucket would let brand-new cold ranges inherit the edge bucket's hit
/// count and be misclassified as hot.
fn hot_hits_in(
    pmin: Option<Value>,
    pmax: Option<Value>,
    buckets: &[u64],
    lo: Value,
    hi: Value,
) -> u64 {
    let (Some(pmin), Some(pmax)) = (pmin, pmax) else {
        return 0;
    };
    if pmax <= pmin || hi <= lo {
        return 0;
    }
    if lo >= pmax || hi <= pmin {
        return 0;
    }
    let span = (pmax - pmin) as f64;
    let n = buckets.len();
    let to_bucket = |v: Value| -> usize {
        let rel = ((v - pmin) as f64 / span * n as f64).floor() as isize;
        rel.clamp(0, n as isize - 1) as usize
    };
    let b_lo = to_bucket(lo.max(pmin));
    let b_hi = to_bucket((hi - 1).min(pmax));
    buckets[b_lo..=b_hi].iter().copied().max().unwrap_or(0)
}

/// The predicate-domain histogram of one column (mutex-protected part).
#[derive(Debug, Clone)]
struct PredicateHistogram {
    predicate_min: Option<Value>,
    predicate_max: Option<Value>,
    hot_buckets: Vec<u64>,
}

impl PredicateHistogram {
    fn new(buckets: usize) -> Self {
        PredicateHistogram {
            predicate_min: None,
            predicate_max: None,
            hot_buckets: vec![0; buckets.max(1)],
        }
    }

    fn record_predicate(&mut self, lo: Value, hi: Value) {
        // Grow the tracked predicate domain first, then bump the buckets the
        // range overlaps. Growing the domain does not rescale old buckets —
        // hot-range detection only needs to be approximately right and the
        // domain stabilizes after the first handful of queries.
        self.predicate_min = Some(self.predicate_min.map_or(lo, |m| m.min(lo)));
        self.predicate_max = Some(self.predicate_max.map_or(hi, |m| m.max(hi)));
        let (Some(pmin), Some(pmax)) = (self.predicate_min, self.predicate_max) else {
            // Unreachable (both were just set), but a histogram hiccup must
            // never abort query execution — skip the bucket update instead.
            return;
        };
        if pmax <= pmin || hi <= lo {
            return;
        }
        let span = (pmax - pmin) as f64;
        let n = self.hot_buckets.len();
        let to_bucket = |v: Value| -> usize {
            let rel = ((v - pmin) as f64 / span * n as f64).floor() as isize;
            rel.clamp(0, n as isize - 1) as usize
        };
        let b_lo = to_bucket(lo);
        let b_hi = to_bucket(hi - 1);
        for b in &mut self.hot_buckets[b_lo..=b_hi] {
            *b += 1;
        }
    }
}

/// One column's live statistics: atomic counters plus the histogram mutex.
#[derive(Debug)]
struct ColumnStats {
    queries: AtomicU64,
    auxiliary_actions: AtomicU64,
    piece_count: AtomicUsize,
    /// `f64` bits of the average piece length.
    avg_piece_len: AtomicU64,
    column_len: AtomicUsize,
    predicate: OrderedMutex<PredicateHistogram>,
}

impl ColumnStats {
    fn new(buckets: usize) -> Self {
        ColumnStats {
            queries: AtomicU64::new(0),
            auxiliary_actions: AtomicU64::new(0),
            piece_count: AtomicUsize::new(1),
            avg_piece_len: AtomicU64::new(0.0_f64.to_bits()),
            column_len: AtomicUsize::new(0),
            predicate: OrderedMutex::new(
                LockLevel::Histogram,
                "ColumnStats::predicate",
                PredicateHistogram::new(buckets),
            ),
        }
    }

    fn snapshot(&self) -> ColumnActivity {
        let predicate = self.predicate.lock().clone();
        ColumnActivity {
            queries: self.queries.load(Ordering::Relaxed),
            auxiliary_actions: self.auxiliary_actions.load(Ordering::Relaxed),
            piece_count: self.piece_count.load(Ordering::Relaxed),
            avg_piece_len: f64::from_bits(self.avg_piece_len.load(Ordering::Relaxed)),
            column_len: self.column_len.load(Ordering::Relaxed),
            predicate_min: predicate.predicate_min,
            predicate_max: predicate.predicate_max,
            hot_buckets: predicate.hot_buckets,
        }
    }
}

/// The kernel-wide statistics store.
///
/// All recording methods take `&self`; the store is safe to share across
/// query threads and the background tuner.
#[derive(Debug)]
pub struct KernelStatistics {
    columns: OrderedRwLock<BTreeMap<ColumnId, Arc<ColumnStats>>>,
    summary: OrderedMutex<WorkloadSummary>,
    total_queries: AtomicU64,
    hot_range_buckets: usize,
}

impl KernelStatistics {
    /// Creates an empty statistics store with the given number of hot-range
    /// buckets per column.
    #[must_use]
    pub fn new(hot_range_buckets: usize) -> Self {
        KernelStatistics {
            columns: OrderedRwLock::new(
                LockLevel::StatsMap,
                "KernelStatistics::columns",
                BTreeMap::new(),
            ),
            summary: OrderedMutex::new(
                LockLevel::Summary,
                "KernelStatistics::summary",
                WorkloadSummary::new(),
            ),
            total_queries: AtomicU64::new(0),
            hot_range_buckets: hot_range_buckets.max(1),
        }
    }

    /// The [`ColumnStats`] entry for `id`, created on first use.
    fn entry(&self, id: ColumnId) -> Arc<ColumnStats> {
        if let Some(stats) = self.columns.read().get(&id) {
            return Arc::clone(stats);
        }
        let mut map = self.columns.write();
        Arc::clone(
            map.entry(id)
                .or_insert_with(|| Arc::new(ColumnStats::new(self.hot_range_buckets))),
        )
    }

    /// Registers a column with its size (idempotent; updates the size).
    pub fn register_column(&self, id: ColumnId, len: usize) {
        let entry = self.entry(id);
        entry.column_len.store(len, Ordering::Relaxed);
        let current = f64::from_bits(entry.avg_piece_len.load(Ordering::Relaxed));
        if current == 0.0 {
            entry
                .avg_piece_len
                .store((len as f64).to_bits(), Ordering::Relaxed);
        }
    }

    /// Forgets a column entirely (dropped table): the ranking model stops
    /// considering it immediately and its queries leave both the workload
    /// summary and the kernel-wide query total, so the advisor never sees
    /// ghost columns and the remaining columns' frequencies stay exact.
    pub fn deregister_column(&self, id: ColumnId) -> bool {
        let removed = self.columns.write().remove(&id);
        self.summary.lock().remove_column(id);
        match removed {
            Some(stats) => {
                let ghost_queries = stats.queries.load(Ordering::Relaxed);
                let _ =
                    self.total_queries
                        .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |t| {
                            Some(t.saturating_sub(ghost_queries))
                        });
                true
            }
            None => false,
        }
    }

    /// Records an executed query and its selectivity.
    pub fn record_query(&self, id: ColumnId, lo: Value, hi: Value, selectivity: f64) {
        let entry = self.entry(id);
        entry.queries.fetch_add(1, Ordering::Relaxed);
        entry.predicate.lock().record_predicate(lo, hi);
        self.summary.lock().record_query(id, selectivity, lo, hi);
        self.total_queries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a whole batch of executed queries on one column: the bulk
    /// counterpart of [`KernelStatistics::record_query`]. One entry lookup,
    /// one histogram-lock and one summary-lock acquisition cover the entire
    /// batch, so a batched executor does not pay the per-query lock traffic
    /// `n` separate calls would.
    ///
    /// `predicates` holds one `(lo, hi, selectivity)` triple per query.
    pub fn record_queries(&self, id: ColumnId, predicates: &[(Value, Value, f64)]) {
        if predicates.is_empty() {
            return;
        }
        let entry = self.entry(id);
        entry
            .queries
            .fetch_add(predicates.len() as u64, Ordering::Relaxed);
        {
            let mut histogram = entry.predicate.lock();
            for &(lo, hi, _) in predicates {
                histogram.record_predicate(lo, hi);
            }
        }
        {
            let mut summary = self.summary.lock();
            for &(lo, hi, selectivity) in predicates {
                summary.record_query(id, selectivity, lo, hi);
            }
        }
        self.total_queries
            .fetch_add(predicates.len() as u64, Ordering::Relaxed);
    }

    /// Records the effect of refinement on a column (new piece statistics).
    pub fn record_refinement(&self, id: ColumnId, piece_count: usize, avg_piece_len: f64) {
        let entry = self.entry(id);
        entry.piece_count.store(piece_count, Ordering::Relaxed);
        entry
            .avg_piece_len
            .store(avg_piece_len.to_bits(), Ordering::Relaxed);
    }

    /// Records auxiliary refinement actions applied to a column.
    pub fn record_auxiliary_actions(&self, id: ColumnId, actions: u64) {
        self.entry(id)
            .auxiliary_actions
            .fetch_add(actions, Ordering::Relaxed);
    }

    /// Activity snapshot for a column, if it has been seen.
    #[must_use]
    pub fn column(&self, id: ColumnId) -> Option<ColumnActivity> {
        self.columns.read().get(&id).map(|s| s.snapshot())
    }

    /// Snapshots of all known columns with their activity.
    #[must_use]
    pub fn columns(&self) -> Vec<(ColumnId, ColumnActivity)> {
        self.columns
            .read()
            .iter()
            .map(|(id, s)| (*id, s.snapshot()))
            .collect()
    }

    /// The per-column inputs of the ranking model, read from the atomic
    /// counters only: `(column, queries, avg_piece_len, column_len)`.
    /// Unlike [`KernelStatistics::columns`] this takes no per-column
    /// predicate locks and clones no histograms, so the idle loop can call
    /// it once per refinement action without contending with queries.
    #[must_use]
    pub fn ranking_rows(&self) -> Vec<(ColumnId, u64, f64, usize)> {
        self.columns
            .read()
            .iter()
            .map(|(id, s)| {
                (
                    *id,
                    s.queries.load(Ordering::Relaxed),
                    f64::from_bits(s.avg_piece_len.load(Ordering::Relaxed)),
                    s.column_len.load(Ordering::Relaxed),
                )
            })
            .collect()
    }

    /// Total number of recorded queries.
    #[must_use]
    pub fn total_queries(&self) -> u64 {
        self.total_queries.load(Ordering::Relaxed)
    }

    /// Fraction of recorded queries touching `id`.
    #[must_use]
    pub fn frequency(&self, id: ColumnId) -> f64 {
        let total = self.total_queries();
        if total == 0 {
            return 0.0;
        }
        self.columns.read().get(&id).map_or(0.0, |s| {
            s.queries.load(Ordering::Relaxed) as f64 / total as f64
        })
    }

    /// A copy of the accumulated workload summary (feedable to the offline
    /// advisor).
    #[must_use]
    pub fn summary(&self) -> WorkloadSummary {
        self.summary.lock().clone()
    }

    /// Whether the value range `[lo, hi)` of column `id` is hot: at least
    /// `threshold` queries have already cracked this region.
    #[must_use]
    pub fn is_hot_range(&self, id: ColumnId, lo: Value, hi: Value, threshold: u64) -> bool {
        let Some(entry) = self.columns.read().get(&id).map(Arc::clone) else {
            return false;
        };
        let predicate = entry.predicate.lock();
        hot_hits_in(
            predicate.predicate_min,
            predicate.predicate_max,
            &predicate.hot_buckets,
            lo,
            hi,
        ) >= threshold
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_storage::TableId;

    fn col(i: u32) -> ColumnId {
        ColumnId::new(TableId(0), i)
    }

    #[test]
    fn register_and_record_queries() {
        let s = KernelStatistics::new(16);
        s.register_column(col(0), 1000);
        assert_eq!(s.column(col(0)).unwrap().column_len, 1000);
        assert_eq!(s.column(col(0)).unwrap().avg_piece_len, 1000.0);
        s.record_query(col(0), 10, 20, 0.01);
        s.record_query(col(1), 0, 5, 0.005);
        assert_eq!(s.total_queries(), 2);
        assert_eq!(s.column(col(0)).unwrap().queries, 1);
        assert!((s.frequency(col(0)) - 0.5).abs() < 1e-9);
        assert_eq!(s.summary().total_queries(), 2);
        assert_eq!(s.columns().len(), 2);
    }

    #[test]
    fn bulk_recording_matches_per_query_recording() {
        let bulk = KernelStatistics::new(16);
        let single = KernelStatistics::new(16);
        bulk.register_column(col(0), 1000);
        single.register_column(col(0), 1000);
        let preds = [(10i64, 20i64, 0.01), (15, 25, 0.01), (500, 600, 0.1)];
        bulk.record_queries(col(0), &preds);
        for &(lo, hi, sel) in &preds {
            single.record_query(col(0), lo, hi, sel);
        }
        assert_eq!(bulk.total_queries(), single.total_queries());
        assert_eq!(bulk.column(col(0)), single.column(col(0)));
        assert_eq!(
            bulk.summary().column(col(0)).map(|c| c.queries),
            single.summary().column(col(0)).map(|c| c.queries)
        );
        // Empty batches are free.
        bulk.record_queries(col(0), &[]);
        assert_eq!(bulk.total_queries(), 3);
    }

    #[test]
    fn refinement_updates_piece_statistics() {
        let s = KernelStatistics::new(16);
        s.register_column(col(0), 1000);
        s.record_refinement(col(0), 8, 125.0);
        s.record_auxiliary_actions(col(0), 5);
        let a = s.column(col(0)).unwrap();
        assert_eq!(a.piece_count, 8);
        assert_eq!(a.avg_piece_len, 125.0);
        assert_eq!(a.auxiliary_actions, 5);
    }

    #[test]
    fn hot_range_detection_requires_repeated_hits() {
        let s = KernelStatistics::new(32);
        s.register_column(col(0), 100_000);
        // Establish the predicate domain with two far-apart queries.
        s.record_query(col(0), 0, 100, 0.001);
        s.record_query(col(0), 99_000, 100_000, 0.001);
        assert!(!s.is_hot_range(col(0), 50_000, 50_100, 3));
        // Hammer one region.
        for _ in 0..5 {
            s.record_query(col(0), 50_000, 50_100, 0.001);
        }
        assert!(s.is_hot_range(col(0), 50_000, 50_100, 3));
        assert!(s.is_hot_range(col(0), 50_010, 50_050, 3));
        // A region nobody queries stays cold.
        assert!(!s.is_hot_range(col(0), 10_000, 10_100, 3));
        // Unknown columns are never hot.
        assert!(!s.is_hot_range(col(9), 0, 10, 1));
    }

    #[test]
    fn ranges_outside_the_predicate_domain_are_never_hot() {
        // Regression: ranges disjoint from [predicate_min, predicate_max)
        // used to clamp into the edge bucket and inherit its hit count, so
        // brand-new cold ranges were misclassified as hot.
        let s = KernelStatistics::new(32);
        s.register_column(col(0), 100_000);
        for _ in 0..10 {
            s.record_query(col(0), 0, 1000, 0.01);
        }
        let a = s.column(col(0)).unwrap();
        // Inside the domain: hot.
        assert!(a.hot_hits(0, 1000) >= 10);
        // Entirely above the domain (lo >= pmax): cold, even right at the
        // boundary and far away.
        assert_eq!(a.hot_hits(1000, 2000), 0);
        assert_eq!(a.hot_hits(90_000, 90_100), 0);
        assert!(!s.is_hot_range(col(0), 90_000, 90_100, 1));
        // Entirely below the domain (hi <= pmin): cold.
        assert_eq!(a.hot_hits(-500, 0), 0);
        assert!(!s.is_hot_range(col(0), -500, 0, 1));
        // Overlapping the domain edge still counts.
        assert!(a.hot_hits(900, 1100) >= 10);
    }

    #[test]
    fn deregister_column_forgets_everything() {
        let s = KernelStatistics::new(8);
        s.register_column(col(0), 500);
        s.record_query(col(0), 0, 10, 0.01);
        s.record_query(col(1), 0, 10, 0.01);
        assert!(s.column(col(0)).is_some());
        assert!(s.deregister_column(col(0)));
        assert!(s.column(col(0)).is_none());
        assert_eq!(s.frequency(col(0)), 0.0);
        assert!(!s.is_hot_range(col(0), 0, 10, 1));
        // The workload summary forgets the ghost column too, so the
        // advisor and the remaining columns' frequencies stay consistent.
        let summary = s.summary();
        assert!(summary.column(col(0)).is_none());
        assert_eq!(summary.total_queries(), 1);
        // The kernel-wide total drops the ghost queries as well, so the
        // surviving column's frequency is exact, not diluted.
        assert_eq!(s.total_queries(), 1);
        assert!((s.frequency(col(1)) - 1.0).abs() < 1e-9);
        // Second deregistration is a no-op.
        assert!(!s.deregister_column(col(0)));
    }

    #[test]
    fn degenerate_predicates_do_not_poison_statistics() {
        let s = KernelStatistics::new(8);
        s.record_query(col(0), 10, 10, 0.0);
        s.record_query(col(0), 20, 5, 0.0);
        assert_eq!(s.column(col(0)).unwrap().queries, 2);
        assert!(!s.is_hot_range(col(0), 0, 100, 1));
    }

    #[test]
    fn frequency_of_unknown_column_is_zero() {
        let s = KernelStatistics::new(8);
        assert_eq!(s.frequency(col(3)), 0.0);
        assert_eq!(s.total_queries(), 0);
    }

    #[test]
    fn recording_is_shared_reference_safe() {
        let s = std::sync::Arc::new(KernelStatistics::new(16));
        let mut handles = Vec::new();
        for t in 0..4u32 {
            let s = std::sync::Arc::clone(&s);
            handles.push(std::thread::spawn(move || {
                for i in 0..250 {
                    s.record_query(col(t % 2), i, i + 10, 0.01);
                    s.record_auxiliary_actions(col(t % 2), 1);
                }
            }));
        }
        for h in handles {
            h.join().expect("stats writer panicked");
        }
        assert_eq!(s.total_queries(), 1000);
        let a = s.column(col(0)).unwrap();
        let b = s.column(col(1)).unwrap();
        assert_eq!(a.queries + b.queries, 1000);
        assert_eq!(a.auxiliary_actions + b.auxiliary_actions, 1000);
    }
}
