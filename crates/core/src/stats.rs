//! Continuous kernel statistics.
//!
//! Holistic indexing keeps its statistics *inside* the kernel and up to date
//! at all times: every select operator reports the column and value range it
//! touched, every refinement action reports the new piece counts. The
//! ranking model (see [`crate::ranking`]) reads these statistics to answer
//! the paper's key question: *"if we detect a couple of idle milliseconds,
//! on which column should we apply a random crack action?"* — and the
//! hot-range detector answers the companion question for the "No Time"
//! case: *which value ranges deserve extra refinement right now, during
//! query processing.*

use std::collections::BTreeMap;

use holistic_offline::WorkloadSummary;
use holistic_storage::{ColumnId, Value};

/// Per-column activity statistics.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnActivity {
    /// Queries that touched this column.
    pub queries: u64,
    /// Auxiliary (idle-time or boost) refinement actions applied.
    pub auxiliary_actions: u64,
    /// Number of pieces the column's cracker index currently has
    /// (1 means "completely unindexed or fully sorted single piece").
    pub piece_count: usize,
    /// Average piece length of the cracker column.
    pub avg_piece_len: f64,
    /// Number of values in the column.
    pub column_len: usize,
    /// Domain seen in predicates: smallest lower bound.
    pub predicate_min: Option<Value>,
    /// Domain seen in predicates: largest upper bound.
    pub predicate_max: Option<Value>,
    /// Histogram of predicate hits over the predicate domain, used to find
    /// hot ranges. Bucket `i` counts queries whose range overlapped bucket
    /// `i` of `[predicate_min, predicate_max)`.
    hot_buckets: Vec<u64>,
}

impl ColumnActivity {
    fn new(buckets: usize) -> Self {
        ColumnActivity {
            queries: 0,
            auxiliary_actions: 0,
            piece_count: 1,
            avg_piece_len: 0.0,
            column_len: 0,
            predicate_min: None,
            predicate_max: None,
            hot_buckets: vec![0; buckets.max(1)],
        }
    }

    /// Number of queries whose predicate overlapped the bucket containing
    /// the value range `[lo, hi)` (maximum over the overlapped buckets).
    #[must_use]
    pub fn hot_hits(&self, lo: Value, hi: Value) -> u64 {
        let (Some(pmin), Some(pmax)) = (self.predicate_min, self.predicate_max) else {
            return 0;
        };
        if pmax <= pmin || hi <= lo {
            return 0;
        }
        let span = (pmax - pmin) as f64;
        let n = self.hot_buckets.len();
        let to_bucket = |v: Value| -> usize {
            let rel = ((v - pmin) as f64 / span * n as f64).floor() as isize;
            rel.clamp(0, n as isize - 1) as usize
        };
        let b_lo = to_bucket(lo.max(pmin));
        let b_hi = to_bucket((hi - 1).min(pmax));
        self.hot_buckets[b_lo..=b_hi]
            .iter()
            .copied()
            .max()
            .unwrap_or(0)
    }

    fn record_predicate(&mut self, lo: Value, hi: Value) {
        // Grow the tracked predicate domain first, then bump the buckets the
        // range overlaps. Growing the domain does not rescale old buckets —
        // hot-range detection only needs to be approximately right and the
        // domain stabilizes after the first handful of queries.
        self.predicate_min = Some(self.predicate_min.map_or(lo, |m| m.min(lo)));
        self.predicate_max = Some(self.predicate_max.map_or(hi, |m| m.max(hi)));
        let (pmin, pmax) = (
            self.predicate_min.expect("set above"),
            self.predicate_max.expect("set above"),
        );
        if pmax <= pmin || hi <= lo {
            return;
        }
        let span = (pmax - pmin) as f64;
        let n = self.hot_buckets.len();
        let to_bucket = |v: Value| -> usize {
            let rel = ((v - pmin) as f64 / span * n as f64).floor() as isize;
            rel.clamp(0, n as isize - 1) as usize
        };
        let b_lo = to_bucket(lo);
        let b_hi = to_bucket(hi - 1);
        for b in &mut self.hot_buckets[b_lo..=b_hi] {
            *b += 1;
        }
    }
}

/// The kernel-wide statistics store.
#[derive(Debug, Clone)]
pub struct KernelStatistics {
    columns: BTreeMap<ColumnId, ColumnActivity>,
    summary: WorkloadSummary,
    total_queries: u64,
    hot_range_buckets: usize,
}

impl KernelStatistics {
    /// Creates an empty statistics store with the given number of hot-range
    /// buckets per column.
    #[must_use]
    pub fn new(hot_range_buckets: usize) -> Self {
        KernelStatistics {
            columns: BTreeMap::new(),
            summary: WorkloadSummary::new(),
            total_queries: 0,
            hot_range_buckets: hot_range_buckets.max(1),
        }
    }

    /// Registers a column with its size (idempotent; updates the size).
    pub fn register_column(&mut self, id: ColumnId, len: usize) {
        let buckets = self.hot_range_buckets;
        let entry = self
            .columns
            .entry(id)
            .or_insert_with(|| ColumnActivity::new(buckets));
        entry.column_len = len;
        if entry.avg_piece_len == 0.0 {
            entry.avg_piece_len = len as f64;
        }
    }

    /// Records an executed query and its selectivity.
    pub fn record_query(&mut self, id: ColumnId, lo: Value, hi: Value, selectivity: f64) {
        let buckets = self.hot_range_buckets;
        let entry = self
            .columns
            .entry(id)
            .or_insert_with(|| ColumnActivity::new(buckets));
        entry.queries += 1;
        entry.record_predicate(lo, hi);
        self.summary.record_query(id, selectivity, lo, hi);
        self.total_queries += 1;
    }

    /// Records the effect of refinement on a column (new piece statistics).
    pub fn record_refinement(&mut self, id: ColumnId, piece_count: usize, avg_piece_len: f64) {
        let buckets = self.hot_range_buckets;
        let entry = self
            .columns
            .entry(id)
            .or_insert_with(|| ColumnActivity::new(buckets));
        entry.piece_count = piece_count;
        entry.avg_piece_len = avg_piece_len;
    }

    /// Records auxiliary refinement actions applied to a column.
    pub fn record_auxiliary_actions(&mut self, id: ColumnId, actions: u64) {
        let buckets = self.hot_range_buckets;
        let entry = self
            .columns
            .entry(id)
            .or_insert_with(|| ColumnActivity::new(buckets));
        entry.auxiliary_actions += actions;
    }

    /// Activity for a column, if it has been seen.
    #[must_use]
    pub fn column(&self, id: ColumnId) -> Option<&ColumnActivity> {
        self.columns.get(&id)
    }

    /// All known columns with their activity.
    pub fn columns(&self) -> impl Iterator<Item = (ColumnId, &ColumnActivity)> {
        self.columns.iter().map(|(id, a)| (*id, a))
    }

    /// Total number of recorded queries.
    #[must_use]
    pub fn total_queries(&self) -> u64 {
        self.total_queries
    }

    /// Fraction of recorded queries touching `id`.
    #[must_use]
    pub fn frequency(&self, id: ColumnId) -> f64 {
        if self.total_queries == 0 {
            return 0.0;
        }
        self.columns
            .get(&id)
            .map_or(0.0, |a| a.queries as f64 / self.total_queries as f64)
    }

    /// The accumulated workload summary (feedable to the offline advisor).
    #[must_use]
    pub fn summary(&self) -> &WorkloadSummary {
        &self.summary
    }

    /// Whether the value range `[lo, hi)` of column `id` is hot: at least
    /// `threshold` queries have already cracked this region.
    #[must_use]
    pub fn is_hot_range(&self, id: ColumnId, lo: Value, hi: Value, threshold: u64) -> bool {
        self.columns
            .get(&id)
            .is_some_and(|a| a.hot_hits(lo, hi) >= threshold)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_storage::TableId;

    fn col(i: u32) -> ColumnId {
        ColumnId::new(TableId(0), i)
    }

    #[test]
    fn register_and_record_queries() {
        let mut s = KernelStatistics::new(16);
        s.register_column(col(0), 1000);
        assert_eq!(s.column(col(0)).unwrap().column_len, 1000);
        assert_eq!(s.column(col(0)).unwrap().avg_piece_len, 1000.0);
        s.record_query(col(0), 10, 20, 0.01);
        s.record_query(col(1), 0, 5, 0.005);
        assert_eq!(s.total_queries(), 2);
        assert_eq!(s.column(col(0)).unwrap().queries, 1);
        assert!((s.frequency(col(0)) - 0.5).abs() < 1e-9);
        assert_eq!(s.summary().total_queries(), 2);
        assert_eq!(s.columns().count(), 2);
    }

    #[test]
    fn refinement_updates_piece_statistics() {
        let mut s = KernelStatistics::new(16);
        s.register_column(col(0), 1000);
        s.record_refinement(col(0), 8, 125.0);
        s.record_auxiliary_actions(col(0), 5);
        let a = s.column(col(0)).unwrap();
        assert_eq!(a.piece_count, 8);
        assert_eq!(a.avg_piece_len, 125.0);
        assert_eq!(a.auxiliary_actions, 5);
    }

    #[test]
    fn hot_range_detection_requires_repeated_hits() {
        let mut s = KernelStatistics::new(32);
        s.register_column(col(0), 100_000);
        // Establish the predicate domain with two far-apart queries.
        s.record_query(col(0), 0, 100, 0.001);
        s.record_query(col(0), 99_000, 100_000, 0.001);
        assert!(!s.is_hot_range(col(0), 50_000, 50_100, 3));
        // Hammer one region.
        for _ in 0..5 {
            s.record_query(col(0), 50_000, 50_100, 0.001);
        }
        assert!(s.is_hot_range(col(0), 50_000, 50_100, 3));
        assert!(s.is_hot_range(col(0), 50_010, 50_050, 3));
        // A region nobody queries stays cold.
        assert!(!s.is_hot_range(col(0), 10_000, 10_100, 3));
        // Unknown columns are never hot.
        assert!(!s.is_hot_range(col(9), 0, 10, 1));
    }

    #[test]
    fn degenerate_predicates_do_not_poison_statistics() {
        let mut s = KernelStatistics::new(8);
        s.record_query(col(0), 10, 10, 0.0);
        s.record_query(col(0), 20, 5, 0.0);
        assert_eq!(s.column(col(0)).unwrap().queries, 2);
        assert!(!s.is_hot_range(col(0), 0, 100, 1));
    }

    #[test]
    fn frequency_of_unknown_column_is_zero() {
        let s = KernelStatistics::new(8);
        assert_eq!(s.frequency(col(3)), 0.0);
        assert_eq!(s.total_queries(), 0);
    }
}
