//! Indexing strategies and their qualitative features (the paper's Table 1).

use std::fmt;

/// The indexing strategy a [`crate::Database`] uses for its select operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IndexingStrategy {
    /// No indexing at all: every select is a full scan.
    ScanOnly,
    /// Offline indexing: full indexes built a priori from workload
    /// knowledge (possibly limited by the available a-priori idle time);
    /// queries use them when present and scan otherwise.
    Offline,
    /// Online indexing: continuous monitoring, epoch-based re-evaluation,
    /// full indexes built/dropped while the workload runs.
    Online,
    /// Adaptive indexing: database cracking triggered only by queries.
    Adaptive,
    /// Holistic indexing: cracking during queries *plus* statistics-driven
    /// refinement during idle time and hot-range boosting.
    Holistic,
}

impl IndexingStrategy {
    /// All strategies, in the order the paper lists them.
    #[must_use]
    pub fn all() -> [IndexingStrategy; 5] {
        [
            IndexingStrategy::ScanOnly,
            IndexingStrategy::Offline,
            IndexingStrategy::Online,
            IndexingStrategy::Adaptive,
            IndexingStrategy::Holistic,
        ]
    }

    /// Short stable name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            IndexingStrategy::ScanOnly => "scan",
            IndexingStrategy::Offline => "offline",
            IndexingStrategy::Online => "online",
            IndexingStrategy::Adaptive => "adaptive",
            IndexingStrategy::Holistic => "holistic",
        }
    }

    /// The qualitative feature matrix row for this strategy (Table 1 of the
    /// paper). `ScanOnly` has no row in the paper; it reports all-false.
    #[must_use]
    pub fn features(&self) -> StrategyFeatures {
        match self {
            IndexingStrategy::ScanOnly => StrategyFeatures {
                statistical_analysis_a_priori: false,
                exploits_idle_time_a_priori: false,
                exploits_idle_time_during_workload: false,
                incremental_indexing: false,
                workload: WorkloadKind::Static,
            },
            IndexingStrategy::Offline => StrategyFeatures {
                statistical_analysis_a_priori: true,
                exploits_idle_time_a_priori: true,
                exploits_idle_time_during_workload: false,
                incremental_indexing: false,
                workload: WorkloadKind::Static,
            },
            IndexingStrategy::Online => StrategyFeatures {
                statistical_analysis_a_priori: true,
                exploits_idle_time_a_priori: false,
                exploits_idle_time_during_workload: true,
                incremental_indexing: false,
                workload: WorkloadKind::Dynamic,
            },
            IndexingStrategy::Adaptive => StrategyFeatures {
                statistical_analysis_a_priori: false,
                exploits_idle_time_a_priori: false,
                exploits_idle_time_during_workload: false,
                incremental_indexing: true,
                workload: WorkloadKind::Dynamic,
            },
            IndexingStrategy::Holistic => StrategyFeatures {
                statistical_analysis_a_priori: true,
                exploits_idle_time_a_priori: true,
                exploits_idle_time_during_workload: true,
                incremental_indexing: true,
                workload: WorkloadKind::Dynamic,
            },
        }
    }
}

impl fmt::Display for IndexingStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// The workload environment a strategy targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WorkloadKind {
    /// Stable, known-ahead-of-time workloads.
    Static,
    /// Changing, unpredictable workloads.
    Dynamic,
}

impl fmt::Display for WorkloadKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WorkloadKind::Static => f.write_str("static"),
            WorkloadKind::Dynamic => f.write_str("dynamic"),
        }
    }
}

/// One row of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct StrategyFeatures {
    /// Statistical analysis of the workload before execution.
    pub statistical_analysis_a_priori: bool,
    /// Exploitation of idle time before the workload starts.
    pub exploits_idle_time_a_priori: bool,
    /// Exploitation of idle time that appears during workload execution.
    pub exploits_idle_time_during_workload: bool,
    /// Incremental (partial) indexing rather than full index builds.
    pub incremental_indexing: bool,
    /// Target workload environment.
    pub workload: WorkloadKind,
}

impl StrategyFeatures {
    /// Number of supported features (out of the four boolean columns).
    #[must_use]
    pub fn supported_count(&self) -> usize {
        usize::from(self.statistical_analysis_a_priori)
            + usize::from(self.exploits_idle_time_a_priori)
            + usize::from(self.exploits_idle_time_during_workload)
            + usize::from(self.incremental_indexing)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table1_shape_matches_the_paper() {
        // Offline: analysis + a-priori idle time, but nothing during the
        // workload and no incremental indexing.
        let offline = IndexingStrategy::Offline.features();
        assert!(offline.statistical_analysis_a_priori);
        assert!(offline.exploits_idle_time_a_priori);
        assert!(!offline.exploits_idle_time_during_workload);
        assert!(!offline.incremental_indexing);
        assert_eq!(offline.workload, WorkloadKind::Static);
        // Online: analysis + idle time during workload execution.
        let online = IndexingStrategy::Online.features();
        assert!(online.statistical_analysis_a_priori);
        assert!(!online.exploits_idle_time_a_priori);
        assert!(online.exploits_idle_time_during_workload);
        assert!(!online.incremental_indexing);
        // Adaptive: only incremental indexing.
        let adaptive = IndexingStrategy::Adaptive.features();
        assert_eq!(adaptive.supported_count(), 1);
        assert!(adaptive.incremental_indexing);
        // Holistic: everything.
        let holistic = IndexingStrategy::Holistic.features();
        assert_eq!(holistic.supported_count(), 4);
        assert_eq!(holistic.workload, WorkloadKind::Dynamic);
    }

    #[test]
    fn holistic_dominates_every_other_strategy() {
        let holistic = IndexingStrategy::Holistic.features();
        for strategy in IndexingStrategy::all() {
            let f = strategy.features();
            assert!(
                holistic.supported_count() >= f.supported_count(),
                "{strategy} supports more features than holistic"
            );
        }
    }

    #[test]
    fn names_and_display_are_stable() {
        assert_eq!(IndexingStrategy::ScanOnly.name(), "scan");
        assert_eq!(IndexingStrategy::Holistic.to_string(), "holistic");
        assert_eq!(WorkloadKind::Dynamic.to_string(), "dynamic");
        assert_eq!(IndexingStrategy::all().len(), 5);
    }
}
