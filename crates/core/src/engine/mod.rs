//! The query engine: a small column-store `Database` whose select operators
//! implement every indexing strategy of the paper side by side.
//!
//! # Concurrency model
//!
//! The hot path — [`Database::execute`] and [`Database::run_idle`] — takes
//! `&self`: every cracker column sits behind its own reader/writer latch
//! ([`ConcurrentCrackerColumn`]), statistics and metrics are atomics or
//! fine-grained locks, so queries on different columns, and queries racing
//! the background tuner, proceed in parallel. Only *structural* operations
//! (creating/dropping tables, building or dropping full indexes, switching
//! the strategy) still require `&mut self` — a shared engine therefore
//! needs an outer `RwLock` only for those, and query traffic goes through
//! its read side.

pub mod containment;
pub mod guarded;
pub mod health;
pub mod persist;
pub mod query;
pub mod timeline;

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;
use std::time::{Duration, Instant};

use holistic_sync::{LockLevel, OrderedMutex, OrderedRwLock};
use rand::rngs::StdRng;
use rand::SeedableRng;

use holistic_cracking::{ConcurrentCrackerColumn, CorruptionInjector, CrackerColumn};
use holistic_offline::{Advisor, CostModel, SortedIndex, WorkloadSummary};
use holistic_online::OnlineTuner;
use holistic_storage::{Catalog, Column, ColumnId, RowId, StorageError, Table, TableId, Value};

use crate::config::HolisticConfig;
use crate::error::HolisticError;
use crate::idle::{IdleBudget, IdleReport};
use crate::metrics::{EngineMetrics, QueryRecord};
use crate::ranking::RankingModel;
use crate::stats::KernelStatistics;
use crate::strategy::IndexingStrategy;

use self::health::{ColumnHealth, HealthState, ScrubReport};
use self::query::{AccessPath, Query, QueryResult};

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};

/// Result type of engine operations.
pub type EngineResult<T> = Result<T, HolisticError>;

/// A shared engine: the level-0 (outermost) lock of the latch hierarchy.
/// Query traffic and the background tuner go through its read side
/// ([`Database::execute`] and [`Database::run_idle`] take `&self`); only
/// structural operations need the write side.
pub type SharedDatabase = Arc<OrderedRwLock<Database>>;

/// One element of a grouped update ([`Database::update_batch`]): the
/// batch's WAL records are group-committed with a single fsync.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum UpdateOp {
    /// Append `value` to the (single-column) table owning `column`.
    Insert {
        /// The targeted column.
        column: ColumnId,
        /// The value to append.
        value: Value,
    },
    /// Delete the first occurrence of `value` from `column`.
    Delete {
        /// The targeted column.
        column: ColumnId,
        /// The value to remove.
        value: Value,
    },
}

impl UpdateOp {
    /// The column this update targets.
    #[must_use]
    pub fn column(&self) -> ColumnId {
        match *self {
            UpdateOp::Insert { column, .. } | UpdateOp::Delete { column, .. } => column,
        }
    }
}

/// Report of an offline preparation pass (index builds before the workload).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OfflineBuildReport {
    /// Columns whose full index was built.
    pub built: Vec<ColumnId>,
    /// Columns the advisor wanted but the budget did not allow.
    pub skipped: Vec<ColumnId>,
    /// Wall-clock time spent building.
    pub elapsed: Duration,
}

/// The holistic indexing database engine.
///
/// One `Database` hosts base tables (a [`Catalog`] of columns), the three
/// kinds of auxiliary index structures (latched cracker columns, full sorted
/// indexes, and the online tuner's indexes), the continuously maintained
/// [`KernelStatistics`], and the [`RankingModel`] that drives idle-time
/// refinement. The [`IndexingStrategy`] selects which machinery the select
/// operators use, so identical workloads can be replayed against every
/// strategy for comparison.
#[derive(Debug)]
pub struct Database {
    config: HolisticConfig,
    strategy: IndexingStrategy,
    catalog: Catalog,
    /// Per-column latched cracker columns. The map lock is held only for
    /// lookup/insert; all cracking happens under the per-column latch.
    crackers: OrderedRwLock<BTreeMap<ColumnId, Arc<ConcurrentCrackerColumn>>>,
    full_indexes: BTreeMap<ColumnId, SortedIndex>,
    stats: KernelStatistics,
    ranking: RankingModel,
    online: OrderedMutex<OnlineTuner>,
    /// Cached `online.index_count()`, so non-Online strategies can skip the
    /// tuner lock entirely when the tuner holds nothing (the common case)
    /// while still finding tuner-built indexes after a strategy switch.
    online_index_count: std::sync::atomic::AtomicUsize,
    cost_model: CostModel,
    metrics: EngineMetrics,
    /// Seed source: each query/refinement forks a cheap local generator
    /// from this counter, so the hot path shares no generator state.
    rng_stream: AtomicU64,
    rng_seed: u64,
    query_sequence: AtomicU64,
    pending_penalty: OrderedMutex<Duration>,
    /// Construction instant; [`Database::idle_for`] is measured against it.
    epoch: Instant,
    /// Microseconds since `epoch` of the last query (atomic `Instant`).
    last_activity_micros: AtomicU64,
    /// Crash-safe persistence attachment (`None` = in-memory only). A
    /// mutex rather than a field of `&mut self` paths so snapshots can be
    /// taken through `&self` — e.g. by the background tuner holding the
    /// shared engine's read lock.
    persistence: OrderedMutex<Option<persist::PersistenceState>>,
    /// Per-column health state machine plus scrub cursors (see
    /// [`health`]). Sits at `LockLevel::HealthMap`, above the cracker map;
    /// never held across a column latch.
    health: OrderedMutex<HealthState>,
    /// Number of columns currently not `Healthy` — the hot path's fast
    /// check: while this reads 0 (the overwhelmingly common case), queries
    /// skip the health lock entirely.
    unhealthy_count: AtomicUsize,
    /// Deterministic live corruption injector (tests/sweeps only; `None`
    /// in production). Set through `&mut self`, read lock-free.
    corruption: Option<Arc<CorruptionInjector>>,
}

impl Database {
    /// Creates an empty database with the given configuration and strategy.
    #[must_use]
    pub fn new(config: HolisticConfig, strategy: IndexingStrategy) -> Self {
        if config.paranoia {
            // Paranoia turns on latch-hierarchy enforcement process-wide,
            // so proptests and fault-injection sweeps (which all use
            // `for_testing()`) run under lock-order checking for free.
            // Debug builds enforce by default anyway; this makes
            // `HOLISTIC_PARANOIA=1` extend it to release builds.
            holistic_sync::set_enforcement(true);
        }
        let ranking = RankingModel::new(config.cache_piece_target);
        let online = OnlineTuner::new(config.epoch_length.max(1));
        Database {
            stats: KernelStatistics::new(config.hot_range_buckets),
            ranking,
            online: OrderedMutex::new(LockLevel::Online, "Database::online", online),
            online_index_count: std::sync::atomic::AtomicUsize::new(0),
            cost_model: CostModel::new(),
            metrics: EngineMetrics::new(),
            rng_stream: AtomicU64::new(0),
            rng_seed: config.rng_seed,
            query_sequence: AtomicU64::new(0),
            pending_penalty: OrderedMutex::new(
                LockLevel::Penalty,
                "Database::pending_penalty",
                Duration::ZERO,
            ),
            epoch: Instant::now(),
            last_activity_micros: AtomicU64::new(0),
            persistence: OrderedMutex::new(LockLevel::Persistence, "Database::persistence", None),
            health: OrderedMutex::new(
                LockLevel::HealthMap,
                "Database::health",
                HealthState::default(),
            ),
            unhealthy_count: AtomicUsize::new(0),
            corruption: None,
            catalog: Catalog::new(),
            crackers: OrderedRwLock::new(
                LockLevel::CrackerMap,
                "Database::crackers",
                BTreeMap::new(),
            ),
            full_indexes: BTreeMap::new(),
            config,
            strategy,
        }
    }

    /// Wraps the engine in the shared (level-0) engine lock, ready to be
    /// served to query threads and the [`crate::BackgroundTuner`].
    #[must_use]
    pub fn into_shared(self) -> SharedDatabase {
        Arc::new(OrderedRwLock::new(LockLevel::Engine, "engine", self))
    }

    /// The active indexing strategy.
    #[must_use]
    pub fn strategy(&self) -> IndexingStrategy {
        self.strategy
    }

    /// Switches the indexing strategy. Existing auxiliary structures are
    /// kept; they simply stop (or start) being used and refined.
    pub fn set_strategy(&mut self, strategy: IndexingStrategy) {
        self.strategy = strategy;
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &HolisticConfig {
        &self.config
    }

    /// The continuously maintained kernel statistics.
    #[must_use]
    pub fn stats(&self) -> &KernelStatistics {
        &self.stats
    }

    /// The engine metrics (per-query latencies, tuning time, …).
    #[must_use]
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Clears the recorded metrics (auxiliary structures are kept).
    pub fn reset_metrics(&self) {
        self.metrics.reset();
    }

    /// A copy of the workload summary observed so far (consumable by the
    /// advisor).
    #[must_use]
    pub fn observed_workload(&self) -> WorkloadSummary {
        self.stats.summary()
    }

    /// Time elapsed since the last query or explicitly charged activity —
    /// the signal the background tuner uses to detect idle time. Idle-time
    /// refinement itself does *not* reset this clock: the tuner's own work
    /// must never make the engine look busy.
    #[must_use]
    pub fn idle_for(&self) -> Duration {
        let now = self.epoch.elapsed().as_micros() as u64;
        let last = self.last_activity_micros.load(Ordering::Relaxed);
        Duration::from_micros(now.saturating_sub(last))
    }

    /// Stamps "activity happened now" on the idle clock.
    fn touch_activity(&self) {
        self.last_activity_micros
            .store(self.epoch.elapsed().as_micros() as u64, Ordering::Relaxed);
    }

    /// Forks a cheap per-call generator off the engine seed: every caller
    /// draws a fresh stream index, so the hot path shares no mutable
    /// generator state (and holds no lock across a partitioning pass).
    fn fork_rng(&self) -> StdRng {
        let stream = self.rng_stream.fetch_add(1, Ordering::Relaxed);
        StdRng::seed_from_u64(self.rng_seed ^ stream.wrapping_mul(0x9E37_79B9_7F4A_7C15))
    }

    // ------------------------------------------------------------------
    // Schema and data loading
    // ------------------------------------------------------------------

    /// Creates a table from `(column name, values)` pairs and registers all
    /// of its columns with the statistics store (catalog knowledge).
    ///
    /// With persistence enabled, the table is WAL-logged durably before it
    /// becomes visible.
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        columns: Vec<(&str, Vec<Value>)>,
    ) -> EngineResult<TableId> {
        let mut table = Table::new(name);
        for (col_name, values) in columns {
            table.add_column_from_values(col_name, values)?;
        }
        if self.catalog.tables().any(|(_, t)| t.name() == table.name()) {
            return Err(StorageError::TableAlreadyExists(table.name().to_string()).into());
        }
        // Log under the id the catalog is about to assign, so replay
        // reproduces the assignment exactly.
        let id = self.catalog.next_table_id();
        self.wal_append(&persist::WalRecord::create_table(id, &table))?;
        self.catalog.register_with_id(id, table)?;
        for column_id in self.catalog.all_column_ids() {
            if column_id.table == id {
                let len = self.catalog.column(column_id)?.len();
                self.stats.register_column(column_id, len);
            }
        }
        Ok(id)
    }

    /// Drops a table together with its cracker columns, full indexes,
    /// online-tuner state and statistics. Returns `Ok(false)` if the table
    /// does not exist; errors only when the WAL cannot log the drop.
    ///
    /// Statistics are deregistered eagerly here; [`Database::run_idle`]
    /// additionally deregisters defensively if it ever encounters a column
    /// that no longer resolves, so the ranking model can never get stuck on
    /// ghost columns either way.
    pub fn drop_table(&mut self, table: TableId) -> EngineResult<bool> {
        if self.catalog.table(table).is_none() {
            return Ok(false);
        }
        self.wal_append(&persist::WalRecord::DropTable { id: table })?;
        self.drop_table_internal(table);
        Ok(true)
    }

    /// The in-memory part of a table drop (shared with WAL replay).
    fn drop_table_internal(&mut self, table: TableId) -> bool {
        let dropped_columns = self.column_ids(table).unwrap_or_default();
        if self.catalog.drop_table(table).is_none() {
            return false;
        }
        {
            // Health (level 15) strictly before the cracker map (level 20):
            // a quarantined column of a dropped table must stop counting as
            // unhealthy, or the tuner would retry its rebuild forever.
            let mut health = self.health.lock();
            for column in &dropped_columns {
                if health.is_unhealthy(*column) {
                    self.unhealthy_count.fetch_sub(1, Ordering::AcqRel);
                }
                health.forget(*column);
            }
        }
        self.crackers.write().retain(|id, _| id.table != table);
        self.full_indexes.retain(|id, _| id.table != table);
        let mut online = self.online.lock();
        for column in dropped_columns {
            online.forget_column(column);
            self.stats.deregister_column(column);
        }
        self.online_index_count
            .store(online.index_count(), Ordering::Relaxed);
        true
    }

    // ------------------------------------------------------------------
    // Updates
    // ------------------------------------------------------------------

    /// Appends one value to a single-column table, rippling it into the
    /// column's cracker (if instantiated) so the learned piece table stays
    /// exact. With persistence enabled the insert is WAL-logged durably
    /// first; a crash inside the log append fails the call without
    /// applying anything.
    ///
    /// A full sorted index or online-tuner index on the column would go
    /// stale; both are dropped (they rebuild from subsequent traffic).
    /// Multi-column tables would need whole-row updates, which the engine
    /// does not model — those return [`HolisticError::Unsupported`].
    pub fn insert(&mut self, column: ColumnId, value: Value) -> EngineResult<()> {
        self.check_updatable(column)?;
        self.wal_append(&persist::WalRecord::Insert { column, value })?;
        self.apply_insert(column, value)
    }

    /// Deletes the first occurrence of `value` from a single-column table
    /// (WAL-logged first, like [`Database::insert`]). Returns whether a
    /// row was deleted.
    pub fn delete(&mut self, column: ColumnId, value: Value) -> EngineResult<bool> {
        self.check_updatable(column)?;
        self.wal_append(&persist::WalRecord::Delete { column, value })?;
        self.apply_delete(column, value)
    }

    /// Applies a batch of updates with group-committed durability: every
    /// WAL record is appended and fsynced **once** for the whole batch,
    /// then the updates apply in order. Per-element results mirror
    /// [`Database::insert`] (always `true`) and [`Database::delete`]
    /// (whether a row was removed).
    ///
    /// Crash semantics are per-operation, not all-or-nothing: a torn
    /// append makes a durable *prefix* of the batch (records land in
    /// order and recovery truncates the torn tail), the caller sees the
    /// error before anything was applied, and recovery replays exactly
    /// that prefix — the same contract as issuing the operations
    /// individually, minus all but one fsync.
    ///
    /// Validation happens up front: if any element targets a
    /// non-updatable table the whole batch fails before any IO.
    pub fn update_batch(&mut self, ops: &[UpdateOp]) -> EngineResult<Vec<bool>> {
        for op in ops {
            self.check_updatable(op.column())?;
        }
        let records: Vec<persist::WalRecord> = ops
            .iter()
            .map(|op| match *op {
                UpdateOp::Insert { column, value } => persist::WalRecord::Insert { column, value },
                UpdateOp::Delete { column, value } => persist::WalRecord::Delete { column, value },
            })
            .collect();
        self.wal_append_batch(&records)?;
        let mut applied = Vec::with_capacity(ops.len());
        for op in ops {
            applied.push(match *op {
                UpdateOp::Insert { column, value } => {
                    self.apply_insert(column, value)?;
                    true
                }
                UpdateOp::Delete { column, value } => self.apply_delete(column, value)?,
            });
        }
        Ok(applied)
    }

    fn check_updatable(&self, column: ColumnId) -> EngineResult<()> {
        let table = self.catalog.try_table(column.table)?;
        if table.column_count() != 1 || column.column != 0 {
            return Err(HolisticError::Unsupported(
                "single-value updates are only supported on single-column tables".into(),
            ));
        }
        Ok(())
    }

    /// The in-memory part of an insert (shared with WAL replay).
    fn apply_insert(&mut self, column: ColumnId, value: Value) -> EngineResult<()> {
        let table = self.catalog.try_table_mut(column.table)?;
        let base = table
            .column_at_mut(column.column as usize)
            .ok_or_else(|| StorageError::ColumnNotFound(format!("{column}")))?;
        let rowid = base.len() as RowId;
        base.append(value);
        let len = base.len();
        if let Some(cracker) = self.crackers.read().get(&column) {
            cracker.insert(value, rowid);
        }
        self.invalidate_indexes(column);
        self.stats.register_column(column, len);
        self.touch_activity();
        Ok(())
    }

    /// The in-memory part of a run of inserts into one column: the batch
    /// analogue of [`Database::apply_insert`], used by WAL replay to turn
    /// K insert records into one base-column append and one batched
    /// cracker ripple instead of K full piece-table sweeps.
    fn apply_insert_batch(&mut self, column: ColumnId, values: &[Value]) -> EngineResult<()> {
        let table = self.catalog.try_table_mut(column.table)?;
        let base = table
            .column_at_mut(column.column as usize)
            .ok_or_else(|| StorageError::ColumnNotFound(format!("{column}")))?;
        let first_rowid = base.len() as RowId;
        base.append_many(values);
        let len = base.len();
        if let Some(cracker) = self.crackers.read().get(&column) {
            let batch: Vec<(Value, RowId)> = values
                .iter()
                .enumerate()
                .map(|(i, &v)| (v, first_rowid + i as RowId))
                .collect();
            cracker.insert_batch(&batch);
        }
        self.invalidate_indexes(column);
        self.stats.register_column(column, len);
        self.touch_activity();
        Ok(())
    }

    /// The in-memory part of a delete (shared with WAL replay).
    fn apply_delete(&mut self, column: ColumnId, value: Value) -> EngineResult<bool> {
        let table = self.catalog.try_table_mut(column.table)?;
        let base = table
            .column_at_mut(column.column as usize)
            .ok_or_else(|| StorageError::ColumnNotFound(format!("{column}")))?;
        if !base.remove_first(value) {
            return Ok(false);
        }
        let len = base.len();
        if let Some(cracker) = self.crackers.read().get(&column) {
            let removed = cracker.delete(value);
            debug_assert!(removed, "cracker out of sync with base column");
        }
        self.invalidate_indexes(column);
        self.stats.register_column(column, len);
        self.touch_activity();
        Ok(true)
    }

    /// Drops the sorted auxiliary structures an update on `column` makes
    /// stale: the full sorted index and the online tuner's index. Both
    /// rebuild from subsequent traffic; answering from a stale one would
    /// be wrong.
    fn invalidate_indexes(&mut self, column: ColumnId) {
        self.full_indexes.remove(&column);
        let mut online = self.online.lock();
        online.forget_column(column);
        self.online_index_count
            .store(online.index_count(), Ordering::Relaxed);
    }

    /// Resolves a table by name. The stable way to re-find tables after
    /// [`Database::recover`], which preserves table ids but hands back a
    /// fresh engine value.
    #[must_use]
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.catalog.table_id(name)
    }

    /// Resolves a column by table id and column name.
    pub fn column_id(&self, table: TableId, column: &str) -> EngineResult<ColumnId> {
        let t = self.catalog.try_table(table)?;
        let idx = t
            .column_index(column)
            .ok_or_else(|| StorageError::ColumnNotFound(column.to_string()))?;
        Ok(ColumnId::new(table, idx as u32))
    }

    /// All column ids of a table, in positional order.
    pub fn column_ids(&self, table: TableId) -> EngineResult<Vec<ColumnId>> {
        let t = self.catalog.try_table(table)?;
        Ok((0..t.column_count())
            .map(|i| ColumnId::new(table, i as u32))
            .collect())
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: TableId) -> EngineResult<usize> {
        Ok(self.catalog.try_table(table)?.row_count())
    }

    /// The base column addressed by `id`.
    pub fn base_column(&self, id: ColumnId) -> EngineResult<&Column> {
        Ok(self.catalog.column(id)?)
    }

    // ------------------------------------------------------------------
    // Introspection of auxiliary structures
    // ------------------------------------------------------------------

    /// Whether a full sorted index exists for the column.
    #[must_use]
    pub fn has_full_index(&self, id: ColumnId) -> bool {
        self.full_indexes.contains_key(&id)
    }

    /// Number of pieces of the column's cracker index (0 if the column has
    /// never been cracked).
    #[must_use]
    pub fn piece_count(&self, id: ColumnId) -> usize {
        self.crackers.read().get(&id).map_or(0, |c| c.piece_count())
    }

    /// The piece table of a column's cracker index, in positional order
    /// (empty if the column has never been cracked). Lets tests and tools
    /// compare the physical index shape two execution paths produced.
    #[must_use]
    pub fn cracker_pieces(&self, id: ColumnId) -> Vec<holistic_cracking::Piece> {
        self.crackers
            .read()
            .get(&id)
            .map_or_else(Vec::new, |c| c.pieces_snapshot())
    }

    /// Total crack actions (query-driven plus auxiliary) applied to a column.
    #[must_use]
    pub fn cracks_performed(&self, id: ColumnId) -> u64 {
        self.crackers
            .read()
            .get(&id)
            .map_or(0, |c| c.cracks_performed())
    }

    /// Validates the invariants of every cracker column. Intended for tests
    /// (especially concurrent stress tests) and debug assertions.
    #[must_use]
    pub fn validate(&self) -> bool {
        let crackers: Vec<Arc<ConcurrentCrackerColumn>> =
            self.crackers.read().values().map(Arc::clone).collect();
        crackers.iter().all(|c| c.validate())
    }

    /// Paranoia mode ([`HolisticConfig::paranoia`], `HOLISTIC_PARANOIA`
    /// env): after a query or refinement touched `column`, run the full
    /// cracker validation (piece order, cached sums, prefix arrays) and
    /// surface any violation as a typed [`HolisticError::Integrity`] — the
    /// signal the caller turns into a quarantine — instead of letting a
    /// broken structure keep answering.
    fn paranoia_check(&self, column: ColumnId) -> EngineResult<()> {
        if !self.config.paranoia {
            return Ok(());
        }
        let cracker = self.crackers.read().get(&column).map(Arc::clone);
        match cracker
            .as_deref()
            .and_then(ConcurrentCrackerColumn::find_invalid_shard)
        {
            Some(shard) => Err(HolisticError::Integrity {
                column,
                reason: format!("paranoia: cracker shard {shard} failed validation"),
            }),
            None => Ok(()),
        }
    }

    // ------------------------------------------------------------------
    // Integrity: health, quarantine, rebuild, scrub
    // ------------------------------------------------------------------

    /// Whether queries on `column` must take the degraded scan path. The
    /// atomic fast path keeps the health lock off the hot path entirely
    /// while every column is healthy (the overwhelmingly common case).
    fn is_unhealthy(&self, column: ColumnId) -> bool {
        self.unhealthy_count.load(Ordering::Acquire) > 0 && self.health.lock().is_unhealthy(column)
    }

    /// The health of one column's learned state.
    #[must_use]
    pub fn column_health(&self, column: ColumnId) -> ColumnHealth {
        self.health.lock().health(column)
    }

    /// Every column currently quarantined or rebuilding, with its state.
    #[must_use]
    pub fn quarantined_columns(&self) -> Vec<(ColumnId, ColumnHealth)> {
        self.health.lock().unhealthy()
    }

    /// Attaches a deterministic live corruption injector (integrity
    /// sweeps): each query execution ticks it once, and when it fires the
    /// queried column's learned metadata is damaged (or a kernel panic is
    /// injected) mid-operation.
    pub fn set_corruption_injector(&mut self, injector: Arc<CorruptionInjector>) {
        self.corruption = Some(injector);
    }

    /// Ticks the corruption injector (if any) and applies the fault to
    /// `column`'s cracker when it fires. Runs *inside* the containment
    /// boundary: an injected panic unwinds into the catch.
    fn corruption_tick(&self, column: ColumnId) {
        let Some(inj) = &self.corruption else { return };
        let Some(kind) = inj.tick() else { return };
        let cracker = self.crackers.read().get(&column).map(Arc::clone);
        match cracker {
            Some(c) => {
                let _ = c.corrupt(kind);
            }
            None if matches!(kind, holistic_cracking::CorruptionKind::Panic) => {
                // This panic IS the injected kernel fault the containment
                // boundary must catch. lint:allow(panic-path)
                panic!("injected kernel panic (corruption injector)");
            }
            None => {}
        }
    }

    /// Quarantines a column: its (presumed corrupt) cracker is dropped,
    /// queries switch to the degraded scan path, and the background tuner
    /// will rebuild it. Idempotent — racing detectors quarantine once.
    fn quarantine_column(&self, column: ColumnId, reason: &str) {
        let newly = self.health.lock().quarantine(column, reason.to_string());
        if !newly {
            return;
        }
        self.unhealthy_count.fetch_add(1, Ordering::AcqRel);
        // Stash the removed cracker instead of dropping it: when the damage
        // is localized to one shard, the rebuild path salvages the healthy
        // shards' learned piece tables instead of starting fully cold.
        let removed = self.crackers.write().remove(&column);
        if let Some(old) = removed {
            let faulty = old.find_invalid_shard();
            self.health.lock().stash_for_rebuild(column, faulty, old);
        }
        self.metrics.record_quarantine();
    }

    /// Rebuilds a quarantined column's cracker from base data (the base is
    /// never touched by learned-state corruption, so the rebuild is always
    /// possible). Returns `Ok(false)` when the column was not quarantined
    /// (or another thread claimed it first). The birth is WAL-logged like
    /// a first touch; the record is idempotent at replay.
    pub fn rebuild_column(&self, column: ColumnId) -> EngineResult<bool> {
        if !self.health.lock().claim_rebuild(column) {
            return Ok(false);
        }
        match self.rebuild_claimed(column) {
            Ok(()) => {
                self.health.lock().heal(column);
                self.unhealthy_count.fetch_sub(1, Ordering::AcqRel);
                self.metrics.record_rebuild();
                Ok(true)
            }
            Err(e) => {
                // Put the claim back so a later idle window retries (the
                // count is unchanged: the column never left quarantine).
                let mut health = self.health.lock();
                health.heal(column);
                health.quarantine(column, format!("rebuild failed: {e}"));
                Err(e)
            }
        }
    }

    fn rebuild_claimed(&self, column: ColumnId) -> EngineResult<()> {
        let base = self.catalog.column(column)?;
        self.wal_append(&persist::WalRecord::CrackerBorn { column })?;
        let (faulty, stashed) = self.health.lock().take_stash(column);
        let salvaged = match (faulty, stashed) {
            // Row-id payloads tie values to positions; multiset salvage
            // cannot restore that association, so rebuild cold instead.
            (Some(shard), Some(old)) if !self.config.keep_rowids => {
                Self::salvage_rebuild(base, &old, shard, self.config.crack_kernel)
            }
            _ => None,
        };
        let fresh = salvaged.unwrap_or_else(|| self.build_cracker(base));
        self.crackers.write().insert(column, Arc::new(fresh));
        Ok(())
    }

    /// Partial rebuild of a quarantined sharded cracker: keeps the learned
    /// piece tables of every *healthy* shard and rebuilds only the damaged
    /// shard. The damaged shard's contents are recovered by multiset
    /// subtraction — base values minus the healthy shards' values — which
    /// is sound because the union of the shard multisets always equals the
    /// base multiset. Any mismatch (a count going negative, or a leftover
    /// after subtraction of the wrong size) means the damage was not
    /// confined to the pinpointed shard, and the salvage reports `None` so
    /// the caller falls back to a full cold rebuild.
    fn salvage_rebuild(
        base: &Column,
        old: &ConcurrentCrackerColumn,
        faulty: usize,
        kernel: holistic_cracking::CrackKernel,
    ) -> Option<ConcurrentCrackerColumn> {
        let extent = old.shard_extent().unwrap_or(0);
        let mut shards = old.clone_shards();
        if faulty >= shards.len() {
            return None;
        }
        let mut remainder: BTreeMap<Value, i64> = BTreeMap::new();
        for v in base.values() {
            *remainder.entry(*v).or_insert(0) += 1;
        }
        let mut faulty_len = 0usize;
        for (i, shard) in shards.iter().enumerate() {
            if i == faulty {
                faulty_len = shard.len();
                continue;
            }
            // A second damaged shard disqualifies the whole salvage.
            if !shard.validate() {
                return None;
            }
            for v in shard.data() {
                let n = remainder.entry(*v).or_insert(0);
                *n -= 1;
                if *n < 0 {
                    return None;
                }
            }
        }
        let mut values = Vec::with_capacity(faulty_len);
        for (v, n) in remainder {
            for _ in 0..n {
                values.push(v);
            }
        }
        if values.len() != faulty_len {
            return None;
        }
        shards[faulty] = CrackerColumn::from_values(values).with_kernel(kernel);
        Some(ConcurrentCrackerColumn::from_shards(shards, extent))
    }

    /// One budgeted scrub window: re-validates up to `budget` pieces of
    /// one cracker column (priority to columns recovered under sampled
    /// validation, then round-robin), quarantining the column when a piece
    /// fails. The per-column cursor persists across windows, so full
    /// coverage accumulates incrementally over idle time.
    pub fn scrub_step(&self, budget: usize) -> ScrubReport {
        let mut report = ScrubReport::default();
        if budget == 0 {
            return report;
        }
        let known: Vec<ColumnId> = self.crackers.read().keys().copied().collect();
        let (target, from) = {
            let health = self.health.lock();
            let Some(t) = health.pick_scrub_target(&known, health.last_scrubbed()) else {
                return report;
            };
            (t, health.cursor(t))
        };
        let Some(cracker) = self.crackers.read().get(&target).map(Arc::clone) else {
            return report;
        };
        let outcome = cracker.scrub_pieces(from, budget);
        report.column = Some(target);
        report.pieces_checked = outcome.checked;
        if !outcome.valid {
            report.fault_found = true;
            let reason = match outcome.failed_shard {
                Some(shard) => format!("scrub: piece failed validation (shard {shard})"),
                None => "scrub: piece failed validation".to_string(),
            };
            self.quarantine_column(target, &reason);
            self.metrics.record_scrub(outcome.checked as u64, true);
            return report;
        }
        report.completed_pass = outcome.next.is_none();
        {
            let mut health = self.health.lock();
            health.set_cursor(target, outcome.next);
            health.note_scrubbed(target);
        }
        self.metrics.record_scrub(outcome.checked as u64, false);
        report
    }

    // ------------------------------------------------------------------
    // Query execution
    // ------------------------------------------------------------------

    /// Executes a range query under the active strategy.
    ///
    /// Takes `&self`: concurrent callers only contend on the latch of the
    /// column they query (and briefly on the statistics/metrics counters).
    ///
    /// Kernel execution runs inside the engine's panic-containment
    /// boundary: a panic mid-crack, or a paranoia validation failure,
    /// quarantines the column's learned state and re-answers the query
    /// through the (always correct) base-storage scan path instead of
    /// surfacing an error or killing the process.
    pub fn execute(&self, q: &Query) -> EngineResult<QueryResult> {
        let start = Instant::now();
        let column_len = self.catalog.column(q.column)?.len();
        if self.is_unhealthy(q.column) {
            return self.execute_degraded(q, column_len, start);
        }
        let contained = containment::contain(|| {
            self.corruption_tick(q.column);
            let dispatched = match self.strategy {
                IndexingStrategy::ScanOnly => self.exec_scan(q),
                IndexingStrategy::Offline | IndexingStrategy::Online => {
                    self.exec_indexed_or_scan(q)
                }
                IndexingStrategy::Adaptive => self.exec_crack(q, false),
                IndexingStrategy::Holistic => self.exec_crack(q, true),
            }?;
            self.paranoia_check(q.column)?;
            Ok(dispatched)
        });
        let (path, count, sum, values) = match contained {
            Ok(Ok(dispatched)) => dispatched,
            Ok(Err(HolisticError::Integrity { column, reason })) => {
                self.quarantine_column(column, &reason);
                return self.execute_degraded(q, column_len, start);
            }
            Ok(Err(e)) => return Err(e),
            Err(panic_reason) => {
                self.quarantine_column(q.column, &panic_reason);
                return self.execute_degraded(q, column_len, start);
            }
        };
        let penalty = std::mem::take(&mut *self.pending_penalty.lock());
        let mut latency = start.elapsed() + penalty;

        // Continuous statistics (all strategies keep them so that switching
        // to holistic mid-flight has knowledge to work with; the overhead is
        // a few counters per query).
        let selectivity = if column_len == 0 {
            0.0
        } else {
            count as f64 / column_len as f64
        };
        self.stats.record_query(q.column, q.lo, q.hi, selectivity);

        if self.strategy == IndexingStrategy::Online {
            latency += self.online_record_and_tune(q, column_len, selectivity, path);
        }

        let result = QueryResult {
            count,
            sum,
            values,
            path,
            latency,
        };
        self.metrics.record_query(QueryRecord {
            sequence: self.query_sequence.fetch_add(1, Ordering::Relaxed),
            column: q.column,
            path,
            latency,
            result_count: count,
        });
        self.touch_activity();
        Ok(result)
    }

    /// Answers a query on a quarantined (or rebuilding) column through the
    /// base-storage scan path. Corruption only ever touches *learned*
    /// state, so the scan answer is always correct; the query is recorded
    /// as a degraded scan in the metrics.
    fn execute_degraded(
        &self,
        q: &Query,
        column_len: usize,
        start: Instant,
    ) -> EngineResult<QueryResult> {
        let (path, count, sum, values) = self.exec_scan(q)?;
        self.metrics.record_degraded_scan();
        let penalty = std::mem::take(&mut *self.pending_penalty.lock());
        let latency = start.elapsed() + penalty;
        let selectivity = if column_len == 0 {
            0.0
        } else {
            count as f64 / column_len as f64
        };
        self.stats.record_query(q.column, q.lo, q.hi, selectivity);
        let result = QueryResult {
            count,
            sum,
            values,
            path,
            latency,
        };
        self.metrics.record_query(QueryRecord {
            sequence: self.query_sequence.fetch_add(1, Ordering::Relaxed),
            column: q.column,
            path,
            latency,
            result_count: count,
        });
        self.touch_activity();
        Ok(result)
    }

    /// The Offline/Online access-path choice: full index if present, then a
    /// tuner-built index, then the scan baseline.
    fn exec_indexed_or_scan(
        &self,
        q: &Query,
    ) -> EngineResult<(AccessPath, u64, i128, Option<Vec<Value>>)> {
        if self.full_indexes.contains_key(&q.column) {
            self.exec_index(q)
        } else if self.strategy == IndexingStrategy::Online
            || self.online_index_count.load(Ordering::Relaxed) > 0
        {
            // Clone the Arc under the tuner lock, probe outside it:
            // index probes on different columns must not serialize
            // on the shared tuner. Non-Online strategies only pay
            // the lock when the tuner actually holds indexes (e.g.
            // after an Online-to-Offline strategy switch).
            let tuner_index = self.online.lock().index_arc(q.column);
            if let Some(idx) = tuner_index {
                let (count, sum, values) = self.exec_with_index(q, &idx);
                Ok((AccessPath::FullIndex, count, sum, values))
            } else {
                self.exec_scan(q)
            }
        } else {
            self.exec_scan(q)
        }
    }

    /// Online indexing: monitoring + epoch-based tuning. The time spent
    /// building indexes online is charged to the query that triggered the
    /// epoch boundary, which is exactly the online-indexing penalty the
    /// paper describes. Returns that charge.
    fn online_record_and_tune(
        &self,
        q: &Query,
        column_len: usize,
        selectivity: f64,
        path: AccessPath,
    ) -> Duration {
        let tune_start = Instant::now();
        let observed_cost = self.cost_model.scan_cost(column_len);
        let catalog = &self.catalog;
        {
            let mut online = self.online.lock();
            let _ = online.record_and_tune(
                q.column,
                q.lo,
                q.hi,
                selectivity,
                if path == AccessPath::FullIndex {
                    self.cost_model.index_probe_cost(column_len, selectivity)
                } else {
                    observed_cost
                },
                |id| catalog.column(id).ok().cloned(),
            );
            self.online_index_count
                .store(online.index_count(), Ordering::Relaxed);
        }
        let tuning = tune_start.elapsed();
        self.metrics.add_build_time(tuning);
        tuning
    }

    fn exec_scan(&self, q: &Query) -> EngineResult<(AccessPath, u64, i128, Option<Vec<Value>>)> {
        let column = self.catalog.column(q.column)?;
        let values = column.values();
        if q.is_empty_range() {
            return Ok((AccessPath::Scan, 0, 0, q.materialize.then(Vec::new)));
        }
        // Route through the storage layer's chunked, auto-vectorizable scan
        // kernels so the scan baseline shares the branch-free pipeline.
        let count = holistic_storage::scan_count(values, q.lo, q.hi);
        let sum = holistic_storage::scan_sum(values, q.lo, q.hi);
        let out = q
            .materialize
            .then(|| holistic_storage::scan_materialize(values, q.lo, q.hi));
        Ok((AccessPath::Scan, count, sum, out))
    }

    /// Answers a query from a full sorted index. The count is two binary
    /// searches; the sum comes from the index's prefix-sum array
    /// ([`SortedIndex::query_sum`] — zero value reads, recorded as a
    /// `prefix` cache hit) and only falls back to the qualifying-slice scan
    /// (recorded as a miss with its read volume) while the array is
    /// unseeded. Materialization always reads the slice; like everywhere
    /// else, those reads are not charged to the aggregate cache.
    fn exec_with_index(&self, q: &Query, idx: &SortedIndex) -> (u64, i128, Option<Vec<Value>>) {
        let count = idx.query_count(q.lo, q.hi);
        let mut delta = holistic_cracking::AggregateCacheDelta::default();
        let sum = match idx.query_sum(q.lo, q.hi) {
            Some(sum) => {
                delta.prefix += 1;
                sum
            }
            None => {
                delta.misses += 1;
                delta.scanned_values += count;
                idx.range_sum(q.lo, q.hi)
            }
        };
        self.metrics.record_aggregate_cache(delta);
        let values = q.materialize.then(|| idx.range_values(q.lo, q.hi).to_vec());
        (count, sum, values)
    }

    fn exec_index(&self, q: &Query) -> EngineResult<(AccessPath, u64, i128, Option<Vec<Value>>)> {
        // Callers check for existence, but a column recovered without its
        // index (or dropped mid-flight) must surface as a typed error, not
        // an abort.
        let idx = self
            .full_indexes
            .get(&q.column)
            .ok_or(HolisticError::FullIndexMissing(q.column))?;
        let (count, sum, values) = self.exec_with_index(q, idx);
        Ok((AccessPath::FullIndex, count, sum, values))
    }

    /// The latched cracker column for `column`, created from the base data
    /// on first use. With persistence enabled the birth is WAL-logged
    /// first (`CrackerBorn`), so recovery re-instantiates the cracker at
    /// the same log position and post-birth updates ripple into it exactly
    /// as they did forward. The base copy happens outside the map lock; if
    /// two threads race on the first touch, one copy is dropped (and the
    /// duplicate birth record is idempotent at replay).
    fn cracker_for(&self, column: ColumnId) -> EngineResult<Arc<ConcurrentCrackerColumn>> {
        if self.is_unhealthy(column) {
            // A quarantined column must not resurrect a cracker behind the
            // health map's back; healing goes through `rebuild_column`.
            return Err(HolisticError::Integrity {
                column,
                reason: "column is quarantined; learned state unavailable until rebuild".into(),
            });
        }
        if let Some(c) = self.crackers.read().get(&column) {
            return Ok(Arc::clone(c));
        }
        // Persistence (level 10) strictly before the map latch (level 20).
        self.wal_append(&persist::WalRecord::CrackerBorn { column })?;
        self.instantiate_cracker(column)
    }

    /// Instantiates (or returns) the cracker for `column` without logging
    /// a birth — the caller has already made the birth durable.
    fn instantiate_cracker(&self, column: ColumnId) -> EngineResult<Arc<ConcurrentCrackerColumn>> {
        if let Some(c) = self.crackers.read().get(&column) {
            return Ok(Arc::clone(c));
        }
        let base = self.catalog.column(column)?;
        let fresh = self.build_cracker(base);
        let mut map = self.crackers.write();
        Ok(Arc::clone(
            map.entry(column).or_insert_with(|| Arc::new(fresh)),
        ))
    }

    /// Builds a fresh (possibly sharded, per [`HolisticConfig::shard_extent`])
    /// cracker column over `base` with the configured kernel and row-id
    /// policy. Every code path that births a cracker — first touch, WAL
    /// replay, quarantine rebuild — goes through here so the physical shard
    /// layout is identical no matter which path created the structure.
    fn build_cracker(&self, base: &Column) -> ConcurrentCrackerColumn {
        ConcurrentCrackerColumn::from_column_sharded(
            base,
            self.config.keep_rowids,
            self.config.crack_kernel,
            self.config.shard_extent,
        )
    }

    fn exec_crack(
        &self,
        q: &Query,
        holistic: bool,
    ) -> EngineResult<(AccessPath, u64, i128, Option<Vec<Value>>)> {
        // A full index (e.g. built during a-priori idle time) trumps cracking.
        if self.full_indexes.contains_key(&q.column) {
            return self.exec_index(q);
        }
        let cracker = self.cracker_for(q.column)?;
        let mut rng = self.fork_rng();
        let outcome = cracker.select_with_policy(
            q.lo,
            q.hi,
            q.materialize,
            self.config.crack_policy,
            &mut rng,
        );

        self.metrics.record_aggregate_cache(outcome.cache);
        let mut dispatches = outcome.dispatches;
        let mut piece_shape = (outcome.piece_count, outcome.avg_piece_len);
        if holistic && !q.is_empty_range() {
            // The "No Time" case: no idle time may ever appear, but a hot
            // value range earns extra refinement right now, during query
            // processing, paid for by this query.
            let hot = self.stats.is_hot_range(
                q.column,
                q.lo,
                q.hi,
                self.config.hot_range_query_threshold,
            );
            if hot {
                let mut applied = 0;
                for _ in 0..self.config.boost_cracks_per_query {
                    let boost = cracker.refine_in_range(q.lo, q.hi, &mut rng);
                    dispatches.add(boost.dispatches);
                    piece_shape = (boost.piece_count, boost.avg_piece_len);
                    if boost.split {
                        applied += 1;
                    }
                }
                if applied > 0 {
                    self.stats.record_auxiliary_actions(q.column, applied);
                }
            }
        }
        self.metrics.add_kernel_dispatches(dispatches);
        self.stats
            .record_refinement(q.column, piece_shape.0, piece_shape.1);
        Ok((
            AccessPath::Crack,
            outcome.count,
            outcome.sum,
            outcome.values,
        ))
    }

    // ------------------------------------------------------------------
    // Batched query execution
    // ------------------------------------------------------------------

    /// Executes a batch of range queries, amortizing per-query overheads
    /// across the batch: queries are grouped by column, each group's
    /// deduplicated predicate bounds crack every target piece with a single
    /// multi-pivot pass under **one** latch acquisition per column
    /// ([`ConcurrentCrackerColumn::select_batch_with_policy`]), and
    /// statistics/metrics are recorded in bulk.
    ///
    /// Results come back in the order the queries were passed, with
    /// count/sum/materialization semantics identical to issuing every query
    /// through [`Database::execute`] sequentially. Differences from the
    /// sequential path are limited to bookkeeping: queries of one column
    /// group share the group's wall-clock cost evenly (their individual
    /// latencies are no longer observable), and a pending penalty is charged
    /// to the batch's first query.
    ///
    /// Unlike sequential execution, the batch validates every column up
    /// front: if any query references an unknown column the whole batch
    /// fails without executing anything.
    pub fn execute_batch(&self, queries: &[Query]) -> EngineResult<Vec<QueryResult>> {
        if queries.is_empty() {
            return Ok(Vec::new());
        }
        // Resolve every column once, failing the whole batch up front.
        let mut column_lens: BTreeMap<ColumnId, usize> = BTreeMap::new();
        let mut groups: BTreeMap<ColumnId, Vec<usize>> = BTreeMap::new();
        for (i, q) in queries.iter().enumerate() {
            if let std::collections::btree_map::Entry::Vacant(e) = column_lens.entry(q.column) {
                e.insert(self.catalog.column(q.column)?.len());
            }
            groups.entry(q.column).or_default().push(i);
        }
        // Quarantined/rebuilding columns answer via the degraded scan
        // path; the set is almost always empty and the atomic fast check
        // keeps the health lock off the batch hot path.
        let unhealthy: BTreeSet<ColumnId> = if self.unhealthy_count.load(Ordering::Acquire) > 0 {
            let health = self.health.lock();
            groups
                .keys()
                .filter(|column| health.is_unhealthy(**column))
                .copied()
                .collect()
        } else {
            BTreeSet::new()
        };
        // Group commit: every cracker this batch is about to instantiate
        // gets its birth record in one WAL append — at most one fsync per
        // admitted batch, and none at all once the columns are warm.
        if matches!(
            self.strategy,
            IndexingStrategy::Adaptive | IndexingStrategy::Holistic
        ) {
            let births: Vec<ColumnId> = {
                let crackers = self.crackers.read();
                groups
                    .keys()
                    .filter(|column| {
                        !crackers.contains_key(column)
                            && !self.full_indexes.contains_key(column)
                            && !unhealthy.contains(column)
                    })
                    .copied()
                    .collect()
            };
            let records: Vec<persist::WalRecord> = births
                .iter()
                .map(|&column| persist::WalRecord::CrackerBorn { column })
                .collect();
            self.wal_append_batch(&records)?;
            for column in births {
                self.instantiate_cracker(column)?;
            }
        }
        let penalty = std::mem::take(&mut *self.pending_penalty.lock());
        let mut results: Vec<Option<QueryResult>> = (0..queries.len()).map(|_| None).collect();

        for (column, indexes) in &groups {
            let column_len = column_lens[column];
            if unhealthy.contains(column) {
                self.exec_scan_group(queries, indexes, *column, column_len, &mut results)?;
                continue;
            }
            let batched_crack = matches!(
                self.strategy,
                IndexingStrategy::Adaptive | IndexingStrategy::Holistic
            ) && !self.full_indexes.contains_key(column);
            // Each healthy group runs inside the containment boundary: a
            // kernel panic or paranoia failure quarantines this column and
            // re-answers the whole group through the scan path, leaving
            // the other groups untouched.
            let contained = containment::contain(|| -> EngineResult<()> {
                self.corruption_tick(*column);
                if batched_crack {
                    // Records the group's statistics itself (they must
                    // precede the hot-range boost checks).
                    self.exec_crack_batch(queries, indexes, *column, column_len, &mut results)?;
                } else {
                    // Scan and index probes have no partitioning work to
                    // amortize; they run per query (including the online
                    // tuner's per-query epoch accounting) and only share the
                    // batch's bulk statistics recording below.
                    for &i in indexes {
                        let q = &queries[i];
                        let q_start = Instant::now();
                        let (path, count, sum, values) = match self.strategy {
                            IndexingStrategy::ScanOnly => self.exec_scan(q)?,
                            IndexingStrategy::Offline | IndexingStrategy::Online => {
                                self.exec_indexed_or_scan(q)?
                            }
                            IndexingStrategy::Adaptive | IndexingStrategy::Holistic => {
                                self.exec_index(q)?
                            }
                        };
                        let mut latency = q_start.elapsed();
                        if self.strategy == IndexingStrategy::Online {
                            let selectivity = if column_len == 0 {
                                0.0
                            } else {
                                count as f64 / column_len as f64
                            };
                            latency +=
                                self.online_record_and_tune(q, column_len, selectivity, path);
                        }
                        results[i] = Some(QueryResult {
                            count,
                            sum,
                            values,
                            path,
                            latency,
                        });
                    }
                    // Bulk statistics: one lock round for the whole column
                    // group.
                    let predicates =
                        Self::group_predicates(queries, indexes, column_len, results.as_slice());
                    self.stats.record_queries(*column, &predicates);
                }
                self.paranoia_check(*column)
            });
            match contained {
                Ok(Ok(())) => {}
                Ok(Err(HolisticError::Integrity { reason, .. })) => {
                    self.quarantine_column(*column, &reason);
                    self.exec_scan_group(queries, indexes, *column, column_len, &mut results)?;
                }
                Ok(Err(e)) => return Err(e),
                Err(panic_reason) => {
                    self.quarantine_column(*column, &panic_reason);
                    self.exec_scan_group(queries, indexes, *column, column_len, &mut results)?;
                }
            }
        }

        let mut out = Vec::with_capacity(queries.len());
        let mut records = Vec::with_capacity(queries.len());
        for (i, result) in results.into_iter().enumerate() {
            let Some(mut result) = result else {
                return Err(HolisticError::Validation(format!(
                    "batch execution left query {i} unfilled"
                )));
            };
            if i == 0 {
                // Same contract as the sequential path: the next executed
                // query pays the pending penalty.
                result.latency += penalty;
            }
            records.push(QueryRecord {
                sequence: self.query_sequence.fetch_add(1, Ordering::Relaxed),
                column: queries[i].column,
                path: result.path,
                latency: result.latency,
                result_count: result.count,
            });
            out.push(result);
        }
        self.metrics.record_queries(records);
        self.metrics.record_batch(queries.len() as u64);
        self.touch_activity();
        Ok(out)
    }

    /// The `(lo, hi, selectivity)` triples of one executed column group,
    /// for bulk statistics recording.
    fn group_predicates(
        queries: &[Query],
        indexes: &[usize],
        column_len: usize,
        results: &[Option<QueryResult>],
    ) -> Vec<(Value, Value, f64)> {
        indexes
            .iter()
            .filter_map(|&i| {
                let q = &queries[i];
                let count = results[i].as_ref()?.count;
                let selectivity = if column_len == 0 {
                    0.0
                } else {
                    count as f64 / column_len as f64
                };
                Some((q.lo, q.hi, selectivity))
            })
            .collect()
    }

    /// Answers one column group of a batch through the base-storage scan
    /// path: the column is quarantined (or was quarantined mid-group by a
    /// containment event, in which case any partial results are simply
    /// overwritten). Always correct — corruption never touches base data.
    fn exec_scan_group(
        &self,
        queries: &[Query],
        indexes: &[usize],
        column: ColumnId,
        column_len: usize,
        results: &mut [Option<QueryResult>],
    ) -> EngineResult<()> {
        for &i in indexes {
            let q = &queries[i];
            let q_start = Instant::now();
            let (path, count, sum, values) = self.exec_scan(q)?;
            results[i] = Some(QueryResult {
                count,
                sum,
                values,
                path,
                latency: q_start.elapsed(),
            });
            self.metrics.record_degraded_scan();
        }
        let predicates = Self::group_predicates(queries, indexes, column_len, results);
        self.stats.record_queries(column, &predicates);
        Ok(())
    }

    /// Executes one column group of a batch through the batched cracking
    /// path: one latch acquisition for the multi-pivot select, bulk
    /// statistics recording, then one more latch acquisition for all of the
    /// group's holistic hot-range boosts together.
    fn exec_crack_batch(
        &self,
        queries: &[Query],
        indexes: &[usize],
        column: ColumnId,
        column_len: usize,
        results: &mut [Option<QueryResult>],
    ) -> EngineResult<()> {
        let group_start = Instant::now();
        let cracker = self.cracker_for(column)?;
        let mut rng = self.fork_rng();
        let batch: Vec<(Value, Value, bool)> = indexes
            .iter()
            .map(|&i| {
                let q = &queries[i];
                (q.lo, q.hi, q.materialize)
            })
            .collect();
        let outcome = cracker.select_batch_with_policy(&batch, self.config.crack_policy, &mut rng);
        self.metrics.record_aggregate_cache(outcome.cache);
        let mut dispatches = outcome.dispatches;
        let mut piece_shape = (outcome.piece_count, outcome.avg_piece_len);
        // One latch pass served the whole group: attribute its wall-clock
        // cost evenly across the group's queries.
        let per_query = group_start.elapsed() / indexes.len().max(1) as u32;
        for (&i, answer) in indexes.iter().zip(outcome.answers) {
            results[i] = Some(QueryResult {
                count: answer.count,
                sum: answer.sum,
                values: answer.values,
                path: AccessPath::Crack,
                latency: per_query,
            });
        }
        // Record the group's predicates *before* the hot-range checks, so a
        // burst of queries on one range inside a single batch can trigger
        // boosting just like the same burst issued sequentially (where each
        // query sees its predecessors' records). Within one batch the check
        // is slightly more eager than sequential — every query sees the
        // whole batch's records, including its own.
        let predicates = Self::group_predicates(queries, indexes, column_len, results);
        self.stats.record_queries(column, &predicates);
        if self.strategy == IndexingStrategy::Holistic {
            // The "No Time" case: hot value ranges earn extra refinement
            // right now, paid for by this batch — all boosts of the group
            // under a single latch acquisition.
            let hot_ranges: Vec<(Value, Value)> = indexes
                .iter()
                .map(|&i| &queries[i])
                .filter(|q| {
                    !q.is_empty_range()
                        && self.stats.is_hot_range(
                            q.column,
                            q.lo,
                            q.hi,
                            self.config.hot_range_query_threshold,
                        )
                })
                .map(|q| (q.lo, q.hi))
                .collect();
            if !hot_ranges.is_empty() {
                let boost = cracker.refine_in_ranges(
                    &hot_ranges,
                    self.config.boost_cracks_per_query,
                    &mut rng,
                );
                dispatches.add(boost.dispatches);
                piece_shape = (boost.piece_count, boost.avg_piece_len);
                if boost.splits > 0 {
                    self.stats.record_auxiliary_actions(column, boost.splits);
                }
            }
        }
        self.metrics.add_kernel_dispatches(dispatches);
        self.stats
            .record_refinement(column, piece_shape.0, piece_shape.1);
        Ok(())
    }

    // ------------------------------------------------------------------
    // Idle-time tuning (the holistic core)
    // ------------------------------------------------------------------

    /// Spends an idle-time budget on auxiliary refinement actions, choosing
    /// the target column of every action with the ranking model.
    ///
    /// This is the paper's continuous-tuning loop: "if queries do not
    /// trigger adaptive indexing, idle time is detected and the system uses
    /// statistics to continue triggering adaptive indexing-like actions."
    ///
    /// Takes `&self` and refines through the per-column latches, so queries
    /// on other columns are never blocked by idle-time work. Refinement
    /// does not reset the idle clock ([`Database::idle_for`]).
    pub fn run_idle(&self, budget: IdleBudget) -> IdleReport {
        let start = Instant::now();
        let mut report = IdleReport::default();
        let mut touched: BTreeSet<ColumnId> = BTreeSet::new();
        if budget.is_zero() {
            return report;
        }
        loop {
            match budget {
                IdleBudget::Actions(n) => {
                    if report.actions_applied >= n {
                        break;
                    }
                }
                IdleBudget::Duration(d) => {
                    if start.elapsed() >= d {
                        break;
                    }
                }
            }
            // Self-healing takes priority over refinement: a quarantined
            // column answers every query through the degraded scan path
            // until its cracker is rebuilt, so rebuilding buys more than
            // any crack ever could. Rebuilds are budgeted actions.
            if self.unhealthy_count.load(Ordering::Acquire) > 0 {
                let pending = self.health.lock().next_quarantined();
                if let Some(column) = pending {
                    match self.rebuild_column(column) {
                        Ok(true) => {
                            report.actions_applied += 1;
                            report.effective_actions += 1;
                            touched.insert(column);
                            continue;
                        }
                        Ok(false) => {} // lost the claim race; fall through
                        Err(_) => {
                            // Rebuild failed (re-quarantined inside
                            // rebuild_column); count the attempt so a
                            // Duration budget cannot spin on it.
                            report.actions_applied += 1;
                            continue;
                        }
                    }
                }
            }
            let Some(column) = self.ranking.choose_next(&self.stats) else {
                report.converged = true;
                break;
            };
            match self.apply_refinement_action(column) {
                Err(_) => {
                    // Column disappeared (dropped table): deregister it so
                    // the ranking model stops proposing it, instead of
                    // poisoning its statistics with fabricated refinement
                    // records.
                    self.stats.deregister_column(column);
                    continue;
                }
                Ok(split) => {
                    report.actions_applied += 1;
                    if split {
                        report.effective_actions += 1;
                    }
                    touched.insert(column);
                }
            }
        }
        if self.config.paranoia {
            // Idle-time corruption has no caller to hand an error to: it
            // takes the same containment path as query-time detection —
            // quarantine now, rebuild in a later idle window — instead of
            // aborting the process.
            for &column in &touched {
                if let Err(HolisticError::Integrity { reason, .. }) = self.paranoia_check(column) {
                    self.quarantine_column(column, &reason);
                }
            }
        }
        report.columns_touched = touched.into_iter().collect();
        report.elapsed = start.elapsed();
        self.metrics
            .add_tuning_time(report.elapsed, report.actions_applied);
        report
    }

    /// Applies exactly one auxiliary refinement action to `column`
    /// (creating the latched cracker column first if necessary). Returns
    /// whether the action introduced a new piece.
    fn apply_refinement_action(&self, column: ColumnId) -> EngineResult<bool> {
        if self.is_unhealthy(column) {
            // Healing is the only refinement a quarantined column accepts:
            // ad-hoc cracking must not resurrect a dropped structure
            // behind the health map's back.
            return self.rebuild_column(column);
        }
        let cracker = self.cracker_for(column)?;
        let mut rng = self.fork_rng();
        let outcome = cracker.refine(&mut rng);
        self.metrics.add_kernel_dispatches(outcome.dispatches);
        self.stats
            .record_refinement(column, outcome.piece_count, outcome.avg_piece_len);
        self.stats.record_auxiliary_actions(column, 1);
        Ok(outcome.split)
    }

    /// Applies `actions` refinement actions to one specific column
    /// (bypassing the ranking model). Used by experiments that need the
    /// paper's exact setup of "apply 100 random cracks to each column".
    pub fn warm_column(&self, column: ColumnId, actions: u64) -> EngineResult<Duration> {
        let start = Instant::now();
        for _ in 0..actions {
            self.apply_refinement_action(column)?;
        }
        let elapsed = start.elapsed();
        self.metrics.add_tuning_time(elapsed, actions);
        Ok(elapsed)
    }

    // ------------------------------------------------------------------
    // Offline preparation
    // ------------------------------------------------------------------

    /// Builds a full sorted index on one column, returning the build time.
    ///
    /// The index's prefix-sum array is seeded as part of the build (and of
    /// the reported build time), so offline preparation hands queries an
    /// index whose aggregates are zero-read from the first probe.
    pub fn build_full_index(&mut self, column: ColumnId) -> EngineResult<Duration> {
        self.catalog.column(column)?; // resolve before logging
        self.wal_append(&persist::WalRecord::BuildFullIndex { column })?;
        self.build_full_index_internal(column)
    }

    /// The in-memory part of a full-index build (shared with recovery's
    /// index materialization, which must not re-log).
    fn build_full_index_internal(&mut self, column: ColumnId) -> EngineResult<Duration> {
        let start = Instant::now();
        let base = self.catalog.column(column)?;
        let index = SortedIndex::build(base);
        index.seed_prefix();
        let elapsed = start.elapsed();
        self.full_indexes.insert(column, index);
        self.metrics.add_build_time(elapsed);
        self.stats
            .record_refinement(column, 1, self.config.cache_piece_target as f64 / 2.0);
        self.touch_activity();
        Ok(elapsed)
    }

    /// Drops the full index on a column (if any). Errors only when the
    /// WAL cannot log the drop.
    pub fn drop_full_index(&mut self, column: ColumnId) -> EngineResult<bool> {
        if !self.full_indexes.contains_key(&column) {
            return Ok(false);
        }
        self.wal_append(&persist::WalRecord::DropFullIndex { column })?;
        Ok(self.full_indexes.remove(&column).is_some())
    }

    /// Offline preparation: asks the advisor which indexes the (known or
    /// observed) workload wants and builds them in order of decreasing
    /// benefit density until the wall-clock budget runs out
    /// (`None` = unlimited).
    pub fn prepare_offline(
        &mut self,
        workload: &WorkloadSummary,
        budget: Option<Duration>,
    ) -> OfflineBuildReport {
        let advisor = Advisor::with_model(self.cost_model.clone());
        let catalog = &self.catalog;
        let candidates =
            advisor.candidates(workload, |id| catalog.column(id).map_or(0, |c| c.len()));
        let mut report = OfflineBuildReport::default();
        let start = Instant::now();
        let mut builds = 0u32;
        for candidate in candidates {
            if self.catalog.column(candidate.column).is_err() {
                continue;
            }
            let over_budget = match budget {
                Some(d) => {
                    let elapsed = start.elapsed();
                    if builds == 0 {
                        elapsed >= d
                    } else {
                        // Predict the next build with the average so far and
                        // stop if it would not fit.
                        elapsed + elapsed / builds > d
                    }
                }
                None => false,
            };
            if over_budget {
                report.skipped.push(candidate.column);
                continue;
            }
            if let Ok(_build) = self.build_full_index(candidate.column) {
                report.built.push(candidate.column);
                builds += 1;
            }
        }
        report.elapsed = start.elapsed();
        report
    }

    /// Charges a waiting penalty to the next executed query. Experiments use
    /// this to model offline indexing that is not finished when the first
    /// query arrives ("queries start arriving before the index is ready and
    /// have to wait for indexing to finish").
    pub fn charge_pending_penalty(&self, penalty: Duration) {
        *self.pending_penalty.lock() += penalty;
    }

    /// Fully sorts one column's cracker (instantiating it from the base
    /// data if the column was never queried): the piece table collapses to
    /// a single sorted piece whose prefix-sum array is seeded eagerly, so
    /// every subsequent range aggregate on the column is zero-read — two
    /// binary searches and one subtraction, entirely under the shared
    /// latch.
    ///
    /// This is an idle-time preparation action (the cracker-side state is
    /// *learned* state: the cracker's birth is WAL-logged but its sort
    /// order, like crack boundaries, is only captured by
    /// [`Database::snapshot`]). A no-op on columns that are already fully
    /// sorted.
    pub fn sort_column(&self, column: ColumnId) -> EngineResult<()> {
        let cracker = self.cracker_for(column)?;
        cracker.sort_fully();
        self.stats
            .record_refinement(column, 1, self.config.cache_piece_target as f64 / 2.0);
        self.touch_activity();
        Ok(())
    }

    /// Seeds prefix-sum arrays across every auxiliary structure that lacks
    /// one: sorted pieces of the cracker columns (under their write
    /// latches), offline-built full indexes, and the online tuner's
    /// indexes. Returns how many structures were seeded.
    ///
    /// Takes `&self` — this is an idle-time action (the [`BackgroundTuner`]
    /// runs it when enabled), so it must ride the shared engine lock like
    /// `run_idle`. It is cheap when there is nothing to do: one metadata
    /// walk per column plus a `OnceLock` probe per index.
    ///
    /// [`BackgroundTuner`]: crate::background::BackgroundTuner
    pub fn seed_prefix_sums(&self) -> u64 {
        let mut seeded = 0u64;
        let crackers: Vec<Arc<ConcurrentCrackerColumn>> =
            self.crackers.read().values().map(Arc::clone).collect();
        for cracker in crackers {
            seeded += cracker.seed_prefix_sums() as u64;
        }
        for index in self.full_indexes.values() {
            if index.seed_prefix() {
                seeded += 1;
            }
        }
        // Clone the Arcs under the tuner lock, seed outside it (the build
        // is a full pass over the indexed values).
        let tuner_indexes = self.online.lock().index_arcs();
        for index in tuner_indexes {
            if index.seed_prefix() {
                seeded += 1;
            }
        }
        seeded
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> Vec<Value> {
        (0..n as Value).map(|i| (i * 7919) % (n as Value)).collect()
    }

    fn scan_count(values: &[Value], lo: Value, hi: Value) -> u64 {
        values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
    }

    fn setup(strategy: IndexingStrategy, n: usize) -> (Database, ColumnId, Vec<Value>) {
        let values = dataset(n);
        let mut db = Database::new(HolisticConfig::for_testing(), strategy);
        let t = db
            .create_table("r", vec![("a", values.clone()), ("b", values.clone())])
            .unwrap();
        let col = db.column_id(t, "a").unwrap();
        (db, col, values)
    }

    #[test]
    fn database_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Database>();
    }

    #[test]
    fn every_strategy_returns_scan_equivalent_answers() {
        for strategy in IndexingStrategy::all() {
            let (db, col, values) = setup(strategy, 5000);
            for &(lo, hi) in &[(100, 200), (0, 5000), (4000, 4100), (300, 250)] {
                let r = db.execute(&Query::range(col, lo, hi)).unwrap();
                assert_eq!(
                    r.count,
                    scan_count(&values, lo, hi),
                    "{strategy} [{lo},{hi})"
                );
                let expected_sum: i128 = values
                    .iter()
                    .filter(|&&v| v >= lo && v < hi)
                    .map(|&v| i128::from(v))
                    .sum();
                assert_eq!(r.sum, expected_sum, "{strategy} sum [{lo},{hi})");
            }
        }
    }

    #[test]
    fn materialized_queries_return_the_qualifying_values() {
        let (db, col, values) = setup(IndexingStrategy::Holistic, 2000);
        let r = db
            .execute(&Query::range_materialized(col, 100, 200))
            .unwrap();
        let mut got = r.values.unwrap();
        got.sort_unstable();
        let mut expected: Vec<Value> = values
            .iter()
            .copied()
            .filter(|&v| (100..200).contains(&v))
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn adaptive_strategy_cracks_incrementally() {
        let (db, col, _) = setup(IndexingStrategy::Adaptive, 5000);
        assert_eq!(db.piece_count(col), 0);
        db.execute(&Query::range(col, 100, 200)).unwrap();
        let after_one = db.piece_count(col);
        assert!(after_one >= 2);
        db.execute(&Query::range(col, 1000, 1500)).unwrap();
        assert!(db.piece_count(col) > after_one);
        let (scan, index, crack) = db.metrics().path_breakdown();
        assert_eq!((scan, index), (0, 0));
        assert_eq!(crack, 2);
    }

    #[test]
    fn scan_only_never_builds_anything() {
        let (db, col, _) = setup(IndexingStrategy::ScanOnly, 3000);
        for i in 0..10 {
            db.execute(&Query::range(col, i * 10, i * 10 + 50)).unwrap();
        }
        assert_eq!(db.piece_count(col), 0);
        assert!(!db.has_full_index(col));
        let report = db.run_idle(IdleBudget::Actions(10));
        // Idle time still refines (the strategy only controls the query
        // path); but a scan-only database can opt out by not calling it.
        assert!(report.actions_applied > 0 || report.converged);
        let (scan, _, _) = db.metrics().path_breakdown();
        assert_eq!(scan, 10);
    }

    #[test]
    fn offline_strategy_uses_full_index_after_preparation() {
        let (mut db, col, values) = setup(IndexingStrategy::Offline, 4000);
        let mut workload = WorkloadSummary::new();
        workload.declare(col, 1000, 0.01);
        let report = db.prepare_offline(&workload, None);
        assert_eq!(report.built, vec![col]);
        assert!(db.has_full_index(col));
        let r = db.execute(&Query::range(col, 10, 60)).unwrap();
        assert_eq!(r.path, AccessPath::FullIndex);
        assert_eq!(r.count, scan_count(&values, 10, 60));
    }

    #[test]
    fn offline_budget_limits_builds() {
        let values = dataset(4000);
        let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Offline);
        let t = db
            .create_table(
                "r",
                vec![
                    ("a", values.clone()),
                    ("b", values.clone()),
                    ("c", values.clone()),
                ],
            )
            .unwrap();
        let cols = db.column_ids(t).unwrap();
        let mut workload = WorkloadSummary::new();
        for &c in &cols {
            workload.declare(c, 100, 0.01);
        }
        // A zero budget builds nothing.
        let report = db.prepare_offline(&workload, Some(Duration::ZERO));
        assert!(report.built.is_empty());
        assert_eq!(report.skipped.len(), 3);
        // An unlimited budget builds everything.
        let report = db.prepare_offline(&workload, None);
        assert_eq!(report.built.len(), 3);
    }

    #[test]
    fn holistic_idle_time_refines_hot_columns_first() {
        let (db, col_a, _) = setup(IndexingStrategy::Holistic, 8000);
        let t = db.catalog.table_id("r").unwrap();
        let col_b = db.column_id(t, "b").unwrap();
        // Only column a is queried.
        for i in 0..5 {
            db.execute(&Query::range(col_a, i * 100, i * 100 + 80))
                .unwrap();
        }
        let report = db.run_idle(IdleBudget::Actions(20));
        assert_eq!(report.actions_applied, 20);
        assert!(report.columns_touched.contains(&col_a));
        assert!(db.metrics().tuning_time() > Duration::ZERO);
        assert!(db.metrics().auxiliary_actions() >= 20);
        // The hot column received at least as much refinement as the cold one.
        assert!(db.piece_count(col_a) >= db.piece_count(col_b));
    }

    #[test]
    fn idle_budget_zero_and_convergence() {
        let (db, col, _) = setup(IndexingStrategy::Holistic, 512);
        assert_eq!(db.run_idle(IdleBudget::zero()).actions_applied, 0);
        db.execute(&Query::range(col, 0, 10)).unwrap();
        // With a tiny cache target relative to column size the ranking model
        // eventually declares convergence.
        let mut total = 0;
        for _ in 0..50 {
            let r = db.run_idle(IdleBudget::Actions(100));
            total += r.actions_applied;
            if r.converged {
                break;
            }
        }
        assert!(total > 0);
        let final_report = db.run_idle(IdleBudget::Actions(10));
        assert!(final_report.converged || final_report.actions_applied > 0);
    }

    #[test]
    fn duration_budget_stops_tuning() {
        let (db, col, _) = setup(IndexingStrategy::Holistic, 20_000);
        db.execute(&Query::range(col, 0, 100)).unwrap();
        let report = db.run_idle(IdleBudget::Duration(Duration::from_millis(5)));
        assert!(report.elapsed >= Duration::from_millis(5) || report.converged);
    }

    #[test]
    fn idle_refinement_does_not_reset_the_idle_clock() {
        // Regression: the tuner's own batches used to reset `last_activity`,
        // so the engine looked busy right after every batch and background
        // refinement throughput was capped at one batch per idle threshold.
        let (db, col, _) = setup(IndexingStrategy::Holistic, 20_000);
        db.execute(&Query::range(col, 0, 100)).unwrap();
        std::thread::sleep(Duration::from_millis(10));
        let idle_before = db.idle_for();
        db.run_idle(IdleBudget::Actions(32));
        assert!(
            db.idle_for() >= idle_before,
            "run_idle must not make the engine look busy"
        );
        // A query, in contrast, does reset the clock.
        db.execute(&Query::range(col, 0, 100)).unwrap();
        assert!(db.idle_for() < idle_before);
    }

    #[test]
    fn dropped_table_columns_are_deregistered_not_corrupted() {
        // Regression: the idle loop used to fabricate a refinement record
        // (`record_refinement(column, 1, 0.0)`) for columns that no longer
        // resolve, corrupting their statistics instead of removing them.
        // Today `drop_table` deregisters eagerly (and `run_idle` still
        // deregisters defensively if it ever meets an unresolvable column).
        let values = dataset(4000);
        let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
        let keep = db
            .create_table("keep", vec![("a", values.clone())])
            .unwrap();
        let doomed = db
            .create_table("doomed", vec![("d", values.clone())])
            .unwrap();
        let keep_col = db.column_id(keep, "a").unwrap();
        let doomed_col = db.column_id(doomed, "d").unwrap();
        for i in 0..10 {
            db.execute(&Query::range(doomed_col, i * 10, i * 10 + 50))
                .unwrap();
        }
        db.execute(&Query::range(keep_col, 0, 50)).unwrap();
        assert!(db.drop_table(doomed).unwrap());
        assert!(!db.drop_table(doomed).unwrap(), "second drop is a no-op");
        // The dead column is gone from the statistics immediately — not
        // corrupted, not lingering in the workload summary, and its queries
        // no longer dilute live columns' frequencies.
        assert!(db.stats().column(doomed_col).is_none());
        assert!(db.observed_workload().column(doomed_col).is_none());
        assert!((db.stats().frequency(keep_col) - 1.0).abs() < 1e-9);
        // Idle time is spent entirely on live columns.
        let report = db.run_idle(IdleBudget::Actions(16));
        assert!(report.actions_applied > 0 || report.converged);
        assert!(!report.columns_touched.contains(&doomed_col));
        assert!(db.stats().column(keep_col).is_some());
        // Queries on the dropped table now fail cleanly.
        assert!(db.execute(&Query::range(doomed_col, 0, 10)).is_err());
    }

    #[test]
    fn hot_range_boosting_adds_auxiliary_cracks() {
        let (db, col, _) = setup(IndexingStrategy::Holistic, 10_000);
        // Hammer one narrow range well past the hot threshold.
        for _ in 0..10 {
            db.execute(&Query::range(col, 5_000, 5_100)).unwrap();
        }
        let aux = db.stats().column(col).unwrap().auxiliary_actions;
        assert!(aux > 0, "hot range should have triggered boost cracks");
        // Under the plain adaptive strategy the same workload triggers none.
        let (adaptive, col2, _) = setup(IndexingStrategy::Adaptive, 10_000);
        for _ in 0..10 {
            adaptive.execute(&Query::range(col2, 5_000, 5_100)).unwrap();
        }
        assert_eq!(adaptive.stats().column(col2).unwrap().auxiliary_actions, 0);
    }

    #[test]
    fn online_strategy_builds_an_index_for_a_hot_column() {
        let values = dataset(50_000);
        let mut config = HolisticConfig::for_testing();
        config.epoch_length = 10;
        let mut db = Database::new(config, IndexingStrategy::Online);
        let t = db.create_table("r", vec![("a", values.clone())]).unwrap();
        let col = db.column_id(t, "a").unwrap();
        for i in 0..40 {
            db.execute(&Query::range(col, (i % 10) * 100, (i % 10) * 100 + 50))
                .unwrap();
        }
        // After a few epochs the online tuner materialized a full index and
        // queries use it.
        let last = db.execute(&Query::range(col, 0, 50)).unwrap();
        assert_eq!(last.path, AccessPath::FullIndex);
        assert_eq!(last.count, scan_count(&values, 0, 50));
        assert!(db.metrics().build_time() > Duration::ZERO);
    }

    #[test]
    fn tuner_built_indexes_survive_a_switch_to_offline() {
        // Regression: gating the tuner probe on `strategy == Online` alone
        // silently dropped tuner-built indexes from the plan after an
        // Online-to-Offline strategy switch.
        let values = dataset(50_000);
        let mut config = HolisticConfig::for_testing();
        config.epoch_length = 10;
        let mut db = Database::new(config, IndexingStrategy::Online);
        let t = db.create_table("r", vec![("a", values)]).unwrap();
        let col = db.column_id(t, "a").unwrap();
        for i in 0..40 {
            db.execute(&Query::range(col, (i % 10) * 100, (i % 10) * 100 + 50))
                .unwrap();
        }
        assert_eq!(
            db.execute(&Query::range(col, 0, 50)).unwrap().path,
            AccessPath::FullIndex,
            "tuner should have built an index under Online"
        );
        db.set_strategy(IndexingStrategy::Offline);
        let r = db.execute(&Query::range(col, 0, 50)).unwrap();
        assert_eq!(r.path, AccessPath::FullIndex, "index must still be used");
    }

    #[test]
    fn pending_penalty_is_charged_to_the_next_query_only() {
        let (db, col, _) = setup(IndexingStrategy::Offline, 1000);
        db.charge_pending_penalty(Duration::from_millis(50));
        let first = db.execute(&Query::range(col, 0, 10)).unwrap();
        assert!(first.latency >= Duration::from_millis(50));
        let second = db.execute(&Query::range(col, 0, 10)).unwrap();
        assert!(second.latency < Duration::from_millis(50));
    }

    #[test]
    fn warm_column_applies_exactly_the_requested_actions() {
        let (db, col, _) = setup(IndexingStrategy::Holistic, 5000);
        let before = db.cracks_performed(col);
        db.warm_column(col, 64).unwrap();
        assert!(db.cracks_performed(col) >= before);
        assert!(db.piece_count(col) > 1);
        assert_eq!(db.stats().column(col).unwrap().auxiliary_actions, 64);
    }

    #[test]
    fn unknown_columns_are_reported_as_errors() {
        let (mut db, _, _) = setup(IndexingStrategy::Holistic, 100);
        let bogus = ColumnId::new(TableId(99), 0);
        assert!(db.execute(&Query::range(bogus, 0, 10)).is_err());
        assert!(db.build_full_index(bogus).is_err());
        assert!(db.warm_column(bogus, 1).is_err());
        assert!(db.column_id(TableId(99), "a").is_err());
    }

    #[test]
    fn kernel_policy_is_threaded_into_crackers_and_counted() {
        use holistic_cracking::CrackKernel;
        for (kernel, expect_predicated) in [
            (CrackKernel::Branchy, false),
            (CrackKernel::Predicated, true),
        ] {
            let values = dataset(5000);
            let config = HolisticConfig::for_testing().with_crack_kernel(kernel);
            let mut db = Database::new(config, IndexingStrategy::Adaptive);
            let t = db.create_table("r", vec![("a", values.clone())]).unwrap();
            let col = db.column_id(t, "a").unwrap();
            for i in 0..5 {
                let r = db
                    .execute(&Query::range(col, i * 100, i * 100 + 80))
                    .unwrap();
                assert_eq!(r.count, scan_count(&values, i * 100, i * 100 + 80));
            }
            let d = db.metrics().kernel_dispatches();
            assert!(d.total() >= 5, "{kernel}: at least one dispatch per query");
            if expect_predicated {
                assert_eq!(d.branchy, 0, "{kernel}");
                assert!(d.predicated > 0, "{kernel}");
            } else {
                assert_eq!(d.predicated, 0, "{kernel}");
                assert!(d.branchy > 0, "{kernel}");
            }
            // Idle-time refinement also dispatches kernels and is counted.
            let before = db.metrics().kernel_dispatches().total();
            db.run_idle(IdleBudget::Actions(8));
            assert!(db.metrics().kernel_dispatches().total() >= before);
        }
    }

    #[test]
    fn execute_batch_matches_sequential_for_every_strategy() {
        let batch_bounds = [(100, 200), (150, 250), (4000, 4100), (300, 250), (0, 5000)];
        for strategy in IndexingStrategy::all() {
            let (db, col, values) = setup(strategy, 5000);
            let (seq_db, seq_col, _) = setup(strategy, 5000);
            let queries: Vec<Query> = batch_bounds
                .iter()
                .map(|&(lo, hi)| Query::range(col, lo, hi))
                .collect();
            let got = db.execute_batch(&queries).unwrap();
            assert_eq!(got.len(), queries.len());
            for (r, &(lo, hi)) in got.iter().zip(&batch_bounds) {
                let seq = seq_db.execute(&Query::range(seq_col, lo, hi)).unwrap();
                assert_eq!(r.count, seq.count, "{strategy} [{lo},{hi})");
                assert_eq!(r.sum, seq.sum, "{strategy} [{lo},{hi})");
                assert_eq!(r.count, scan_count(&values, lo, hi), "{strategy}");
            }
            assert_eq!(db.metrics().query_count(), queries.len() as u64);
            assert_eq!(db.metrics().batches_executed(), 1);
            assert_eq!(db.metrics().batched_queries(), queries.len() as u64);
            assert!(db.validate());
        }
    }

    #[test]
    fn execute_batch_produces_identical_piece_boundaries_to_sequential() {
        // Plain cracking is order-independent, so the batched multi-pivot
        // pass must leave the engine's cracker index in exactly the state a
        // sequential replay produces.
        let (batch_db, col, _) = setup(IndexingStrategy::Adaptive, 8000);
        let (seq_db, seq_col, _) = setup(IndexingStrategy::Adaptive, 8000);
        let bounds: Vec<(Value, Value)> = (0..16).map(|i| (i * 450, i * 450 + 90)).collect();
        let queries: Vec<Query> = bounds
            .iter()
            .map(|&(lo, hi)| Query::range(col, lo, hi))
            .collect();
        batch_db.execute_batch(&queries).unwrap();
        for &(lo, hi) in &bounds {
            seq_db.execute(&Query::range(seq_col, lo, hi)).unwrap();
        }
        assert_eq!(
            batch_db.cracker_pieces(col),
            seq_db.cracker_pieces(seq_col),
            "batch and sequential execution must refine the index identically"
        );
        // The batch needed far fewer partitioning passes to get there.
        assert!(batch_db.cracks_performed(col) < seq_db.cracks_performed(seq_col));
    }

    #[test]
    fn execute_batch_mixed_columns_and_materialization() {
        let (db, col_a, values) = setup(IndexingStrategy::Holistic, 3000);
        let t = db.catalog.table_id("r").unwrap();
        let col_b = db.column_id(t, "b").unwrap();
        let queries = vec![
            Query::range(col_a, 100, 200),
            Query::range_materialized(col_b, 500, 700),
            Query::range(col_a, 2500, 2600),
            Query::range(col_b, 10, 20),
        ];
        let got = db.execute_batch(&queries).unwrap();
        for (r, q) in got.iter().zip(&queries) {
            assert_eq!(r.count, scan_count(&values, q.lo, q.hi));
            assert_eq!(r.values.is_some(), q.materialize);
        }
        let mut materialized = got[1].values.clone().unwrap();
        materialized.sort_unstable();
        let mut expected: Vec<Value> = values
            .iter()
            .copied()
            .filter(|&v| (500..700).contains(&v))
            .collect();
        expected.sort_unstable();
        assert_eq!(materialized, expected);
        // Both columns were cracked under their own latch.
        assert!(db.piece_count(col_a) >= 2);
        assert!(db.piece_count(col_b) >= 2);
    }

    #[test]
    fn execute_batch_validates_columns_up_front() {
        let (db, col, _) = setup(IndexingStrategy::Adaptive, 1000);
        let bogus = ColumnId::new(TableId(99), 0);
        let queries = vec![Query::range(col, 0, 10), Query::range(bogus, 0, 10)];
        assert!(db.execute_batch(&queries).is_err());
        // Nothing executed: no metrics, no cracker columns.
        assert_eq!(db.metrics().query_count(), 0);
        assert_eq!(db.piece_count(col), 0);
        // The empty batch is a no-op.
        assert!(db.execute_batch(&[]).unwrap().is_empty());
        assert_eq!(db.metrics().batches_executed(), 0);
    }

    #[test]
    fn execute_batch_uses_one_latch_pass_per_cold_column() {
        let (db, col, _) = setup(IndexingStrategy::Adaptive, 5000);
        let queries: Vec<Query> = (0..32)
            .map(|i| Query::range(col, i * 150, i * 150 + 60))
            .collect();
        db.execute_batch(&queries).unwrap();
        // The cold column was partitioned by a single multi-pivot pass.
        assert_eq!(db.cracks_performed(col), 1);
        assert_eq!(db.metrics().kernel_dispatches().total(), 1);
        assert_eq!(db.stats().column(col).unwrap().queries, 32);
        assert_eq!(db.observed_workload().total_queries(), 32);
    }

    #[test]
    fn execute_batch_hot_range_boosting_still_applies() {
        // A burst on one range inside a *single* batch must trigger boost
        // cracks, exactly like the same burst issued sequentially: the
        // group's predicates are recorded before the hot-range checks.
        let (db, col, _) = setup(IndexingStrategy::Holistic, 10_000);
        let queries: Vec<Query> = (0..10).map(|_| Query::range(col, 5_000, 5_100)).collect();
        db.execute_batch(&queries).unwrap();
        let aux = db.stats().column(col).unwrap().auxiliary_actions;
        assert!(aux > 0, "one hot batch should trigger boost cracks");
    }

    #[test]
    fn resolved_aggregates_answer_from_the_cache() {
        let (db, col, values) = setup(IndexingStrategy::Adaptive, 5000);
        // The cracking select itself seeds the cache (fused kernels), so
        // both the cold and the resolved query are pure cache hits.
        let first = db.execute(&Query::range(col, 100, 900)).unwrap();
        let again = db.execute(&Query::range(col, 100, 900)).unwrap();
        assert_eq!(first.count, again.count);
        assert_eq!(first.sum, again.sum);
        assert_eq!(first.sum, {
            values
                .iter()
                .filter(|&&v| (100..900).contains(&v))
                .map(|&v| i128::from(v))
                .sum::<i128>()
        });
        let cache = db.metrics().aggregate_cache();
        assert_eq!(cache.hits, 2, "both answers composed from cached sums");
        assert_eq!(
            cache.scanned_values, 0,
            "no data-array reads for aggregates"
        );
        // The batched path records into the same counters.
        let batch: Vec<Query> = (0..4)
            .map(|i| Query::range(col, i * 500, i * 500 + 100))
            .collect();
        db.execute_batch(&batch).unwrap();
        let cache = db.metrics().aggregate_cache();
        assert_eq!(cache.hits, 2 + 4);
        assert_eq!(cache.scanned_values, 0);
    }

    #[test]
    fn full_index_aggregates_answer_from_the_prefix() {
        // Offline preparation seeds the index's prefix-sum array, so every
        // indexed count/sum probe is zero-read and reported as a prefix hit.
        let (mut db, col, values) = setup(IndexingStrategy::Offline, 4000);
        let mut workload = WorkloadSummary::new();
        workload.declare(col, 1000, 0.01);
        db.prepare_offline(&workload, None);
        for i in 0..6 {
            let r = db
                .execute(&Query::range(col, i * 500, i * 500 + 120))
                .unwrap();
            assert_eq!(r.path, AccessPath::FullIndex);
            let expected: i128 = values
                .iter()
                .filter(|&&v| (i * 500..i * 500 + 120).contains(&v))
                .map(|&v| i128::from(v))
                .sum();
            assert_eq!(r.sum, expected);
        }
        let cache = db.metrics().aggregate_cache();
        assert_eq!(cache.prefix, 6, "every indexed aggregate is a prefix hit");
        assert_eq!(cache.partials + cache.misses, 0);
        assert_eq!(cache.scanned_values, 0);
    }

    #[test]
    fn online_tuner_indexes_are_prefix_seeded_on_build() {
        let values = dataset(50_000);
        let mut config = HolisticConfig::for_testing();
        config.epoch_length = 10;
        let mut db = Database::new(config, IndexingStrategy::Online);
        let t = db.create_table("r", vec![("a", values)]).unwrap();
        let col = db.column_id(t, "a").unwrap();
        for i in 0..40 {
            db.execute(&Query::range(col, (i % 10) * 100, (i % 10) * 100 + 50))
                .unwrap();
        }
        assert_eq!(
            db.execute(&Query::range(col, 0, 50)).unwrap().path,
            AccessPath::FullIndex
        );
        db.reset_metrics();
        db.execute(&Query::range(col, 300, 800)).unwrap();
        let cache = db.metrics().aggregate_cache();
        assert_eq!(cache.prefix, 1, "tuner-built index was seeded at build");
        assert_eq!(cache.scanned_values, 0);
    }

    #[test]
    fn seed_prefix_sums_covers_crackers_and_indexes() {
        let (mut db, col, _) = setup(IndexingStrategy::Adaptive, 2000);
        // A cracked (unsorted) column has nothing to seed.
        db.execute(&Query::range(col, 100, 200)).unwrap();
        assert_eq!(db.seed_prefix_sums(), 0);
        // An index built through build_full_index is seeded eagerly…
        db.build_full_index(col).unwrap();
        assert_eq!(db.seed_prefix_sums(), 0, "already seeded at build");
        // …and a second column's index dropped/rebuilt path stays covered.
        let t = db.catalog.table_id("r").unwrap();
        let col_b = db.column_id(t, "b").unwrap();
        db.build_full_index(col_b).unwrap();
        assert_eq!(db.seed_prefix_sums(), 0);
    }

    #[test]
    fn metrics_track_every_query() {
        let (db, col, _) = setup(IndexingStrategy::Adaptive, 1000);
        for i in 0..5 {
            db.execute(&Query::range(col, i, i + 100)).unwrap();
        }
        assert_eq!(db.metrics().query_count(), 5);
        let cumulative = db.metrics().cumulative_micros();
        assert_eq!(cumulative.len(), 5);
        assert!(cumulative.windows(2).all(|w| w[0] <= w[1]));
        db.reset_metrics();
        assert_eq!(db.metrics().query_count(), 0);
    }

    #[test]
    fn strategy_can_be_switched_mid_flight() {
        let (mut db, col, values) = setup(IndexingStrategy::Adaptive, 3000);
        db.execute(&Query::range(col, 100, 200)).unwrap();
        db.set_strategy(IndexingStrategy::ScanOnly);
        assert_eq!(db.strategy(), IndexingStrategy::ScanOnly);
        let r = db.execute(&Query::range(col, 100, 200)).unwrap();
        assert_eq!(r.path, AccessPath::Scan);
        assert_eq!(r.count, scan_count(&values, 100, 200));
    }

    #[test]
    fn observed_workload_feeds_the_advisor() {
        let (db, col, _) = setup(IndexingStrategy::Holistic, 2000);
        for _ in 0..20 {
            db.execute(&Query::range(col, 500, 600)).unwrap();
        }
        let summary = db.observed_workload();
        assert_eq!(summary.total_queries(), 20);
        assert!(summary.column(col).unwrap().avg_selectivity > 0.0);
    }

    #[test]
    fn shared_reference_queries_agree_with_scan_across_threads() {
        let n = 20_000;
        let (db, col, values) = setup(IndexingStrategy::Holistic, n);
        let db = std::sync::Arc::new(db);
        let expected: Vec<(Value, Value, u64)> = (0..12)
            .map(|i| {
                let lo = (i * 1511) % (n as Value - 600);
                let hi = lo + 500;
                (lo, hi, scan_count(&values, lo, hi))
            })
            .collect();
        let mut handles = Vec::new();
        for t in 0..4u64 {
            let db = std::sync::Arc::clone(&db);
            let expected = expected.clone();
            handles.push(std::thread::spawn(move || {
                for round in 0..6 {
                    for &(lo, hi, want) in &expected {
                        let r = db.execute(&Query::range(col, lo, hi)).unwrap();
                        assert_eq!(r.count, want, "thread {t} round {round} [{lo},{hi})");
                    }
                    // Interleave idle-time refinement through &self too.
                    db.run_idle(IdleBudget::Actions(4));
                }
            }));
        }
        for h in handles {
            h.join().expect("query thread panicked");
        }
        assert!(db.validate());
        assert_eq!(db.metrics().query_count(), 4 * 6 * 12);
    }
}
