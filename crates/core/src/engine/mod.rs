//! The query engine: a small column-store `Database` whose select operators
//! implement every indexing strategy of the paper side by side.

pub mod query;
pub mod timeline;

use std::collections::{BTreeMap, BTreeSet};
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use holistic_cracking::stochastic::crack_select_with_policy;
use holistic_cracking::CrackerColumn;
use holistic_offline::{Advisor, CostModel, SortedIndex, WorkloadSummary};
use holistic_online::OnlineTuner;
use holistic_storage::{Catalog, Column, ColumnId, StorageError, Table, TableId, Value};

use crate::config::HolisticConfig;
use crate::idle::{IdleBudget, IdleReport};
use crate::metrics::{EngineMetrics, QueryRecord};
use crate::ranking::RankingModel;
use crate::stats::KernelStatistics;
use crate::strategy::IndexingStrategy;

use self::query::{AccessPath, Query, QueryResult};

/// Result type of engine operations.
pub type EngineResult<T> = Result<T, StorageError>;

/// Report of an offline preparation pass (index builds before the workload).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OfflineBuildReport {
    /// Columns whose full index was built.
    pub built: Vec<ColumnId>,
    /// Columns the advisor wanted but the budget did not allow.
    pub skipped: Vec<ColumnId>,
    /// Wall-clock time spent building.
    pub elapsed: Duration,
}

/// The holistic indexing database engine.
///
/// One `Database` hosts base tables (a [`Catalog`] of columns), the three
/// kinds of auxiliary index structures (cracker columns, full sorted
/// indexes, and the online tuner's indexes), the continuously maintained
/// [`KernelStatistics`], and the [`RankingModel`] that drives idle-time
/// refinement. The [`IndexingStrategy`] selects which machinery the select
/// operators use, so identical workloads can be replayed against every
/// strategy for comparison.
#[derive(Debug)]
pub struct Database {
    config: HolisticConfig,
    strategy: IndexingStrategy,
    catalog: Catalog,
    crackers: BTreeMap<ColumnId, CrackerColumn>,
    full_indexes: BTreeMap<ColumnId, SortedIndex>,
    stats: KernelStatistics,
    ranking: RankingModel,
    online: OnlineTuner,
    cost_model: CostModel,
    metrics: EngineMetrics,
    rng: StdRng,
    query_sequence: u64,
    pending_penalty: Duration,
    last_activity: Instant,
}

impl Database {
    /// Creates an empty database with the given configuration and strategy.
    #[must_use]
    pub fn new(config: HolisticConfig, strategy: IndexingStrategy) -> Self {
        let ranking = RankingModel::new(config.cache_piece_target);
        let online = OnlineTuner::new(config.epoch_length.max(1));
        let rng = StdRng::seed_from_u64(config.rng_seed);
        Database {
            stats: KernelStatistics::new(config.hot_range_buckets),
            ranking,
            online,
            cost_model: CostModel::new(),
            metrics: EngineMetrics::new(),
            rng,
            query_sequence: 0,
            pending_penalty: Duration::ZERO,
            last_activity: Instant::now(),
            catalog: Catalog::new(),
            crackers: BTreeMap::new(),
            full_indexes: BTreeMap::new(),
            config,
            strategy,
        }
    }

    /// The active indexing strategy.
    #[must_use]
    pub fn strategy(&self) -> IndexingStrategy {
        self.strategy
    }

    /// Switches the indexing strategy. Existing auxiliary structures are
    /// kept; they simply stop (or start) being used and refined.
    pub fn set_strategy(&mut self, strategy: IndexingStrategy) {
        self.strategy = strategy;
    }

    /// The engine configuration.
    #[must_use]
    pub fn config(&self) -> &HolisticConfig {
        &self.config
    }

    /// The continuously maintained kernel statistics.
    #[must_use]
    pub fn stats(&self) -> &KernelStatistics {
        &self.stats
    }

    /// The engine metrics (per-query latencies, tuning time, …).
    #[must_use]
    pub fn metrics(&self) -> &EngineMetrics {
        &self.metrics
    }

    /// Clears the recorded metrics (auxiliary structures are kept).
    pub fn reset_metrics(&mut self) {
        self.metrics.reset();
    }

    /// The workload summary observed so far (consumable by the advisor).
    #[must_use]
    pub fn observed_workload(&self) -> &WorkloadSummary {
        self.stats.summary()
    }

    /// Time elapsed since the last query or explicit tuning call — the
    /// signal the background tuner uses to detect idle time.
    #[must_use]
    pub fn idle_for(&self) -> Duration {
        self.last_activity.elapsed()
    }

    // ------------------------------------------------------------------
    // Schema and data loading
    // ------------------------------------------------------------------

    /// Creates a table from `(column name, values)` pairs and registers all
    /// of its columns with the statistics store (catalog knowledge).
    pub fn create_table(
        &mut self,
        name: impl Into<String>,
        columns: Vec<(&str, Vec<Value>)>,
    ) -> EngineResult<TableId> {
        let mut table = Table::new(name);
        for (col_name, values) in columns {
            table.add_column_from_values(col_name, values)?;
        }
        let id = self.catalog.register(table)?;
        for column_id in self.catalog.all_column_ids() {
            if column_id.table == id {
                let len = self.catalog.column(column_id)?.len();
                self.stats.register_column(column_id, len);
            }
        }
        Ok(id)
    }

    /// Resolves a column by table id and column name.
    pub fn column_id(&self, table: TableId, column: &str) -> EngineResult<ColumnId> {
        let t = self.catalog.try_table(table)?;
        let idx = t
            .column_index(column)
            .ok_or_else(|| StorageError::ColumnNotFound(column.to_string()))?;
        Ok(ColumnId::new(table, idx as u32))
    }

    /// All column ids of a table, in positional order.
    pub fn column_ids(&self, table: TableId) -> EngineResult<Vec<ColumnId>> {
        let t = self.catalog.try_table(table)?;
        Ok((0..t.column_count())
            .map(|i| ColumnId::new(table, i as u32))
            .collect())
    }

    /// Number of rows in a table.
    pub fn row_count(&self, table: TableId) -> EngineResult<usize> {
        Ok(self.catalog.try_table(table)?.row_count())
    }

    /// The base column addressed by `id`.
    pub fn base_column(&self, id: ColumnId) -> EngineResult<&Column> {
        self.catalog.column(id)
    }

    // ------------------------------------------------------------------
    // Introspection of auxiliary structures
    // ------------------------------------------------------------------

    /// Whether a full sorted index exists for the column.
    #[must_use]
    pub fn has_full_index(&self, id: ColumnId) -> bool {
        self.full_indexes.contains_key(&id)
    }

    /// Number of pieces of the column's cracker index (0 if the column has
    /// never been cracked).
    #[must_use]
    pub fn piece_count(&self, id: ColumnId) -> usize {
        self.crackers.get(&id).map_or(0, CrackerColumn::piece_count)
    }

    /// Total crack actions (query-driven plus auxiliary) applied to a column.
    #[must_use]
    pub fn cracks_performed(&self, id: ColumnId) -> u64 {
        self.crackers
            .get(&id)
            .map_or(0, CrackerColumn::cracks_performed)
    }

    // ------------------------------------------------------------------
    // Query execution
    // ------------------------------------------------------------------

    /// Executes a range query under the active strategy.
    pub fn execute(&mut self, q: &Query) -> EngineResult<QueryResult> {
        let start = Instant::now();
        let column_len = self.catalog.column(q.column)?.len();
        let (path, count, sum, values) = match self.strategy {
            IndexingStrategy::ScanOnly => self.exec_scan(q)?,
            IndexingStrategy::Offline | IndexingStrategy::Online => {
                if self.full_indexes.contains_key(&q.column) {
                    self.exec_index(q)?
                } else if let Some(idx) = self.online.index(q.column) {
                    let r = Self::exec_with_index(q, idx);
                    (AccessPath::FullIndex, r.0, r.1, r.2)
                } else {
                    self.exec_scan(q)?
                }
            }
            IndexingStrategy::Adaptive => self.exec_crack(q, false)?,
            IndexingStrategy::Holistic => self.exec_crack(q, true)?,
        };
        let mut latency = start.elapsed() + self.pending_penalty;
        self.pending_penalty = Duration::ZERO;

        // Continuous statistics (all strategies keep them so that switching
        // to holistic mid-flight has knowledge to work with; the overhead is
        // a few counters per query).
        let selectivity = if column_len == 0 {
            0.0
        } else {
            count as f64 / column_len as f64
        };
        self.stats.record_query(q.column, q.lo, q.hi, selectivity);
        if let Some(cracker) = self.crackers.get(&q.column) {
            self.stats
                .record_refinement(q.column, cracker.piece_count(), cracker.avg_piece_len());
        }

        // Online indexing: monitoring + epoch-based tuning. The time spent
        // building indexes online is charged to the query that triggered the
        // epoch boundary, which is exactly the online-indexing penalty the
        // paper describes.
        if self.strategy == IndexingStrategy::Online {
            let tune_start = Instant::now();
            let observed_cost = self.cost_model.scan_cost(column_len);
            let catalog = &self.catalog;
            let _ = self.online.record_and_tune(
                q.column,
                q.lo,
                q.hi,
                selectivity,
                if path == AccessPath::FullIndex {
                    self.cost_model.index_probe_cost(column_len, selectivity)
                } else {
                    observed_cost
                },
                |id| catalog.column(id).ok().cloned(),
            );
            let tuning = tune_start.elapsed();
            self.metrics.add_build_time(tuning);
            latency += tuning;
        }

        let result = QueryResult {
            count,
            sum,
            values,
            path,
            latency,
        };
        self.metrics.record_query(QueryRecord {
            sequence: self.query_sequence,
            column: q.column,
            path,
            latency,
            result_count: count,
        });
        self.query_sequence += 1;
        self.last_activity = Instant::now();
        Ok(result)
    }

    fn exec_scan(&self, q: &Query) -> EngineResult<(AccessPath, u64, i128, Option<Vec<Value>>)> {
        let column = self.catalog.column(q.column)?;
        let values = column.values();
        if q.is_empty_range() {
            return Ok((AccessPath::Scan, 0, 0, q.materialize.then(Vec::new)));
        }
        // Route through the storage layer's chunked, auto-vectorizable scan
        // kernels so the scan baseline shares the branch-free pipeline.
        let count = holistic_storage::scan_count(values, q.lo, q.hi);
        let sum = holistic_storage::scan_sum(values, q.lo, q.hi);
        let out = q
            .materialize
            .then(|| holistic_storage::scan_materialize(values, q.lo, q.hi));
        Ok((AccessPath::Scan, count, sum, out))
    }

    fn exec_with_index(q: &Query, idx: &SortedIndex) -> (u64, i128, Option<Vec<Value>>) {
        let count = idx.count(q.lo, q.hi);
        let sum = idx.range_sum(q.lo, q.hi);
        let values = q.materialize.then(|| idx.range_values(q.lo, q.hi).to_vec());
        (count, sum, values)
    }

    fn exec_index(&self, q: &Query) -> EngineResult<(AccessPath, u64, i128, Option<Vec<Value>>)> {
        let idx = self
            .full_indexes
            .get(&q.column)
            .expect("caller checked index existence");
        let (count, sum, values) = Self::exec_with_index(q, idx);
        Ok((AccessPath::FullIndex, count, sum, values))
    }

    fn exec_crack(
        &mut self,
        q: &Query,
        holistic: bool,
    ) -> EngineResult<(AccessPath, u64, i128, Option<Vec<Value>>)> {
        // A full index (e.g. built during a-priori idle time) trumps cracking.
        if self.full_indexes.contains_key(&q.column) {
            return self.exec_index(q);
        }
        let keep_rowids = self.config.keep_rowids;
        if !self.crackers.contains_key(&q.column) {
            let base = self.catalog.column(q.column)?;
            self.crackers.insert(
                q.column,
                CrackerColumn::from_column(base, keep_rowids).with_kernel(self.config.crack_kernel),
            );
        }
        let policy = self.config.crack_policy;
        let cracker = self
            .crackers
            .get_mut(&q.column)
            .expect("inserted or already present");
        let dispatches_before = cracker.kernel_dispatches();
        let range = crack_select_with_policy(cracker, q.lo, q.hi, policy, &mut self.rng);
        let view = cracker.view(range.clone());
        let count = view.len() as u64;
        let sum: i128 = view.iter().map(|&v| i128::from(v)).sum();
        let values = q.materialize.then(|| view.to_vec());

        if holistic && !q.is_empty_range() {
            // The "No Time" case: no idle time may ever appear, but a hot
            // value range earns extra refinement right now, during query
            // processing, paid for by this query.
            let hot = self.stats.is_hot_range(
                q.column,
                q.lo,
                q.hi,
                self.config.hot_range_query_threshold,
            );
            if hot {
                let mut applied = 0;
                for _ in 0..self.config.boost_cracks_per_query {
                    if cracker.random_crack_in_range(q.lo, q.hi, &mut self.rng) {
                        applied += 1;
                    }
                }
                if applied > 0 {
                    self.stats.record_auxiliary_actions(q.column, applied);
                }
            }
        }
        let delta = cracker.kernel_dispatches().since(dispatches_before);
        self.metrics.add_kernel_dispatches(delta);
        Ok((AccessPath::Crack, count, sum, values))
    }

    // ------------------------------------------------------------------
    // Idle-time tuning (the holistic core)
    // ------------------------------------------------------------------

    /// Spends an idle-time budget on auxiliary refinement actions, choosing
    /// the target column of every action with the ranking model.
    ///
    /// This is the paper's continuous-tuning loop: "if queries do not
    /// trigger adaptive indexing, idle time is detected and the system uses
    /// statistics to continue triggering adaptive indexing-like actions."
    pub fn run_idle(&mut self, budget: IdleBudget) -> IdleReport {
        let start = Instant::now();
        let mut report = IdleReport::default();
        let mut touched: BTreeSet<ColumnId> = BTreeSet::new();
        if budget.is_zero() {
            return report;
        }
        loop {
            match budget {
                IdleBudget::Actions(n) => {
                    if report.actions_applied >= n {
                        break;
                    }
                }
                IdleBudget::Duration(d) => {
                    if start.elapsed() >= d {
                        break;
                    }
                }
            }
            let Some(column) = self.ranking.choose_next(&self.stats) else {
                report.converged = true;
                break;
            };
            if self.apply_refinement_action(column).is_err() {
                // Column disappeared (dropped table); forget it and continue.
                self.stats.record_refinement(column, 1, 0.0);
                continue;
            }
            report.actions_applied += 1;
            touched.insert(column);
        }
        report.columns_touched = touched.into_iter().collect();
        report.elapsed = start.elapsed();
        self.metrics
            .add_tuning_time(report.elapsed, report.actions_applied);
        self.last_activity = Instant::now();
        report
    }

    /// Applies exactly one auxiliary refinement action to `column`
    /// (creating the cracker column first if necessary).
    fn apply_refinement_action(&mut self, column: ColumnId) -> EngineResult<()> {
        let keep_rowids = self.config.keep_rowids;
        if !self.crackers.contains_key(&column) {
            let base = self.catalog.column(column)?;
            self.crackers.insert(
                column,
                CrackerColumn::from_column(base, keep_rowids).with_kernel(self.config.crack_kernel),
            );
        }
        let cracker = self
            .crackers
            .get_mut(&column)
            .expect("inserted or already present");
        let dispatches_before = cracker.kernel_dispatches();
        cracker.random_crack(&mut self.rng);
        let pieces = cracker.piece_count();
        let avg = cracker.avg_piece_len();
        let delta = cracker.kernel_dispatches().since(dispatches_before);
        self.metrics.add_kernel_dispatches(delta);
        self.stats.record_refinement(column, pieces, avg);
        self.stats.record_auxiliary_actions(column, 1);
        Ok(())
    }

    /// Applies `actions` refinement actions to one specific column
    /// (bypassing the ranking model). Used by experiments that need the
    /// paper's exact setup of "apply 100 random cracks to each column".
    pub fn warm_column(&mut self, column: ColumnId, actions: u64) -> EngineResult<Duration> {
        let start = Instant::now();
        for _ in 0..actions {
            self.apply_refinement_action(column)?;
        }
        let elapsed = start.elapsed();
        self.metrics.add_tuning_time(elapsed, actions);
        self.last_activity = Instant::now();
        Ok(elapsed)
    }

    // ------------------------------------------------------------------
    // Offline preparation
    // ------------------------------------------------------------------

    /// Builds a full sorted index on one column, returning the build time.
    pub fn build_full_index(&mut self, column: ColumnId) -> EngineResult<Duration> {
        let start = Instant::now();
        let base = self.catalog.column(column)?;
        let index = SortedIndex::build(base);
        let elapsed = start.elapsed();
        self.full_indexes.insert(column, index);
        self.metrics.add_build_time(elapsed);
        self.stats
            .record_refinement(column, 1, self.config.cache_piece_target as f64 / 2.0);
        self.last_activity = Instant::now();
        Ok(elapsed)
    }

    /// Drops the full index on a column (if any).
    pub fn drop_full_index(&mut self, column: ColumnId) -> bool {
        self.full_indexes.remove(&column).is_some()
    }

    /// Offline preparation: asks the advisor which indexes the (known or
    /// observed) workload wants and builds them in order of decreasing
    /// benefit density until the wall-clock budget runs out
    /// (`None` = unlimited).
    pub fn prepare_offline(
        &mut self,
        workload: &WorkloadSummary,
        budget: Option<Duration>,
    ) -> OfflineBuildReport {
        let advisor = Advisor::with_model(self.cost_model.clone());
        let catalog = &self.catalog;
        let candidates =
            advisor.candidates(workload, |id| catalog.column(id).map_or(0, |c| c.len()));
        let mut report = OfflineBuildReport::default();
        let start = Instant::now();
        let mut builds = 0u32;
        for candidate in candidates {
            if self.catalog.column(candidate.column).is_err() {
                continue;
            }
            let over_budget = match budget {
                Some(d) => {
                    let elapsed = start.elapsed();
                    if builds == 0 {
                        elapsed >= d
                    } else {
                        // Predict the next build with the average so far and
                        // stop if it would not fit.
                        elapsed + elapsed / builds > d
                    }
                }
                None => false,
            };
            if over_budget {
                report.skipped.push(candidate.column);
                continue;
            }
            if let Ok(_build) = self.build_full_index(candidate.column) {
                report.built.push(candidate.column);
                builds += 1;
            }
        }
        report.elapsed = start.elapsed();
        report
    }

    /// Charges a waiting penalty to the next executed query. Experiments use
    /// this to model offline indexing that is not finished when the first
    /// query arrives ("queries start arriving before the index is ready and
    /// have to wait for indexing to finish").
    pub fn charge_pending_penalty(&mut self, penalty: Duration) {
        self.pending_penalty += penalty;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dataset(n: usize) -> Vec<Value> {
        (0..n as Value).map(|i| (i * 7919) % (n as Value)).collect()
    }

    fn scan_count(values: &[Value], lo: Value, hi: Value) -> u64 {
        values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
    }

    fn setup(strategy: IndexingStrategy, n: usize) -> (Database, ColumnId, Vec<Value>) {
        let values = dataset(n);
        let mut db = Database::new(HolisticConfig::for_testing(), strategy);
        let t = db
            .create_table("r", vec![("a", values.clone()), ("b", values.clone())])
            .unwrap();
        let col = db.column_id(t, "a").unwrap();
        (db, col, values)
    }

    #[test]
    fn every_strategy_returns_scan_equivalent_answers() {
        for strategy in IndexingStrategy::all() {
            let (mut db, col, values) = setup(strategy, 5000);
            for &(lo, hi) in &[(100, 200), (0, 5000), (4000, 4100), (300, 250)] {
                let r = db.execute(&Query::range(col, lo, hi)).unwrap();
                assert_eq!(
                    r.count,
                    scan_count(&values, lo, hi),
                    "{strategy} [{lo},{hi})"
                );
                let expected_sum: i128 = values
                    .iter()
                    .filter(|&&v| v >= lo && v < hi)
                    .map(|&v| i128::from(v))
                    .sum();
                assert_eq!(r.sum, expected_sum, "{strategy} sum [{lo},{hi})");
            }
        }
    }

    #[test]
    fn materialized_queries_return_the_qualifying_values() {
        let (mut db, col, values) = setup(IndexingStrategy::Holistic, 2000);
        let r = db
            .execute(&Query::range_materialized(col, 100, 200))
            .unwrap();
        let mut got = r.values.unwrap();
        got.sort_unstable();
        let mut expected: Vec<Value> = values
            .iter()
            .copied()
            .filter(|&v| (100..200).contains(&v))
            .collect();
        expected.sort_unstable();
        assert_eq!(got, expected);
    }

    #[test]
    fn adaptive_strategy_cracks_incrementally() {
        let (mut db, col, _) = setup(IndexingStrategy::Adaptive, 5000);
        assert_eq!(db.piece_count(col), 0);
        db.execute(&Query::range(col, 100, 200)).unwrap();
        let after_one = db.piece_count(col);
        assert!(after_one >= 2);
        db.execute(&Query::range(col, 1000, 1500)).unwrap();
        assert!(db.piece_count(col) > after_one);
        let (scan, index, crack) = db.metrics().path_breakdown();
        assert_eq!((scan, index), (0, 0));
        assert_eq!(crack, 2);
    }

    #[test]
    fn scan_only_never_builds_anything() {
        let (mut db, col, _) = setup(IndexingStrategy::ScanOnly, 3000);
        for i in 0..10 {
            db.execute(&Query::range(col, i * 10, i * 10 + 50)).unwrap();
        }
        assert_eq!(db.piece_count(col), 0);
        assert!(!db.has_full_index(col));
        let report = db.run_idle(IdleBudget::Actions(10));
        // Idle time still refines (the strategy only controls the query
        // path); but a scan-only database can opt out by not calling it.
        assert!(report.actions_applied > 0 || report.converged);
        let (scan, _, _) = db.metrics().path_breakdown();
        assert_eq!(scan, 10);
    }

    #[test]
    fn offline_strategy_uses_full_index_after_preparation() {
        let (mut db, col, values) = setup(IndexingStrategy::Offline, 4000);
        let mut workload = WorkloadSummary::new();
        workload.declare(col, 1000, 0.01);
        let report = db.prepare_offline(&workload, None);
        assert_eq!(report.built, vec![col]);
        assert!(db.has_full_index(col));
        let r = db.execute(&Query::range(col, 10, 60)).unwrap();
        assert_eq!(r.path, AccessPath::FullIndex);
        assert_eq!(r.count, scan_count(&values, 10, 60));
    }

    #[test]
    fn offline_budget_limits_builds() {
        let values = dataset(4000);
        let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Offline);
        let t = db
            .create_table(
                "r",
                vec![
                    ("a", values.clone()),
                    ("b", values.clone()),
                    ("c", values.clone()),
                ],
            )
            .unwrap();
        let cols = db.column_ids(t).unwrap();
        let mut workload = WorkloadSummary::new();
        for &c in &cols {
            workload.declare(c, 100, 0.01);
        }
        // A zero budget builds nothing.
        let report = db.prepare_offline(&workload, Some(Duration::ZERO));
        assert!(report.built.is_empty());
        assert_eq!(report.skipped.len(), 3);
        // An unlimited budget builds everything.
        let report = db.prepare_offline(&workload, None);
        assert_eq!(report.built.len(), 3);
    }

    #[test]
    fn holistic_idle_time_refines_hot_columns_first() {
        let (mut db, col_a, _) = setup(IndexingStrategy::Holistic, 8000);
        let t = db.catalog.table_id("r").unwrap();
        let col_b = db.column_id(t, "b").unwrap();
        // Only column a is queried.
        for i in 0..5 {
            db.execute(&Query::range(col_a, i * 100, i * 100 + 80))
                .unwrap();
        }
        let report = db.run_idle(IdleBudget::Actions(20));
        assert_eq!(report.actions_applied, 20);
        assert!(report.columns_touched.contains(&col_a));
        assert!(db.metrics().tuning_time() > Duration::ZERO);
        assert!(db.metrics().auxiliary_actions() >= 20);
        // The hot column received at least as much refinement as the cold one.
        assert!(db.piece_count(col_a) >= db.piece_count(col_b));
    }

    #[test]
    fn idle_budget_zero_and_convergence() {
        let (mut db, col, _) = setup(IndexingStrategy::Holistic, 512);
        assert_eq!(db.run_idle(IdleBudget::zero()).actions_applied, 0);
        db.execute(&Query::range(col, 0, 10)).unwrap();
        // With a tiny cache target relative to column size the ranking model
        // eventually declares convergence.
        let mut total = 0;
        for _ in 0..50 {
            let r = db.run_idle(IdleBudget::Actions(100));
            total += r.actions_applied;
            if r.converged {
                break;
            }
        }
        assert!(total > 0);
        let final_report = db.run_idle(IdleBudget::Actions(10));
        assert!(final_report.converged || final_report.actions_applied > 0);
    }

    #[test]
    fn duration_budget_stops_tuning() {
        let (mut db, col, _) = setup(IndexingStrategy::Holistic, 20_000);
        db.execute(&Query::range(col, 0, 100)).unwrap();
        let report = db.run_idle(IdleBudget::Duration(Duration::from_millis(5)));
        assert!(report.elapsed >= Duration::from_millis(5) || report.converged);
    }

    #[test]
    fn hot_range_boosting_adds_auxiliary_cracks() {
        let (mut db, col, _) = setup(IndexingStrategy::Holistic, 10_000);
        // Hammer one narrow range well past the hot threshold.
        for _ in 0..10 {
            db.execute(&Query::range(col, 5_000, 5_100)).unwrap();
        }
        let aux = db.stats().column(col).unwrap().auxiliary_actions;
        assert!(aux > 0, "hot range should have triggered boost cracks");
        // Under the plain adaptive strategy the same workload triggers none.
        let (mut adaptive, col2, _) = setup(IndexingStrategy::Adaptive, 10_000);
        for _ in 0..10 {
            adaptive.execute(&Query::range(col2, 5_000, 5_100)).unwrap();
        }
        assert_eq!(adaptive.stats().column(col2).unwrap().auxiliary_actions, 0);
    }

    #[test]
    fn online_strategy_builds_an_index_for_a_hot_column() {
        let values = dataset(50_000);
        let mut config = HolisticConfig::for_testing();
        config.epoch_length = 10;
        let mut db = Database::new(config, IndexingStrategy::Online);
        let t = db.create_table("r", vec![("a", values.clone())]).unwrap();
        let col = db.column_id(t, "a").unwrap();
        for i in 0..40 {
            db.execute(&Query::range(col, (i % 10) * 100, (i % 10) * 100 + 50))
                .unwrap();
        }
        // After a few epochs the online tuner materialized a full index and
        // queries use it.
        let last = db.execute(&Query::range(col, 0, 50)).unwrap();
        assert_eq!(last.path, AccessPath::FullIndex);
        assert_eq!(last.count, scan_count(&values, 0, 50));
        assert!(db.metrics().build_time() > Duration::ZERO);
    }

    #[test]
    fn pending_penalty_is_charged_to_the_next_query_only() {
        let (mut db, col, _) = setup(IndexingStrategy::Offline, 1000);
        db.charge_pending_penalty(Duration::from_millis(50));
        let first = db.execute(&Query::range(col, 0, 10)).unwrap();
        assert!(first.latency >= Duration::from_millis(50));
        let second = db.execute(&Query::range(col, 0, 10)).unwrap();
        assert!(second.latency < Duration::from_millis(50));
    }

    #[test]
    fn warm_column_applies_exactly_the_requested_actions() {
        let (mut db, col, _) = setup(IndexingStrategy::Holistic, 5000);
        let before = db.cracks_performed(col);
        db.warm_column(col, 64).unwrap();
        assert!(db.cracks_performed(col) >= before);
        assert!(db.piece_count(col) > 1);
        assert_eq!(db.stats().column(col).unwrap().auxiliary_actions, 64);
    }

    #[test]
    fn unknown_columns_are_reported_as_errors() {
        let (mut db, _, _) = setup(IndexingStrategy::Holistic, 100);
        let bogus = ColumnId::new(TableId(99), 0);
        assert!(db.execute(&Query::range(bogus, 0, 10)).is_err());
        assert!(db.build_full_index(bogus).is_err());
        assert!(db.warm_column(bogus, 1).is_err());
        assert!(db.column_id(TableId(99), "a").is_err());
    }

    #[test]
    fn kernel_policy_is_threaded_into_crackers_and_counted() {
        use holistic_cracking::CrackKernel;
        for (kernel, expect_predicated) in [
            (CrackKernel::Branchy, false),
            (CrackKernel::Predicated, true),
        ] {
            let values = dataset(5000);
            let config = HolisticConfig::for_testing().with_crack_kernel(kernel);
            let mut db = Database::new(config, IndexingStrategy::Adaptive);
            let t = db.create_table("r", vec![("a", values.clone())]).unwrap();
            let col = db.column_id(t, "a").unwrap();
            for i in 0..5 {
                let r = db
                    .execute(&Query::range(col, i * 100, i * 100 + 80))
                    .unwrap();
                assert_eq!(r.count, scan_count(&values, i * 100, i * 100 + 80));
            }
            let d = db.metrics().kernel_dispatches();
            assert!(d.total() >= 5, "{kernel}: at least one dispatch per query");
            if expect_predicated {
                assert_eq!(d.branchy, 0, "{kernel}");
                assert!(d.predicated > 0, "{kernel}");
            } else {
                assert_eq!(d.predicated, 0, "{kernel}");
                assert!(d.branchy > 0, "{kernel}");
            }
            // Idle-time refinement also dispatches kernels and is counted.
            let before = db.metrics().kernel_dispatches().total();
            db.run_idle(IdleBudget::Actions(8));
            assert!(db.metrics().kernel_dispatches().total() >= before);
        }
    }

    #[test]
    fn metrics_track_every_query() {
        let (mut db, col, _) = setup(IndexingStrategy::Adaptive, 1000);
        for i in 0..5 {
            db.execute(&Query::range(col, i, i + 100)).unwrap();
        }
        assert_eq!(db.metrics().query_count(), 5);
        let cumulative = db.metrics().cumulative_micros();
        assert_eq!(cumulative.len(), 5);
        assert!(cumulative.windows(2).all(|w| w[0] <= w[1]));
        db.reset_metrics();
        assert_eq!(db.metrics().query_count(), 0);
    }

    #[test]
    fn strategy_can_be_switched_mid_flight() {
        let (mut db, col, values) = setup(IndexingStrategy::Adaptive, 3000);
        db.execute(&Query::range(col, 100, 200)).unwrap();
        db.set_strategy(IndexingStrategy::ScanOnly);
        assert_eq!(db.strategy(), IndexingStrategy::ScanOnly);
        let r = db.execute(&Query::range(col, 100, 200)).unwrap();
        assert_eq!(r.path, AccessPath::Scan);
        assert_eq!(r.count, scan_count(&values, 100, 200));
    }

    #[test]
    fn observed_workload_feeds_the_advisor() {
        let (mut db, col, _) = setup(IndexingStrategy::Holistic, 2000);
        for _ in 0..20 {
            db.execute(&Query::range(col, 500, 600)).unwrap();
        }
        let summary = db.observed_workload();
        assert_eq!(summary.total_queries(), 20);
        assert!(summary.column(col).unwrap().avg_selectivity > 0.0);
    }
}
