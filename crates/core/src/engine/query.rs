//! Query and result types of the engine.

use std::time::Duration;

use holistic_storage::{ColumnId, Value};

/// A range select-project query:
/// `SELECT A FROM R WHERE A >= lo AND A < hi` (the paper's query template).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Query {
    /// The column the predicate applies to.
    pub column: ColumnId,
    /// Inclusive lower bound.
    pub lo: Value,
    /// Exclusive upper bound.
    pub hi: Value,
    /// Whether the qualifying values should be materialized in the result
    /// (`false` answers with count and sum only, which is what the paper's
    /// select-project measurement needs).
    pub materialize: bool,
}

impl Query {
    /// A count/sum range query (no materialization).
    #[must_use]
    pub fn range(column: ColumnId, lo: Value, hi: Value) -> Self {
        Query {
            column,
            lo,
            hi,
            materialize: false,
        }
    }

    /// A range query that materializes the qualifying values.
    #[must_use]
    pub fn range_materialized(column: ColumnId, lo: Value, hi: Value) -> Self {
        Query {
            column,
            lo,
            hi,
            materialize: true,
        }
    }

    /// Whether the predicate is empty by construction.
    #[must_use]
    pub fn is_empty_range(&self) -> bool {
        self.hi <= self.lo
    }
}

/// The access path the planner chose for a query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessPath {
    /// Full column scan.
    Scan,
    /// Binary search on a full sorted index.
    FullIndex,
    /// Adaptive (cracking) select.
    Crack,
}

impl AccessPath {
    /// Short stable name for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            AccessPath::Scan => "scan",
            AccessPath::FullIndex => "index",
            AccessPath::Crack => "crack",
        }
    }
}

/// The result of one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryResult {
    /// Number of qualifying rows.
    pub count: u64,
    /// Sum of the qualifying values.
    pub sum: i128,
    /// The qualifying values, if materialization was requested.
    pub values: Option<Vec<Value>>,
    /// The access path the planner used.
    pub path: AccessPath,
    /// Wall-clock latency of the query.
    pub latency: Duration,
}

impl QueryResult {
    /// Mean of the qualifying values, if any.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_storage::TableId;

    fn col() -> ColumnId {
        ColumnId::new(TableId(0), 0)
    }

    #[test]
    fn query_constructors() {
        let q = Query::range(col(), 1, 10);
        assert!(!q.materialize);
        assert!(!q.is_empty_range());
        let m = Query::range_materialized(col(), 5, 5);
        assert!(m.materialize);
        assert!(m.is_empty_range());
    }

    #[test]
    fn access_path_names() {
        assert_eq!(AccessPath::Scan.name(), "scan");
        assert_eq!(AccessPath::FullIndex.name(), "index");
        assert_eq!(AccessPath::Crack.name(), "crack");
    }

    #[test]
    fn result_mean() {
        let r = QueryResult {
            count: 4,
            sum: 20,
            values: None,
            path: AccessPath::Scan,
            latency: Duration::ZERO,
        };
        assert_eq!(r.mean(), Some(5.0));
        let empty = QueryResult {
            count: 0,
            sum: 0,
            ..r
        };
        assert_eq!(empty.mean(), None);
    }
}
