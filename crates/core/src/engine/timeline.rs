//! Qualitative timelines of when each strategy does its tuning work
//! (the paper's Figure 1).

use crate::strategy::IndexingStrategy;

/// One phase of a strategy's lifecycle relative to the query workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TimelinePhase {
    /// Human-readable label of the phase.
    pub label: &'static str,
    /// Whether the phase happens while queries are being processed
    /// (as opposed to before the workload starts).
    pub during_workload: bool,
    /// Whether the phase consumes idle time productively.
    pub exploits_idle: bool,
}

/// Returns the ordered phases of a strategy's tuning lifecycle.
#[must_use]
pub fn strategy_timeline(strategy: IndexingStrategy) -> Vec<TimelinePhase> {
    match strategy {
        IndexingStrategy::ScanOnly => vec![TimelinePhase {
            label: "query processing (full scans, idle time wasted)",
            during_workload: true,
            exploits_idle: false,
        }],
        IndexingStrategy::Offline => vec![
            TimelinePhase {
                label: "a-priori workload analysis",
                during_workload: false,
                exploits_idle: true,
            },
            TimelinePhase {
                label: "full index building before the first query",
                during_workload: false,
                exploits_idle: true,
            },
            TimelinePhase {
                label: "query processing (idle windows wasted)",
                during_workload: true,
                exploits_idle: false,
            },
        ],
        IndexingStrategy::Online => vec![
            TimelinePhase {
                label: "continuous monitoring",
                during_workload: true,
                exploits_idle: false,
            },
            TimelinePhase {
                label: "periodic physical-design re-evaluation (epochs)",
                during_workload: true,
                exploits_idle: true,
            },
            TimelinePhase {
                label: "full index builds interleaved with queries",
                during_workload: true,
                exploits_idle: true,
            },
        ],
        IndexingStrategy::Adaptive => vec![
            TimelinePhase {
                label: "incremental cracking inside select operators",
                during_workload: true,
                exploits_idle: false,
            },
            TimelinePhase {
                label: "idle windows wasted (no statistics, no background work)",
                during_workload: true,
                exploits_idle: false,
            },
        ],
        IndexingStrategy::Holistic => vec![
            TimelinePhase {
                label: "continuous monitoring and statistics",
                during_workload: true,
                exploits_idle: false,
            },
            TimelinePhase {
                label: "incremental cracking inside select operators",
                during_workload: true,
                exploits_idle: false,
            },
            TimelinePhase {
                label: "auxiliary refinement during every idle window",
                during_workload: true,
                exploits_idle: true,
            },
            TimelinePhase {
                label: "a-priori refinement spread over all candidate columns",
                during_workload: false,
                exploits_idle: true,
            },
        ],
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn every_strategy_has_a_timeline() {
        for s in IndexingStrategy::all() {
            assert!(!strategy_timeline(s).is_empty());
        }
    }

    #[test]
    fn only_idle_aware_strategies_exploit_idle_time() {
        let exploits = |s: IndexingStrategy| strategy_timeline(s).iter().any(|p| p.exploits_idle);
        assert!(!exploits(IndexingStrategy::ScanOnly));
        assert!(!exploits(IndexingStrategy::Adaptive));
        assert!(exploits(IndexingStrategy::Offline));
        assert!(exploits(IndexingStrategy::Online));
        assert!(exploits(IndexingStrategy::Holistic));
    }

    #[test]
    fn holistic_exploits_idle_during_the_workload() {
        let phases = strategy_timeline(IndexingStrategy::Holistic);
        assert!(phases.iter().any(|p| p.during_workload && p.exploits_idle));
        // Offline only exploits idle time before the workload.
        let offline = strategy_timeline(IndexingStrategy::Offline);
        assert!(!offline.iter().any(|p| p.during_workload && p.exploits_idle));
    }
}
