//! Crash-safe persistence of the engine: snapshots, the write-ahead log,
//! and recovery.
//!
//! # What is persisted
//!
//! A snapshot is one atomic file (`snapshot.<generation>`) with three
//! independently checksummed sections:
//!
//! * **META** — the WAL watermark (highest LSN the snapshot covers), the
//!   catalog's id counter, and the set of columns carrying a full sorted
//!   index.
//! * **DATA** — every base table: id, name, column names and values. This
//!   section alone suffices to rebuild a cold engine.
//! * **LEARNED** — every instantiated cracker column's earned state (the
//!   cracked data copy, piece table with cached sums and sorted flags, and
//!   the shared prefix-sum arrays), via
//!   [`holistic_cracking::encode_cracker_column`].
//!
//! Post-snapshot mutations (schema changes, inserts/deletes, full-index
//! builds/drops, cracker births) append `WalRecord`s to `wal.log` —
//! durably, *before* the in-memory state changes — so any crash loses at
//! most the operation whose caller never saw success. Multi-record events
//! (genesis, update batches, the cracker births of one query batch) are
//! *group-committed*: all records in one write and one fsync, where a
//! torn append truncates to a durable prefix of the batch so every record
//! individually keeps WAL-before-apply semantics.
//!
//! # Recovery: the degradation ladder
//!
//! [`Database::recover`] walks down until something works:
//!
//! 1. newest snapshot, all sections valid → decode data + learned state,
//!    replay the WAL tail (`lsn > watermark`);
//! 2. newest snapshot with a corrupt LEARNED section → same, but the
//!    engine comes up cold (crackers rebuild from queries); a single
//!    cracker that fails [`CrackerColumn::validate`] is dropped alone;
//! 3. newest snapshot with corrupt META/DATA → fall back to the previous
//!    generation (and replay a longer WAL tail);
//! 4. no usable snapshot → rebuild from the WAL alone, which works while
//!    the log still begins at genesis (compaction trims it only after a
//!    snapshot succeeded).
//!
//! Every decoded cracker column passes through
//! [`holistic_cracking::decode_cracker_column_with`] under *sampled*
//! validation: structural invariants and a deterministic piece sample are
//! checked at decode time, and the full O(data) content pass is deferred
//! to the background scrubber and the first-touch paranoia check (which
//! quarantine and rebuild instead of answering wrong). Corruption that
//! slips past the checksums still cannot produce wrong answers — it is
//! either rejected here (column rebuilt cold) or healed after restart.
//!
//! [`CrackerColumn::validate`]: holistic_cracking::CrackerColumn::validate

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::sync::Arc;

use holistic_cracking::{
    decode_cracker_column_with, encode_cracker_column, ConcurrentCrackerColumn, DecodeValidation,
};
use holistic_persist::{
    atomic_write, decode_wal, encode_wal, Decoder, Encoder, FaultInjector, PersistError, Snapshot,
    SnapshotBuilder, WalWriter, WAL_HEADER_LEN,
};
use holistic_storage::persist::{decode_column, encode_column};
use holistic_storage::{ColumnId, Table, TableId, Value};

use crate::config::HolisticConfig;
use crate::error::HolisticError;
use crate::strategy::IndexingStrategy;

use super::{Database, EngineResult};

/// Snapshot section: watermark + id counter + full-index set.
const SECTION_META: u32 = 1;
/// Snapshot section: the base tables (the WAL-complete data image).
const SECTION_DATA: u32 = 2;
/// Snapshot section: the learned cracker state.
const SECTION_LEARNED: u32 = 3;

/// How many snapshot generations stay on disk (the newest, plus one to
/// fall back to when the newest turns out corrupt).
const KEPT_GENERATIONS: usize = 2;

fn snapshot_path(dir: &Path, generation: u64) -> PathBuf {
    dir.join(format!("snapshot.{generation}"))
}

fn wal_path(dir: &Path) -> PathBuf {
    dir.join("wal.log")
}

// ---------------------------------------------------------------------
// WAL records
// ---------------------------------------------------------------------

/// One logged mutation. Every on-disk record is `lsn · tag · fields`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum WalRecord {
    /// A table was created (also written as genesis records when
    /// persistence is first enabled on a non-empty engine).
    CreateTable {
        /// The id the catalog assigned — replay must reproduce it.
        id: TableId,
        /// Table name.
        name: String,
        /// `(column name, values)` pairs in positional order.
        columns: Vec<(String, Vec<Value>)>,
    },
    /// A table was dropped.
    DropTable {
        /// The dropped table's id.
        id: TableId,
    },
    /// A value was inserted into a (single-column) table.
    Insert {
        /// The targeted column.
        column: ColumnId,
        /// The inserted value.
        value: Value,
    },
    /// The first occurrence of a value was deleted.
    Delete {
        /// The targeted column.
        column: ColumnId,
        /// The deleted value.
        value: Value,
    },
    /// A full sorted index was built on the column.
    BuildFullIndex {
        /// The indexed column.
        column: ColumnId,
    },
    /// The column's full sorted index was dropped.
    DropFullIndex {
        /// The column whose index was dropped.
        column: ColumnId,
    },
    /// A cracker column was instantiated (the birth of learned state).
    ///
    /// Closes the LEARNED coverage gap (ROADMAP 5d): a cracker born
    /// *after* the last snapshot is invisible to its LEARNED section, so
    /// without this record a crash silently dropped the column back to
    /// nothing and post-snapshot updates replayed into the base only.
    /// Replaying the birth at its log position re-instantiates the
    /// cracker, so later `Insert`/`Delete` records ripple into it exactly
    /// as the forward execution did. Piece boundaries earned since the
    /// snapshot still degrade (queries are not logged — reads must not
    /// write), but the learned copy itself survives, update-complete, and
    /// the loss is reported via [`RecoveryOutcome::crackers_reborn`]
    /// instead of being silent.
    CrackerBorn {
        /// The column whose cracker was instantiated.
        column: ColumnId,
    },
}

const TAG_CREATE_TABLE: u8 = 1;
const TAG_DROP_TABLE: u8 = 2;
const TAG_INSERT: u8 = 3;
const TAG_DELETE: u8 = 4;
const TAG_BUILD_FULL_INDEX: u8 = 5;
const TAG_DROP_FULL_INDEX: u8 = 6;
const TAG_CRACKER_BORN: u8 = 7;

fn put_column_id(e: &mut Encoder, id: ColumnId) {
    e.put_u32(id.table.0);
    e.put_u32(id.column);
}

fn take_column_id(d: &mut Decoder<'_>) -> Result<ColumnId, PersistError> {
    let table = TableId(d.take_u32()?);
    let column = d.take_u32()?;
    Ok(ColumnId { table, column })
}

impl WalRecord {
    /// Builds a `CreateTable` record from a registered table image.
    pub(super) fn create_table(id: TableId, table: &Table) -> Self {
        WalRecord::CreateTable {
            id,
            name: table.name().to_string(),
            columns: table
                .columns()
                .map(|c| (c.name().to_string(), c.values().to_vec()))
                .collect(),
        }
    }

    fn encode(&self, lsn: u64) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u64(lsn);
        match self {
            WalRecord::CreateTable { id, name, columns } => {
                e.put_u8(TAG_CREATE_TABLE);
                e.put_u32(id.0);
                e.put_str(name);
                e.put_usize(columns.len());
                for (col_name, values) in columns {
                    e.put_str(col_name);
                    e.put_i64_slice(values);
                }
            }
            WalRecord::DropTable { id } => {
                e.put_u8(TAG_DROP_TABLE);
                e.put_u32(id.0);
            }
            WalRecord::Insert { column, value } => {
                e.put_u8(TAG_INSERT);
                put_column_id(&mut e, *column);
                e.put_i64(*value);
            }
            WalRecord::Delete { column, value } => {
                e.put_u8(TAG_DELETE);
                put_column_id(&mut e, *column);
                e.put_i64(*value);
            }
            WalRecord::BuildFullIndex { column } => {
                e.put_u8(TAG_BUILD_FULL_INDEX);
                put_column_id(&mut e, *column);
            }
            WalRecord::DropFullIndex { column } => {
                e.put_u8(TAG_DROP_FULL_INDEX);
                put_column_id(&mut e, *column);
            }
            WalRecord::CrackerBorn { column } => {
                e.put_u8(TAG_CRACKER_BORN);
                put_column_id(&mut e, *column);
            }
        }
        e.into_bytes()
    }

    fn decode(bytes: &[u8]) -> Result<(u64, WalRecord), PersistError> {
        let mut d = Decoder::new(bytes);
        let lsn = d.take_u64()?;
        let record = match d.take_u8()? {
            TAG_CREATE_TABLE => {
                let id = TableId(d.take_u32()?);
                let name = d.take_str()?;
                let count = d.take_len(1)?;
                let mut columns = Vec::with_capacity(count);
                for _ in 0..count {
                    let col_name = d.take_str()?;
                    let values = d.take_i64_vec()?;
                    columns.push((col_name, values));
                }
                WalRecord::CreateTable { id, name, columns }
            }
            TAG_DROP_TABLE => WalRecord::DropTable {
                id: TableId(d.take_u32()?),
            },
            TAG_INSERT => WalRecord::Insert {
                column: take_column_id(&mut d)?,
                value: d.take_i64()?,
            },
            TAG_DELETE => WalRecord::Delete {
                column: take_column_id(&mut d)?,
                value: d.take_i64()?,
            },
            TAG_BUILD_FULL_INDEX => WalRecord::BuildFullIndex {
                column: take_column_id(&mut d)?,
            },
            TAG_DROP_FULL_INDEX => WalRecord::DropFullIndex {
                column: take_column_id(&mut d)?,
            },
            TAG_CRACKER_BORN => WalRecord::CrackerBorn {
                column: take_column_id(&mut d)?,
            },
            tag => {
                return Err(PersistError::Corrupt(format!(
                    "unknown WAL record tag {tag}"
                )))
            }
        };
        d.finish()?;
        Ok((lsn, record))
    }
}

// ---------------------------------------------------------------------
// Persistence state
// ---------------------------------------------------------------------

/// The live persistence attachment of a [`Database`].
///
/// Lives behind a `Mutex<Option<_>>` on the engine so that
/// [`Database::snapshot`] works through `&self` — a shared engine can
/// snapshot from the background tuner under the outer read lock, where
/// the `&mut self` mutation paths cannot be running.
#[derive(Debug)]
pub(crate) struct PersistenceState {
    dir: PathBuf,
    injector: Arc<FaultInjector>,
    wal: WalWriter,
    /// LSN the next WAL record receives (LSNs start at 1).
    next_lsn: u64,
    /// Snapshot generations currently on disk, oldest first, with the
    /// watermark each covers. WAL compaction must retain every record the
    /// *oldest* kept snapshot still needs.
    kept: Vec<(u64, u64)>,
    /// Highest generation number ever observed (kept or corrupt), so new
    /// snapshots never collide with a leftover file.
    max_generation: u64,
    records_since_snapshot: u64,
}

/// What [`Database::recover`] managed to reconstruct, and at what rung of
/// the degradation ladder.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryOutcome {
    /// Generation of the snapshot that was loaded (`None` = no usable
    /// snapshot; the engine was rebuilt from the WAL alone or came up
    /// empty).
    pub snapshot_generation: Option<u64>,
    /// Snapshot files that had to be skipped as corrupt/unreadable.
    pub snapshots_skipped: usize,
    /// `true` if the whole LEARNED section was unusable and every column
    /// came up cold.
    pub learned_state_dropped: bool,
    /// Columns whose individual cracker state failed validation and was
    /// dropped (those columns come up cold; answers stay correct).
    pub cold_columns: Vec<ColumnId>,
    /// Columns whose cracker was re-instantiated from a replayed
    /// `CrackerBorn` WAL record: the cracker was born after the
    /// loaded snapshot, so its learned copy was rebuilt (update-complete)
    /// but its piece boundaries degraded to a single piece.
    pub crackers_reborn: Vec<ColumnId>,
    /// WAL records replayed on top of the snapshot.
    pub wal_records_replayed: u64,
    /// Bytes dropped from the WAL's torn/corrupt tail.
    pub wal_bytes_dropped: usize,
    /// `true` if no snapshot was usable and the engine was rebuilt from
    /// the WAL's genesis records.
    pub wal_only_rebuild: bool,
    /// Columns whose recovered cracker passed only *sampled* validation:
    /// structural invariants and a deterministic piece sample were checked
    /// at decode time, and the full O(data) pass is deferred to the
    /// background scrubber (the columns are marked scrub-priority) and
    /// the first-touch paranoia check.
    pub sampled_columns: Vec<ColumnId>,
}

impl Database {
    // -----------------------------------------------------------------
    // Attachment and logging
    // -----------------------------------------------------------------

    /// Enables persistence into `dir` (created if missing): from now on
    /// every mutation is WAL-logged before it is applied, and
    /// [`Database::snapshot`] writes checkpoint images there.
    ///
    /// Existing engine state is made durable immediately by writing
    /// genesis `CreateTable` / `BuildFullIndex` records, so the directory
    /// is recoverable from the first moment. Any previous contents of
    /// `dir` are overwritten. All file IO is routed through `injector`
    /// (pass a fresh disarmed one outside of crash tests).
    pub fn set_persistence(
        &mut self,
        dir: impl Into<PathBuf>,
        injector: Arc<FaultInjector>,
    ) -> EngineResult<()> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| HolisticError::Persist(e.to_string()))?;
        let mut wal = WalWriter::create(&wal_path(&dir), Arc::clone(&injector))
            .map_err(HolisticError::from)?;
        let mut next_lsn = 1u64;
        let mut genesis: Vec<Vec<u8>> = Vec::new();
        for (id, table) in self.catalog.tables() {
            genesis.push(WalRecord::create_table(id, table).encode(next_lsn));
            next_lsn += 1;
        }
        for &column in self.full_indexes.keys() {
            genesis.push(WalRecord::BuildFullIndex { column }.encode(next_lsn));
            next_lsn += 1;
        }
        // Crackers instantiated before persistence was attached: log their
        // births so they are WAL-covered from the first moment (their
        // boundaries become durable with the first snapshot).
        let born: Vec<ColumnId> = self.crackers.read().keys().copied().collect();
        for column in born {
            genesis.push(WalRecord::CrackerBorn { column }.encode(next_lsn));
            next_lsn += 1;
        }
        // Genesis is one logical event: group-commit it with a single fsync.
        wal.append_batch(genesis.iter().map(Vec::as_slice))?;
        let records = next_lsn - 1;
        *self.persistence.lock() = Some(PersistenceState {
            dir,
            injector,
            wal,
            next_lsn,
            kept: Vec::new(),
            max_generation: 0,
            records_since_snapshot: records,
        });
        Ok(())
    }

    /// Whether persistence is attached.
    #[must_use]
    pub fn persistence_enabled(&self) -> bool {
        self.persistence.lock().is_some()
    }

    /// Whether WAL records have accumulated since the last snapshot —
    /// the background tuner's cue to checkpoint during idle time.
    #[must_use]
    pub fn persistence_dirty(&self) -> bool {
        self.persistence
            .lock()
            .as_ref()
            .is_some_and(|s| s.records_since_snapshot > 0)
    }

    /// Appends one record to the WAL (no-op without persistence). Called
    /// *before* the in-memory mutation: a crash inside the append fails
    /// the operation without applying it.
    pub(super) fn wal_append(&self, record: &WalRecord) -> EngineResult<()> {
        let mut guard = self.persistence.lock();
        let Some(state) = guard.as_mut() else {
            return Ok(());
        };
        let lsn = state.next_lsn;
        state.wal.append(&record.encode(lsn))?;
        state.next_lsn = lsn + 1;
        state.records_since_snapshot += 1;
        Ok(())
    }

    /// Group commit: appends a batch of records with a single fsync (no-op
    /// without persistence, no IO for an empty batch).
    ///
    /// Called *before* any of the corresponding in-memory mutations, like
    /// [`Database::wal_append`]. A crash mid-append makes a *prefix* of
    /// the batch durable (records are written in order and the torn tail
    /// is truncated at recovery), while the caller applies nothing — so
    /// each record individually keeps the WAL-before-apply contract:
    /// recovery lands on the state after some prefix of the batch.
    pub(super) fn wal_append_batch(&self, records: &[WalRecord]) -> EngineResult<()> {
        if records.is_empty() {
            return Ok(());
        }
        let mut guard = self.persistence.lock();
        let Some(state) = guard.as_mut() else {
            return Ok(());
        };
        let mut lsn = state.next_lsn;
        let payloads: Vec<Vec<u8>> = records
            .iter()
            .map(|record| {
                let bytes = record.encode(lsn);
                lsn += 1;
                bytes
            })
            .collect();
        state.wal.append_batch(payloads.iter().map(Vec::as_slice))?;
        state.next_lsn = lsn;
        state.records_since_snapshot += records.len() as u64;
        Ok(())
    }

    // -----------------------------------------------------------------
    // Snapshots
    // -----------------------------------------------------------------

    /// Writes a snapshot of the complete engine state (data + learned
    /// cracker state + full-index set) and compacts the WAL. Returns the
    /// new snapshot's generation number.
    ///
    /// Takes `&self`: on a shared engine this runs under the outer read
    /// lock, where the `&mut self` mutation paths are excluded, so the
    /// catalog view is consistent; each cracker is encoded under its own
    /// read latch. The file lands atomically (write-temp, fsync, rename,
    /// directory fsync): a crash anywhere leaves the previous generation
    /// untouched.
    pub fn snapshot(&self) -> EngineResult<u64> {
        let mut guard = self.persistence.lock();
        let Some(state) = guard.as_mut() else {
            return Err(HolisticError::Unsupported(
                "persistence is not enabled; call set_persistence first".into(),
            ));
        };
        let watermark = state.next_lsn - 1;
        let generation = state.max_generation + 1;

        let mut builder = SnapshotBuilder::new(generation);
        builder.add_section(SECTION_META, self.encode_meta(watermark));
        builder.add_section(SECTION_DATA, self.encode_data());
        builder.add_section(SECTION_LEARNED, self.encode_learned());
        let bytes = builder.finish();
        atomic_write(
            &snapshot_path(&state.dir, generation),
            &bytes,
            &state.injector,
        )?;
        state.max_generation = generation;
        state.kept.push((generation, watermark));

        // Prune: keep the newest KEPT_GENERATIONS snapshots.
        while state.kept.len() > KEPT_GENERATIONS {
            let (gen, _) = state.kept.remove(0);
            let _ = std::fs::remove_file(snapshot_path(&state.dir, gen));
        }

        // Compact the WAL down to what the oldest kept snapshot still
        // needs. The rewrite is atomic; a crash in between leaves the old
        // (longer) log, which replay handles via the LSN watermark.
        let retain_after = state.kept.first().map_or(0, |&(_, w)| w);
        let wal_file = wal_path(&state.dir);
        let old = std::fs::read(&wal_file).map_err(|e| HolisticError::Persist(e.to_string()))?;
        let contents = decode_wal(&old);
        let retained: Vec<Vec<u8>> = contents
            .records
            .into_iter()
            .filter(|payload| WalRecord::decode(payload).is_ok_and(|(lsn, _)| lsn > retain_after))
            .collect();
        let new_wal = encode_wal(retained.iter().map(Vec::as_slice));
        atomic_write(&wal_file, &new_wal, &state.injector)?;
        state.wal =
            WalWriter::open_append(&wal_file, new_wal.len() as u64, Arc::clone(&state.injector))?;
        state.records_since_snapshot = 0;
        Ok(generation)
    }

    /// Snapshots if persistence is enabled and mutations have accumulated
    /// since the last snapshot; returns whether a snapshot was written.
    /// Errors (including injected crashes) are reported, not swallowed.
    pub fn snapshot_if_dirty(&self) -> EngineResult<bool> {
        if !self.persistence_dirty() {
            return Ok(false);
        }
        self.snapshot().map(|_| true)
    }

    fn encode_meta(&self, watermark: u64) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u64(watermark);
        e.put_u32(self.catalog.next_table_id().0);
        e.put_usize(self.full_indexes.len());
        for &column in self.full_indexes.keys() {
            put_column_id(&mut e, column);
        }
        e.into_bytes()
    }

    fn encode_data(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_usize(self.catalog.table_count());
        for (id, table) in self.catalog.tables() {
            e.put_u32(id.0);
            e.put_str(table.name());
            e.put_usize(table.column_count());
            for column in table.columns() {
                encode_column(&mut e, column);
            }
        }
        e.into_bytes()
    }

    fn encode_learned(&self) -> Vec<u8> {
        let crackers: Vec<(ColumnId, Arc<ConcurrentCrackerColumn>)> = self
            .crackers
            .read()
            .iter()
            .map(|(id, c)| (*id, Arc::clone(c)))
            .collect();
        let mut e = Encoder::new();
        e.put_usize(crackers.len());
        for (id, cracker) in crackers {
            put_column_id(&mut e, id);
            // Per-shard encoding: extent, shard count, then each shard's
            // piece table length-prefixed. An unsharded column is the
            // one-shard special case (extent 0), so the format is uniform.
            // Each shard is encoded under its own read latch — concurrent
            // queries on other shards proceed during the snapshot.
            e.put_usize(cracker.shard_extent().unwrap_or(0));
            let shard_count = cracker.shard_count();
            e.put_usize(shard_count);
            for shard in 0..shard_count {
                // The shard list is append-only, so every index below the
                // count observed above stays valid.
                let bytes = cracker
                    .with_shard_read(shard, encode_cracker_column)
                    .unwrap_or_default();
                e.put_usize(bytes.len());
                e.put_bytes(&bytes);
            }
        }
        e.into_bytes()
    }

    // -----------------------------------------------------------------
    // Recovery
    // -----------------------------------------------------------------

    /// Rebuilds a database from a persistence directory, walking the
    /// degradation ladder (see the module docs), and re-attaches
    /// persistence so the recovered engine continues logging.
    ///
    /// Pass a fresh, disarmed `injector` — recovery is the *survivor's*
    /// IO, not the crashed process's. Corrupt snapshot files encountered
    /// on the way down are deleted.
    pub fn recover(
        config: HolisticConfig,
        strategy: IndexingStrategy,
        dir: impl Into<PathBuf>,
        injector: Arc<FaultInjector>,
    ) -> EngineResult<(Database, RecoveryOutcome)> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| HolisticError::Persist(e.to_string()))?;
        let kernel = config.crack_kernel;
        let mut db = Database::new(config, strategy);
        let mut outcome = RecoveryOutcome::default();

        // Snapshot generations on disk, newest first.
        let mut generations: Vec<u64> = std::fs::read_dir(&dir)
            .map_err(|e| HolisticError::Persist(e.to_string()))?
            .filter_map(|entry| {
                let name = entry.ok()?.file_name();
                name.to_str()?.strip_prefix("snapshot.")?.parse().ok()
            })
            .collect();
        generations.sort_unstable_by(|a, b| b.cmp(a));
        let max_generation = generations.first().copied().unwrap_or(0);

        // Rung 1-3: find the newest snapshot whose META and DATA decode.
        let mut watermark = 0u64;
        let mut loaded_generation = None;
        let mut want_full_index: BTreeSet<ColumnId> = BTreeSet::new();
        for &generation in &generations {
            match Self::load_snapshot(&dir, generation, kernel, &mut db, &mut outcome) {
                Ok((snap_watermark, full_columns)) => {
                    watermark = snap_watermark;
                    loaded_generation = Some(generation);
                    want_full_index = full_columns;
                    break;
                }
                Err(_) => {
                    outcome.snapshots_skipped += 1;
                    // The file is useless for every future recovery too.
                    let _ = std::fs::remove_file(snapshot_path(&dir, generation));
                }
            }
        }
        outcome.snapshot_generation = loaded_generation;

        // Replay the WAL tail (or, on rung 4, the whole WAL).
        let wal_file = wal_path(&dir);
        let wal_bytes = std::fs::read(&wal_file).unwrap_or_default();
        let contents = decode_wal(&wal_bytes);
        outcome.wal_bytes_dropped = contents.dropped_bytes;
        if loaded_generation.is_none() {
            if contents.records.is_empty() {
                // Snapshot files that existed but could not be read mean
                // durable state was lost — refuse rather than come up
                // empty. Likewise a WAL whose *header* is rotted over a
                // full-length file: the header is the first thing written,
                // so a crash can only ever leave a short (< header) torn
                // fragment there; anything longer with a bad header is bit
                // rot hiding real records. A valid header with zero valid
                // records, by contrast, is a crash during the first append
                // (or WAL creation): nothing was ever durably applied, so
                // an empty engine is the truthful state.
                let rotted_header = contents.valid_len == 0 && wal_bytes.len() >= WAL_HEADER_LEN;
                if !generations.is_empty() || rotted_header {
                    return Err(HolisticError::Recovery(
                        "no usable snapshot and no replayable WAL records".into(),
                    ));
                }
                // A genuinely fresh (or torn-at-birth) directory: come up
                // empty.
            } else {
                outcome.wal_only_rebuild = true;
            }
        }
        let mut max_lsn = watermark;
        // Runs of consecutive inserts into the same column — the shape of
        // a typical WAL tail — are coalesced and applied through the
        // batched ripple: one piece-table sweep for the run instead of one
        // per record. Any other record flushes the run first, so replay
        // order is preserved exactly.
        let mut pending_inserts: Option<(ColumnId, Vec<Value>)> = None;
        fn flush_inserts(
            db: &mut Database,
            pending: &mut Option<(ColumnId, Vec<Value>)>,
            want_full_index: &mut BTreeSet<ColumnId>,
        ) -> EngineResult<()> {
            if let Some((column, values)) = pending.take() {
                db.apply_insert_batch(column, &values)
                    .map_err(|e| HolisticError::Recovery(format!("WAL replay failed: {e}")))?;
                want_full_index.remove(&column);
            }
            Ok(())
        }
        for payload in &contents.records {
            // The payload passed its CRC; a decode failure here means a
            // foreign format, not bit rot — stop replaying, like a torn
            // tail, rather than guessing.
            let Ok((lsn, record)) = WalRecord::decode(payload) else {
                break;
            };
            if lsn <= watermark {
                continue;
            }
            if let WalRecord::Insert { column, value } = &record {
                match &mut pending_inserts {
                    Some((c, values)) if c == column => values.push(*value),
                    Some(_) => {
                        flush_inserts(&mut db, &mut pending_inserts, &mut want_full_index)?;
                        pending_inserts = Some((*column, vec![*value]));
                    }
                    None => pending_inserts = Some((*column, vec![*value])),
                }
            } else {
                flush_inserts(&mut db, &mut pending_inserts, &mut want_full_index)?;
                db.replay_wal_record(&record, &mut want_full_index, &mut outcome)
                    .map_err(|e| {
                        HolisticError::Recovery(format!("WAL replay failed at lsn {lsn}: {e}"))
                    })?;
            }
            max_lsn = max_lsn.max(lsn);
            outcome.wal_records_replayed += 1;
        }
        flush_inserts(&mut db, &mut pending_inserts, &mut want_full_index)?;

        // Materialize the full indexes the recovered state calls for.
        for column in want_full_index {
            db.build_full_index_internal(column)?;
        }

        // Re-attach persistence: truncate the WAL's torn tail and keep
        // appending where the crashed process stopped.
        let wal = if contents.valid_len == 0 {
            WalWriter::create(&wal_file, Arc::clone(&injector))?
        } else {
            WalWriter::open_append(&wal_file, contents.valid_len, Arc::clone(&injector))?
        };
        *db.persistence.lock() = Some(PersistenceState {
            dir,
            injector,
            wal,
            next_lsn: max_lsn + 1,
            kept: loaded_generation
                .map(|g| (g, watermark))
                .into_iter()
                .collect(),
            max_generation,
            records_since_snapshot: outcome.wal_records_replayed
                + u64::from(outcome.wal_only_rebuild),
        });
        // Fold the outcome into the metrics so operators (e.g. the query
        // service's startup log) can read how the engine came up without
        // threading the outcome through by hand.
        db.metrics.record_recovery(outcome.clone());
        Ok((db, outcome))
    }

    /// Loads one snapshot generation into `db`. Fails if META or DATA is
    /// unusable; LEARNED degrades gracefully (whole section or individual
    /// columns dropped, recorded in `outcome`).
    fn load_snapshot(
        dir: &Path,
        generation: u64,
        kernel: holistic_cracking::CrackKernel,
        db: &mut Database,
        outcome: &mut RecoveryOutcome,
    ) -> Result<(u64, BTreeSet<ColumnId>), PersistError> {
        let bytes = std::fs::read(snapshot_path(dir, generation))?;
        let snap = Snapshot::parse(&bytes)?;

        // META: watermark, id counter, full-index set.
        let meta = snap
            .section(SECTION_META)
            .ok_or_else(|| PersistError::Corrupt("META section unusable".into()))?;
        let mut d = Decoder::new(meta);
        let watermark = d.take_u64()?;
        let next_table_id = TableId(d.take_u32()?);
        let full_count = d.take_len(8)?;
        let mut want_full_index = BTreeSet::new();
        for _ in 0..full_count {
            want_full_index.insert(take_column_id(&mut d)?);
        }
        d.finish()?;

        // DATA: the base tables.
        let data = snap
            .section(SECTION_DATA)
            .ok_or_else(|| PersistError::Corrupt("DATA section unusable".into()))?;
        let mut d = Decoder::new(data);
        let table_count = d.take_len(1)?;
        let mut tables = Vec::with_capacity(table_count);
        for _ in 0..table_count {
            let id = TableId(d.take_u32()?);
            let name = d.take_str()?;
            let column_count = d.take_len(1)?;
            let mut table = Table::new(name);
            for _ in 0..column_count {
                table
                    .add_column(decode_column(&mut d)?)
                    .map_err(|e| PersistError::Corrupt(e.to_string()))?;
            }
            tables.push((id, table));
        }
        d.finish()?;

        // META and DATA decoded: from here on the snapshot is committed
        // to (LEARNED failures degrade, they no longer reject the file).
        for (id, table) in tables {
            db.catalog
                .register_with_id(id, table)
                .map_err(|e| PersistError::Corrupt(e.to_string()))?;
            for column_id in db.catalog.all_column_ids() {
                if column_id.table == id {
                    let len = db
                        .catalog
                        .column(column_id)
                        .map_err(|e| PersistError::Corrupt(e.to_string()))?
                        .len();
                    db.stats.register_column(column_id, len);
                }
            }
        }
        db.catalog.reserve_ids(next_table_id);

        // LEARNED: best effort, never rejects the snapshot.
        match snap.section(SECTION_LEARNED) {
            None => outcome.learned_state_dropped = true,
            Some(learned) => {
                if let Err(cold) = db.load_learned_section(learned, kernel, outcome) {
                    // Structural corruption inside the section: whatever
                    // was not decoded yet comes up cold.
                    let _ = cold;
                    outcome.learned_state_dropped = true;
                }
            }
        }
        Ok((watermark, want_full_index))
    }

    fn load_learned_section(
        &mut self,
        learned: &[u8],
        kernel: holistic_cracking::CrackKernel,
        outcome: &mut RecoveryOutcome,
    ) -> Result<(), PersistError> {
        let mut d = Decoder::new(learned);
        let count = d.take_len(1)?;
        for _ in 0..count {
            let id = take_column_id(&mut d)?;
            let extent = d.take_len(1)?;
            let shard_count = d.take_len(1)?;
            // Sampled validation: structural invariants and a deterministic
            // ~1-in-32 piece sample are checked here; the full O(data) pass
            // is deferred to the background scrubber (the column is marked
            // scrub-priority below) and the first-touch paranoia check.
            // This cuts restart cost below a cold rebuild while keeping the
            // no-wrong-answers contract — deferred damage heals through
            // quarantine + rebuild instead of answering queries.
            let validation = DecodeValidation::Sampled {
                seed: self.config.rng_seed,
                rate: 32,
            };
            // Every shard's bytes are consumed even after a failure so the
            // decoder stays aligned for the next column; one bad shard
            // drops this column alone (it comes up cold), never the rest.
            let mut shards = Vec::with_capacity(shard_count.min(1024));
            let mut decodable = true;
            for _ in 0..shard_count {
                let len = d.take_len(1)?;
                let bytes = d.take_bytes(len)?;
                if !decodable {
                    continue;
                }
                match decode_cracker_column_with(bytes, kernel, validation) {
                    Ok(col) => shards.push(col),
                    Err(_) => decodable = false,
                }
            }
            // A cracker for a column the catalog does not know is stale
            // noise; a cracker with a bad shard is dropped alone.
            if self.catalog.column(id).is_err() || !decodable || shards.is_empty() {
                outcome.cold_columns.push(id);
                continue;
            }
            self.crackers.write().insert(
                id,
                Arc::new(ConcurrentCrackerColumn::from_shards(shards, extent)),
            );
            self.health.lock().mark_needs_scrub(id);
            outcome.sampled_columns.push(id);
        }
        d.finish()?;
        Ok(())
    }

    /// Applies one replayed WAL record. Mirrors the forward mutation
    /// paths exactly (minus the logging), so replay is deterministic.
    fn replay_wal_record(
        &mut self,
        record: &WalRecord,
        want_full_index: &mut BTreeSet<ColumnId>,
        outcome: &mut RecoveryOutcome,
    ) -> EngineResult<()> {
        match record {
            WalRecord::CreateTable { id, name, columns } => {
                let mut table = Table::new(name.clone());
                for (col_name, values) in columns {
                    table.add_column_from_values(col_name, values.clone())?;
                }
                self.catalog.register_with_id(*id, table)?;
                for column_id in self.catalog.all_column_ids() {
                    if column_id.table == *id {
                        let len = self.catalog.column(column_id)?.len();
                        self.stats.register_column(column_id, len);
                    }
                }
            }
            WalRecord::DropTable { id } => {
                self.drop_table_internal(*id);
                want_full_index.retain(|c| c.table != *id);
            }
            WalRecord::Insert { column, value } => {
                self.apply_insert(*column, *value)?;
                want_full_index.remove(column);
            }
            WalRecord::Delete { column, value } => {
                self.apply_delete(*column, *value)?;
                want_full_index.remove(column);
            }
            WalRecord::BuildFullIndex { column } => {
                want_full_index.insert(*column);
            }
            WalRecord::DropFullIndex { column } => {
                want_full_index.remove(column);
            }
            WalRecord::CrackerBorn { column } => {
                // Idempotent: racing queries may have logged the birth
                // twice, and a cracker already restored from LEARNED (born
                // before the snapshot, re-logged at genesis) must keep its
                // warm boundaries. A birth for a column the catalog no
                // longer knows is stale noise (the table was dropped later
                // in the same log) and is skipped like stale LEARNED state.
                if self.catalog.column(*column).is_ok()
                    && !self.crackers.read().contains_key(column)
                {
                    let base = self.catalog.column(*column)?;
                    let fresh = self.build_cracker(base);
                    self.crackers.write().insert(*column, Arc::new(fresh));
                    outcome.crackers_reborn.push(*column);
                }
            }
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wal_records_round_trip() {
        let records = [
            WalRecord::CreateTable {
                id: TableId(3),
                name: "events".into(),
                columns: vec![("ts".into(), vec![4, 1, 9]), ("v".into(), vec![-2, 0, 7])],
            },
            WalRecord::DropTable { id: TableId(3) },
            WalRecord::Insert {
                column: ColumnId::new(TableId(1), 0),
                value: -42,
            },
            WalRecord::Delete {
                column: ColumnId::new(TableId(1), 0),
                value: 17,
            },
            WalRecord::BuildFullIndex {
                column: ColumnId::new(TableId(2), 1),
            },
            WalRecord::DropFullIndex {
                column: ColumnId::new(TableId(2), 1),
            },
            WalRecord::CrackerBorn {
                column: ColumnId::new(TableId(4), 0),
            },
        ];
        for (i, record) in records.iter().enumerate() {
            let bytes = record.encode(i as u64 + 1);
            let (lsn, back) = WalRecord::decode(&bytes).unwrap();
            assert_eq!(lsn, i as u64 + 1);
            assert_eq!(&back, record);
        }
    }

    #[test]
    fn truncated_wal_records_error_cleanly() {
        let bytes = WalRecord::Insert {
            column: ColumnId::new(TableId(0), 0),
            value: 5,
        }
        .encode(9);
        for cut in 0..bytes.len() {
            assert!(WalRecord::decode(&bytes[..cut]).is_err(), "cut at {cut}");
        }
    }
}
