//! The workspace's single panic-containment boundary.
//!
//! A kernel bug that panics mid-crack must not take the whole process (and
//! every healthy column) down with it: the engine wraps kernel execution in
//! [`contain`], converts the panic payload into a reason string, and
//! quarantines the affected column — the same path a detected validation
//! failure takes. This is deliberately the *only* `catch_unwind` in the
//! workspace (the `catch-unwind-outside-boundary` lint enforces it):
//! swallowing panics anywhere else would hide bugs instead of containing
//! them, and containment is only sound here because the state the closure
//! may have half-mutated — the column's learned cracker state — is exactly
//! what quarantine throws away and rebuilds from base data.
//!
//! The vendored `parking_lot` latches do not poison, so a panic inside a
//! latched section leaves a usable (but possibly corrupt) structure behind;
//! latch guards release on unwind, so no latch residue survives the catch.

use std::panic::{catch_unwind, AssertUnwindSafe};

/// Runs `f`, converting a panic into `Err(reason)`.
///
/// `AssertUnwindSafe` is justified by the quarantine contract: on `Err`,
/// the caller must treat every structure the closure could have touched as
/// corrupt and drop it (quarantine + rebuild), never read through it.
pub fn contain<T>(f: impl FnOnce() -> T) -> Result<T, String> {
    // lint:allow(catch-unwind-outside-boundary) -- this IS the boundary.
    catch_unwind(AssertUnwindSafe(f)).map_err(|payload| {
        if let Some(s) = payload.downcast_ref::<&str>() {
            (*s).to_string()
        } else if let Some(s) = payload.downcast_ref::<String>() {
            s.clone()
        } else {
            "panic with non-string payload".to_string()
        }
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ok_values_pass_through() {
        assert_eq!(contain(|| 42), Ok(42));
    }

    #[test]
    fn str_panics_become_reasons() {
        let err = contain(|| -> u32 { panic!("kernel bug") }).unwrap_err();
        assert_eq!(err, "kernel bug");
    }

    #[test]
    fn formatted_panics_become_reasons() {
        let idx = 7;
        let err = contain(|| -> u32 { panic!("bad piece {idx}") }).unwrap_err();
        assert_eq!(err, "bad piece 7");
    }

    #[test]
    fn non_string_payloads_do_not_crash_the_boundary() {
        let err = contain(|| -> u32 { std::panic::panic_any(1234usize) }).unwrap_err();
        assert_eq!(err, "panic with non-string payload");
    }
}
