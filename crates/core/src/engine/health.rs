//! Per-column health tracking: the state machine behind quarantine and
//! self-healing of learned cracking state.
//!
//! Every column the engine serves is `Healthy` until a containment event
//! — a kernel panic caught at the boundary or a paranoia/scrub validation
//! failure — moves it to `Quarantined`. A quarantined column's cracker is
//! dropped from the map; queries keep getting *correct* answers via the
//! base-storage scan path (the base data is never touched by learned-state
//! corruption) while the background tuner claims the column (`Rebuilding`)
//! and recracks it from base data, after which it is `Healthy` again.
//!
//! The health map also carries the background scrubber's per-column piece
//! cursors, so incremental re-validation survives across idle windows.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use holistic_cracking::ConcurrentCrackerColumn;
use holistic_storage::ColumnId;

/// The health of one column's learned (cracker) state.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ColumnHealth {
    /// The cracker (if any) is trusted; queries use the normal paths.
    Healthy,
    /// The learned state was found corrupt (or a kernel panicked while
    /// operating on it) and has been dropped. Queries answer via the
    /// base-storage scan until a rebuild completes.
    Quarantined {
        /// What tripped the containment boundary: the panic payload or
        /// the validation/scrub message.
        reason: String,
    },
    /// The background tuner has claimed the column and is recracking it
    /// from base data. Queries still answer via the scan path.
    Rebuilding,
}

impl ColumnHealth {
    /// Whether queries on this column must take the degraded scan path.
    #[must_use]
    pub fn is_unhealthy(&self) -> bool {
        !matches!(self, ColumnHealth::Healthy)
    }
}

/// Report of one engine scrub window ([`Database::scrub_step`]).
///
/// [`Database::scrub_step`]: super::Database::scrub_step
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ScrubReport {
    /// The column the window worked on (`None` = nothing to scrub).
    pub column: Option<ColumnId>,
    /// Pieces re-validated in this window.
    pub pieces_checked: usize,
    /// Whether a piece failed validation (the column was quarantined).
    pub fault_found: bool,
    /// Whether this window finished a full pass over the column.
    pub completed_pass: bool,
}

/// The engine's health map: per-column state plus scrub bookkeeping.
/// Guarded by `Database::health` at `LockLevel::HealthMap` — above the
/// cracker map in the hierarchy, and never held across a column latch.
#[derive(Debug, Default)]
pub struct HealthState {
    /// Columns in a non-`Healthy` state (absence means `Healthy`).
    status: BTreeMap<ColumnId, ColumnHealth>,
    /// The background scrubber's resume position per column (piece index
    /// the next scrub window starts from).
    cursors: BTreeMap<ColumnId, usize>,
    /// Columns whose recovered state was only sample-validated and must
    /// be scrubbed with priority before the cursor rotation reaches them.
    needs_scrub: BTreeSet<ColumnId>,
    /// The column the previous scrub window worked on — the round-robin
    /// rotation point for [`HealthState::pick_scrub_target`].
    last_scrubbed: Option<ColumnId>,
    /// For quarantined columns where detection pinpointed one damaged
    /// shard: that shard's index. Absence means the fault could not be
    /// localized (e.g. a contained panic) and a rebuild starts from base.
    faulty_shard: BTreeMap<ColumnId, usize>,
    /// The quarantined cracker, stashed at quarantine time so a rebuild
    /// can reuse the *healthy* shards' learned state instead of recracking
    /// the whole column. Queries never see the stash — it leaves the
    /// cracker map the moment the column is quarantined.
    stashed: BTreeMap<ColumnId, Arc<ConcurrentCrackerColumn>>,
}

impl HealthState {
    /// The health of `column` (`Healthy` when untracked).
    #[must_use]
    pub fn health(&self, column: ColumnId) -> ColumnHealth {
        self.status
            .get(&column)
            .cloned()
            .unwrap_or(ColumnHealth::Healthy)
    }

    /// Whether `column` is quarantined or rebuilding.
    #[must_use]
    pub fn is_unhealthy(&self, column: ColumnId) -> bool {
        self.status.contains_key(&column)
    }

    /// Every column currently not `Healthy`, with its state.
    #[must_use]
    pub fn unhealthy(&self) -> Vec<(ColumnId, ColumnHealth)> {
        self.status.iter().map(|(&c, h)| (c, h.clone())).collect()
    }

    /// Marks `column` quarantined. Returns `false` (and keeps the existing
    /// state) when the column is already quarantined or rebuilding, so
    /// racing detectors quarantine exactly once.
    pub fn quarantine(&mut self, column: ColumnId, reason: String) -> bool {
        if self.status.contains_key(&column) {
            return false;
        }
        self.status
            .insert(column, ColumnHealth::Quarantined { reason });
        true
    }

    /// Claims a quarantined column for rebuilding. Returns `false` when
    /// the column is not currently `Quarantined` (someone else claimed it,
    /// or it healed already) — the claim is the rebuild's mutual exclusion.
    pub fn claim_rebuild(&mut self, column: ColumnId) -> bool {
        match self.status.get(&column) {
            Some(ColumnHealth::Quarantined { .. }) => {
                self.status.insert(column, ColumnHealth::Rebuilding);
                true
            }
            _ => false,
        }
    }

    /// Marks a column healthy again (rebuild complete) and clears its
    /// scrub bookkeeping so the fresh structure is scrubbed from piece 0.
    pub fn heal(&mut self, column: ColumnId) {
        self.status.remove(&column);
        self.cursors.remove(&column);
        self.needs_scrub.remove(&column);
        self.faulty_shard.remove(&column);
        self.stashed.remove(&column);
    }

    /// Stashes a quarantined column's cracker (and, when detection could
    /// localize it, the index of the damaged shard) for the rebuild path.
    pub fn stash_for_rebuild(
        &mut self,
        column: ColumnId,
        faulty_shard: Option<usize>,
        cracker: Arc<ConcurrentCrackerColumn>,
    ) {
        if let Some(shard) = faulty_shard {
            self.faulty_shard.insert(column, shard);
        }
        self.stashed.insert(column, cracker);
    }

    /// Takes the stashed cracker and localized shard for a rebuild (the
    /// stash is consumed — a failed rebuild falls back to base data).
    pub fn take_stash(
        &mut self,
        column: ColumnId,
    ) -> (Option<usize>, Option<Arc<ConcurrentCrackerColumn>>) {
        (
            self.faulty_shard.remove(&column),
            self.stashed.remove(&column),
        )
    }

    /// The localized damaged shard of a quarantined column, if detection
    /// pinpointed one (introspection for tests and tooling).
    #[must_use]
    pub fn faulty_shard(&self, column: ColumnId) -> Option<usize> {
        self.faulty_shard.get(&column).copied()
    }

    /// The first quarantined (not yet claimed) column, if any.
    #[must_use]
    pub fn next_quarantined(&self) -> Option<ColumnId> {
        self.status
            .iter()
            .find(|(_, h)| matches!(h, ColumnHealth::Quarantined { .. }))
            .map(|(&c, _)| c)
    }

    /// Marks a column's recovered state as sample-validated only: the
    /// scrubber prioritizes it until a full pass completes.
    pub fn mark_needs_scrub(&mut self, column: ColumnId) {
        self.needs_scrub.insert(column);
    }

    /// The scrubber's resume cursor for `column` (piece index).
    #[must_use]
    pub fn cursor(&self, column: ColumnId) -> usize {
        self.cursors.get(&column).copied().unwrap_or(0)
    }

    /// Stores the scrubber's resume position; `None` means the pass over
    /// the column completed (cursor resets and any priority mark clears).
    pub fn set_cursor(&mut self, column: ColumnId, next: Option<usize>) {
        match next {
            Some(pos) => {
                self.cursors.insert(column, pos);
            }
            None => {
                self.cursors.remove(&column);
                self.needs_scrub.remove(&column);
            }
        }
    }

    /// Picks the column the next scrub window should work on: priority
    /// (sample-validated) columns first, then round-robin over `known`
    /// starting after `last` — skipping unhealthy columns, whose structures
    /// are gone or being rebuilt.
    #[must_use]
    pub fn pick_scrub_target(
        &self,
        known: &[ColumnId],
        last: Option<ColumnId>,
    ) -> Option<ColumnId> {
        if let Some(&c) = self
            .needs_scrub
            .iter()
            .find(|c| !self.is_unhealthy(**c) && known.contains(c))
        {
            return Some(c);
        }
        if known.is_empty() {
            return None;
        }
        let start = match last {
            Some(l) => known.iter().position(|&c| c == l).map_or(0, |i| i + 1),
            None => 0,
        };
        (0..known.len())
            .map(|i| known[(start + i) % known.len()])
            .find(|&c| !self.is_unhealthy(c))
    }

    /// The column the previous scrub window worked on.
    #[must_use]
    pub fn last_scrubbed(&self) -> Option<ColumnId> {
        self.last_scrubbed
    }

    /// Records the column a scrub window just worked on (rotation point).
    pub fn note_scrubbed(&mut self, column: ColumnId) {
        self.last_scrubbed = Some(column);
    }

    /// Forgets a column entirely (dropped table).
    pub fn forget(&mut self, column: ColumnId) {
        self.status.remove(&column);
        self.cursors.remove(&column);
        self.needs_scrub.remove(&column);
        self.faulty_shard.remove(&column);
        self.stashed.remove(&column);
        if self.last_scrubbed == Some(column) {
            self.last_scrubbed = None;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn col(n: u32) -> ColumnId {
        ColumnId {
            table: holistic_storage::TableId(0),
            column: n,
        }
    }

    #[test]
    fn untracked_columns_are_healthy() {
        let h = HealthState::default();
        assert_eq!(h.health(col(1)), ColumnHealth::Healthy);
        assert!(!h.is_unhealthy(col(1)));
        assert!(h.unhealthy().is_empty());
    }

    #[test]
    fn quarantine_is_one_shot_until_heal() {
        let mut h = HealthState::default();
        assert!(h.quarantine(col(1), "bad sum".into()));
        assert!(!h.quarantine(col(1), "second detector".into()));
        assert_eq!(
            h.health(col(1)),
            ColumnHealth::Quarantined {
                reason: "bad sum".into()
            }
        );
        h.heal(col(1));
        assert!(h.quarantine(col(1), "again".into()));
    }

    #[test]
    fn rebuild_claim_is_exclusive() {
        let mut h = HealthState::default();
        h.quarantine(col(1), "x".into());
        assert!(h.claim_rebuild(col(1)));
        assert!(!h.claim_rebuild(col(1)), "second claim must lose");
        assert_eq!(h.health(col(1)), ColumnHealth::Rebuilding);
        assert_eq!(h.next_quarantined(), None, "claimed column is not offered");
        h.heal(col(1));
        assert_eq!(h.health(col(1)), ColumnHealth::Healthy);
    }

    #[test]
    fn claim_on_healthy_column_fails() {
        let mut h = HealthState::default();
        assert!(!h.claim_rebuild(col(1)));
    }

    #[test]
    fn cursor_roundtrip_and_completion() {
        let mut h = HealthState::default();
        assert_eq!(h.cursor(col(1)), 0);
        h.set_cursor(col(1), Some(40));
        assert_eq!(h.cursor(col(1)), 40);
        h.mark_needs_scrub(col(1));
        h.set_cursor(col(1), None);
        assert_eq!(h.cursor(col(1)), 0);
        // Completion clears the priority mark.
        assert_eq!(
            h.pick_scrub_target(&[col(1), col(2)], Some(col(1))),
            Some(col(2))
        );
    }

    #[test]
    fn scrub_target_prefers_marked_then_rotates() {
        let mut h = HealthState::default();
        let known = [col(1), col(2), col(3)];
        h.mark_needs_scrub(col(2));
        assert_eq!(h.pick_scrub_target(&known, None), Some(col(2)));
        h.set_cursor(col(2), None); // full pass done
        assert_eq!(h.pick_scrub_target(&known, None), Some(col(1)));
        assert_eq!(h.pick_scrub_target(&known, Some(col(1))), Some(col(2)));
        assert_eq!(h.pick_scrub_target(&known, Some(col(3))), Some(col(1)));
    }

    #[test]
    fn scrub_target_skips_unhealthy_columns() {
        let mut h = HealthState::default();
        let known = [col(1), col(2)];
        h.quarantine(col(1), "x".into());
        assert_eq!(h.pick_scrub_target(&known, None), Some(col(2)));
        h.quarantine(col(2), "y".into());
        assert_eq!(h.pick_scrub_target(&known, None), None);
    }

    #[test]
    fn forget_clears_everything() {
        let mut h = HealthState::default();
        h.quarantine(col(1), "x".into());
        h.set_cursor(col(1), Some(3));
        h.mark_needs_scrub(col(1));
        h.forget(col(1));
        assert!(!h.is_unhealthy(col(1)));
        assert_eq!(h.cursor(col(1)), 0);
    }
}
