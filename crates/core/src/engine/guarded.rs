//! Deadline- and cancellation-aware batch execution: the engine-side
//! hooks a front-door service dispatches admitted batches through.
//!
//! The service layer (`holistic-server`) forms batches from concurrent
//! client traffic. Between admission and dispatch a query's deadline may
//! expire or its client may disconnect; [`Database::execute_batch_guarded`]
//! re-checks both *at dispatch* and sheds such queries with a typed error
//! — [`HolisticError::DeadlineExceeded`] / [`HolisticError::Cancelled`] —
//! instead of executing them. A shed query performs **no** engine work at
//! all: no cracking, no statistics, no metrics record. Shedding is
//! therefore always safe (never half-executed) and invisible to the
//! learned index state.
//!
//! [`Database::execute_if_resolved`] is the saturation-mode companion: a
//! read-only answer path that serves a query only if the learned state
//! already resolves it (shared latch, zero reorganization), so an
//! overloaded service can keep answering hot ranges without paying index
//! maintenance for cold ones.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Instant;

use crate::error::HolisticError;
use crate::metrics::QueryRecord;

use super::query::{AccessPath, Query, QueryResult};
use super::{Database, EngineResult};

/// One query of a guarded (service-dispatched) batch: the query itself
/// plus the shed controls the service attached at admission.
#[derive(Debug, Clone)]
pub struct GuardedQuery {
    /// The range query to execute.
    pub query: Query,
    /// Absolute deadline; the query is shed with
    /// [`HolisticError::DeadlineExceeded`] if dispatch happens after it.
    pub deadline: Option<Instant>,
    /// Cooperative cancellation flag, shared with the owning session.
    /// When set at dispatch the query is shed with
    /// [`HolisticError::Cancelled`].
    pub cancelled: Option<Arc<AtomicBool>>,
}

impl GuardedQuery {
    /// A guarded query with no deadline and no cancellation flag.
    #[must_use]
    pub fn new(query: Query) -> Self {
        GuardedQuery {
            query,
            deadline: None,
            cancelled: None,
        }
    }

    /// Attaches an absolute deadline.
    #[must_use]
    pub fn with_deadline(mut self, deadline: Instant) -> Self {
        self.deadline = Some(deadline);
        self
    }

    /// Attaches a shared cancellation flag.
    #[must_use]
    pub fn with_cancel(mut self, flag: Arc<AtomicBool>) -> Self {
        self.cancelled = Some(flag);
        self
    }

    /// Whether the cancellation flag is set.
    #[must_use]
    pub fn is_cancelled(&self) -> bool {
        self.cancelled
            .as_ref()
            .is_some_and(|f| f.load(Ordering::Acquire))
    }

    /// Whether the deadline has passed at `now`.
    #[must_use]
    pub fn is_late(&self, now: Instant) -> bool {
        self.deadline.is_some_and(|d| d <= now)
    }
}

impl Database {
    /// Executes a service batch with per-query shed controls.
    ///
    /// Each query is re-checked at dispatch: cancelled queries return
    /// [`HolisticError::Cancelled`], deadline-expired queries return
    /// [`HolisticError::DeadlineExceeded`], and queries naming an unknown
    /// column return their own [`HolisticError::Storage`] — per query,
    /// not failing the batch the way [`Database::execute_batch`] does,
    /// because one bad client request must not shed its batchmates. The
    /// surviving queries execute through the batched path with semantics
    /// identical to [`Database::execute_batch`].
    ///
    /// Every input produces exactly one entry in the output, in order: a
    /// result or a typed error, never both, never neither — the
    /// exactly-one-response contract the service protocol is built on.
    /// A batch-wide execution failure (e.g. a paranoia validation error)
    /// is cloned into every surviving query's slot.
    pub fn execute_batch_guarded(
        &self,
        items: &[GuardedQuery],
    ) -> Vec<Result<QueryResult, HolisticError>> {
        let now = Instant::now();
        let mut out: Vec<Option<Result<QueryResult, HolisticError>>> = vec![None; items.len()];
        let mut live = Vec::with_capacity(items.len());
        let mut live_idx = Vec::with_capacity(items.len());
        for (i, item) in items.iter().enumerate() {
            if item.is_cancelled() {
                out[i] = Some(Err(HolisticError::Cancelled));
            } else if item.is_late(now) {
                out[i] = Some(Err(HolisticError::DeadlineExceeded));
            } else if let Err(e) = self.catalog.column(item.query.column) {
                out[i] = Some(Err(e.into()));
            } else {
                live_idx.push(i);
                live.push(item.query);
            }
        }
        if !live.is_empty() {
            match self.execute_batch(&live) {
                Ok(results) => {
                    for (&i, result) in live_idx.iter().zip(results) {
                        out[i] = Some(Ok(result));
                    }
                }
                Err(e) => {
                    for &i in &live_idx {
                        out[i] = Some(Err(e.clone()));
                    }
                }
            }
        }
        out.into_iter()
            .map(|slot| {
                slot.unwrap_or_else(|| {
                    Err(HolisticError::Validation(
                        "guarded batch left a query slot unfilled".into(),
                    ))
                })
            })
            .collect()
    }

    /// Answers `q` read-only if the learned state already resolves it,
    /// without instantiating crackers or reorganizing anything.
    ///
    /// Returns `Ok(None)` when answering would require work — no cracker
    /// exists for the column yet, or a predicate bound is unresolved and
    /// not binary-searchable in a prefix-seeded sorted piece. The caller
    /// (the service's saturation mode) then chooses between queueing the
    /// query for normal execution and shedding it.
    ///
    /// Deliberately records no predicate statistics and triggers no
    /// hot-range boosts: a saturated service wants zero tuning pressure
    /// from the degraded path.
    pub fn execute_if_resolved(&self, q: &Query) -> EngineResult<Option<QueryResult>> {
        let start = Instant::now();
        self.catalog.column(q.column)?;
        let cracker = self.crackers.read().get(&q.column).cloned();
        let Some(cracker) = cracker else {
            return Ok(None);
        };
        let Some(outcome) = cracker.try_select_readonly(q.lo, q.hi, q.materialize) else {
            return Ok(None);
        };
        self.metrics.record_aggregate_cache(outcome.cache);
        let result = QueryResult {
            count: outcome.count,
            sum: outcome.sum,
            values: outcome.values,
            path: AccessPath::Crack,
            latency: start.elapsed(),
        };
        self.metrics.record_query(QueryRecord {
            sequence: self.query_sequence.fetch_add(1, Ordering::Relaxed),
            column: q.column,
            path: result.path,
            latency: result.latency,
            result_count: result.count,
        });
        self.touch_activity();
        Ok(Some(result))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HolisticConfig;
    use crate::strategy::IndexingStrategy;
    use holistic_storage::ColumnId;

    fn db_with_column(values: Vec<i64>) -> (Database, ColumnId) {
        let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
        let table = db
            .create_table("t", vec![("v", values)])
            .expect("create table");
        let column = db.column_id(table, "v").expect("column id");
        (db, column)
    }

    #[test]
    fn guarded_batch_sheds_and_executes_per_query() {
        let (db, column) = db_with_column((0..1000).collect());
        let cancel = Arc::new(AtomicBool::new(true));
        let unknown = ColumnId::new(holistic_storage::TableId(99), 0);
        let items = vec![
            GuardedQuery::new(Query::range(column, 10, 20)),
            GuardedQuery::new(Query::range(column, 0, 1000)).with_cancel(Arc::clone(&cancel)),
            GuardedQuery::new(Query::range(column, 30, 40))
                .with_deadline(Instant::now() - std::time::Duration::from_millis(1)),
            GuardedQuery::new(Query::range(unknown, 0, 1)),
        ];
        let out = db.execute_batch_guarded(&items);
        assert_eq!(out.len(), 4);
        assert_eq!(out[0].as_ref().map(|r| r.count), Ok(10));
        assert_eq!(out[1], Err(HolisticError::Cancelled));
        assert_eq!(out[2], Err(HolisticError::DeadlineExceeded));
        assert!(matches!(out[3], Err(HolisticError::Storage(_))));
        // Shed queries are exactly that: the engine executed only the
        // surviving one.
        assert_eq!(db.metrics().query_count(), 1);
    }

    #[test]
    fn guarded_batch_matches_plain_batch_for_live_queries() {
        let (db, column) = db_with_column((0..512).rev().collect());
        let queries: Vec<Query> = (0..16)
            .map(|i| Query::range(column, i * 8, i * 8 + 96))
            .collect();
        let plain = db.execute_batch(&queries).expect("plain batch");
        let (db2, column2) = db_with_column((0..512).rev().collect());
        let items: Vec<GuardedQuery> = (0..16)
            .map(|i| {
                GuardedQuery::new(Query::range(column2, i * 8, i * 8 + 96))
                    .with_deadline(Instant::now() + std::time::Duration::from_secs(60))
                    .with_cancel(Arc::new(AtomicBool::new(false)))
            })
            .collect();
        let guarded = db2.execute_batch_guarded(&items);
        for (p, g) in plain.iter().zip(&guarded) {
            let g = g.as_ref().expect("live query answered");
            assert_eq!((p.count, p.sum), (g.count, g.sum));
        }
    }

    #[test]
    fn resolved_path_answers_only_without_work() {
        let (db, column) = db_with_column((0..1000).collect());
        // Nothing learned yet: the read-only path must refuse, not crack.
        assert_eq!(
            db.execute_if_resolved(&Query::range(column, 100, 200))
                .expect("known column"),
            None
        );
        assert_eq!(db.piece_count(column), 0);
        // Learn the bounds through the normal path, then the read-only
        // path answers identically.
        let normal = db
            .execute(&Query::range(column, 100, 200))
            .expect("normal execution");
        let resolved = db
            .execute_if_resolved(&Query::range(column, 100, 200))
            .expect("known column")
            .expect("resolved after cracking");
        assert_eq!((resolved.count, resolved.sum), (normal.count, normal.sum));
        // Unknown columns stay a typed error.
        let unknown = ColumnId::new(holistic_storage::TableId(9), 9);
        assert!(db
            .execute_if_resolved(&Query::range(unknown, 0, 1))
            .is_err());
    }
}
