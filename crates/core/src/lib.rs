//! # holistic-core
//!
//! The holistic indexing kernel: offline, online and adaptive indexing
//! unified in one engine, as envisioned by *Holistic Indexing: Offline,
//! Online and Adaptive Indexing in the Same Kernel* (SIGMOD 2012 PhD
//! Symposium).
//!
//! Holistic indexing combines the strengths of the three automated indexing
//! approaches while avoiding their weaknesses:
//!
//! * like **adaptive indexing** (database cracking) it reacts instantly:
//!   indexes are partial and incremental and are refined as a side effect of
//!   every query;
//! * like **online indexing** it monitors the workload continuously and
//!   keeps statistics about which columns and value ranges are hot;
//! * like **offline indexing** it exploits workload knowledge and idle time
//!   — but instead of building a few full indexes it spreads the idle budget
//!   over *many partial indexes* with cheap random refinement actions,
//!   guided by a cost model that knows when further refinement stops paying
//!   off (pieces that fit in the CPU cache).
//!
//! The central type is [`Database`]: a small column-store engine whose
//! select operators implement all the indexing strategies of the paper
//! ([`IndexingStrategy`]) side by side, so they can be compared under
//! identical workloads. The holistic machinery lives in [`stats`]
//! (continuous statistics), [`ranking`] (which column deserves the next
//! refinement action), [`idle`] (idle-time budgets and the tuning executor)
//! and [`background`] (a thread that detects idle time and tunes
//! autonomously).
//!
//! The hot path is shared-reference: [`Database::execute`] and
//! [`Database::run_idle`] take `&self` and synchronize through per-column
//! reader/writer latches, so a shared engine ([`SharedDatabase`], built
//! with [`Database::into_shared`]) serves query traffic and the
//! background tuner through `db.read()` while only structural operations
//! (schema changes, full-index builds, strategy switches) take
//! `db.write()`. With [`HolisticConfig::shard_extent`] set, each cracker
//! column is further split into fixed-extent shards behind their own
//! latches: queries fan out and compose per-shard aggregates, and
//! concurrent writers crack disjoint shards of the same column in
//! parallel. Every lock in the engine is a `holistic-sync` ordered
//! lock carrying its position in the latch hierarchy; debug and paranoia
//! builds panic on out-of-order acquisition. The full design — latch
//! hierarchy, kernel dispatch, aggregate-cache coherence — is documented
//! in the repository's `ARCHITECTURE.md`.
//!
//! # Quickstart
//!
//! The happy path, end to end (`examples/quickstart.rs` is the same
//! sequence at full scale, with timing output):
//!
//! ```
//! use holistic_core::{Database, HolisticConfig, IdleBudget, IndexingStrategy, Query};
//!
//! // 1. Create an engine that uses holistic indexing for its selects.
//! //    `for_testing()` lowers the cache-resident piece target so idle
//! //    refinement is still worthwhile on this small doctest column.
//! let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
//!
//! // 2. Load a table of pseudo-random integers.
//! let n: i64 = 10_000;
//! let values: Vec<i64> = (0..n).map(|i| (i * 7919) % n).collect();
//! let table = db.create_table("readings", vec![("temperature", values)]).unwrap();
//! let col = db.column_id(table, "temperature").unwrap();
//!
//! // 3. Range queries crack the column a little more each time, so
//! //    queries get faster — and every count/sum answer is exact.
//! for i in 0..8 {
//!     let lo = i * (n / 10);
//!     let result = db.execute(&Query::range(col, lo, lo + n / 100)).unwrap();
//!     assert_eq!(result.count, (n / 100) as u64);
//! }
//! assert!(db.piece_count(col) > 1);
//!
//! // 4. The workload pauses: idle time refines the hottest columns.
//! let report = db.run_idle(IdleBudget::Actions(64));
//! assert!(report.actions_applied > 0);
//!
//! // 5. The observed workload can be handed to the offline advisor at
//! //    any time, e.g. to decide whether a full index is worth building.
//! let summary = db.observed_workload();
//! assert_eq!(summary.total_queries(), 8);
//! ```

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod background;
pub mod config;
pub mod engine;
pub mod error;
pub mod idle;
pub mod metrics;
pub mod ranking;
pub mod stats;
pub mod strategy;

pub use background::{BackgroundConfig, BackgroundTuner};
pub use config::HolisticConfig;
pub use engine::guarded::GuardedQuery;
pub use engine::health::{ColumnHealth, ScrubReport};
pub use engine::persist::RecoveryOutcome;
pub use engine::query::{AccessPath, Query, QueryResult};
pub use engine::timeline::{strategy_timeline, TimelinePhase};
pub use engine::{Database, SharedDatabase, UpdateOp};
pub use error::HolisticError;
pub use idle::{IdleBudget, IdleReport};
pub use metrics::{EngineMetrics, IntegrityCounters, QueryRecord, ServiceCounters};
pub use ranking::RankingModel;
pub use stats::{ColumnActivity, KernelStatistics};
pub use strategy::{IndexingStrategy, StrategyFeatures};

pub use holistic_cracking::{
    AggregateCacheDelta, CorruptionInjector, CorruptionKind, CrackKernel, CrackPolicy,
    KernelChoice, KernelDispatches,
};
pub use holistic_offline::CostModel;
pub use holistic_persist::{flip_byte, FaultInjector, PersistError};
pub use holistic_storage::{ColumnId, StorageError, TableId, Value};
pub use holistic_sync::{LockLevel, OrderedMutex, OrderedRwLock};
