//! The background tuner: a thread that continuously detects idle time and
//! spends it on auxiliary refinement.
//!
//! The paper's vision is a kernel that "continuously detects and exploits
//! idle time" without any external tool. [`BackgroundTuner`] implements the
//! detection loop: it watches how long the engine has gone without a query
//! and, once the threshold is exceeded, takes the engine lock and applies a
//! small batch of ranking-driven refinement actions, then yields so arriving
//! queries are never blocked for long.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::RwLock;

use crate::engine::Database;
use crate::idle::IdleBudget;

/// Configuration of the background tuner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackgroundConfig {
    /// The engine is considered idle once no query has executed for this long.
    pub idle_threshold: Duration,
    /// Refinement actions applied per tuning batch (the lock is released
    /// between batches so queries never wait long).
    pub batch_actions: u64,
    /// Sleep between idleness checks.
    pub poll_interval: Duration,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        BackgroundConfig {
            idle_threshold: Duration::from_millis(2),
            batch_actions: 64,
            poll_interval: Duration::from_micros(500),
        }
    }
}

/// Handle to a running background tuner thread.
#[derive(Debug)]
pub struct BackgroundTuner {
    stop: Arc<AtomicBool>,
    actions: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

impl BackgroundTuner {
    /// Spawns a background tuner operating on a shared engine.
    #[must_use]
    pub fn spawn(db: Arc<RwLock<Database>>, config: BackgroundConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let actions = Arc::new(AtomicU64::new(0));
        let stop_flag = Arc::clone(&stop);
        let action_counter = Arc::clone(&actions);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                let is_idle = {
                    let guard = db.read();
                    guard.idle_for() >= config.idle_threshold
                };
                if is_idle {
                    let mut guard = db.write();
                    // Re-check under the exclusive lock: a query may have
                    // slipped in while we were waiting for it.
                    if guard.idle_for() >= config.idle_threshold {
                        let report = guard.run_idle(IdleBudget::Actions(config.batch_actions));
                        action_counter.fetch_add(report.actions_applied, Ordering::Relaxed);
                        if report.converged {
                            // Nothing left worth refining; back off harder.
                            drop(guard);
                            std::thread::sleep(config.poll_interval * 20);
                            continue;
                        }
                    }
                } else {
                    std::thread::sleep(config.poll_interval);
                }
            }
        });
        BackgroundTuner {
            stop,
            actions,
            handle: Some(handle),
        }
    }

    /// Total refinement actions the background thread has applied so far.
    #[must_use]
    pub fn actions_applied(&self) -> u64 {
        self.actions.load(Ordering::Relaxed)
    }

    /// Stops the tuner thread and waits for it to exit.
    pub fn stop(mut self) -> u64 {
        self.shutdown();
        self.actions.load(Ordering::Relaxed)
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for BackgroundTuner {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HolisticConfig;
    use crate::engine::query::Query;
    use crate::strategy::IndexingStrategy;

    fn shared_db(n: usize) -> (Arc<RwLock<Database>>, holistic_storage::ColumnId) {
        let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
        let values: Vec<i64> = (0..n as i64).map(|i| (i * 7919) % (n as i64)).collect();
        let t = db.create_table("r", vec![("a", values)]).unwrap();
        let col = db.column_id(t, "a").unwrap();
        (Arc::new(RwLock::new(db)), col)
    }

    #[test]
    fn background_tuner_refines_during_idle_time() {
        let (db, col) = shared_db(50_000);
        // Seed some workload knowledge.
        db.write().execute(&Query::range(col, 100, 200)).unwrap();
        let tuner = BackgroundTuner::spawn(
            Arc::clone(&db),
            BackgroundConfig {
                idle_threshold: Duration::from_millis(1),
                batch_actions: 32,
                poll_interval: Duration::from_micros(200),
            },
        );
        // Simulate an idle stretch.
        std::thread::sleep(Duration::from_millis(60));
        let applied = tuner.stop();
        assert!(
            applied > 0,
            "background tuner should have refined something"
        );
        assert!(db.read().piece_count(col) > 2);
        // Queries still answer correctly afterwards.
        let r = db.write().execute(&Query::range(col, 1000, 2000)).unwrap();
        assert!(r.count > 0);
    }

    #[test]
    fn background_tuner_stops_cleanly_without_idle_time() {
        let (db, col) = shared_db(5_000);
        let tuner = BackgroundTuner::spawn(
            Arc::clone(&db),
            BackgroundConfig {
                idle_threshold: Duration::from_secs(3600),
                batch_actions: 8,
                poll_interval: Duration::from_micros(100),
            },
        );
        // Keep the engine busy; the enormous idle threshold is never reached.
        for i in 0..20 {
            db.write()
                .execute(&Query::range(col, i * 10, i * 10 + 100))
                .unwrap();
        }
        let applied = tuner.stop();
        assert_eq!(applied, 0);
    }

    #[test]
    fn dropping_the_handle_stops_the_thread() {
        let (db, _col) = shared_db(1_000);
        let tuner = BackgroundTuner::spawn(Arc::clone(&db), BackgroundConfig::default());
        assert_eq!(
            tuner.actions_applied(),
            tuner.actions.load(Ordering::Relaxed)
        );
        drop(tuner);
        // Reaching this point without hanging is the assertion.
    }
}
