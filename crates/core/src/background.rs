//! The background tuner: a thread that continuously detects idle time and
//! spends it on auxiliary refinement.
//!
//! The paper's vision is a kernel that "continuously detects and exploits
//! idle time" without any external tool. [`BackgroundTuner`] implements the
//! detection loop: it watches how long the engine has gone without a query
//! and, once the threshold is exceeded, applies a small batch of
//! ranking-driven refinement actions.
//!
//! Since [`Database::run_idle`](crate::Database::run_idle) takes `&self` and refines through the
//! per-column latches, the tuner only ever takes the *read* side of the
//! shared engine lock: queries on column A keep executing while the tuner
//! cracks column B. The exclusive engine lock is reserved for structural
//! operations (schema changes, full-index builds, strategy switches).

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use crate::engine::SharedDatabase;
use crate::idle::IdleBudget;

/// Configuration of the background tuner.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BackgroundConfig {
    /// The engine is considered idle once no query has executed for this long.
    pub idle_threshold: Duration,
    /// Refinement actions applied per tuning batch (per-column latches are
    /// released between actions, so queries never wait long).
    pub batch_actions: u64,
    /// Sleep between idleness checks.
    pub poll_interval: Duration,
    /// Whether idle batches also seed prefix-sum arrays
    /// ([`Database::seed_prefix_sums`](crate::Database::seed_prefix_sums)): sorted pieces and full indexes
    /// whose arrays were never built (or were invalidated by updates) get
    /// them rebuilt during idle time, so resolved aggregates return to the
    /// zero-read path without any query paying the build. When everything
    /// is seeded this is a read-only metadata probe (no write latches);
    /// structures seeded by a batch count toward
    /// [`BackgroundTuner::actions_applied`]. Enabled by default.
    pub seed_prefix_sums: bool,
    /// Whether idle batches also write a snapshot when WAL records have
    /// accumulated since the last one ([`Database::snapshot_if_dirty`](crate::Database::snapshot_if_dirty)):
    /// checkpointing rides the same idle detection as refinement, so the
    /// recovery-relevant WAL tail stays short without any query paying for
    /// the snapshot. No-op while persistence is not enabled. Disabled by
    /// default (snapshot cadence is workload policy, not tuning).
    pub snapshot_on_idle: bool,
    /// Pieces the background integrity scrubber re-validates per idle
    /// batch ([`Database::scrub_step`](crate::Database::scrub_step)): learned state is incrementally
    /// re-checked against the base data during idle time — columns
    /// recovered under sampled validation first, then round-robin — and a
    /// failing piece quarantines its column for rebuild. `0` disables
    /// scrubbing.
    pub scrub_pieces: usize,
}

impl Default for BackgroundConfig {
    fn default() -> Self {
        BackgroundConfig {
            idle_threshold: Duration::from_millis(2),
            batch_actions: 64,
            poll_interval: Duration::from_micros(500),
            seed_prefix_sums: true,
            snapshot_on_idle: false,
            scrub_pieces: 256,
        }
    }
}

/// Handle to a running background tuner thread.
#[derive(Debug)]
pub struct BackgroundTuner {
    stop: Arc<AtomicBool>,
    pause: Arc<AtomicBool>,
    actions: Arc<AtomicU64>,
    handle: Option<JoinHandle<()>>,
}

/// Sleeps up to `total`, in small slices, returning early once `stop` is
/// set. Keeps converged back-off from delaying shutdown.
fn sleep_stop_aware(stop: &AtomicBool, total: Duration) {
    const SLICE: Duration = Duration::from_millis(5);
    let deadline = Instant::now() + total;
    while !stop.load(Ordering::Relaxed) {
        let remaining = deadline.saturating_duration_since(Instant::now());
        if remaining.is_zero() {
            return;
        }
        std::thread::sleep(remaining.min(SLICE));
    }
}

impl BackgroundTuner {
    /// Spawns a background tuner operating on a shared engine.
    #[must_use]
    pub fn spawn(db: SharedDatabase, config: BackgroundConfig) -> Self {
        let stop = Arc::new(AtomicBool::new(false));
        let pause = Arc::new(AtomicBool::new(false));
        let actions = Arc::new(AtomicU64::new(0));
        let stop_flag = Arc::clone(&stop);
        let pause_flag = Arc::clone(&pause);
        let action_counter = Arc::clone(&actions);
        let handle = std::thread::spawn(move || {
            while !stop_flag.load(Ordering::Relaxed) {
                if pause_flag.load(Ordering::Relaxed) {
                    // Saturation pause: a front-door service under overload
                    // wants every cycle and every latch for query traffic,
                    // so refinement stands down until load drains.
                    sleep_stop_aware(&stop_flag, config.poll_interval);
                    continue;
                }
                let is_idle = {
                    let guard = db.read();
                    guard.idle_for() >= config.idle_threshold
                };
                if is_idle {
                    // Refinement goes through the per-column latches under
                    // the shared engine lock; concurrent queries proceed.
                    // `run_idle` does not reset the idle clock, so a fully
                    // idle engine is tuned batch after batch instead of one
                    // batch per idle threshold.
                    let (report, seeded) = {
                        let guard = db.read();
                        let seeded = if config.seed_prefix_sums {
                            // Prefix seeding is idle work too: it restores
                            // the zero-read aggregate path after updates or
                            // fresh sorts without charging any query. The
                            // steady state is a read-only metadata probe
                            // per column (no write latch); an actual build
                            // holds one column's write latch for one
                            // streaming pass — the same latch-hold profile
                            // as a single refinement action on that piece.
                            guard.seed_prefix_sums()
                        } else {
                            0
                        };
                        if config.snapshot_on_idle {
                            // Checkpoint during idle time; a failure (e.g.
                            // a full disk) must not kill the tuning loop,
                            // and the next idle batch simply retries.
                            let _ = guard.snapshot_if_dirty();
                        }
                        if config.scrub_pieces > 0 {
                            // One budgeted integrity window per idle batch:
                            // re-validate a slice of learned state against
                            // the base data. A detected fault quarantines
                            // the column; the `run_idle` call right below
                            // picks the rebuild up as its first action.
                            let _ = guard.scrub_step(config.scrub_pieces);
                        }
                        (
                            guard.run_idle(IdleBudget::Actions(config.batch_actions)),
                            seeded,
                        )
                    };
                    // Seeded structures count as applied idle work, so a
                    // reseeding tuner is visible in `actions_applied`.
                    action_counter.fetch_add(report.actions_applied + seeded, Ordering::Relaxed);
                    if report.converged
                        || (report.actions_applied > 0 && report.effective_actions == 0)
                    {
                        // Nothing left worth refining — either the ranking
                        // model says so, or a whole batch of actions split
                        // nothing (e.g. a low-cardinality column that can
                        // never reach the cache target keeps a positive
                        // score). Back off instead of spinning on the
                        // column's exclusive latch, but stay responsive to
                        // the stop flag.
                        sleep_stop_aware(&stop_flag, config.poll_interval * 20);
                    }
                } else {
                    sleep_stop_aware(&stop_flag, config.poll_interval);
                }
            }
        });
        BackgroundTuner {
            stop,
            pause,
            actions,
            handle: Some(handle),
        }
    }

    /// Total refinement actions the background thread has applied so far.
    #[must_use]
    pub fn actions_applied(&self) -> u64 {
        self.actions.load(Ordering::Relaxed)
    }

    /// A shared handle to the pause flag, for wiring into a service's
    /// saturation mode: set = the tuner idles (applies no refinement),
    /// cleared = normal operation. See [`BackgroundTuner::set_paused`].
    #[must_use]
    pub fn pause_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.pause)
    }

    /// Pauses or resumes idle-time refinement. Pausing does not interrupt
    /// a batch already in flight (batches are short by construction); it
    /// prevents new batches from starting.
    pub fn set_paused(&self, paused: bool) {
        self.pause.store(paused, Ordering::Relaxed);
    }

    /// Whether the tuner is currently paused.
    #[must_use]
    pub fn is_paused(&self) -> bool {
        self.pause.load(Ordering::Relaxed)
    }

    /// Stops the tuner thread and waits for it to exit.
    pub fn stop(mut self) -> u64 {
        self.shutdown();
        self.actions.load(Ordering::Relaxed)
    }

    fn shutdown(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for BackgroundTuner {
    fn drop(&mut self) {
        self.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::HolisticConfig;
    use crate::engine::query::Query;
    use crate::engine::Database;
    use crate::strategy::IndexingStrategy;

    fn shared_db(n: usize) -> (SharedDatabase, holistic_storage::ColumnId) {
        let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
        let values: Vec<i64> = (0..n as i64).map(|i| (i * 7919) % (n as i64)).collect();
        let t = db.create_table("r", vec![("a", values)]).unwrap();
        let col = db.column_id(t, "a").unwrap();
        (db.into_shared(), col)
    }

    #[test]
    fn background_tuner_refines_during_idle_time() {
        let (db, col) = shared_db(50_000);
        // Seed some workload knowledge; queries go through the read lock.
        db.read().execute(&Query::range(col, 100, 200)).unwrap();
        let tuner = BackgroundTuner::spawn(
            Arc::clone(&db),
            BackgroundConfig {
                idle_threshold: Duration::from_millis(1),
                batch_actions: 32,
                poll_interval: Duration::from_micros(200),
                seed_prefix_sums: true,
                snapshot_on_idle: false,
                scrub_pieces: 64,
            },
        );
        // Simulate a mostly idle stretch with the occasional query arriving
        // *while the tuner works* — both sides only hold read locks.
        for _ in 0..5 {
            std::thread::sleep(Duration::from_millis(10));
            let r = db.read().execute(&Query::range(col, 1000, 2000)).unwrap();
            assert!(r.count > 0);
        }
        let applied = tuner.stop();
        assert!(
            applied > 0,
            "background tuner should have refined something"
        );
        assert!(db.read().piece_count(col) > 2);
        // Queries still answer correctly afterwards.
        let r = db.read().execute(&Query::range(col, 1000, 2000)).unwrap();
        assert!(r.count > 0);
        assert!(db.read().validate());
    }

    #[test]
    fn background_tuner_stops_cleanly_without_idle_time() {
        let (db, col) = shared_db(5_000);
        let tuner = BackgroundTuner::spawn(
            Arc::clone(&db),
            BackgroundConfig {
                idle_threshold: Duration::from_secs(3600),
                batch_actions: 8,
                poll_interval: Duration::from_micros(100),
                seed_prefix_sums: true,
                snapshot_on_idle: false,
                scrub_pieces: 64,
            },
        );
        // Keep the engine busy; the enormous idle threshold is never reached.
        for i in 0..20 {
            db.read()
                .execute(&Query::range(col, i * 10, i * 10 + 100))
                .unwrap();
        }
        let applied = tuner.stop();
        assert_eq!(applied, 0);
    }

    #[test]
    fn converged_backoff_does_not_delay_shutdown() {
        // Regression: the converged back-off used to sleep
        // `poll_interval * 20` in one blocking call without checking the
        // stop flag, so stopping a quiet tuner took seconds.
        let (db, _col) = shared_db(64); // tiny column: converges immediately
        {
            // Refine to convergence up front so the tuner's first batch
            // reports `converged` and enters the back-off.
            let guard = db.read();
            while !guard.run_idle(IdleBudget::Actions(64)).converged {}
        }
        let tuner = BackgroundTuner::spawn(
            Arc::clone(&db),
            BackgroundConfig {
                idle_threshold: Duration::from_micros(1),
                batch_actions: 8,
                // Back-off would be 20 * 100ms = 2s if slept blindly.
                poll_interval: Duration::from_millis(100),
                seed_prefix_sums: true,
                snapshot_on_idle: false,
                scrub_pieces: 64,
            },
        );
        // Let the tuner reach the converged back-off.
        std::thread::sleep(Duration::from_millis(50));
        let start = Instant::now();
        tuner.stop();
        assert!(
            start.elapsed() < Duration::from_millis(500),
            "stop took {:?}, back-off must be stop-aware",
            start.elapsed()
        );
    }

    #[test]
    fn idle_engine_is_tuned_continuously_not_once_per_threshold() {
        // Regression: `run_idle` used to reset `last_activity`, so the tuner
        // saw the engine as busy right after its own batch and throughput
        // was capped at `batch_actions` per `idle_threshold`.
        // Small column + tiny cache target: actions stay cheap and the
        // ranking model does not converge within the test window, so the
        // measured action count isolates the tuner's pacing.
        let mut config = HolisticConfig::for_testing();
        config.cache_piece_target = 4;
        let mut raw = Database::new(config, IndexingStrategy::Holistic);
        let values: Vec<i64> = (0..20_000).map(|i| (i * 7919) % 20_000).collect();
        let t = raw.create_table("r", vec![("a", values)]).unwrap();
        let col = raw.column_id(t, "a").unwrap();
        let db = raw.into_shared();
        db.read().execute(&Query::range(col, 100, 200)).unwrap();
        let idle_threshold = Duration::from_millis(30);
        let batch_actions = 16;
        let tuner = BackgroundTuner::spawn(
            Arc::clone(&db),
            BackgroundConfig {
                idle_threshold,
                batch_actions,
                poll_interval: Duration::from_micros(200),
                seed_prefix_sums: true,
                snapshot_on_idle: false,
                scrub_pieces: 64,
            },
        );
        // A threshold-gated tuner is capped at one batch (16 actions) per
        // 30ms, i.e. at most ~320 actions within the 600ms deadline below.
        // A tuner that keeps going on an idle engine sails past the target
        // in a few tens of milliseconds; polling with a generous deadline
        // keeps the assertion robust on loaded CI machines.
        let target = 40 * batch_actions;
        let deadline = Instant::now() + Duration::from_millis(600);
        while tuner.actions_applied() < target && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(10));
        }
        let applied = tuner.stop();
        assert!(
            applied >= target,
            "only {applied} actions applied; tuner appears to self-starve"
        );
    }

    #[test]
    fn futile_columns_do_not_busy_spin_the_tuner() {
        // A low-cardinality column converges at a handful of pieces whose
        // average length never drops below the cache target, so the ranking
        // model keeps proposing it while every random crack is a no-op. The
        // tuner must detect the all-no-op batches and back off instead of
        // hammering the column's exclusive latch at 100% CPU.
        let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
        let values: Vec<i64> = (0..10_000).map(|i| (i % 4) * 1000).collect();
        let t = db.create_table("r", vec![("a", values)]).unwrap();
        let col = db.column_id(t, "a").unwrap();
        let db = db.into_shared();
        db.read().execute(&Query::range(col, 0, 1500)).unwrap();
        let batch_actions = 8;
        let tuner = BackgroundTuner::spawn(
            Arc::clone(&db),
            BackgroundConfig {
                idle_threshold: Duration::from_micros(1),
                batch_actions,
                // Back-off is poll_interval * 20 = 400ms, so at most a
                // couple of batches fit into the observation window.
                poll_interval: Duration::from_millis(20),
                seed_prefix_sums: true,
                snapshot_on_idle: false,
                scrub_pieces: 64,
            },
        );
        std::thread::sleep(Duration::from_millis(300));
        let applied = tuner.stop();
        assert!(
            applied <= 10 * batch_actions,
            "{applied} actions on a futile column; tuner is busy-spinning"
        );
    }

    #[test]
    fn paused_tuner_applies_nothing_and_resumes() {
        let (db, col) = shared_db(50_000);
        db.read().execute(&Query::range(col, 100, 200)).unwrap();
        let tuner = BackgroundTuner::spawn(
            Arc::clone(&db),
            BackgroundConfig {
                idle_threshold: Duration::from_micros(1),
                batch_actions: 32,
                poll_interval: Duration::from_micros(200),
                seed_prefix_sums: true,
                snapshot_on_idle: false,
                scrub_pieces: 64,
            },
        );
        tuner.set_paused(true);
        assert!(tuner.is_paused());
        // Give any in-flight batch time to finish, then measure.
        std::thread::sleep(Duration::from_millis(30));
        let at_pause = tuner.actions_applied();
        std::thread::sleep(Duration::from_millis(100));
        assert_eq!(
            tuner.actions_applied(),
            at_pause,
            "paused tuner must not refine"
        );
        // Fresh, never-refined work: on a loaded box the tuner can fully
        // converge the first column before the pause flag lands, in which
        // case a resumed tuner correctly applies nothing. A second column
        // cracked once guarantees outstanding refinement either way.
        let table2 = {
            let mut guard = db.write();
            let values: Vec<i64> = (0..50_000).map(|i| (i * 6007) % 50_000).collect();
            guard.create_table("r2", vec![("b", values)]).unwrap()
        };
        let col2 = db.read().column_id(table2, "b").unwrap();
        db.read().execute(&Query::range(col2, 100, 200)).unwrap();
        // The pause handle is the same flag a service's saturation mode
        // flips; clearing it resumes refinement.
        let handle = tuner.pause_handle();
        handle.store(false, Ordering::Relaxed);
        // Generous deadline: the harness runs the whole suite in parallel,
        // so on a small box the tuner thread can be starved for a while
        // before its first post-resume batch. The loop exits on the first
        // observed action, so the common case never waits this long.
        let deadline = Instant::now() + Duration::from_secs(10);
        while tuner.actions_applied() == at_pause && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let resumed = tuner.stop();
        assert!(
            resumed > at_pause,
            "tuner should resume after unpause (at_pause={at_pause}, resumed={resumed})"
        );
    }

    #[test]
    fn dropping_the_handle_stops_the_thread() {
        let (db, _col) = shared_db(1_000);
        let tuner = BackgroundTuner::spawn(Arc::clone(&db), BackgroundConfig::default());
        assert_eq!(
            tuner.actions_applied(),
            tuner.actions.load(Ordering::Relaxed)
        );
        drop(tuner);
        // Reaching this point without hanging is the assertion.
    }
}
