//! Kernel configuration.

use holistic_cracking::{CrackKernel, CrackPolicy};

/// Configuration of the holistic indexing kernel.
#[derive(Debug, Clone, PartialEq)]
pub struct HolisticConfig {
    /// Piece size (in values) below which further refinement of a cracked
    /// column no longer improves query latency — the paper's observation
    /// that refinement stops paying off once pieces fit in the CPU cache.
    pub cache_piece_target: usize,
    /// A value range of a column is considered *hot* once at least this many
    /// queries have cracked it; hot ranges receive extra refinement during
    /// query processing (the paper's "No Time" case).
    pub hot_range_query_threshold: u64,
    /// Number of auxiliary random cracks applied to a hot range per query.
    pub boost_cracks_per_query: u64,
    /// Queries per epoch for the online-indexing machinery.
    pub epoch_length: u64,
    /// Whether cracker columns carry row ids (needed for projections of
    /// other attributes; costs one extra u32 per value and slightly slower
    /// cracking).
    pub keep_rowids: bool,
    /// Cracking policy used by the adaptive and holistic select operators.
    pub crack_policy: CrackPolicy,
    /// Physical kernel dispatch policy: branchy reference loops, predicated
    /// branch-free loops, or automatic selection by piece length (the
    /// default — branchy for cache-resident pieces, predicated above).
    pub crack_kernel: CrackKernel,
    /// Seed for the kernel's random number generator (auxiliary refinement
    /// actions, stochastic cracking). Fixed by default for reproducibility.
    pub rng_seed: u64,
    /// Number of histogram buckets used to track hot value ranges.
    pub hot_range_buckets: usize,
    /// Paranoia mode: after every execute/batch/idle action, run the full
    /// cracker-column validation (piece order, cached sums, prefix arrays)
    /// on the touched columns. A violation quarantines the column
    /// ([`HolisticError::Integrity`](crate::HolisticError::Integrity)) and
    /// the query is re-answered from base storage instead of a broken
    /// structure. Defaults to the `HOLISTIC_PARANOIA` environment variable
    /// (`1`/`true`); the test profile ([`HolisticConfig::for_testing`])
    /// always enables it.
    pub paranoia: bool,
    /// Fixed shard extent (in values) for cracker columns: a column longer
    /// than this is split into row-id-contiguous shards of this size, each
    /// behind its own latch, so concurrent writers crack disjoint shards in
    /// parallel and one large cold crack parallelizes across shards.
    /// `0` disables sharding (one shard per column, the classic layout).
    pub shard_extent: usize,
}

/// Reads the `HOLISTIC_PARANOIA` environment toggle.
fn paranoia_from_env() -> bool {
    std::env::var("HOLISTIC_PARANOIA")
        .map(|v| v == "1" || v.eq_ignore_ascii_case("true"))
        .unwrap_or(false)
}

impl Default for HolisticConfig {
    fn default() -> Self {
        HolisticConfig {
            // 4096 i64 values = 32 KiB, i.e. an L1-data-cache-resident piece:
            // the boundary pieces a select touches are then effectively free
            // to re-partition, which is where the paper observes refinement
            // stops paying off.
            cache_piece_target: 4096,
            hot_range_query_threshold: 8,
            boost_cracks_per_query: 2,
            epoch_length: 100,
            keep_rowids: false,
            crack_policy: CrackPolicy::Standard,
            crack_kernel: CrackKernel::default(),
            rng_seed: 0x5EED_CAFE,
            hot_range_buckets: 64,
            paranoia: paranoia_from_env(),
            shard_extent: 0,
        }
    }
}

impl HolisticConfig {
    /// A configuration suitable for small unit-test datasets: the cache
    /// target is lowered so that refinement decisions are still meaningful
    /// on columns of a few thousand values.
    #[must_use]
    pub fn for_testing() -> Self {
        HolisticConfig {
            cache_piece_target: 64,
            hot_range_query_threshold: 3,
            boost_cracks_per_query: 2,
            epoch_length: 10,
            paranoia: true,
            ..Self::default()
        }
    }

    /// Enables or disables paranoia-mode validation explicitly (overriding
    /// the `HOLISTIC_PARANOIA` environment default).
    #[must_use]
    pub fn with_paranoia(mut self, paranoia: bool) -> Self {
        self.paranoia = paranoia;
        self
    }

    /// Sets the cracking policy.
    #[must_use]
    pub fn with_crack_policy(mut self, policy: CrackPolicy) -> Self {
        self.crack_policy = policy;
        self
    }

    /// Sets the physical kernel dispatch policy.
    #[must_use]
    pub fn with_crack_kernel(mut self, kernel: CrackKernel) -> Self {
        self.crack_kernel = kernel;
        self
    }

    /// Sets the RNG seed.
    #[must_use]
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.rng_seed = seed;
        self
    }

    /// Enables or disables row-id payloads in cracker columns.
    #[must_use]
    pub fn with_rowids(mut self, keep: bool) -> Self {
        self.keep_rowids = keep;
        self
    }

    /// Sets the fixed shard extent for cracker columns (`0` = unsharded).
    #[must_use]
    pub fn with_shard_extent(mut self, extent: usize) -> Self {
        self.shard_extent = extent;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_sane() {
        let c = HolisticConfig::default();
        assert!(c.cache_piece_target > 0);
        assert!(c.epoch_length > 0);
        assert!(c.hot_range_buckets > 0);
        assert_eq!(c.crack_policy, CrackPolicy::Standard);
    }

    #[test]
    fn builder_style_setters() {
        let c = HolisticConfig::default()
            .with_crack_policy(CrackPolicy::Mdd1r)
            .with_seed(42)
            .with_rowids(true)
            .with_crack_kernel(CrackKernel::Predicated);
        assert_eq!(c.crack_policy, CrackPolicy::Mdd1r);
        assert_eq!(c.rng_seed, 42);
        assert!(c.keep_rowids);
        assert_eq!(c.crack_kernel, CrackKernel::Predicated);
    }

    #[test]
    fn default_kernel_policy_is_auto() {
        assert_eq!(HolisticConfig::default().crack_kernel, CrackKernel::auto());
    }

    #[test]
    fn paranoia_is_on_in_the_test_profile_and_settable() {
        assert!(HolisticConfig::for_testing().paranoia);
        assert!(HolisticConfig::default().with_paranoia(true).paranoia);
        assert!(!HolisticConfig::for_testing().with_paranoia(false).paranoia);
    }

    #[test]
    fn shard_extent_defaults_off_and_is_settable() {
        assert_eq!(HolisticConfig::default().shard_extent, 0);
        let c = HolisticConfig::default().with_shard_extent(4096);
        assert_eq!(c.shard_extent, 4096);
    }

    #[test]
    fn testing_config_shrinks_thresholds() {
        let c = HolisticConfig::for_testing();
        assert!(c.cache_piece_target < HolisticConfig::default().cache_piece_target);
        assert!(c.epoch_length < HolisticConfig::default().epoch_length);
    }
}
