//! Idle-time budgets and reports.
//!
//! The paper measures idle time in two interchangeable ways: as wall-clock
//! time, and as "the time needed to apply X random index refinement
//! actions" (the `X` knob of Exp1). [`IdleBudget`] supports both, so the
//! engine can be driven either by a workload trace that grants action
//! budgets or by a background thread that hands out real time slices.

use std::time::Duration;

use holistic_storage::ColumnId;

/// How much idle time the tuner may spend right now.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IdleBudget {
    /// Apply at most this many auxiliary refinement actions.
    Actions(u64),
    /// Spend at most this much wall-clock time.
    Duration(Duration),
}

impl IdleBudget {
    /// A zero budget (nothing may be done).
    #[must_use]
    pub fn zero() -> Self {
        IdleBudget::Actions(0)
    }

    /// Whether the budget is trivially empty.
    #[must_use]
    pub fn is_zero(&self) -> bool {
        match self {
            IdleBudget::Actions(a) => *a == 0,
            IdleBudget::Duration(d) => d.is_zero(),
        }
    }
}

impl From<holistic_workload_idle::IdleWindowLike> for IdleBudget {
    fn from(value: holistic_workload_idle::IdleWindowLike) -> Self {
        match value {
            holistic_workload_idle::IdleWindowLike::Actions(a) => IdleBudget::Actions(a),
            holistic_workload_idle::IdleWindowLike::Micros(m) => {
                IdleBudget::Duration(Duration::from_micros(m))
            }
        }
    }
}

/// A minimal mirror of the workload crate's idle-window type, so the core
/// crate does not need to depend on the workload crate (which is a
/// dev-/bench-side concern). The benches convert between the two.
pub mod holistic_workload_idle {
    /// Idle window expressed as either actions or microseconds.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum IdleWindowLike {
        /// Enough idle time for this many refinement actions.
        Actions(u64),
        /// A wall-clock budget in microseconds.
        Micros(u64),
    }
}

/// What an idle-time tuning pass accomplished.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct IdleReport {
    /// Auxiliary refinement actions applied.
    pub actions_applied: u64,
    /// Actions that actually introduced a new piece. A batch with
    /// `effective_actions == 0` made no progress (e.g. a low-cardinality
    /// column whose pieces can never shrink below the cache target) —
    /// callers pacing repeated idle passes should back off on it just like
    /// on `converged`.
    pub effective_actions: u64,
    /// Distinct columns that received at least one action.
    pub columns_touched: Vec<ColumnId>,
    /// Wall-clock time spent tuning.
    pub elapsed: Duration,
    /// Whether tuning stopped because nothing further was worth refining
    /// (every known column is below the cache-piece target).
    pub converged: bool,
}

impl IdleReport {
    /// Merges another report into this one (for accumulating across
    /// multiple idle windows).
    pub fn absorb(&mut self, other: &IdleReport) {
        self.actions_applied += other.actions_applied;
        self.effective_actions += other.effective_actions;
        for c in &other.columns_touched {
            if !self.columns_touched.contains(c) {
                self.columns_touched.push(*c);
            }
        }
        self.elapsed += other.elapsed;
        self.converged = other.converged;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_storage::TableId;

    #[test]
    fn zero_budget_detection() {
        assert!(IdleBudget::zero().is_zero());
        assert!(IdleBudget::Actions(0).is_zero());
        assert!(!IdleBudget::Actions(5).is_zero());
        assert!(IdleBudget::Duration(Duration::ZERO).is_zero());
        assert!(!IdleBudget::Duration(Duration::from_millis(1)).is_zero());
    }

    #[test]
    fn idle_window_conversion() {
        let a: IdleBudget = holistic_workload_idle::IdleWindowLike::Actions(7).into();
        assert_eq!(a, IdleBudget::Actions(7));
        let d: IdleBudget = holistic_workload_idle::IdleWindowLike::Micros(1500).into();
        assert_eq!(d, IdleBudget::Duration(Duration::from_micros(1500)));
    }

    #[test]
    fn absorb_accumulates_reports() {
        let col = ColumnId::new(TableId(0), 1);
        let mut a = IdleReport {
            actions_applied: 3,
            effective_actions: 2,
            columns_touched: vec![col],
            elapsed: Duration::from_micros(10),
            converged: false,
        };
        let b = IdleReport {
            actions_applied: 2,
            effective_actions: 1,
            columns_touched: vec![col, ColumnId::new(TableId(0), 2)],
            elapsed: Duration::from_micros(5),
            converged: true,
        };
        a.absorb(&b);
        assert_eq!(a.actions_applied, 5);
        assert_eq!(a.effective_actions, 3);
        assert_eq!(a.columns_touched.len(), 2);
        assert_eq!(a.elapsed, Duration::from_micros(15));
        assert!(a.converged);
    }
}
