//! Fault-injection recovery properties.
//!
//! The kill-point sweep drives a random create/insert/delete/query/snapshot
//! workload against a persisted engine **once per IO operation the workload
//! performs**, arming the deterministic fault injector to crash at that
//! operation. After every crash the directory is recovered with a fresh
//! (disarmed) injector and the recovered state must equal the in-memory
//! reference model — exactly, up to the single operation in flight at the
//! kill (WAL-before-apply means that operation is either fully absent or
//! fully present, never torn).
//!
//! The corruption fuzz flips an arbitrary byte of an arbitrary persistence
//! file. Recovery must *detect* the damage (checksums), degrade along the
//! ladder (older generation → WAL truncation), and hand back a state that
//! matches the reference model after some prefix of the workload — wrong
//! answers are never acceptable, missing tail records after a detected torn
//! WAL are.

use std::path::{Path, PathBuf};

use proptest::prelude::*;

use holistic_core::{
    flip_byte, Database, FaultInjector, HolisticConfig, HolisticError, IndexingStrategy, Query,
    RecoveryOutcome,
};

const SLOTS: usize = 3;

/// One workload step. `Create` seeds a deterministic per-slot base table so
/// the op stream alone describes the whole history.
#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    Create(usize),
    Insert(usize, i64),
    Delete(usize, i64),
    Query(usize, i64, i64),
    Snapshot,
}

fn slot_name(slot: usize) -> String {
    format!("t{slot}")
}

fn seed_values(slot: usize) -> Vec<i64> {
    (0..40 + slot as i64 * 17)
        .map(|i| (i * 37 + slot as i64 * 11) % 200 - 100)
        .collect()
}

/// The reference model: per slot, the multiset of values the table holds
/// (`None` = table does not exist).
type Model = Vec<Option<Vec<i64>>>;

fn empty_model() -> Model {
    vec![None; SLOTS]
}

fn apply_model(model: &mut Model, op: &Op) {
    match op {
        Op::Create(s) => {
            if model[*s].is_none() {
                model[*s] = Some(seed_values(*s));
            }
        }
        Op::Insert(s, v) => {
            if let Some(vals) = &mut model[*s] {
                vals.push(*v);
            }
        }
        Op::Delete(s, v) => {
            if let Some(vals) = &mut model[*s] {
                if let Some(pos) = vals.iter().position(|x| x == v) {
                    vals.remove(pos);
                }
            }
        }
        Op::Query(..) | Op::Snapshot => {}
    }
}

/// Applies one op to the engine, cross-checking query/delete results against
/// the model *before* this op. An `Err` is a crash (the injector fired);
/// logical no-ops (duplicate create, update on a missing table) are skipped
/// so the engine never sees a non-crash error.
fn apply_engine(db: &mut Database, model: &Model, op: &Op) -> Result<(), HolisticError> {
    let col_of = |db: &Database, s: usize| {
        let t = db.table_id(&slot_name(s)).expect("model says table exists");
        db.column_id(t, "v").expect("single column v")
    };
    match op {
        Op::Create(s) => {
            if model[*s].is_some() {
                return Ok(());
            }
            db.create_table(slot_name(*s), vec![("v", seed_values(*s))])
                .map(|_| ())
        }
        Op::Insert(s, v) => {
            if model[*s].is_none() {
                return Ok(());
            }
            let col = col_of(db, *s);
            db.insert(col, *v)
        }
        Op::Delete(s, v) => {
            let Some(vals) = &model[*s] else {
                return Ok(());
            };
            let col = col_of(db, *s);
            let found = db.delete(col, *v)?;
            assert_eq!(found, vals.contains(v), "delete disagrees with the model");
            Ok(())
        }
        Op::Query(s, lo, hi) => {
            let Some(vals) = &model[*s] else {
                return Ok(());
            };
            let col = col_of(db, *s);
            let r = db.execute(&Query::range(col, *lo, *hi))?;
            let expected = vals.iter().filter(|&&v| v >= *lo && v < *hi).count() as u64;
            assert_eq!(r.count, expected, "query disagrees with the model");
            Ok(())
        }
        Op::Snapshot => db.snapshot().map(|_| ()),
    }
}

/// Whether the recovered engine's data state equals the model: the same
/// tables exist and every table holds the same multiset of values.
fn matches_model(db: &Database, model: &Model) -> bool {
    for (s, entry) in model.iter().enumerate() {
        let table = db.table_id(&slot_name(s));
        match (table, entry) {
            (None, None) => {}
            (Some(t), Some(vals)) => {
                let col = db.column_id(t, "v").expect("recovered column");
                let r = db
                    .execute(&Query::range_materialized(col, -10_000, 10_000))
                    .expect("materialized scan on recovered engine");
                let mut got = r.values.expect("materialized");
                let mut want = vals.clone();
                got.sort_unstable();
                want.sort_unstable();
                if got != want {
                    return false;
                }
            }
            _ => return false,
        }
    }
    true
}

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "holistic-prop-recovery-{tag}-{}",
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

fn recover_fresh(dir: &Path) -> (Database, RecoveryOutcome) {
    // A crash never survives into recovery: the recovering process has its
    // own, disarmed injector.
    Database::recover(
        HolisticConfig::for_testing(),
        IndexingStrategy::Holistic,
        dir,
        FaultInjector::new(),
    )
    .expect("recovery with a healthy disk must succeed")
}

/// Runs `ops` against a fresh persisted engine in `dir`, stopping at the
/// first crash. Returns the model of applied ops and the op in flight when
/// the injector fired (if it was a mutation).
fn run_workload(
    dir: &Path,
    inj: &std::sync::Arc<FaultInjector>,
    ops: &[Op],
) -> (Model, Option<Op>) {
    let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
    let mut model = empty_model();
    if let Err(e) = db.set_persistence(dir, std::sync::Arc::clone(inj)) {
        // The kill point can land inside WAL creation itself: nothing was
        // applied, recovery sees an empty (or torn-empty) directory.
        assert!(
            e.is_crash(),
            "set_persistence may only fail by crashing: {e}"
        );
        return (model, None);
    }
    for op in ops {
        match apply_engine(&mut db, &model, op) {
            Ok(()) => apply_model(&mut model, op),
            Err(e) => {
                assert!(e.is_crash(), "only injected crashes may fail ops: {e}");
                let pending = match op {
                    Op::Create(..) | Op::Insert(..) | Op::Delete(..) => Some(op.clone()),
                    Op::Query(..) | Op::Snapshot => None,
                };
                return (model, pending);
            }
        }
    }
    (model, None)
}

prop_compose! {
    /// A short random workload: raw `(tag, slot, value, width)` tuples
    /// decoded into ops (the vendored proptest has no `prop_oneof`).
    fn arb_ops()(raw in prop::collection::vec(
        (0u8..8, 0usize..SLOTS, -500i64..500, 0i64..300),
        4..12,
    )) -> Vec<Op> {
        raw.into_iter()
            .map(|(tag, slot, v, w)| match tag {
                0 | 1 => Op::Create(slot),
                2 | 3 => Op::Insert(slot, v),
                4 => Op::Delete(slot, v % 200 - 100), // often hits a seed value
                5 => Op::Query(slot, v, v + w),
                _ => Op::Snapshot,
            })
            .collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The tentpole property: crash at *every* IO operation the workload
    /// performs, recover, and the recovered state must equal the reference
    /// model (up to the single WAL-before-apply op in flight).
    #[test]
    fn recovery_equals_reference_under_kill_at_every_io_op(ops in arb_ops()) {
        // Disarmed run to learn the workload's IO-op count and final model.
        let dir = tmpdir("sweep-count");
        let inj = FaultInjector::new();
        let (final_model, crashed) = run_workload(&dir, &inj, &ops);
        prop_assert!(crashed.is_none(), "disarmed run must not crash");
        let total_ops = inj.ops_performed();
        prop_assert!(total_ops > 0);
        // Sanity: a healthy directory recovers to exactly the final model.
        let (db, _) = recover_fresh(&dir);
        prop_assert!(matches_model(&db, &final_model));
        drop(db);

        for kill_at in 0..total_ops {
            let dir = tmpdir("sweep-kill");
            let inj = FaultInjector::new();
            inj.arm(kill_at);
            let (model, pending) = run_workload(&dir, &inj, &ops);
            let (recovered, outcome) = recover_fresh(&dir);
            prop_assert!(
                recovered.validate(),
                "kill at op {kill_at}: recovered invariants broken ({outcome:?})"
            );
            // WAL-before-apply: the op in flight is either absent (crash
            // before its record was durable) or fully present (crash after
            // the record hit the disk but before the in-memory apply).
            let matches = matches_model(&recovered, &model) || {
                pending.as_ref().is_some_and(|op| {
                    let mut with_pending = model.clone();
                    apply_model(&mut with_pending, op);
                    matches_model(&recovered, &with_pending)
                })
            };
            prop_assert!(
                matches,
                "kill at op {kill_at}/{total_ops}: recovered state diverged \
                 (pending = {pending:?}, outcome = {outcome:?}, ops = {ops:?})"
            );
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Byte-flip corruption anywhere in the persistence directory: recovery
    /// detects it, degrades (older generation, truncated WAL tail, dropped
    /// learned state), and never fabricates answers — the recovered state
    /// always equals the model after some prefix of the workload.
    #[test]
    fn corrupted_files_degrade_without_wrong_answers(
        file_pick in any::<prop::sample::Index>(),
        offset in 0u64..1_000_000,
        salt in -500i64..500,
    ) {
        let dir = tmpdir("fuzz-corrupt");
        // Fixed workload shape (salted values) crossing two snapshot
        // generations plus a WAL tail; remember the model after each op.
        let mut ops = vec![Op::Create(0)];
        for i in 0..8 {
            ops.push(Op::Insert(0, salt + i));
        }
        ops.push(Op::Snapshot);
        ops.push(Op::Create(1));
        for i in 0..6 {
            ops.push(Op::Insert(1, salt - i));
            ops.push(Op::Delete(0, salt + i));
        }
        ops.push(Op::Snapshot);
        for i in 0..5 {
            ops.push(Op::Insert(0, salt + 100 + i));
        }
        let inj = FaultInjector::new();
        let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
        db.set_persistence(&dir, std::sync::Arc::clone(&inj)).unwrap();
        let mut model = empty_model();
        let mut prefixes = vec![model.clone()];
        for op in &ops {
            apply_engine(&mut db, &model, op).expect("no faults armed");
            apply_model(&mut model, op);
            prefixes.push(model.clone());
        }
        drop(db);

        // Flip one byte of one file.
        let mut files: Vec<PathBuf> = std::fs::read_dir(&dir)
            .unwrap()
            .filter_map(|e| e.ok())
            .map(|e| e.path())
            .collect();
        files.sort();
        prop_assert!(!files.is_empty());
        let target = &files[file_pick.index(files.len())];
        flip_byte(target, offset).unwrap();

        match Database::recover(
            HolisticConfig::for_testing(),
            IndexingStrategy::Holistic,
            &dir,
            FaultInjector::new(),
        ) {
            Ok((recovered, outcome)) => {
                prop_assert!(recovered.validate());
                let hit = prefixes.iter().rposition(|m| matches_model(&recovered, m));
                prop_assert!(
                    hit.is_some(),
                    "corrupting {target:?} at {offset} produced a state outside \
                     the workload history (outcome = {outcome:?})"
                );
                if hit != Some(prefixes.len() - 1) {
                    // Losing history is only legal when the damage was
                    // *detected* — a skipped generation or a truncated WAL
                    // tail, never a silent misread.
                    prop_assert!(
                        outcome.snapshots_skipped > 0 || outcome.wal_bytes_dropped > 0,
                        "state rolled back with no detected corruption \
                         ({target:?} at {offset}, outcome = {outcome:?})"
                    );
                }
            }
            Err(e) => {
                // Refusing to recover is a legal (detected) outcome, but it
                // must be the typed recovery error, not a crash or a panic.
                prop_assert!(
                    matches!(e, HolisticError::Recovery(_)),
                    "unexpected recovery failure: {e}"
                );
            }
        }
    }
}
