//! Engine-level property tests for the per-piece aggregate cache: on
//! arbitrary data and query sequences, every strategy's count/sum answers —
//! now composed from cached piece sums wherever possible — must be exactly
//! what the pre-cache answer path produced, i.e. a scan of the base values.
//!
//! The query sequence is replayed twice so the second pass runs on resolved
//! bounds (the pure-metadata fast path), and interleaves updates-free
//! batched execution, idle-time refinement and sequential execution — every
//! way an answer can be produced must agree with the scan.

use proptest::prelude::*;

use holistic_core::{Database, HolisticConfig, IdleBudget, IndexingStrategy, Query};

fn reference_count(values: &[i64], lo: i64, hi: i64) -> u64 {
    values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
}

fn reference_sum(values: &[i64], lo: i64, hi: i64) -> i128 {
    values
        .iter()
        .filter(|&&v| v >= lo && v < hi)
        .map(|&v| i128::from(v))
        .sum()
}

fn make_db(strategy: IndexingStrategy, values: Vec<i64>) -> (Database, holistic_core::ColumnId) {
    let mut db = Database::new(HolisticConfig::for_testing(), strategy);
    let t = db.create_table("r", vec![("a", values)]).unwrap();
    let col = db.column_id(t, "a").unwrap();
    (db, col)
}

prop_compose! {
    fn arb_values()(values in prop::collection::vec(-2000i64..2000, 0..500)) -> Vec<i64> {
        values
    }
}

prop_compose! {
    fn arb_queries()(queries in prop::collection::vec((-2100i64..2100, -50i64..500), 1..20))
        -> Vec<(i64, i64)>
    {
        // Negative widths produce inverted (empty) ranges on purpose.
        queries.into_iter().map(|(lo, w)| (lo, lo + w)).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn cached_aggregates_match_scan_for_every_strategy(
        values in arb_values(),
        queries in arb_queries(),
    ) {
        for strategy in IndexingStrategy::all() {
            let (db, col) = make_db(strategy, values.clone());
            // Two passes: the first cracks/builds, the second runs resolved
            // (the cache-composed fast path must not change any answer).
            for pass in 0..2 {
                for &(lo, hi) in &queries {
                    let r = db.execute(&Query::range(col, lo, hi)).unwrap();
                    prop_assert_eq!(
                        r.count,
                        reference_count(&values, lo, hi),
                        "{} count [{}, {}) pass {}", strategy, lo, hi, pass
                    );
                    prop_assert_eq!(
                        r.sum,
                        reference_sum(&values, lo, hi),
                        "{} sum [{}, {}) pass {}", strategy, lo, hi, pass
                    );
                }
            }
            prop_assert!(db.validate(), "{} invariants", strategy);
        }
    }

    #[test]
    fn batched_cached_aggregates_match_scan_for_every_strategy(
        values in arb_values(),
        queries in arb_queries(),
    ) {
        for strategy in IndexingStrategy::all() {
            let (db, col) = make_db(strategy, values.clone());
            let batch: Vec<Query> = queries
                .iter()
                .map(|&(lo, hi)| Query::range(col, lo, hi))
                .collect();
            // Cold batch, then a resolved replay of the same batch.
            for pass in 0..2 {
                let results = db.execute_batch(&batch).unwrap();
                for (r, &(lo, hi)) in results.iter().zip(&queries) {
                    prop_assert_eq!(
                        r.count,
                        reference_count(&values, lo, hi),
                        "{} count [{}, {}) pass {}", strategy, lo, hi, pass
                    );
                    prop_assert_eq!(
                        r.sum,
                        reference_sum(&values, lo, hi),
                        "{} sum [{}, {}) pass {}", strategy, lo, hi, pass
                    );
                }
            }
            prop_assert!(db.validate(), "{} invariants", strategy);
        }
    }

    #[test]
    fn idle_refinement_never_corrupts_cached_aggregates(
        values in arb_values(),
        queries in arb_queries(),
        idle_actions in 0u64..200,
    ) {
        let (db, col) = make_db(IndexingStrategy::Holistic, values.clone());
        for &(lo, hi) in &queries {
            let before = db.execute(&Query::range(col, lo, hi)).unwrap();
            db.run_idle(IdleBudget::Actions(idle_actions));
            let after = db.execute(&Query::range(col, lo, hi)).unwrap();
            prop_assert_eq!(before.sum, after.sum, "[{}, {})", lo, hi);
            prop_assert_eq!(after.sum, reference_sum(&values, lo, hi));
            prop_assert_eq!(after.count, reference_count(&values, lo, hi));
        }
        prop_assert!(db.validate());
    }

    #[test]
    fn offline_online_resolved_replays_are_pure_prefix_hits_once_seeded(
        values in prop::collection::vec(-2000i64..2000, 1..500),
        queries in arb_queries(),
    ) {
        // Before the prefix array is seeded, indexed sums fall back to the
        // qualifying-slice scan and report misses; after offline
        // preparation (which seeds), a resolved replay must be 100 %
        // zero-read prefix hits — no partial, no miss, no scanned value.
        for strategy in [IndexingStrategy::Offline, IndexingStrategy::Online] {
            let (mut db, col) = make_db(strategy, values.clone());
            let mut workload = holistic_offline::WorkloadSummary::new();
            workload.declare(col, 1000, 0.01);
            db.prepare_offline(&workload, None);
            let before = db.metrics().aggregate_cache();
            prop_assert_eq!(before.misses, 0);
            for &(lo, hi) in &queries {
                let r = db.execute(&Query::range(col, lo, hi)).unwrap();
                prop_assert_eq!(r.count, reference_count(&values, lo, hi));
                prop_assert_eq!(r.sum, reference_sum(&values, lo, hi));
            }
            let after = db.metrics().aggregate_cache();
            prop_assert_eq!(
                after.prefix - before.prefix,
                queries.len() as u64,
                "{}: every resolved aggregate must be a prefix hit", strategy
            );
            prop_assert_eq!(after.partials, 0, "{}", strategy);
            prop_assert_eq!(after.misses, 0, "{}", strategy);
            prop_assert_eq!(after.scanned_values, 0, "{}", strategy);
        }
        // Without seeding, the same index reports misses with read volume —
        // the counter pair the ROADMAP gap was about.
        let idx = holistic_offline::SortedIndex::build_from_values(&values);
        prop_assert!(idx.query_sum(-100, 100).is_none());
        idx.seed_prefix();
        prop_assert_eq!(
            idx.query_sum(-100, 100),
            Some(reference_sum(&values, -100, 100))
        );
    }

    #[test]
    fn crack_strategies_answer_aggregates_without_data_reads_when_resolved(
        values in prop::collection::vec(-2000i64..2000, 1..500),
        queries in arb_queries(),
    ) {
        for strategy in [IndexingStrategy::Adaptive, IndexingStrategy::Holistic] {
            let (db, col) = make_db(strategy, values.clone());
            for &(lo, hi) in &queries {
                db.execute(&Query::range(col, lo, hi)).unwrap();
            }
            // Replay on resolved bounds: all metadata, zero data reads.
            let before = db.metrics().aggregate_cache();
            for &(lo, hi) in &queries {
                db.execute(&Query::range(col, lo, hi)).unwrap();
            }
            let after = db.metrics().aggregate_cache();
            prop_assert_eq!(
                after.scanned_values, before.scanned_values,
                "{}: resolved replay must not scan data for aggregates", strategy
            );
            prop_assert_eq!(
                after.hits - before.hits,
                queries.len() as u64,
                "{}: every replayed query must be a cache hit", strategy
            );
        }
    }
}
