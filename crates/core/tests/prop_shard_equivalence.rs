//! The sharding tentpole's headline property: a sharded engine is
//! *observationally identical* to an unsharded one.
//!
//! Two engines run the same randomized program side by side — one with
//! `shard_extent = 0` (the classic single-latch cracker column), one with a
//! small extent that splits every column into many shards. The program
//! interleaves every operation the engine exposes:
//!
//! * count/sum range queries and materializing queries,
//! * single inserts and deletes and grouped query batches,
//! * idle-time tuner batches (refinement, prefix seeding, scrubbing),
//! * full snapshot → crash → recover cycles,
//! * injected corruption followed by quarantine and idle-time rebuild.
//!
//! After every step the two engines must return bit-identical answers
//! (counts, sums, and materialized value multisets), and both must agree
//! with a plain `Vec<i64>` reference model. Across a snapshot/recover
//! cycle the sharded engine must additionally restore its *physical*
//! state bit for bit: the per-shard piece tables (boundaries, cached sums,
//! sorted flags, prefix arrays) after recovery equal the tables before the
//! crash.
//!
//! This is the differential harness the refactor is judged by: any
//! divergence between the fan-out/compose path and the single-latch path —
//! in answers, in cache classification, in persistence, in healing — fails
//! here first.

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use proptest::prelude::*;

use holistic_core::{
    ColumnHealth, CorruptionInjector, CorruptionKind, Database, FaultInjector, HolisticConfig,
    IdleBudget, IndexingStrategy, Query,
};
use holistic_storage::ColumnId;

const ROWS: i64 = 2000;

static CASE: AtomicU64 = AtomicU64::new(0);

fn tmpdir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "holistic-prop-shard-eq-{tag}-{}-{}",
        std::process::id(),
        CASE.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create tmpdir");
    dir
}

fn dataset(salt: i64) -> Vec<i64> {
    (0..ROWS)
        .map(|i| (i * 6211 + salt * 17).rem_euclid(ROWS))
        .collect()
}

fn expected(model: &[i64], lo: i64, hi: i64) -> (u64, i128, Vec<i64>) {
    let mut values: Vec<i64> = model
        .iter()
        .copied()
        .filter(|&v| v >= lo && v < hi)
        .collect();
    values.sort_unstable();
    let count = values.len() as u64;
    let sum = values.iter().map(|&v| i128::from(v)).sum();
    (count, sum, values)
}

/// One step of the randomized program both engines interpret.
#[derive(Debug, Clone)]
enum Op {
    Range { lo: i64, width: i64 },
    Materialize { lo: i64, width: i64 },
    Insert(i64),
    Delete { pick: usize },
    Batch(Vec<(i64, i64)>),
    Idle(u64),
    SnapshotRecover,
    CorruptAndHeal(usize),
}

const ALL_KINDS: [CorruptionKind; 4] = [
    CorruptionKind::SumFlip,
    CorruptionKind::PrefixFlip,
    CorruptionKind::BoundaryFlip,
    CorruptionKind::Panic,
];

prop_compose! {
    /// A short random program: raw `(tag, lo, width, pick)` tuples decoded
    /// into ops (the vendored proptest has no `prop_oneof`). Plain range
    /// queries dominate so cracked structure accumulates between the
    /// rarer structural ops.
    fn arb_ops()(raw in prop::collection::vec(
        (0u8..16, 0i64..ROWS - 1, 1i64..ROWS / 2, 0usize..1 << 16),
        12..32,
    )) -> Vec<Op> {
        raw.into_iter()
            .map(|(tag, lo, width, pick)| match tag {
                0..=5 => Op::Range { lo, width },
                6 | 7 => Op::Materialize { lo, width },
                8 | 9 => Op::Insert(lo - 300),
                10 => Op::Delete { pick },
                11 => Op::Batch(
                    (0..3)
                        .map(|k| {
                            let lo = (lo + k * 709).rem_euclid(ROWS - 1);
                            (lo, 1 + (width + k * 131).rem_euclid(ROWS / 2))
                        })
                        .collect(),
                ),
                12 => Op::Idle(1 + pick as u64 % 8),
                13 => Op::SnapshotRecover,
                _ => Op::CorruptAndHeal(pick % ALL_KINDS.len()),
            })
            .collect()
    }
}

/// The two engines under comparison plus the ground-truth model.
struct Pair {
    reference: Database,
    sharded: Database,
    ref_col: ColumnId,
    shard_col: ColumnId,
    model: Vec<i64>,
    ref_dir: PathBuf,
    shard_dir: PathBuf,
    extent: usize,
}

fn mk_engine(config: HolisticConfig, tag: &str, model: &[i64]) -> (Database, ColumnId, PathBuf) {
    let dir = tmpdir(tag);
    let mut db = Database::new(config, IndexingStrategy::Holistic);
    db.set_persistence(&dir, FaultInjector::new())
        .expect("persistence");
    let t = db
        .create_table("t", vec![("v", model.to_vec())])
        .expect("create table");
    let col = db.column_id(t, "v").expect("column id");
    (db, col, dir)
}

impl Pair {
    fn new(salt: i64, extent: usize) -> Self {
        let model = dataset(salt);
        let (reference, ref_col, ref_dir) = mk_engine(HolisticConfig::for_testing(), "ref", &model);
        let (sharded, shard_col, shard_dir) = mk_engine(
            HolisticConfig::for_testing().with_shard_extent(extent),
            "shard",
            &model,
        );
        Pair {
            reference,
            sharded,
            ref_col,
            shard_col,
            model,
            ref_dir,
            shard_dir,
            extent,
        }
    }

    /// Runs idle batches until no column is quarantined (bounded).
    fn heal(db: &Database) -> bool {
        for _ in 0..64 {
            if db.quarantined_columns().is_empty() {
                return true;
            }
            let _ = db.run_idle(IdleBudget::Actions(8));
        }
        db.quarantined_columns().is_empty()
    }

    fn check_range(&self, lo: i64, hi: i64, materialize: bool) {
        let (want_count, want_sum, want_values) = expected(&self.model, lo, hi);
        let q = |col| {
            if materialize {
                Query::range_materialized(col, lo, hi)
            } else {
                Query::range(col, lo, hi)
            }
        };
        let a = self.reference.execute(&q(self.ref_col)).expect("reference");
        let b = self.sharded.execute(&q(self.shard_col)).expect("sharded");
        prop_assert_eq!(
            (a.count, a.sum),
            (want_count, want_sum),
            "reference vs model on [{lo}, {hi})"
        );
        prop_assert_eq!(
            (b.count, b.sum),
            (want_count, want_sum),
            "sharded vs model on [{lo}, {hi})"
        );
        if materialize {
            let mut got_a = a.values.expect("reference materialization");
            let mut got_b = b.values.expect("sharded materialization");
            got_a.sort_unstable();
            got_b.sort_unstable();
            prop_assert_eq!(&got_a, &want_values, "reference multiset");
            prop_assert_eq!(&got_b, &want_values, "sharded multiset");
        }
    }

    fn apply(&mut self, op: &Op) {
        match *op {
            Op::Range { lo, width } => self.check_range(lo, lo + width, false),
            Op::Materialize { lo, width } => self.check_range(lo, lo + width, true),
            Op::Insert(v) => {
                self.reference.insert(self.ref_col, v).expect("ref insert");
                self.sharded
                    .insert(self.shard_col, v)
                    .expect("shard insert");
                self.model.push(v);
                self.check_range(v, v + 1, false);
            }
            Op::Delete { pick } => {
                if self.model.is_empty() {
                    return;
                }
                let victim = self.model[pick % self.model.len()];
                let a = self
                    .reference
                    .delete(self.ref_col, victim)
                    .expect("ref delete");
                let b = self
                    .sharded
                    .delete(self.shard_col, victim)
                    .expect("shard delete");
                prop_assert_eq!(a, b, "delete outcome diverged");
                if a {
                    let pos = self
                        .model
                        .iter()
                        .position(|&v| v == victim)
                        .expect("model victim");
                    self.model.swap_remove(pos);
                }
                self.check_range(victim, victim + 1, false);
            }
            Op::Batch(ref ranges) => {
                let mk = |col: ColumnId| -> Vec<Query> {
                    ranges
                        .iter()
                        .map(|&(lo, width)| Query::range(col, lo, lo + width))
                        .collect()
                };
                let a = self
                    .reference
                    .execute_batch(&mk(self.ref_col))
                    .expect("ref batch");
                let b = self
                    .sharded
                    .execute_batch(&mk(self.shard_col))
                    .expect("shard batch");
                prop_assert_eq!(a.len(), b.len());
                for (i, (ra, rb)) in a.iter().zip(&b).enumerate() {
                    let (lo, width) = ranges[i];
                    let (want_count, want_sum, _) = expected(&self.model, lo, lo + width);
                    prop_assert_eq!(
                        (ra.count, ra.sum),
                        (want_count, want_sum),
                        "reference batch query {i}"
                    );
                    prop_assert_eq!(
                        (rb.count, rb.sum),
                        (want_count, want_sum),
                        "sharded batch query {i}"
                    );
                }
            }
            Op::Idle(actions) => {
                let _ = self.reference.run_idle(IdleBudget::Actions(actions));
                let _ = self.sharded.run_idle(IdleBudget::Actions(actions));
            }
            Op::SnapshotRecover => {
                let ref_pieces = self.reference.cracker_pieces(self.ref_col);
                let shard_pieces = self.sharded.cracker_pieces(self.shard_col);
                self.reference.snapshot().expect("ref snapshot");
                self.sharded.snapshot().expect("shard snapshot");
                // Crash both: dropping is the only shutdown there is.
                let dummy =
                    || Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
                drop(std::mem::replace(&mut self.reference, dummy()));
                drop(std::mem::replace(&mut self.sharded, dummy()));
                let (reference, ro) = Database::recover(
                    HolisticConfig::for_testing(),
                    IndexingStrategy::Holistic,
                    &self.ref_dir,
                    FaultInjector::new(),
                )
                .expect("ref recovery");
                let (sharded, so) = Database::recover(
                    HolisticConfig::for_testing().with_shard_extent(self.extent),
                    IndexingStrategy::Holistic,
                    &self.shard_dir,
                    FaultInjector::new(),
                )
                .expect("shard recovery");
                prop_assert!(ro.cold_columns.is_empty(), "reference came up cold");
                prop_assert!(so.cold_columns.is_empty(), "sharded came up cold");
                self.reference = reference;
                self.sharded = sharded;
                // Bit-for-bit: recovery restored the exact piece tables —
                // for the sharded engine that means every shard's
                // boundaries, cached sums, sorted flags and prefix arrays.
                prop_assert_eq!(
                    self.reference.cracker_pieces(self.ref_col),
                    ref_pieces,
                    "reference piece table changed across snapshot/recover"
                );
                prop_assert_eq!(
                    self.sharded.cracker_pieces(self.shard_col),
                    shard_pieces,
                    "sharded piece tables changed across snapshot/recover"
                );
                prop_assert!(self.reference.validate());
                prop_assert!(self.sharded.validate());
            }
            Op::CorruptAndHeal(kind_index) => {
                let kind = ALL_KINDS[kind_index];
                for db in [&mut self.reference, &mut self.sharded] {
                    let injector = CorruptionInjector::new();
                    injector.arm(0, kind);
                    db.set_corruption_injector(Arc::clone(&injector));
                }
                // The probing query trips the fault on both engines; its
                // answer must be contained and correct on both.
                self.check_range(0, ROWS / 4, false);
                prop_assert!(Pair::heal(&self.reference), "reference never healed");
                prop_assert!(Pair::heal(&self.sharded), "sharded never healed");
                prop_assert_eq!(
                    self.reference.column_health(self.ref_col),
                    ColumnHealth::Healthy
                );
                prop_assert_eq!(
                    self.sharded.column_health(self.shard_col),
                    ColumnHealth::Healthy
                );
                prop_assert!(self.reference.validate());
                prop_assert!(self.sharded.validate());
            }
        }
    }

    fn cleanup(self) {
        let _ = std::fs::remove_dir_all(&self.ref_dir);
        let _ = std::fs::remove_dir_all(&self.shard_dir);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// The differential property: for any program over the engine's whole
    /// operation surface, a sharded engine and an unsharded engine are
    /// indistinguishable — and both match the reference model exactly.
    #[test]
    fn sharded_engine_is_observationally_identical_to_unsharded(
        salt in -400i64..400,
        extent in 64usize..512,
        ops in arb_ops(),
    ) {
        let mut pair = Pair::new(salt, extent);
        prop_assert!(
            pair.sharded.piece_count(pair.shard_col) == 0,
            "no cracker before the first query"
        );
        for op in &ops {
            pair.apply(op);
            prop_assert!(
                holistic_sync::held_locks().is_empty(),
                "latch residue after {op:?}"
            );
        }
        // The program must really have exercised a multi-shard column:
        // every shard contributes at least one piece (at most 32 ops ran,
        // so deletes cannot have emptied a >= 64-value shard).
        pair.check_range(0, ROWS, false);
        prop_assert!(
            pair.sharded.piece_count(pair.shard_col) >= (ROWS as usize).div_ceil(extent),
            "sharded engine degenerated to fewer pieces than shards"
        );
        // Closing sweep: a spread of ranges plus the full domain, all three
        // answer sources (model, unsharded, sharded) in exact agreement.
        for i in 0..8i64 {
            let lo = (i * 311 + salt).rem_euclid(ROWS - 40);
            pair.check_range(lo, lo + 250, true);
        }
        pair.check_range(i64::MIN / 2, i64::MAX / 2, true);
        prop_assert!(pair.reference.validate());
        prop_assert!(pair.sharded.validate());
        pair.cleanup();
    }
}
