//! Property-based tests at the engine level: on arbitrary data and query
//! sequences, every indexing strategy returns the answers a scan would, and
//! idle-time refinement never changes any answer.

use proptest::prelude::*;

use holistic_core::{Database, HolisticConfig, IdleBudget, IndexingStrategy, Query};

fn reference_count(values: &[i64], lo: i64, hi: i64) -> u64 {
    values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
}

fn make_db(strategy: IndexingStrategy, values: Vec<i64>) -> (Database, holistic_core::ColumnId) {
    let mut db = Database::new(HolisticConfig::for_testing(), strategy);
    let t = db.create_table("r", vec![("a", values)]).unwrap();
    let col = db.column_id(t, "a").unwrap();
    (db, col)
}

prop_compose! {
    fn arb_values()(values in prop::collection::vec(-2000i64..2000, 0..500)) -> Vec<i64> {
        values
    }
}

prop_compose! {
    fn arb_queries()(queries in prop::collection::vec((-2100i64..2100, 0i64..500), 1..25))
        -> Vec<(i64, i64)>
    {
        queries.into_iter().map(|(lo, w)| (lo, lo + w)).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn every_strategy_is_scan_equivalent(values in arb_values(), queries in arb_queries()) {
        for strategy in IndexingStrategy::all() {
            let (db, col) = make_db(strategy, values.clone());
            for &(lo, hi) in &queries {
                let result = db.execute(&Query::range(col, lo, hi)).unwrap();
                prop_assert_eq!(
                    result.count,
                    reference_count(&values, lo, hi),
                    "strategy {} wrong on [{}, {})", strategy, lo, hi
                );
            }
        }
    }

    #[test]
    fn idle_refinement_never_changes_answers(
        values in arb_values(),
        queries in arb_queries(),
        idle_actions in 0u64..300,
    ) {
        let (db, col) = make_db(IndexingStrategy::Holistic, values.clone());
        for &(lo, hi) in &queries {
            let before = db.execute(&Query::range(col, lo, hi)).unwrap().count;
            db.run_idle(IdleBudget::Actions(idle_actions));
            let after = db.execute(&Query::range(col, lo, hi)).unwrap().count;
            prop_assert_eq!(before, after);
            prop_assert_eq!(before, reference_count(&values, lo, hi));
        }
    }

    #[test]
    fn materialized_results_match_the_filtered_base_data(
        values in arb_values(),
        lo in -2100i64..2100,
        width in 0i64..800,
    ) {
        let hi = lo + width;
        let (db, col) = make_db(IndexingStrategy::Holistic, values.clone());
        let result = db.execute(&Query::range_materialized(col, lo, hi)).unwrap();
        let mut got = result.values.unwrap();
        got.sort_unstable();
        let mut expected: Vec<i64> = values.into_iter().filter(|&v| v >= lo && v < hi).collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
