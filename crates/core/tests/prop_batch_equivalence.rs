//! Batch ≡ sequential equivalence at the engine level.
//!
//! The proptests build two identically configured engines over the same
//! data, run a random batch of range queries through `execute_batch` on one
//! and through per-query `execute` on the other, and assert identical
//! per-query counts and sums, identical final piece boundaries (plain
//! cracking is order-independent), and cracker-column invariants on the
//! result. A multi-threaded stress test additionally races batches against
//! the background tuner.

use proptest::prelude::*;

use holistic_core::{Database, HolisticConfig, IndexingStrategy, Query};

fn reference_count(values: &[i64], lo: i64, hi: i64) -> u64 {
    values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
}

fn reference_sum(values: &[i64], lo: i64, hi: i64) -> i128 {
    values
        .iter()
        .filter(|&&v| v >= lo && v < hi)
        .map(|&v| i128::from(v))
        .sum()
}

fn make_db(strategy: IndexingStrategy, values: Vec<i64>) -> (Database, holistic_core::ColumnId) {
    let mut db = Database::new(HolisticConfig::for_testing(), strategy);
    let t = db.create_table("r", vec![("a", values)]).unwrap();
    let col = db.column_id(t, "a").unwrap();
    (db, col)
}

prop_compose! {
    fn arb_values()(values in prop::collection::vec(-2000i64..2000, 0..500)) -> Vec<i64> {
        values
    }
}

prop_compose! {
    fn arb_batch()(queries in prop::collection::vec((-2100i64..2100, -50i64..500), 1..40))
        -> Vec<(i64, i64)>
    {
        // Negative widths produce inverted (empty) predicates on purpose.
        queries.into_iter().map(|(lo, w)| (lo, lo + w)).collect()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn execute_batch_is_equivalent_to_sequential_execute(
        values in arb_values(),
        batch in arb_batch(),
    ) {
        for strategy in IndexingStrategy::all() {
            let (batch_db, batch_col) = make_db(strategy, values.clone());
            let (seq_db, seq_col) = make_db(strategy, values.clone());
            let queries: Vec<Query> = batch
                .iter()
                .map(|&(lo, hi)| Query::range(batch_col, lo, hi))
                .collect();
            let got = batch_db.execute_batch(&queries).unwrap();
            prop_assert_eq!(got.len(), batch.len());
            for (r, &(lo, hi)) in got.iter().zip(&batch) {
                let seq = seq_db.execute(&Query::range(seq_col, lo, hi)).unwrap();
                prop_assert_eq!(
                    r.count, seq.count,
                    "{} count mismatch on [{}, {})", strategy, lo, hi
                );
                prop_assert_eq!(
                    r.sum, seq.sum,
                    "{} sum mismatch on [{}, {})", strategy, lo, hi
                );
                prop_assert_eq!(r.count, reference_count(&values, lo, hi));
                prop_assert_eq!(r.sum, reference_sum(&values, lo, hi));
            }
            prop_assert!(batch_db.validate(), "{} batch path broke invariants", strategy);
        }
    }

    #[test]
    fn execute_batch_leaves_identical_piece_boundaries(
        values in arb_values(),
        batch in arb_batch(),
    ) {
        // Plain adaptive cracking (Standard policy, no hot-range boosts) is
        // order-independent: boundary positions are determined by pivot
        // values alone, so the batched multi-pivot pass must leave exactly
        // the piece table a sequential replay produces.
        let (batch_db, batch_col) = make_db(IndexingStrategy::Adaptive, values.clone());
        let (seq_db, seq_col) = make_db(IndexingStrategy::Adaptive, values.clone());
        let queries: Vec<Query> = batch
            .iter()
            .map(|&(lo, hi)| Query::range(batch_col, lo, hi))
            .collect();
        batch_db.execute_batch(&queries).unwrap();
        for &(lo, hi) in &batch {
            seq_db.execute(&Query::range(seq_col, lo, hi)).unwrap();
        }
        prop_assert_eq!(
            batch_db.cracker_pieces(batch_col),
            seq_db.cracker_pieces(seq_col),
            "batch and sequential cracking disagree on the final piece table"
        );
        prop_assert!(batch_db.validate());
        // A second pass over the same batch is fully resolved: no new cracks.
        let cracks = batch_db.cracks_performed(batch_col);
        batch_db.execute_batch(&queries).unwrap();
        prop_assert_eq!(batch_db.cracks_performed(batch_col), cracks);
    }

    #[test]
    fn materialized_batch_queries_return_the_qualifying_values(
        values in arb_values(),
        lo in -2100i64..2100,
        width in 0i64..800,
    ) {
        let hi = lo + width;
        let (db, col) = make_db(IndexingStrategy::Holistic, values.clone());
        let queries = vec![
            Query::range_materialized(col, lo, hi),
            Query::range(col, lo, hi),
        ];
        let got = db.execute_batch(&queries).unwrap();
        let mut materialized = got[0].values.clone().unwrap();
        materialized.sort_unstable();
        let mut expected: Vec<i64> = values
            .iter()
            .copied()
            .filter(|&v| v >= lo && v < hi)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(materialized, expected);
        prop_assert!(got[1].values.is_none());
        prop_assert_eq!(got[0].count, got[1].count);
    }
}

/// Batches racing the background tuner: every batch answer must still equal
/// the scan ground truth while idle-time refinement keeps cracking the same
/// columns through the per-column latches.
#[test]
fn batches_race_the_background_tuner() {
    use holistic_core::{BackgroundConfig, BackgroundTuner};
    use std::sync::Arc;
    use std::time::Duration;

    let n = 30_000usize;
    let columns = 3usize;
    let data: Vec<Vec<i64>> = (0..columns)
        .map(|c| {
            (0..n)
                .map(|i| ((i as i64) * 7919 + c as i64 * 131) % (n as i64))
                .collect()
        })
        .collect();
    let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
    let table = db
        .create_table(
            "r",
            data.iter()
                .enumerate()
                .map(|(i, values)| {
                    let name: &str = ["a", "b", "c"][i];
                    (name, values.clone())
                })
                .collect(),
        )
        .expect("create table");
    let cols = db.column_ids(table).expect("column ids");
    let db = db.into_shared();

    let tuner = BackgroundTuner::spawn(
        Arc::clone(&db),
        BackgroundConfig {
            idle_threshold: Duration::ZERO,
            batch_actions: 32,
            poll_interval: Duration::from_micros(100),
            seed_prefix_sums: true,
            snapshot_on_idle: false,
            scrub_pieces: 64,
        },
    );

    let mut handles = Vec::new();
    for t in 0..4u64 {
        let db = Arc::clone(&db);
        let cols = cols.clone();
        let data = data.clone();
        handles.push(std::thread::spawn(move || {
            for round in 0..8u64 {
                // Each thread batches queries over all columns at once, with
                // thread/round-dependent ranges so resolved and unresolved
                // bounds mix.
                let queries: Vec<Query> = (0..24)
                    .map(|i| {
                        let ci = (i + t as usize + round as usize) % cols.len();
                        let lo = 1
                            + ((i as i64 * 2311 + t as i64 * 977 + round as i64 * 409)
                                % (n as i64 - 800));
                        Query::range(cols[ci], lo, lo + 555)
                    })
                    .collect();
                let results = db.read().execute_batch(&queries).expect("batch");
                for (r, q) in results.iter().zip(&queries) {
                    let ci = cols.iter().position(|c| *c == q.column).unwrap();
                    assert_eq!(
                        r.count,
                        reference_count(&data[ci], q.lo, q.hi),
                        "thread {t} round {round} [{}, {})",
                        q.lo,
                        q.hi
                    );
                }
            }
        }));
    }
    for h in handles {
        h.join().expect("batch thread panicked");
    }
    let tuned = tuner.stop();
    let guard = db.read();
    assert!(guard.validate(), "invariants violated under batch stress");
    assert!(tuned > 0, "tuner should have refined during the stress run");
    assert_eq!(guard.metrics().batches_executed(), 4 * 8);
    assert_eq!(guard.metrics().batched_queries(), 4 * 8 * 24);
    // Sequential re-check after the dust settles.
    for (ci, values) in data.iter().enumerate() {
        for lo in [1i64, 5_000, 20_000] {
            let r = guard
                .execute(&Query::range(cols[ci], lo, lo + 555))
                .expect("post-check query");
            assert_eq!(r.count, reference_count(values, lo, lo + 555));
        }
    }
}
