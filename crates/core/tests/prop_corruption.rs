//! Live-corruption and quarantine properties.
//!
//! The corruption sweep mirrors PR 6's crash kill-point sweep, but for
//! *runtime* integrity instead of persistence: a deterministic
//! [`CorruptionInjector`] is armed to damage the queried column's learned
//! metadata (or inject a kernel panic) at every operation index of a fixed
//! query workload, once per [`CorruptionKind`]. Under paranoia mode the
//! engine must
//!
//! * never return a wrong answer — the query that trips over the fault is
//!   re-answered through the base-storage scan path;
//! * never hold a broken structure in the cracker map — after every query
//!   either everything validates or the damaged column is quarantined
//!   (its cracker dropped);
//! * heal — idle-time rebuild returns every quarantined column to
//!   `Healthy`, the rebuilt state passes full validation and answers
//!   exactly like the reference model;
//! * leak no latches across any of it.
//!
//! The scrubber property drops paranoia (nothing checks integrity on the
//! query path) and corrupts a column that is never queried afterwards:
//! only the budgeted background scrubber can find the fault, and must.
//!
//! The concurrency property injects a panic while reader threads, a
//! writer thread and a tuner thread race: quarantine, degraded scans and
//! rebuild interleave with updates, and the final healed state must
//! account for every insert.

use std::sync::Arc;

use proptest::prelude::*;

use holistic_core::{
    ColumnHealth, CorruptionInjector, CorruptionKind, Database, HolisticConfig, IdleBudget,
    IndexingStrategy, Query,
};
use holistic_storage::ColumnId;

const ROWS: i64 = 1200;
const QUERIES: u64 = 12;

const ALL_KINDS: [CorruptionKind; 4] = [
    CorruptionKind::SumFlip,
    CorruptionKind::PrefixFlip,
    CorruptionKind::BoundaryFlip,
    CorruptionKind::Panic,
];

/// The reference model: the column's exact contents.
fn reference(salt: i64) -> Vec<i64> {
    (0..ROWS)
        .map(|i| (i * 7919 + salt).rem_euclid(ROWS))
        .collect()
}

fn fresh_db(salt: i64, paranoia: bool) -> (Database, ColumnId) {
    let mut config = HolisticConfig::for_testing();
    config.paranoia = paranoia;
    let mut db = Database::new(config, IndexingStrategy::Holistic);
    let table = db
        .create_table("t", vec![("v", reference(salt))])
        .expect("create table");
    let column = db.column_id(table, "v").expect("column id");
    (db, column)
}

/// The workload's i-th query range, deterministic from the salt.
fn query_range(salt: i64, i: u64) -> (i64, i64) {
    let lo = (i as i64 * 173 + salt * 7).rem_euclid(ROWS - 100);
    let width = 40 + (i as i64 * 61).rem_euclid(ROWS / 3);
    (lo, lo + width)
}

fn expected(model: &[i64], lo: i64, hi: i64) -> (u64, i128) {
    let mut count = 0u64;
    let mut sum = 0i128;
    for &v in model {
        if v >= lo && v < hi {
            count += 1;
            sum += i128::from(v);
        }
    }
    (count, sum)
}

/// Runs idle batches until every quarantined column is rebuilt (bounded,
/// so a stuck rebuild fails the test instead of hanging it).
fn heal(db: &Database) -> bool {
    for _ in 0..64 {
        if db.quarantined_columns().is_empty() {
            return true;
        }
        let _ = db.run_idle(IdleBudget::Actions(8));
    }
    db.quarantined_columns().is_empty()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(3))]

    /// The tentpole sweep: arm every corruption kind at every operation
    /// index of the workload. Answers stay correct throughout, structures
    /// are valid-or-quarantined after every query, and idle rebuild heals
    /// back to a fully validated state.
    #[test]
    fn corruption_at_every_op_is_contained_and_healed(salt in -400i64..400) {
        let model = reference(salt);
        for kind in ALL_KINDS {
            for fire_at in 0..QUERIES {
                let (mut db, column) = fresh_db(salt, true);
                let injector = CorruptionInjector::new();
                injector.arm(fire_at, kind);
                db.set_corruption_injector(Arc::clone(&injector));
                for i in 0..QUERIES {
                    let (lo, hi) = query_range(salt, i);
                    let (want_count, want_sum) = expected(&model, lo, hi);
                    let r = db.execute(&Query::range(column, lo, hi)).expect(
                        "corruption must be contained, not surfaced",
                    );
                    prop_assert_eq!(
                        (r.count, r.sum),
                        (want_count, want_sum),
                        "{kind} armed at {fire_at}: wrong answer at query {i}"
                    );
                    // Paranoia invariant: after every query the engine
                    // holds no broken structure — the damaged column is
                    // either still valid or already out of the map.
                    prop_assert!(
                        db.validate(),
                        "{kind} armed at {fire_at}: broken structure survived query {i}"
                    );
                }
                // A panic always applies (metadata flips may find no
                // flippable target on a barely-cracked column): for the
                // panic kind, containment must have quarantined.
                if matches!(kind, CorruptionKind::Panic) {
                    prop_assert!(
                        db.metrics().integrity().quarantined >= 1,
                        "panic armed at {fire_at} was never contained"
                    );
                }
                // Heal: the idle loop rebuilds every quarantined column.
                prop_assert!(heal(&db), "{kind} armed at {fire_at}: rebuild never completed");
                prop_assert!(db.validate());
                prop_assert_eq!(db.column_health(column), ColumnHealth::Healthy);
                let integ = db.metrics().integrity();
                prop_assert_eq!(integ.rebuilt, integ.quarantined, "every quarantine healed");
                // Post-heal: the rebuilt learned state answers exactly.
                for i in 0..QUERIES {
                    let (lo, hi) = query_range(salt, i);
                    let (want_count, want_sum) = expected(&model, lo, hi);
                    let r = db.execute(&Query::range(column, lo, hi)).expect("healed query");
                    prop_assert_eq!((r.count, r.sum), (want_count, want_sum));
                }
                prop_assert!(holistic_sync::held_locks().is_empty(), "latch residue");
            }
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Scrubber property: with paranoia off and the damaged column never
    /// queried again, the budgeted background scrubber is the only
    /// detector left — and it must find the fault, quarantine the column,
    /// and leave the rebuilt state exact.
    #[test]
    fn scrubber_detects_faults_no_query_ever_touches(
        salt in -400i64..400,
        budget in 1usize..64,
    ) {
        let model = reference(salt);
        let (mut db, column) = fresh_db(salt, false);
        // Crack the column so its learned metadata has flippable targets.
        for i in 0..6 {
            let (lo, hi) = query_range(salt, i);
            db.execute(&Query::range(column, lo, hi)).expect("warmup");
        }
        prop_assert!(db.piece_count(column) > 1, "warmup must crack");
        // Fire a boundary flip on the next (last) query. Its own answer is
        // served from base ranges, but the learned metadata is now wrong
        // and nothing on the query path checks it (paranoia off).
        let injector = CorruptionInjector::new();
        injector.arm(0, CorruptionKind::BoundaryFlip);
        db.set_corruption_injector(Arc::clone(&injector));
        let (lo, hi) = query_range(salt, 6);
        let _ = db.execute(&Query::range(column, lo, hi));
        prop_assert!(!db.validate(), "boundary flip must damage a cracked column");

        // Only the scrubber looks now. Budgeted windows must converge on
        // the fault within a bounded number of passes.
        let mut detected = false;
        for _ in 0..512 {
            let report = db.scrub_step(budget);
            if report.fault_found {
                detected = true;
                break;
            }
        }
        prop_assert!(detected, "scrubber (budget {budget}) never found the fault");
        prop_assert!(matches!(
            db.column_health(column),
            ColumnHealth::Quarantined { .. }
        ));
        let integ = db.metrics().integrity();
        prop_assert!(integ.scrub_faults >= 1);
        prop_assert!(integ.scrubbed_pieces >= 1);

        // Heal and verify exactness.
        prop_assert!(heal(&db), "rebuild never completed");
        prop_assert!(db.validate());
        for i in 0..QUERIES {
            let (lo, hi) = query_range(salt, i);
            let (want_count, want_sum) = expected(&model, lo, hi);
            let r = db.execute(&Query::range(column, lo, hi)).expect("healed query");
            prop_assert_eq!((r.count, r.sum), (want_count, want_sum));
        }
        prop_assert!(holistic_sync::held_locks().is_empty(), "latch residue");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(4))]

    /// Quarantine under fire: a panic is injected while reader threads,
    /// a writer thread and a tuner thread race. Queries must stay correct
    /// through quarantine → degraded scans → rebuild, updates applied
    /// during quarantine must survive into the rebuilt state, and no
    /// thread may leak a latch.
    #[test]
    fn quarantine_heals_under_concurrent_updates_and_tuner_races(
        salt in -400i64..400,
        fire_at in 0u64..8,
        inserts in 1usize..24,
    ) {
        let model = reference(salt);
        let (mut db, column) = fresh_db(salt, true);
        let injector = CorruptionInjector::new();
        injector.arm(fire_at, CorruptionKind::Panic);
        db.set_corruption_injector(Arc::clone(&injector));
        let engine = db.into_shared();

        // Writers insert values >= ROWS only: sub-range queries on
        // [0, ROWS) keep their exact reference answers while the column
        // grows underneath them.
        let mut threads = Vec::new();
        for t in 0..2u64 {
            let engine = Arc::clone(&engine);
            let model = model.clone();
            threads.push(std::thread::spawn(move || {
                for i in 0..QUERIES {
                    let (lo, hi) = query_range(salt, (i + t * 5) % QUERIES);
                    // Clamp below ROWS: the writer inserts values >= ROWS,
                    // which must stay invisible to these reference checks.
                    let hi = hi.min(ROWS);
                    let (want_count, want_sum) = expected(&model, lo, hi);
                    let r = engine
                        .read()
                        .execute(&Query::range(column, lo, hi))
                        .expect("contained execution");
                    assert_eq!(
                        (r.count, r.sum),
                        (want_count, want_sum),
                        "reader {t}: wrong answer at query {i}"
                    );
                }
                assert!(holistic_sync::held_locks().is_empty());
            }));
        }
        {
            let engine = Arc::clone(&engine);
            threads.push(std::thread::spawn(move || {
                for j in 0..inserts {
                    engine
                        .write()
                        .insert(column, ROWS + j as i64)
                        .expect("insert");
                }
                assert!(holistic_sync::held_locks().is_empty());
            }));
        }
        {
            let engine = Arc::clone(&engine);
            threads.push(std::thread::spawn(move || {
                for _ in 0..6 {
                    let _ = engine.read().run_idle(IdleBudget::Actions(4));
                }
                assert!(holistic_sync::held_locks().is_empty());
            }));
        }
        for t in threads {
            t.join().expect("no thread may die: panics are contained");
        }

        let guard = engine.read();
        prop_assert!(heal(&guard), "rebuild never completed");
        prop_assert!(guard.validate());
        prop_assert_eq!(guard.column_health(column), ColumnHealth::Healthy);
        // The healed state holds the base data plus every insert.
        let r = guard
            .execute(&Query::range(column, 0, ROWS + inserts as i64))
            .expect("full-range query");
        prop_assert_eq!(r.count, ROWS as u64 + inserts as u64);
        drop(guard);
        prop_assert!(holistic_sync::held_locks().is_empty(), "latch residue");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]

    /// Per-shard quarantine granularity: on a *sharded* column the
    /// scrubber's global piece cursor walks every shard's piece table,
    /// pinpoints the damaged shard in the quarantine reason, and the
    /// rebuild salvages the healthy shards' learned piece tables instead
    /// of recracking the whole column from scratch. A full cold rebuild
    /// would leave exactly one piece per shard; the salvaged column must
    /// keep strictly more.
    #[test]
    fn sharded_scrub_pinpoints_the_shard_and_salvage_keeps_learned_state(
        salt in -400i64..400,
        extent in 150usize..400,
        budget in 1usize..64,
    ) {
        let model = reference(salt);
        let mut config = HolisticConfig::for_testing().with_shard_extent(extent);
        config.paranoia = false;
        let mut db = Database::new(config, IndexingStrategy::Holistic);
        let table = db
            .create_table("t", vec![("v", model.clone())])
            .expect("create table");
        let column = db.column_id(table, "v").expect("column id");
        let shards = (ROWS as usize).div_ceil(extent);
        prop_assert!(shards >= 3, "extent must yield several shards");

        // Crack widely so many shards hold real learned state.
        for i in 0..10 {
            let (lo, hi) = query_range(salt, i % QUERIES);
            db.execute(&Query::range(column, lo, hi)).expect("warmup");
        }
        let warm_pieces = db.piece_count(column);
        prop_assert!(warm_pieces > shards, "warmup must crack beyond one piece per shard");

        // Damage one shard's metadata; nothing on the query path checks it
        // (paranoia off), so only the scrubber can find it.
        let injector = CorruptionInjector::new();
        injector.arm(0, CorruptionKind::BoundaryFlip);
        db.set_corruption_injector(Arc::clone(&injector));
        let (lo, hi) = query_range(salt, 3);
        let _ = db.execute(&Query::range(column, lo, hi));
        prop_assert!(!db.validate(), "boundary flip must damage the column");

        let mut detected = false;
        for _ in 0..512 {
            if db.scrub_step(budget).fault_found {
                detected = true;
                break;
            }
        }
        prop_assert!(detected, "scrubber (budget {budget}) never found the shard fault");
        // The quarantine reason names the damaged shard.
        match db.column_health(column) {
            ColumnHealth::Quarantined { reason } => prop_assert!(
                reason.contains("shard"),
                "quarantine reason does not pinpoint a shard: {reason}"
            ),
            other => prop_assert!(false, "expected quarantine, got {other:?}"),
        }

        prop_assert!(heal(&db), "rebuild never completed");
        prop_assert!(db.validate());
        prop_assert_eq!(db.column_health(column), ColumnHealth::Healthy);
        // Salvage, not cold rebuild: healthy shards kept their pieces, so
        // the piece count stays above the one-piece-per-shard floor a cold
        // rebuild would reset to.
        prop_assert!(
            db.piece_count(column) > shards,
            "salvage lost the healthy shards' learned state ({} pieces for {} shards)",
            db.piece_count(column),
            shards
        );
        // And the salvaged column answers exactly.
        for i in 0..QUERIES {
            let (lo, hi) = query_range(salt, i);
            let (want_count, want_sum) = expected(&model, lo, hi);
            let r = db.execute(&Query::range(column, lo, hi)).expect("healed query");
            prop_assert_eq!((r.count, r.sum), (want_count, want_sum));
        }
        prop_assert!(holistic_sync::held_locks().is_empty(), "latch residue");
    }
}
