//! Equi-width histograms used for selectivity estimation.
//!
//! The offline advisor, the online (COLT-style) tuner and the holistic
//! ranking model all need a cheap estimate of how many rows a range
//! predicate will qualify. An equi-width histogram over the column domain
//! is sufficient for the uniform and mildly skewed workloads the paper
//! evaluates, and it is cheap to maintain incrementally on append.

use crate::Value;

/// Default number of buckets for a column histogram.
pub const DEFAULT_BUCKETS: usize = 64;

/// An equi-width histogram over a fixed `[lo, hi]` value domain.
///
/// Buckets partition `[lo, hi]` into equally wide intervals; the last bucket
/// is closed on both sides so the domain maximum is representable. Values
/// outside the domain are clamped into the first/last bucket, which keeps the
/// estimator total-count preserving even if the domain was under-estimated.
#[derive(Debug, Clone, PartialEq)]
pub struct EquiWidthHistogram {
    lo: Value,
    hi: Value,
    counts: Vec<u64>,
    total: u64,
}

impl EquiWidthHistogram {
    /// Creates an empty histogram with `buckets` buckets over `[lo, hi]`.
    ///
    /// # Panics
    ///
    /// Panics if `buckets == 0` or `lo > hi`.
    pub fn new(lo: Value, hi: Value, buckets: usize) -> Self {
        assert!(buckets > 0, "histogram needs at least one bucket");
        assert!(lo <= hi, "histogram domain must be non-empty (lo <= hi)");
        EquiWidthHistogram {
            lo,
            hi,
            counts: vec![0; buckets],
            total: 0,
        }
    }

    /// Builds a histogram from a slice of values using the slice's own
    /// min/max as the domain.
    ///
    /// An empty slice produces a single-bucket histogram over `[0, 0]`.
    pub fn from_values(values: &[Value], buckets: usize) -> Self {
        let (Some(lo), Some(hi)) = (values.iter().copied().min(), values.iter().copied().max())
        else {
            return EquiWidthHistogram::new(0, 0, buckets.max(1));
        };
        let mut hist = EquiWidthHistogram::new(lo, hi, buckets.max(1));
        for &v in values {
            hist.insert(v);
        }
        hist
    }

    /// Number of buckets.
    #[must_use]
    pub fn buckets(&self) -> usize {
        self.counts.len()
    }

    /// Total number of inserted values.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Lower bound of the histogram domain.
    #[must_use]
    pub fn domain_lo(&self) -> Value {
        self.lo
    }

    /// Upper bound of the histogram domain.
    #[must_use]
    pub fn domain_hi(&self) -> Value {
        self.hi
    }

    /// Width of a single bucket (at least 1).
    fn bucket_width(&self) -> u128 {
        let span = (self.hi as i128 - self.lo as i128 + 1) as u128;
        let width = span / self.counts.len() as u128;
        width.max(1)
    }

    /// Bucket index for a value, clamped into the valid range.
    fn bucket_of(&self, v: Value) -> usize {
        if v <= self.lo {
            return 0;
        }
        if v >= self.hi {
            return self.counts.len() - 1;
        }
        let offset = (v as i128 - self.lo as i128) as u128;
        let idx = (offset / self.bucket_width()) as usize;
        idx.min(self.counts.len() - 1)
    }

    /// Inserts a value into the histogram.
    pub fn insert(&mut self, v: Value) {
        let idx = self.bucket_of(v);
        self.counts[idx] += 1;
        self.total += 1;
    }

    /// Raw bucket counts.
    #[must_use]
    pub fn counts(&self) -> &[u64] {
        &self.counts
    }

    /// Estimates the number of values in the half-open range `[lo, hi)`.
    ///
    /// Buckets fully covered by the range contribute their full count;
    /// partially covered boundary buckets contribute a linear fraction.
    #[must_use]
    pub fn estimate_range(&self, lo: Value, hi: Value) -> f64 {
        if hi <= lo || self.total == 0 {
            return 0.0;
        }
        let lo = lo.max(self.lo);
        // `hi` is exclusive; the largest meaningful value is domain_hi + 1.
        let hi = hi.min(self.hi.saturating_add(1));
        if hi <= lo {
            return 0.0;
        }
        let width = self.bucket_width() as f64;
        let mut estimate = 0.0;
        for (i, &count) in self.counts.iter().enumerate() {
            let b_lo = self.lo as f64 + i as f64 * width;
            let b_hi = if i == self.counts.len() - 1 {
                self.hi as f64 + 1.0
            } else {
                b_lo + width
            };
            let overlap_lo = b_lo.max(lo as f64);
            let overlap_hi = b_hi.min(hi as f64);
            if overlap_hi > overlap_lo {
                let fraction = (overlap_hi - overlap_lo) / (b_hi - b_lo);
                estimate += count as f64 * fraction;
            }
        }
        estimate
    }

    /// Estimates the selectivity (fraction of rows) of `[lo, hi)`.
    #[must_use]
    pub fn estimate_selectivity(&self, lo: Value, hi: Value) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        (self.estimate_range(lo, hi) / self.total as f64).clamp(0.0, 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_estimates_zero() {
        let h = EquiWidthHistogram::new(0, 100, 10);
        assert_eq!(h.total(), 0);
        assert_eq!(h.estimate_range(0, 100), 0.0);
        assert_eq!(h.estimate_selectivity(0, 100), 0.0);
    }

    #[test]
    fn uniform_data_estimates_are_close() {
        let values: Vec<Value> = (0..10_000).collect();
        let h = EquiWidthHistogram::from_values(&values, 64);
        assert_eq!(h.total(), 10_000);
        // 10% range
        let est = h.estimate_range(1000, 2000);
        let true_count = 1000.0;
        assert!((est - true_count).abs() / true_count < 0.05, "est={est}");
        // full range
        let est_all = h.estimate_range(0, 10_000);
        assert!((est_all - 10_000.0).abs() < 1.0, "est_all={est_all}");
    }

    #[test]
    fn selectivity_is_clamped_to_unit_interval() {
        let values: Vec<Value> = (0..100).collect();
        let h = EquiWidthHistogram::from_values(&values, 8);
        assert!(h.estimate_selectivity(-1000, 1000) <= 1.0);
        assert!(h.estimate_selectivity(50, 50) >= 0.0);
    }

    #[test]
    fn inverted_or_empty_range_estimates_zero() {
        let values: Vec<Value> = (0..100).collect();
        let h = EquiWidthHistogram::from_values(&values, 8);
        assert_eq!(h.estimate_range(50, 50), 0.0);
        assert_eq!(h.estimate_range(60, 40), 0.0);
    }

    #[test]
    fn out_of_domain_values_are_clamped() {
        let mut h = EquiWidthHistogram::new(0, 9, 10);
        h.insert(-5);
        h.insert(100);
        assert_eq!(h.total(), 2);
        assert_eq!(h.counts()[0], 1);
        assert_eq!(h.counts()[9], 1);
    }

    #[test]
    fn from_values_handles_empty_and_constant_slices() {
        let h = EquiWidthHistogram::from_values(&[], 16);
        assert_eq!(h.total(), 0);
        let h = EquiWidthHistogram::from_values(&[7, 7, 7, 7], 16);
        assert_eq!(h.total(), 4);
        // All mass in one value; a range covering 7 should see ~4.
        assert!(h.estimate_range(7, 8) > 3.9);
    }

    #[test]
    fn skewed_data_reflects_skew() {
        let mut values = vec![0i64; 900];
        values.extend(std::iter::repeat_n(1000, 100));
        let h = EquiWidthHistogram::from_values(&values, 32);
        let low_mass = h.estimate_range(0, 10);
        let high_mass = h.estimate_range(995, 1001);
        assert!(low_mass > high_mass, "low={low_mass} high={high_mass}");
    }

    #[test]
    #[should_panic(expected = "at least one bucket")]
    fn zero_buckets_panics() {
        let _ = EquiWidthHistogram::new(0, 10, 0);
    }
}
