//! Error type for the storage engine.

use std::fmt;

/// Errors produced by the column-store storage layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StorageError {
    /// A table with this name already exists in the catalog.
    TableAlreadyExists(String),
    /// No table with this name/id is registered.
    TableNotFound(String),
    /// A column with this name already exists in the table.
    ColumnAlreadyExists(String),
    /// No column with this name/id exists in the table.
    ColumnNotFound(String),
    /// Columns of a table must all have the same length.
    ColumnLengthMismatch {
        /// Expected number of rows (length of the existing columns).
        expected: usize,
        /// Length of the offending column.
        actual: usize,
    },
    /// A row id was out of bounds for the column it was applied to.
    RowOutOfBounds {
        /// The offending row id.
        row: u64,
        /// Number of rows in the column.
        len: usize,
    },
    /// An empty range or otherwise invalid predicate was supplied.
    InvalidPredicate(String),
}

impl fmt::Display for StorageError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StorageError::TableAlreadyExists(name) => {
                write!(f, "table `{name}` already exists")
            }
            StorageError::TableNotFound(name) => write!(f, "table `{name}` not found"),
            StorageError::ColumnAlreadyExists(name) => {
                write!(f, "column `{name}` already exists")
            }
            StorageError::ColumnNotFound(name) => write!(f, "column `{name}` not found"),
            StorageError::ColumnLengthMismatch { expected, actual } => write!(
                f,
                "column length mismatch: expected {expected} rows, got {actual}"
            ),
            StorageError::RowOutOfBounds { row, len } => {
                write!(f, "row id {row} out of bounds for column of length {len}")
            }
            StorageError::InvalidPredicate(msg) => write!(f, "invalid predicate: {msg}"),
        }
    }
}

impl std::error::Error for StorageError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_formats_are_informative() {
        let cases: Vec<(StorageError, &str)> = vec![
            (
                StorageError::TableAlreadyExists("t".into()),
                "table `t` already exists",
            ),
            (
                StorageError::TableNotFound("t".into()),
                "table `t` not found",
            ),
            (
                StorageError::ColumnAlreadyExists("c".into()),
                "column `c` already exists",
            ),
            (
                StorageError::ColumnNotFound("c".into()),
                "column `c` not found",
            ),
            (
                StorageError::ColumnLengthMismatch {
                    expected: 3,
                    actual: 5,
                },
                "column length mismatch: expected 3 rows, got 5",
            ),
            (
                StorageError::RowOutOfBounds { row: 9, len: 4 },
                "row id 9 out of bounds for column of length 4",
            ),
            (
                StorageError::InvalidPredicate("lo > hi".into()),
                "invalid predicate: lo > hi",
            ),
        ];
        for (err, expected) in cases {
            assert_eq!(err.to_string(), expected);
        }
    }

    #[test]
    fn error_is_std_error() {
        fn assert_err<E: std::error::Error>(_e: &E) {}
        assert_err(&StorageError::TableNotFound("x".into()));
    }
}
