//! Bulk scan operators.
//!
//! These tight loops are the "no index" baseline in every experiment of the
//! paper: a select operator that touches every value of a column. They are
//! structured for auto-vectorization: the inner loops run over fixed-width
//! chunks with no early exits and no data-dependent branches, accumulating
//! comparison masks arithmetically, so LLVM can lower them to SIMD compares.
//!
//! Row-producing scans (`scan_positions`, `scan_full`) run in two passes: a
//! vectorized counting pass first, then a branch-free scatter pass into an
//! exactly-sized allocation. The count makes the second pass's selection
//! vector allocation exact (no `Vec` growth doubling, no over-allocation),
//! and both passes are cheaper than one branchy push-per-match loop on
//! anything but tiny inputs.
//!
//! All ranges are half-open: `(lo, hi)` selects values in `[lo, hi)`.

use crate::selection::SelectionVector;
use crate::{RowId, Value};

/// Chunk width of the vectorizable inner loops. 64 `i64`s = 512 bytes = 8
/// AVX-512 / 16 AVX2 vectors per chunk: wide enough that the scalar chunk
/// remainder is noise, narrow enough to stay register-friendly.
const CHUNK: usize = 64;

/// The outcome of a scan with both the qualifying rows and basic aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// Qualifying row ids, in physical order.
    pub rows: SelectionVector,
    /// Number of qualifying rows.
    pub count: u64,
    /// Sum of qualifying values.
    pub sum: i128,
}

/// Counts the values in `[lo, hi)`.
#[must_use]
pub fn scan_count(values: &[Value], lo: Value, hi: Value) -> u64 {
    if hi <= lo {
        return 0;
    }
    let mut total = 0u64;
    let mut chunks = values.chunks_exact(CHUNK);
    for chunk in &mut chunks {
        // Fixed-width, branch-free mask accumulation: vectorizes to SIMD
        // compares + a horizontal add per chunk.
        let mut acc = 0u64;
        for &v in chunk {
            acc += u64::from(v >= lo && v < hi);
        }
        total += acc;
    }
    for &v in chunks.remainder() {
        total += u64::from(v >= lo && v < hi);
    }
    total
}

/// Sums the values in `[lo, hi)`.
#[must_use]
pub fn scan_sum(values: &[Value], lo: Value, hi: Value) -> i128 {
    if hi <= lo {
        return 0;
    }
    let mut total = 0i128;
    let mut chunks = values.chunks_exact(CHUNK);
    for chunk in &mut chunks {
        total += sum_chunk(chunk, lo, hi);
    }
    total + sum_chunk(chunks.remainder(), lo, hi)
}

/// Branch-free masked sum of one chunk (at most [`CHUNK`] values), exact
/// for the full `i64` domain.
///
/// `-(qualifies as i64)` is `0` or all-ones, so `v & mask` keeps or zeroes
/// the value without a branch. The masked value is then split: its low 32
/// bits go to an unsigned lane, its sign-extended high bits to a signed
/// lane. Neither lane can overflow across ≤ 64 summands (bounds 2^38 and
/// 2^37), the loop stays free of `i128` arithmetic so it vectorizes, and
/// `(hi << 32) + lo` reassembles the exact total.
fn sum_chunk(chunk: &[Value], lo: Value, hi: Value) -> i128 {
    debug_assert!(chunk.len() <= CHUNK);
    let mut low_acc = 0u64;
    let mut high_acc = 0i64;
    for &v in chunk {
        let mask = -(i64::from(v >= lo && v < hi));
        let masked = v & mask;
        low_acc += masked as u64 & 0xFFFF_FFFF;
        high_acc += masked >> 32;
    }
    (i128::from(high_acc) << 32) + i128::from(low_acc)
}

/// Builds the exclusive prefix sums of `values`: `out[i]` is the exact sum
/// of `values[..i]`, so `out.len() == values.len() + 1` and any positional
/// range aggregate becomes one subtraction (`sum(a..b) = out[b] - out[a]`).
///
/// This is the build kernel behind [`crate::PrefixSums`] — the structure
/// that makes range aggregates on sorted data zero-read. The loop runs over
/// the same fixed-width chunks as the masked-sum kernel above; unlike it,
/// a prefix sum must *store* every running total, so the output writes (16
/// bytes per value), not the additions, dominate. The accumulator is `i128`
/// throughout: exact over the full `i64` domain at any input length.
#[must_use]
pub fn prefix_sums(values: &[Value]) -> Vec<i128> {
    let mut out: Vec<i128> = Vec::with_capacity(values.len() + 1);
    out.push(0);
    let mut acc = 0i128;
    let mut chunks = values.chunks_exact(CHUNK);
    for chunk in &mut chunks {
        for &v in chunk {
            acc += i128::from(v);
            out.push(acc);
        }
    }
    for &v in chunks.remainder() {
        acc += i128::from(v);
        out.push(acc);
    }
    out
}

/// Returns the row ids whose values fall in `[lo, hi)`.
#[must_use]
pub fn scan_positions(values: &[Value], lo: Value, hi: Value) -> SelectionVector {
    if hi <= lo {
        return SelectionVector::new();
    }
    let count = scan_count(values, lo, hi) as usize;
    if count == 0 {
        return SelectionVector::new();
    }
    // Exactly-sized scatter target (+1 slack slot so the unconditional
    // write below never lands out of bounds once the cursor reaches
    // `count`).
    let mut rows: Vec<RowId> = vec![0; count + 1];
    let mut cursor = 0usize;
    for (i, &v) in values.iter().enumerate() {
        // Branch-free scatter: always write, advance the cursor only when
        // the value qualifies, so a non-qualifying write is overwritten.
        rows[cursor] = i as RowId;
        cursor += usize::from(v >= lo && v < hi);
    }
    debug_assert_eq!(cursor, count);
    rows.truncate(count);
    SelectionVector::from_sorted_rows(rows)
}

/// Materializes the values in `[lo, hi)` (select + project on one column).
#[must_use]
pub fn scan_materialize(values: &[Value], lo: Value, hi: Value) -> Vec<Value> {
    if hi <= lo {
        return Vec::new();
    }
    let count = scan_count(values, lo, hi) as usize;
    if count == 0 {
        return Vec::new();
    }
    let mut out: Vec<Value> = vec![0; count + 1];
    let mut cursor = 0usize;
    for &v in values {
        out[cursor] = v;
        cursor += usize::from(v >= lo && v < hi);
    }
    debug_assert_eq!(cursor, count);
    out.truncate(count);
    out
}

/// Runs a full scan producing rows, count and sum in one pass over the
/// (pre-counted) data.
#[must_use]
pub fn scan_full(values: &[Value], lo: Value, hi: Value) -> ScanResult {
    if hi <= lo {
        return ScanResult {
            rows: SelectionVector::new(),
            count: 0,
            sum: 0,
        };
    }
    let count = scan_count(values, lo, hi) as usize;
    if count == 0 {
        return ScanResult {
            rows: SelectionVector::new(),
            count: 0,
            sum: 0,
        };
    }
    let mut rows: Vec<RowId> = vec![0; count + 1];
    let mut cursor = 0usize;
    let mut sum = 0i128;
    for (i, &v) in values.iter().enumerate() {
        let q = v >= lo && v < hi;
        rows[cursor] = i as RowId;
        cursor += usize::from(q);
        let mask = -(i64::from(q));
        sum += i128::from(v & mask);
    }
    debug_assert_eq!(cursor, count);
    rows.truncate(count);
    ScanResult {
        count: count as u64,
        rows: SelectionVector::from_sorted_rows(rows),
        sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: [Value; 8] = [5, 1, 9, 3, 7, 3, 0, 10];

    #[test]
    fn count_sum_positions_materialize_agree() {
        let count = scan_count(&DATA, 3, 8);
        let sum = scan_sum(&DATA, 3, 8);
        let pos = scan_positions(&DATA, 3, 8);
        let mat = scan_materialize(&DATA, 3, 8);
        assert_eq!(count, 4);
        assert_eq!(sum, 5 + 3 + 7 + 3);
        assert_eq!(pos.len(), 4);
        assert_eq!(mat.len(), 4);
        let full = scan_full(&DATA, 3, 8);
        assert_eq!(full.count, count);
        assert_eq!(full.sum, sum);
        assert_eq!(full.rows, pos);
    }

    #[test]
    fn empty_and_inverted_ranges() {
        assert_eq!(scan_count(&DATA, 5, 5), 0);
        assert_eq!(scan_count(&DATA, 8, 3), 0);
        assert_eq!(scan_sum(&DATA, 8, 3), 0);
        assert!(scan_positions(&DATA, 8, 3).is_empty());
        assert!(scan_materialize(&DATA, 8, 3).is_empty());
        assert_eq!(scan_full(&DATA, 8, 3).count, 0);
    }

    #[test]
    fn full_domain_range_selects_everything() {
        let count = scan_count(&DATA, i64::MIN, i64::MAX);
        assert_eq!(count, DATA.len() as u64);
    }

    #[test]
    fn boundaries_are_half_open() {
        // lo inclusive, hi exclusive
        assert_eq!(scan_count(&DATA, 3, 4), 2); // the two 3s
        assert_eq!(scan_count(&DATA, 9, 10), 1); // 9 qualifies, 10 does not
        assert_eq!(scan_count(&DATA, 10, 11), 1); // now the 10
    }

    #[test]
    fn empty_input_slice() {
        let empty: [Value; 0] = [];
        assert_eq!(scan_count(&empty, 0, 100), 0);
        assert!(scan_positions(&empty, 0, 100).is_empty());
        assert_eq!(scan_full(&empty, 0, 100).sum, 0);
    }

    #[test]
    fn negative_values_are_handled() {
        let data = [-5, -1, 0, 3];
        assert_eq!(scan_count(&data, -3, 1), 2);
        assert_eq!(scan_sum(&data, -10, 0), -6);
    }

    #[test]
    fn inputs_longer_than_one_chunk_agree_with_reference() {
        // Deterministic pseudo-random data spanning several chunks plus a
        // non-empty remainder.
        let n = CHUNK * 5 + 17;
        let values: Vec<Value> = (0..n)
            .map(|i| ((i as i64).wrapping_mul(2654435761) % 1000) - 500)
            .collect();
        for &(lo, hi) in &[(-500, 500), (-100, 100), (0, 1), (-500, -400), (499, 500)] {
            let expected_count = values.iter().filter(|&&v| v >= lo && v < hi).count() as u64;
            let expected_sum: i128 = values
                .iter()
                .filter(|&&v| v >= lo && v < hi)
                .map(|&v| i128::from(v))
                .sum();
            let expected_rows: Vec<RowId> = values
                .iter()
                .enumerate()
                .filter(|&(_, &v)| v >= lo && v < hi)
                .map(|(i, _)| i as RowId)
                .collect();
            assert_eq!(scan_count(&values, lo, hi), expected_count, "[{lo},{hi})");
            assert_eq!(scan_sum(&values, lo, hi), expected_sum, "[{lo},{hi})");
            assert_eq!(scan_positions(&values, lo, hi).rows(), &expected_rows[..]);
            let full = scan_full(&values, lo, hi);
            assert_eq!(full.count, expected_count);
            assert_eq!(full.sum, expected_sum);
            assert_eq!(full.rows.rows(), &expected_rows[..]);
            let mat = scan_materialize(&values, lo, hi);
            assert_eq!(mat.len(), expected_count as usize);
            assert!(mat.iter().all(|&v| v >= lo && v < hi));
        }
    }

    #[test]
    fn prefix_sums_match_reference_across_chunks() {
        let n = CHUNK * 3 + 11;
        let values: Vec<Value> = (0..n)
            .map(|i| ((i as i64).wrapping_mul(2654435761) % 1000) - 500)
            .collect();
        let prefix = prefix_sums(&values);
        assert_eq!(prefix.len(), n + 1);
        assert_eq!(prefix[0], 0);
        let mut acc = 0i128;
        for (i, &v) in values.iter().enumerate() {
            acc += i128::from(v);
            assert_eq!(prefix[i + 1], acc, "entry {}", i + 1);
        }
        // Any range sum is a subtraction of two entries.
        assert_eq!(
            prefix[40] - prefix[7],
            values[7..40].iter().map(|&v| i128::from(v)).sum::<i128>()
        );
        assert_eq!(prefix_sums(&[]), vec![0]);
    }

    #[test]
    fn extreme_domain_values_do_not_overflow() {
        let values = vec![i64::MAX, i64::MIN, i64::MAX, 0, i64::MIN];
        let sum = scan_sum(&values, i64::MIN, i64::MAX);
        // i64::MAX excluded by the half-open upper bound.
        let expected: i128 = i128::from(i64::MIN) * 2;
        assert_eq!(sum, expected);
        let all = scan_sum(&values, i64::MIN, i64::MAX);
        assert_eq!(all, expected);
        let wide: Vec<Value> = std::iter::repeat_n(i64::MAX, CHUNK * 2).collect();
        assert_eq!(
            scan_sum(&wide, 0, i64::MAX),
            0,
            "MAX is excluded by the exclusive bound"
        );
        let wide_min: Vec<Value> = std::iter::repeat_n(i64::MIN, CHUNK * 2).collect();
        assert_eq!(
            scan_sum(&wide_min, i64::MIN, 0),
            i128::from(i64::MIN) * (CHUNK as i128 * 2)
        );
    }
}
