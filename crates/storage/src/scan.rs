//! Bulk scan operators.
//!
//! These tight loops are the "no index" baseline in every experiment of the
//! paper: a select operator that touches every value of a column. They are
//! deliberately branch-light so that the comparison against cracking and
//! full indexes measures algorithmic work rather than implementation slack.

use crate::selection::SelectionVector;
use crate::{RowId, Value};

/// The outcome of a scan with both the qualifying rows and basic aggregates.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ScanResult {
    /// Qualifying row ids, in physical order.
    pub rows: SelectionVector,
    /// Number of qualifying rows.
    pub count: u64,
    /// Sum of qualifying values.
    pub sum: i128,
}

/// Counts the values in `[lo, hi)`.
#[must_use]
pub fn scan_count(values: &[Value], lo: Value, hi: Value) -> u64 {
    if hi <= lo {
        return 0;
    }
    let mut count = 0u64;
    for &v in values {
        // Branch-free accumulation: the comparison results are 0/1.
        count += u64::from(v >= lo && v < hi);
    }
    count
}

/// Sums the values in `[lo, hi)`.
#[must_use]
pub fn scan_sum(values: &[Value], lo: Value, hi: Value) -> i128 {
    if hi <= lo {
        return 0;
    }
    let mut sum = 0i128;
    for &v in values {
        if v >= lo && v < hi {
            sum += i128::from(v);
        }
    }
    sum
}

/// Returns the row ids whose values fall in `[lo, hi)`.
#[must_use]
pub fn scan_positions(values: &[Value], lo: Value, hi: Value) -> SelectionVector {
    if hi <= lo {
        return SelectionVector::new();
    }
    let mut sel = SelectionVector::with_capacity(16);
    for (i, &v) in values.iter().enumerate() {
        if v >= lo && v < hi {
            sel.push(i as RowId);
        }
    }
    sel
}

/// Materializes the values in `[lo, hi)` (select + project on one column).
#[must_use]
pub fn scan_materialize(values: &[Value], lo: Value, hi: Value) -> Vec<Value> {
    if hi <= lo {
        return Vec::new();
    }
    values.iter().copied().filter(|&v| v >= lo && v < hi).collect()
}

/// Runs a full scan producing rows, count and sum in one pass.
#[must_use]
pub fn scan_full(values: &[Value], lo: Value, hi: Value) -> ScanResult {
    if hi <= lo {
        return ScanResult {
            rows: SelectionVector::new(),
            count: 0,
            sum: 0,
        };
    }
    let mut rows = SelectionVector::with_capacity(16);
    let mut sum = 0i128;
    for (i, &v) in values.iter().enumerate() {
        if v >= lo && v < hi {
            rows.push(i as RowId);
            sum += i128::from(v);
        }
    }
    ScanResult {
        count: rows.len() as u64,
        rows,
        sum,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DATA: [Value; 8] = [5, 1, 9, 3, 7, 3, 0, 10];

    #[test]
    fn count_sum_positions_materialize_agree() {
        let count = scan_count(&DATA, 3, 8);
        let sum = scan_sum(&DATA, 3, 8);
        let pos = scan_positions(&DATA, 3, 8);
        let mat = scan_materialize(&DATA, 3, 8);
        assert_eq!(count, 4);
        assert_eq!(sum, 5 + 3 + 7 + 3);
        assert_eq!(pos.len(), 4);
        assert_eq!(mat.len(), 4);
        let full = scan_full(&DATA, 3, 8);
        assert_eq!(full.count, count);
        assert_eq!(full.sum, sum);
        assert_eq!(full.rows, pos);
    }

    #[test]
    fn empty_and_inverted_ranges() {
        assert_eq!(scan_count(&DATA, 5, 5), 0);
        assert_eq!(scan_count(&DATA, 8, 3), 0);
        assert_eq!(scan_sum(&DATA, 8, 3), 0);
        assert!(scan_positions(&DATA, 8, 3).is_empty());
        assert!(scan_materialize(&DATA, 8, 3).is_empty());
        assert_eq!(scan_full(&DATA, 8, 3).count, 0);
    }

    #[test]
    fn full_domain_range_selects_everything() {
        let count = scan_count(&DATA, i64::MIN, i64::MAX);
        assert_eq!(count, DATA.len() as u64);
    }

    #[test]
    fn boundaries_are_half_open() {
        // lo inclusive, hi exclusive
        assert_eq!(scan_count(&DATA, 3, 4), 2); // the two 3s
        assert_eq!(scan_count(&DATA, 9, 10), 1); // 9 qualifies, 10 does not
        assert_eq!(scan_count(&DATA, 10, 11), 1); // now the 10
    }

    #[test]
    fn empty_input_slice() {
        let empty: [Value; 0] = [];
        assert_eq!(scan_count(&empty, 0, 100), 0);
        assert!(scan_positions(&empty, 0, 100).is_empty());
        assert_eq!(scan_full(&empty, 0, 100).sum, 0);
    }

    #[test]
    fn negative_values_are_handled() {
        let data = [-5, -1, 0, 3];
        assert_eq!(scan_count(&data, -3, 1), 2);
        assert_eq!(scan_sum(&data, -10, 0), -6);
    }
}
