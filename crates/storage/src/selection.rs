//! Selection vectors: the qualifying-row representation shared by all
//! access paths (scan, sorted index, cracker column).

use crate::RowId;

/// A list of qualifying row identifiers produced by a select operator.
///
/// Row ids are not required to be sorted — a cracking select returns rows in
/// physical (cracked) order — but many consumers (set operations, result
/// comparison across access paths) want ascending order. The vector tracks
/// whether its rows are currently sorted so that [`SelectionVector::sort`]
/// is a no-op on already-ordered data and the set operations
/// ([`SelectionVector::intersect`], [`SelectionVector::union`]) can sort
/// each input lazily at most once over its lifetime instead of cloning and
/// re-sorting both inputs on every call.
///
/// Equality compares the row sequence only, not the sortedness bookkeeping.
#[derive(Debug, Clone, Default)]
pub struct SelectionVector {
    rows: Vec<RowId>,
    /// Whether `rows` is known to be in ascending order. `false` only means
    /// "not verified": a freshly built vector that happens to be ordered is
    /// detected on construction.
    sorted: bool,
}

impl SelectionVector {
    /// Creates an empty selection vector.
    #[must_use]
    pub fn new() -> Self {
        SelectionVector {
            rows: Vec::new(),
            sorted: true,
        }
    }

    /// Creates an empty selection vector with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        SelectionVector {
            rows: Vec::with_capacity(capacity),
            sorted: true,
        }
    }

    /// Creates a selection vector from an existing row-id vector.
    #[must_use]
    pub fn from_rows(rows: Vec<RowId>) -> Self {
        let sorted = rows.is_sorted();
        SelectionVector { rows, sorted }
    }

    /// Creates a selection vector from a row-id vector the caller guarantees
    /// to be in ascending order (as produced by a physical-order scan).
    ///
    /// Only debug builds verify the claim.
    #[must_use]
    pub fn from_sorted_rows(rows: Vec<RowId>) -> Self {
        debug_assert!(rows.is_sorted(), "from_sorted_rows requires ascending rows");
        SelectionVector { rows, sorted: true }
    }

    /// Appends a qualifying row id.
    #[inline]
    pub fn push(&mut self, row: RowId) {
        self.sorted = self.sorted && self.rows.last().is_none_or(|&last| last <= row);
        self.rows.push(row);
    }

    /// Number of qualifying rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows qualify.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Whether the rows are known to be in ascending order.
    #[must_use]
    pub fn is_sorted(&self) -> bool {
        self.sorted
    }

    /// The qualifying row ids.
    #[must_use]
    pub fn rows(&self) -> &[RowId] {
        &self.rows
    }

    /// Consumes the selection vector and returns the underlying row ids.
    #[must_use]
    pub fn into_rows(self) -> Vec<RowId> {
        self.rows
    }

    /// Sorts the row ids in ascending order (no-op if already sorted).
    pub fn sort(&mut self) {
        if !self.sorted {
            self.rows.sort_unstable();
            self.sorted = true;
        }
    }

    /// Returns a sorted copy of this selection vector.
    #[must_use]
    pub fn sorted(&self) -> Self {
        let mut copy = self.clone();
        copy.sort();
        copy
    }

    /// Intersects two selection vectors.
    ///
    /// Each input is sorted in place at most once (lazily, remembered via
    /// the sorted flag); the merge itself allocates nothing beyond the
    /// output. Used for conjunctive multi-attribute predicates.
    #[must_use]
    pub fn intersect(&mut self, other: &mut SelectionVector) -> SelectionVector {
        self.sort();
        other.sort();
        let a = &self.rows;
        let b = &other.rows;
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        SelectionVector::from_sorted_rows(out)
    }

    /// Unions two selection vectors, removing duplicates.
    ///
    /// Like [`SelectionVector::intersect`], sorts each input in place at
    /// most once and merges without temporary copies of the inputs.
    #[must_use]
    pub fn union(&mut self, other: &mut SelectionVector) -> SelectionVector {
        self.sort();
        other.sort();
        let a = &self.rows;
        let b = &other.rows;
        let mut out = Vec::with_capacity(a.len() + b.len());
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => {
                    out.push(a[i]);
                    i += 1;
                }
                std::cmp::Ordering::Greater => {
                    out.push(b[j]);
                    j += 1;
                }
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        out.extend_from_slice(&a[i..]);
        out.extend_from_slice(&b[j..]);
        out.dedup();
        SelectionVector::from_sorted_rows(out)
    }

    /// Iterates over the qualifying row ids.
    pub fn iter(&self) -> impl Iterator<Item = RowId> + '_ {
        self.rows.iter().copied()
    }
}

impl PartialEq for SelectionVector {
    fn eq(&self, other: &Self) -> bool {
        self.rows == other.rows
    }
}

impl Eq for SelectionVector {}

impl FromIterator<RowId> for SelectionVector {
    fn from_iter<T: IntoIterator<Item = RowId>>(iter: T) -> Self {
        SelectionVector::from_rows(iter.into_iter().collect())
    }
}

impl From<Vec<RowId>> for SelectionVector {
    fn from(rows: Vec<RowId>) -> Self {
        SelectionVector::from_rows(rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut sv = SelectionVector::new();
        assert!(sv.is_empty());
        sv.push(3);
        sv.push(1);
        assert_eq!(sv.len(), 2);
        assert_eq!(sv.rows(), &[3, 1]);
    }

    #[test]
    fn sort_orders_rows() {
        let mut sv = SelectionVector::from_rows(vec![5, 1, 4]);
        sv.sort();
        assert_eq!(sv.rows(), &[1, 4, 5]);
        let sv2 = SelectionVector::from_rows(vec![9, 2]).sorted();
        assert_eq!(sv2.rows(), &[2, 9]);
    }

    #[test]
    fn sorted_flag_tracks_order() {
        assert!(SelectionVector::new().is_sorted());
        assert!(SelectionVector::from_rows(vec![1, 2, 2, 9]).is_sorted());
        assert!(!SelectionVector::from_rows(vec![2, 1]).is_sorted());
        let mut sv = SelectionVector::new();
        sv.push(1);
        sv.push(5);
        assert!(sv.is_sorted());
        sv.push(3);
        assert!(!sv.is_sorted());
        sv.sort();
        assert!(sv.is_sorted());
        // Pushing in order onto a sorted vector keeps the flag.
        sv.push(100);
        assert!(sv.is_sorted());
    }

    #[test]
    fn intersect_unsorted_inputs() {
        let mut a = SelectionVector::from_rows(vec![5, 1, 3, 7]);
        let mut b = SelectionVector::from_rows(vec![7, 2, 1]);
        let c = a.intersect(&mut b);
        assert_eq!(c.rows(), &[1, 7]);
        // Inputs are now sorted in place — the lazy sort happened once.
        assert!(a.is_sorted() && b.is_sorted());
        assert_eq!(a.rows(), &[1, 3, 5, 7]);
        // A second intersect merges directly off the sorted inputs.
        assert_eq!(a.intersect(&mut b).rows(), &[1, 7]);
    }

    #[test]
    fn intersect_with_empty_is_empty() {
        let mut a = SelectionVector::from_rows(vec![1, 2, 3]);
        let mut b = SelectionVector::new();
        assert!(a.intersect(&mut b).is_empty());
        assert!(b.intersect(&mut a).is_empty());
    }

    #[test]
    fn union_removes_duplicates() {
        let mut a = SelectionVector::from_rows(vec![3, 1]);
        let mut b = SelectionVector::from_rows(vec![2, 3]);
        let u = a.union(&mut b);
        assert_eq!(u.rows(), &[1, 2, 3]);
        assert!(u.is_sorted());
    }

    #[test]
    fn union_with_disjoint_tails() {
        let mut a = SelectionVector::from_rows(vec![1, 2]);
        let mut b = SelectionVector::from_rows(vec![8, 9, 10]);
        assert_eq!(a.union(&mut b).rows(), &[1, 2, 8, 9, 10]);
        assert_eq!(b.union(&mut a).rows(), &[1, 2, 8, 9, 10]);
    }

    #[test]
    fn equality_ignores_sortedness_bookkeeping() {
        let a = SelectionVector::from_sorted_rows(vec![1, 2, 3]);
        let mut b = SelectionVector::new();
        b.push(1);
        b.push(2);
        b.push(3);
        assert_eq!(a, b);
        assert_ne!(a, SelectionVector::from_rows(vec![3, 2, 1]));
    }

    #[test]
    fn from_iterator_and_into_rows_round_trip() {
        let sv: SelectionVector = vec![4u32, 2, 9].into_iter().collect();
        assert_eq!(sv.clone().into_rows(), vec![4, 2, 9]);
        let collected: Vec<RowId> = sv.iter().collect();
        assert_eq!(collected, vec![4, 2, 9]);
    }

    #[test]
    fn with_capacity_does_not_affect_contents() {
        let sv = SelectionVector::with_capacity(100);
        assert!(sv.is_empty());
    }
}
