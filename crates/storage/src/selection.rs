//! Selection vectors: the qualifying-row representation shared by all
//! access paths (scan, sorted index, cracker column).

use crate::RowId;

/// A list of qualifying row identifiers produced by a select operator.
///
/// Row ids are not required to be sorted — a cracking select returns rows in
/// physical (cracked) order — but [`SelectionVector::sort`] normalizes the
/// order so results from different access paths can be compared.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct SelectionVector {
    rows: Vec<RowId>,
}

impl SelectionVector {
    /// Creates an empty selection vector.
    #[must_use]
    pub fn new() -> Self {
        SelectionVector { rows: Vec::new() }
    }

    /// Creates an empty selection vector with pre-allocated capacity.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        SelectionVector {
            rows: Vec::with_capacity(capacity),
        }
    }

    /// Creates a selection vector from an existing row-id vector.
    #[must_use]
    pub fn from_rows(rows: Vec<RowId>) -> Self {
        SelectionVector { rows }
    }

    /// Appends a qualifying row id.
    #[inline]
    pub fn push(&mut self, row: RowId) {
        self.rows.push(row);
    }

    /// Number of qualifying rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.rows.len()
    }

    /// Whether no rows qualify.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// The qualifying row ids.
    #[must_use]
    pub fn rows(&self) -> &[RowId] {
        &self.rows
    }

    /// Consumes the selection vector and returns the underlying row ids.
    #[must_use]
    pub fn into_rows(self) -> Vec<RowId> {
        self.rows
    }

    /// Sorts the row ids in ascending order (for comparisons across paths).
    pub fn sort(&mut self) {
        self.rows.sort_unstable();
    }

    /// Returns a sorted copy of this selection vector.
    #[must_use]
    pub fn sorted(&self) -> Self {
        let mut copy = self.clone();
        copy.sort();
        copy
    }

    /// Intersects two selection vectors (both are sorted internally first).
    ///
    /// Used for conjunctive multi-attribute predicates.
    #[must_use]
    pub fn intersect(&self, other: &SelectionVector) -> SelectionVector {
        let mut a = self.rows.clone();
        let mut b = other.rows.clone();
        a.sort_unstable();
        b.sort_unstable();
        let mut out = Vec::with_capacity(a.len().min(b.len()));
        let (mut i, mut j) = (0usize, 0usize);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    out.push(a[i]);
                    i += 1;
                    j += 1;
                }
            }
        }
        SelectionVector::from_rows(out)
    }

    /// Unions two selection vectors, removing duplicates.
    #[must_use]
    pub fn union(&self, other: &SelectionVector) -> SelectionVector {
        let mut all = self.rows.clone();
        all.extend_from_slice(&other.rows);
        all.sort_unstable();
        all.dedup();
        SelectionVector::from_rows(all)
    }

    /// Iterates over the qualifying row ids.
    pub fn iter(&self) -> impl Iterator<Item = RowId> + '_ {
        self.rows.iter().copied()
    }
}

impl FromIterator<RowId> for SelectionVector {
    fn from_iter<T: IntoIterator<Item = RowId>>(iter: T) -> Self {
        SelectionVector {
            rows: iter.into_iter().collect(),
        }
    }
}

impl From<Vec<RowId>> for SelectionVector {
    fn from(rows: Vec<RowId>) -> Self {
        SelectionVector { rows }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn push_and_len() {
        let mut sv = SelectionVector::new();
        assert!(sv.is_empty());
        sv.push(3);
        sv.push(1);
        assert_eq!(sv.len(), 2);
        assert_eq!(sv.rows(), &[3, 1]);
    }

    #[test]
    fn sort_orders_rows() {
        let mut sv = SelectionVector::from_rows(vec![5, 1, 4]);
        sv.sort();
        assert_eq!(sv.rows(), &[1, 4, 5]);
        let sv2 = SelectionVector::from_rows(vec![9, 2]).sorted();
        assert_eq!(sv2.rows(), &[2, 9]);
    }

    #[test]
    fn intersect_unsorted_inputs() {
        let a = SelectionVector::from_rows(vec![5, 1, 3, 7]);
        let b = SelectionVector::from_rows(vec![7, 2, 1]);
        let c = a.intersect(&b);
        assert_eq!(c.rows(), &[1, 7]);
    }

    #[test]
    fn intersect_with_empty_is_empty() {
        let a = SelectionVector::from_rows(vec![1, 2, 3]);
        let b = SelectionVector::new();
        assert!(a.intersect(&b).is_empty());
        assert!(b.intersect(&a).is_empty());
    }

    #[test]
    fn union_removes_duplicates() {
        let a = SelectionVector::from_rows(vec![3, 1]);
        let b = SelectionVector::from_rows(vec![2, 3]);
        let u = a.union(&b);
        assert_eq!(u.rows(), &[1, 2, 3]);
    }

    #[test]
    fn from_iterator_and_into_rows_round_trip() {
        let sv: SelectionVector = vec![4u32, 2, 9].into_iter().collect();
        assert_eq!(sv.clone().into_rows(), vec![4, 2, 9]);
        let collected: Vec<RowId> = sv.iter().collect();
        assert_eq!(collected, vec![4, 2, 9]);
    }

    #[test]
    fn with_capacity_does_not_affect_contents() {
        let sv = SelectionVector::with_capacity(100);
        assert!(sv.is_empty());
    }
}
