//! Tables: named, equal-length collections of columns.

use crate::column::Column;
use crate::{Result, StorageError, Value};

/// A relational table stored column-wise.
///
/// All columns of a table have the same number of rows; row `i` of every
/// column together forms tuple `i`. This mirrors the paper's experimental
/// table `R(A1..A10)`.
#[derive(Debug, Clone)]
pub struct Table {
    name: String,
    columns: Vec<Column>,
}

impl Table {
    /// Creates an empty table.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Table {
            name: name.into(),
            columns: Vec::new(),
        }
    }

    /// The table's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows (0 if the table has no columns).
    #[must_use]
    pub fn row_count(&self) -> usize {
        self.columns.first().map_or(0, Column::len)
    }

    /// Number of columns.
    #[must_use]
    pub fn column_count(&self) -> usize {
        self.columns.len()
    }

    /// Whether the table has no columns.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.columns.is_empty()
    }

    /// Adds a column with existing data.
    ///
    /// The column must have the same length as the existing columns (unless
    /// it is the first column), and its name must be unique in the table.
    pub fn add_column(&mut self, column: Column) -> Result<usize> {
        if self.column(column.name()).is_some() {
            return Err(StorageError::ColumnAlreadyExists(column.name().to_string()));
        }
        if !self.columns.is_empty() && column.len() != self.row_count() {
            return Err(StorageError::ColumnLengthMismatch {
                expected: self.row_count(),
                actual: column.len(),
            });
        }
        self.columns.push(column);
        Ok(self.columns.len() - 1)
    }

    /// Convenience: adds a column built from a value vector.
    pub fn add_column_from_values(
        &mut self,
        name: impl Into<String>,
        values: Vec<Value>,
    ) -> Result<usize> {
        self.add_column(Column::from_values(name, values))
    }

    /// Looks up a column by name.
    #[must_use]
    pub fn column(&self, name: &str) -> Option<&Column> {
        self.columns.iter().find(|c| c.name() == name)
    }

    /// Looks up a column mutably by name.
    pub fn column_mut(&mut self, name: &str) -> Option<&mut Column> {
        self.columns.iter_mut().find(|c| c.name() == name)
    }

    /// Looks up a column by positional index.
    #[must_use]
    pub fn column_at(&self, idx: usize) -> Option<&Column> {
        self.columns.get(idx)
    }

    /// Mutable access to a column by positional index — the engine's
    /// update path addresses columns by [`crate::ColumnId`] position.
    pub fn column_at_mut(&mut self, idx: usize) -> Option<&mut Column> {
        self.columns.get_mut(idx)
    }

    /// Index of a column by name.
    #[must_use]
    pub fn column_index(&self, name: &str) -> Option<usize> {
        self.columns.iter().position(|c| c.name() == name)
    }

    /// Looks up a column by name, returning an error if it does not exist.
    pub fn try_column(&self, name: &str) -> Result<&Column> {
        self.column(name)
            .ok_or_else(|| StorageError::ColumnNotFound(name.to_string()))
    }

    /// Iterates over all columns.
    pub fn columns(&self) -> impl Iterator<Item = &Column> {
        self.columns.iter()
    }

    /// Column names, in positional order.
    #[must_use]
    pub fn column_names(&self) -> Vec<String> {
        self.columns.iter().map(|c| c.name().to_string()).collect()
    }

    /// Appends a full row (one value per column, in positional order).
    pub fn append_row(&mut self, row: &[Value]) -> Result<()> {
        if row.len() != self.columns.len() {
            return Err(StorageError::ColumnLengthMismatch {
                expected: self.columns.len(),
                actual: row.len(),
            });
        }
        for (col, &v) in self.columns.iter_mut().zip(row.iter()) {
            col.append(v);
        }
        Ok(())
    }

    /// Approximate heap footprint of all columns in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.columns.iter().map(Column::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_table() -> Table {
        let mut t = Table::new("r");
        t.add_column_from_values("a", vec![1, 2, 3]).unwrap();
        t.add_column_from_values("b", vec![10, 20, 30]).unwrap();
        t
    }

    #[test]
    fn new_table_is_empty() {
        let t = Table::new("r");
        assert_eq!(t.name(), "r");
        assert!(t.is_empty());
        assert_eq!(t.row_count(), 0);
        assert_eq!(t.column_count(), 0);
    }

    #[test]
    fn add_column_and_lookup() {
        let t = sample_table();
        assert_eq!(t.column_count(), 2);
        assert_eq!(t.row_count(), 3);
        assert!(t.column("a").is_some());
        assert!(t.column("z").is_none());
        assert_eq!(t.column_index("b"), Some(1));
        assert_eq!(t.column_at(0).unwrap().name(), "a");
        assert_eq!(t.column_names(), vec!["a".to_string(), "b".to_string()]);
        assert!(t.try_column("a").is_ok());
        assert_eq!(
            t.try_column("nope").unwrap_err(),
            StorageError::ColumnNotFound("nope".into())
        );
    }

    #[test]
    fn duplicate_column_name_rejected() {
        let mut t = sample_table();
        let err = t.add_column_from_values("a", vec![0, 0, 0]).unwrap_err();
        assert_eq!(err, StorageError::ColumnAlreadyExists("a".into()));
    }

    #[test]
    fn mismatched_column_length_rejected() {
        let mut t = sample_table();
        let err = t.add_column_from_values("c", vec![1, 2]).unwrap_err();
        assert_eq!(
            err,
            StorageError::ColumnLengthMismatch {
                expected: 3,
                actual: 2
            }
        );
    }

    #[test]
    fn append_row_extends_all_columns() {
        let mut t = sample_table();
        t.append_row(&[4, 40]).unwrap();
        assert_eq!(t.row_count(), 4);
        assert_eq!(t.column("a").unwrap().values(), &[1, 2, 3, 4]);
        assert_eq!(t.column("b").unwrap().values(), &[10, 20, 30, 40]);
        assert!(t.append_row(&[1]).is_err());
    }

    #[test]
    fn column_mut_allows_in_place_edits() {
        let mut t = sample_table();
        t.column_mut("a").unwrap().append(99);
        // Note: this desynchronizes lengths; append_row is the safe path.
        assert_eq!(t.column("a").unwrap().len(), 4);
    }

    #[test]
    fn memory_accounting_sums_columns() {
        let t = sample_table();
        assert_eq!(t.memory_bytes(), 6 * std::mem::size_of::<Value>());
    }
}
