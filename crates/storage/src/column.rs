//! Dense, typed columns — the unit of storage and of bulk processing.

use crate::selection::SelectionVector;
use crate::stats::ColumnStats;
use crate::{Result, RowId, StorageError, Value};

/// A dense `i64` column.
///
/// Columns are append-only at this layer: deletes and in-place updates are
/// handled by the [`crate::update::UpdateBuffer`] (and merged lazily by the
/// cracking layer), mirroring the paper's column-store substrate where base
/// columns stay untouched and auxiliary copies are reorganized.
#[derive(Debug, Clone)]
pub struct Column {
    name: String,
    values: Vec<Value>,
    stats: ColumnStats,
    /// Whether `stats.histogram` reflects the current contents.
    stats_fresh: bool,
}

impl Column {
    /// Creates an empty column with the given name.
    #[must_use]
    pub fn new(name: impl Into<String>) -> Self {
        Column {
            name: name.into(),
            values: Vec::new(),
            stats: ColumnStats::new(),
            stats_fresh: true,
        }
    }

    /// Creates a column from existing values, building full statistics.
    #[must_use]
    pub fn from_values(name: impl Into<String>, values: Vec<Value>) -> Self {
        let stats = ColumnStats::from_values(&values);
        Column {
            name: name.into(),
            values,
            stats,
            stats_fresh: true,
        }
    }

    /// The column's name.
    #[must_use]
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Number of rows.
    #[must_use]
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Whether the column has no rows.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// The raw value slice (the "BAT tail" in MonetDB terms).
    #[must_use]
    pub fn values(&self) -> &[Value] {
        &self.values
    }

    /// Returns the value at `row`, or an error if out of bounds.
    pub fn get(&self, row: RowId) -> Result<Value> {
        self.values
            .get(row as usize)
            .copied()
            .ok_or(StorageError::RowOutOfBounds {
                row: u64::from(row),
                len: self.values.len(),
            })
    }

    /// Appends a single value.
    pub fn append(&mut self, v: Value) {
        self.values.push(v);
        self.stats.update_scalar(v);
        self.stats_fresh = false;
    }

    /// Appends many values.
    pub fn append_many(&mut self, vs: &[Value]) {
        self.values.reserve(vs.len());
        for &v in vs {
            self.values.push(v);
            self.stats.update_scalar(v);
        }
        self.stats_fresh = false;
    }

    /// Removes the first occurrence of `v`, returning whether it was
    /// found. This is the base-image side of the engine's delete path:
    /// the cracking layer ripples the value out of its auxiliary copy
    /// while this keeps the WAL-complete data image in sync. Statistics
    /// are rebuilt from the surviving values.
    pub fn remove_first(&mut self, v: Value) -> bool {
        let Some(pos) = self.values.iter().position(|&x| x == v) else {
            return false;
        };
        self.values.remove(pos);
        self.stats = ColumnStats::from_values(&self.values);
        self.stats_fresh = true;
        true
    }

    /// The column statistics (histogram may be stale after appends; call
    /// [`Column::refresh_stats`] to rebuild it).
    #[must_use]
    pub fn stats(&self) -> &ColumnStats {
        &self.stats
    }

    /// Whether the histogram reflects the current column contents.
    #[must_use]
    pub fn stats_fresh(&self) -> bool {
        self.stats_fresh
    }

    /// Rebuilds the histogram and distinct estimate from the current data.
    pub fn refresh_stats(&mut self) {
        self.stats.rebuild_histogram(&self.values);
        self.stats_fresh = true;
    }

    /// Counts rows with values in the half-open range `[lo, hi)` by scanning.
    #[must_use]
    pub fn scan_count(&self, lo: Value, hi: Value) -> u64 {
        crate::scan::scan_count(&self.values, lo, hi)
    }

    /// Returns the row ids with values in `[lo, hi)` by scanning.
    #[must_use]
    pub fn scan_select(&self, lo: Value, hi: Value) -> SelectionVector {
        crate::scan::scan_positions(&self.values, lo, hi)
    }

    /// Materializes the values at the given rows (projection).
    pub fn gather(&self, rows: &SelectionVector) -> Result<Vec<Value>> {
        let mut out = Vec::with_capacity(rows.len());
        for row in rows.iter() {
            out.push(self.get(row)?);
        }
        Ok(out)
    }

    /// Approximate heap footprint of the column in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.values.len() * std::mem::size_of::<Value>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_column_is_empty() {
        let c = Column::new("a");
        assert_eq!(c.name(), "a");
        assert!(c.is_empty());
        assert_eq!(c.len(), 0);
        assert_eq!(c.memory_bytes(), 0);
    }

    #[test]
    fn from_values_builds_stats() {
        let c = Column::from_values("a", vec![3, 1, 2]);
        assert_eq!(c.len(), 3);
        assert_eq!(c.stats().min, Some(1));
        assert_eq!(c.stats().max, Some(3));
        assert!(c.stats_fresh());
    }

    #[test]
    fn append_updates_scalar_stats_and_marks_stale() {
        let mut c = Column::from_values("a", vec![5]);
        c.append(10);
        c.append_many(&[1, 7]);
        assert_eq!(c.len(), 4);
        assert_eq!(c.stats().min, Some(1));
        assert_eq!(c.stats().max, Some(10));
        assert!(!c.stats_fresh());
        c.refresh_stats();
        assert!(c.stats_fresh());
        assert!(c.stats().histogram.is_some());
    }

    #[test]
    fn get_in_and_out_of_bounds() {
        let c = Column::from_values("a", vec![10, 20, 30]);
        assert_eq!(c.get(1).unwrap(), 20);
        assert_eq!(
            c.get(3),
            Err(StorageError::RowOutOfBounds { row: 3, len: 3 })
        );
    }

    #[test]
    fn scan_count_and_select_agree() {
        let c = Column::from_values("a", vec![5, 1, 9, 3, 7, 3]);
        assert_eq!(c.scan_count(3, 8), 4);
        let sel = c.scan_select(3, 8);
        assert_eq!(sel.len(), 4);
        let mut rows = sel.into_rows();
        rows.sort_unstable();
        assert_eq!(rows, vec![0, 3, 4, 5]);
    }

    #[test]
    fn gather_projects_values() {
        let c = Column::from_values("a", vec![10, 20, 30, 40]);
        let sel = SelectionVector::from_rows(vec![3, 0]);
        assert_eq!(c.gather(&sel).unwrap(), vec![40, 10]);
        let bad = SelectionVector::from_rows(vec![9]);
        assert!(c.gather(&bad).is_err());
    }

    #[test]
    fn remove_first_removes_one_occurrence_and_rebuilds_stats() {
        let mut c = Column::from_values("a", vec![5, 9, 5, 1]);
        assert!(c.remove_first(5));
        assert_eq!(c.values(), &[9, 5, 1]);
        assert!(c.remove_first(9));
        assert_eq!(c.stats().min, Some(1));
        assert_eq!(c.stats().max, Some(5));
        assert!(c.stats_fresh());
        assert!(!c.remove_first(42));
        assert_eq!(c.len(), 2);
    }

    #[test]
    fn empty_range_scan_returns_nothing() {
        let c = Column::from_values("a", vec![1, 2, 3]);
        assert_eq!(c.scan_count(5, 5), 0);
        assert!(c.scan_select(3, 2).is_empty());
    }
}
