//! # holistic-storage
//!
//! Main-memory column-store storage engine used as the substrate of the
//! holistic indexing kernel.
//!
//! The design follows the MonetDB model used by the paper
//! *Holistic Indexing: Offline, Online and Adaptive Indexing in the Same
//! Kernel* (SIGMOD 2012 PhD Symposium): data lives in dense, typed,
//! append-only arrays (one per attribute), queries are bulk-processed a
//! column at a time, and every attribute of every table can be scanned with
//! a tight predicate loop.
//!
//! The crate provides:
//!
//! * [`Column`] — a dense `i64` column with per-column [`ColumnStats`]
//!   (min/max, equi-width histogram, distinct estimate).
//! * [`Table`] and [`Catalog`] — named collections of columns, plus a
//!   catalog of tables addressed by [`TableId`]/[`ColumnId`].
//! * [`scan`] — the bulk scan operators (count, positions, materialize,
//!   aggregate) that every non-indexed access path bottoms out in.
//! * [`PrefixSums`] — exclusive prefix-sum arrays, the zero-read aggregate
//!   structure shared by the cracking layer's sorted pieces and the offline
//!   layer's sorted indexes.
//! * [`SelectionVector`] — the qualifying-row representation shared by the
//!   scan and index access paths.
//! * [`UpdateBuffer`] — pending insert/delete buffers used by the cracking
//!   layer's update support.
//!
//! Values are `i64`, matching the paper's experimental setup (integer
//! attributes drawn uniformly from `[1, 10^8]`). Row identifiers are `u32`
//! (a single column of up to ~4 billion rows), which keeps auxiliary
//! structures compact.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod catalog;
pub mod column;
pub mod error;
pub mod histogram;
pub mod persist;
pub mod prefix;
pub mod scan;
pub mod selection;
pub mod stats;
pub mod table;
pub mod update;

pub use catalog::{Catalog, ColumnId, TableId};
pub use column::Column;
pub use error::StorageError;
pub use histogram::EquiWidthHistogram;
pub use prefix::PrefixSums;
pub use scan::{
    prefix_sums, scan_count, scan_full, scan_materialize, scan_positions, scan_sum, ScanResult,
};
pub use selection::SelectionVector;
pub use stats::ColumnStats;
pub use table::Table;
pub use update::UpdateBuffer;

/// The value type stored in every column.
///
/// The paper's experiments use integer attributes; `i64` covers that and all
/// realistic surrogate-key / timestamp workloads without loss of generality.
pub type Value = i64;

/// Row identifier within a table.
///
/// Logically a `{shard, offset}` pair in the bundlebase block layout, but
/// stored as a single dense `u32`: with a fixed shard extent `E` the shard
/// id is `rowid / E` and the offset within the shard is `rowid % E`
/// ([`shard_of_row`] / [`row_offset_in_shard`]). Keeping the scalar
/// representation means selection vectors, row-id payload arrays and the
/// persistence format are identical whether a column is sharded or not —
/// only the cracking layer's fan-out interprets the two components.
pub type RowId = u32;

/// The shard a row falls into under fixed shard extent `extent`
/// (the block id of the `{block, offset}` interpretation of [`RowId`]).
#[must_use]
pub fn shard_of_row(rowid: RowId, extent: usize) -> usize {
    (rowid as usize).checked_div(extent).unwrap_or(0)
}

/// The offset of a row within its shard under fixed shard extent `extent`.
#[must_use]
pub fn row_offset_in_shard(rowid: RowId, extent: usize) -> usize {
    if extent == 0 {
        rowid as usize
    } else {
        rowid as usize % extent
    }
}

/// The first row id of shard `shard` under fixed shard extent `extent`.
#[must_use]
pub fn first_row_of_shard(shard: usize, extent: usize) -> RowId {
    (shard * extent) as RowId
}

/// Convenience result type for storage operations.
pub type Result<T> = std::result::Result<T, StorageError>;
