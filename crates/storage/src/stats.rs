//! Per-column statistics maintained by the storage engine.
//!
//! Statistics are the raw material of all three automated indexing
//! approaches the paper unifies: the offline advisor consumes them to cost
//! hypothetical indexes, the online tuner feeds observed predicates back
//! into them, and the holistic ranking model combines them with cracking
//! progress to decide where the next idle refinement action should go.

use crate::histogram::{EquiWidthHistogram, DEFAULT_BUCKETS};
use crate::Value;

/// Summary statistics for a single column.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ColumnStats {
    /// Number of values in the column.
    pub count: u64,
    /// Minimum value, if the column is non-empty.
    pub min: Option<Value>,
    /// Maximum value, if the column is non-empty.
    pub max: Option<Value>,
    /// Sum of all values (wrapping is not expected for realistic domains).
    pub sum: i128,
    /// Equi-width histogram over the observed domain, if built.
    pub histogram: Option<EquiWidthHistogram>,
    /// Crude distinct-value estimate (capped sample-based).
    pub distinct_estimate: u64,
}

impl ColumnStats {
    /// Creates empty statistics.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Builds full statistics (including a histogram) from a slice of values.
    #[must_use]
    pub fn from_values(values: &[Value]) -> Self {
        let mut stats = ColumnStats::new();
        for &v in values {
            stats.update_scalar(v);
        }
        if !values.is_empty() {
            stats.histogram = Some(EquiWidthHistogram::from_values(values, DEFAULT_BUCKETS));
            stats.distinct_estimate = estimate_distinct(values);
        }
        stats
    }

    /// Updates min/max/count/sum for a newly appended value.
    ///
    /// The histogram is *not* updated here because its domain is fixed at
    /// build time; call [`ColumnStats::rebuild_histogram`] periodically if
    /// the column is append-heavy.
    pub fn update_scalar(&mut self, v: Value) {
        self.count += 1;
        self.sum += i128::from(v);
        self.min = Some(self.min.map_or(v, |m| m.min(v)));
        self.max = Some(self.max.map_or(v, |m| m.max(v)));
    }

    /// Rebuilds the histogram and distinct estimate from the full value slice.
    pub fn rebuild_histogram(&mut self, values: &[Value]) {
        if values.is_empty() {
            self.histogram = None;
            self.distinct_estimate = 0;
        } else {
            self.histogram = Some(EquiWidthHistogram::from_values(values, DEFAULT_BUCKETS));
            self.distinct_estimate = estimate_distinct(values);
        }
    }

    /// Mean value of the column, if non-empty.
    #[must_use]
    pub fn mean(&self) -> Option<f64> {
        if self.count == 0 {
            None
        } else {
            Some(self.sum as f64 / self.count as f64)
        }
    }

    /// Estimates the selectivity of the half-open range `[lo, hi)`.
    ///
    /// Uses the histogram when present; otherwise falls back to a uniform
    /// assumption over `[min, max]`.
    #[must_use]
    pub fn estimate_selectivity(&self, lo: Value, hi: Value) -> f64 {
        if hi <= lo || self.count == 0 {
            return 0.0;
        }
        if let Some(hist) = &self.histogram {
            return hist.estimate_selectivity(lo, hi);
        }
        match (self.min, self.max) {
            (Some(min), Some(max)) if max > min => {
                let span = (max - min) as f64 + 1.0;
                let lo = lo.max(min) as f64;
                let hi = (hi.min(max + 1)) as f64;
                ((hi - lo).max(0.0) / span).clamp(0.0, 1.0)
            }
            (Some(min), Some(_))
                // Constant column: selectivity is 1 if the constant is covered.
                if lo <= min && min < hi => {
                    1.0
                }
            _ => 0.0,
        }
    }
}

/// Estimates the number of distinct values using a bounded sample.
///
/// For the synthetic workloads in the paper (uniform integers over a large
/// domain) the exact count is not important; we only need a rough idea of
/// whether an attribute is low- or high-cardinality.
fn estimate_distinct(values: &[Value]) -> u64 {
    const SAMPLE: usize = 4096;
    if values.len() <= SAMPLE {
        let mut sorted: Vec<Value> = values.to_vec();
        sorted.sort_unstable();
        sorted.dedup();
        return sorted.len() as u64;
    }
    // Sample every k-th element and scale by the observed duplication ratio.
    let step = values.len() / SAMPLE;
    let mut sample: Vec<Value> = values.iter().step_by(step).copied().collect();
    let sample_len = sample.len();
    sample.sort_unstable();
    sample.dedup();
    let ratio = sample.len() as f64 / sample_len as f64;
    ((values.len() as f64) * ratio).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_stats_defaults() {
        let s = ColumnStats::new();
        assert_eq!(s.count, 0);
        assert_eq!(s.min, None);
        assert_eq!(s.max, None);
        assert_eq!(s.mean(), None);
        assert_eq!(s.estimate_selectivity(0, 10), 0.0);
    }

    #[test]
    fn scalar_updates_track_min_max_sum() {
        let mut s = ColumnStats::new();
        for v in [5, -3, 10, 0] {
            s.update_scalar(v);
        }
        assert_eq!(s.count, 4);
        assert_eq!(s.min, Some(-3));
        assert_eq!(s.max, Some(10));
        assert_eq!(s.sum, 12);
        assert_eq!(s.mean(), Some(3.0));
    }

    #[test]
    fn from_values_builds_histogram() {
        let values: Vec<Value> = (0..1000).collect();
        let s = ColumnStats::from_values(&values);
        assert!(s.histogram.is_some());
        assert_eq!(s.count, 1000);
        let sel = s.estimate_selectivity(0, 100);
        assert!((sel - 0.1).abs() < 0.02, "sel={sel}");
    }

    #[test]
    fn selectivity_without_histogram_uses_uniform_assumption() {
        let mut s = ColumnStats::new();
        for v in 0..100 {
            s.update_scalar(v);
        }
        let sel = s.estimate_selectivity(0, 50);
        assert!((sel - 0.5).abs() < 0.02, "sel={sel}");
    }

    #[test]
    fn constant_column_selectivity() {
        let mut s = ColumnStats::new();
        for _ in 0..10 {
            s.update_scalar(42);
        }
        assert_eq!(s.estimate_selectivity(42, 43), 1.0);
        assert_eq!(s.estimate_selectivity(0, 42), 0.0);
    }

    #[test]
    fn distinct_estimate_exact_for_small_inputs() {
        let values = vec![1, 1, 2, 3, 3, 3, 4];
        let s = ColumnStats::from_values(&values);
        assert_eq!(s.distinct_estimate, 4);
    }

    #[test]
    fn distinct_estimate_reasonable_for_large_inputs() {
        let values: Vec<Value> = (0..100_000).map(|i| i % 100).collect();
        let s = ColumnStats::from_values(&values);
        // True distinct is 100; estimate should not be wildly off (sampling
        // every k-th element of a cyclic pattern can alias, so allow slack).
        assert!(
            s.distinct_estimate >= 50,
            "estimate={}",
            s.distinct_estimate
        );
    }

    #[test]
    fn rebuild_histogram_clears_on_empty() {
        let mut s = ColumnStats::from_values(&[1, 2, 3]);
        assert!(s.histogram.is_some());
        s.rebuild_histogram(&[]);
        assert!(s.histogram.is_none());
        assert_eq!(s.distinct_estimate, 0);
    }
}
