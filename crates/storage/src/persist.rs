//! Serialization of storage types for snapshots and WAL records.
//!
//! The storage layer owns the byte layout of its own types — columns and
//! prefix-sum arrays — on top of the bounds-checked codec from
//! `holistic-persist`. Decoding rebuilds derived state (column statistics)
//! from the data rather than trusting serialized copies, so a decoded
//! column is internally consistent by construction.

use holistic_persist::{Decoder, Encoder, PersistError};

use crate::column::Column;
use crate::prefix::PrefixSums;

/// Encodes a column (name + values) into `e`. Statistics are derived
/// state and are rebuilt on decode.
pub fn encode_column(e: &mut Encoder, column: &Column) {
    e.put_str(column.name());
    e.put_i64_slice(column.values());
}

/// Decodes a column written by [`encode_column`], rebuilding statistics.
pub fn decode_column(d: &mut Decoder<'_>) -> Result<Column, PersistError> {
    let name = d.take_str()?;
    let values = d.take_i64_vec()?;
    Ok(Column::from_values(name, values))
}

/// Encodes a prefix-sum array (base position + raw entries) into `e`.
pub fn encode_prefix_sums(e: &mut Encoder, prefix: &PrefixSums) {
    e.put_usize(prefix.base());
    e.put_i128_slice(prefix.sums());
}

/// Decodes a prefix-sum array written by [`encode_prefix_sums`].
pub fn decode_prefix_sums(d: &mut Decoder<'_>) -> Result<PrefixSums, PersistError> {
    let base = d.take_usize()?;
    let sums = d.take_i128_vec()?;
    PrefixSums::from_parts(base, sums)
        .ok_or_else(|| PersistError::Corrupt("invalid prefix-sum entries".into()))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn column_round_trip_rebuilds_stats() {
        let col = Column::from_values("qty", vec![5, -1, 9, 9, 3]);
        let mut e = Encoder::new();
        encode_column(&mut e, &col);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = decode_column(&mut d).unwrap();
        d.finish().unwrap();
        assert_eq!(back.name(), "qty");
        assert_eq!(back.values(), col.values());
        assert_eq!(back.stats().min, Some(-1));
        assert_eq!(back.stats().max, Some(9));
        assert!(back.stats_fresh());
    }

    #[test]
    fn prefix_sums_round_trip() {
        let p = PrefixSums::build(17, &[4, -2, 10]);
        let mut e = Encoder::new();
        encode_prefix_sums(&mut e, &p);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        let back = decode_prefix_sums(&mut d).unwrap();
        assert_eq!(back, p);
    }

    #[test]
    fn corrupt_prefix_sums_are_rejected() {
        // A prefix array must start at 0; feed one that does not.
        let mut e = Encoder::new();
        e.put_usize(0);
        e.put_i128_slice(&[5, 9]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(decode_prefix_sums(&mut d).is_err());
        // And one with no entries at all.
        let mut e = Encoder::new();
        e.put_usize(0);
        e.put_i128_slice(&[]);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(decode_prefix_sums(&mut d).is_err());
    }

    #[test]
    fn truncated_column_bytes_error_cleanly() {
        let col = Column::from_values("a", vec![1, 2, 3]);
        let mut e = Encoder::new();
        encode_column(&mut e, &col);
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..cut]);
            assert!(decode_column(&mut d).is_err(), "cut at {cut}");
        }
    }
}
