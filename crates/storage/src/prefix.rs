//! Prefix-sum arrays: the zero-read aggregate structure for sorted data.
//!
//! A [`PrefixSums`] array over a value slice turns any positional range
//! aggregate into one subtraction: `sum(values[a..b]) = prefix[b] -
//! prefix[a]`. On *sorted* data that composes with binary search into the
//! zero-scan answer path for range count/sum queries — two
//! `partition_point`s to find the positions, one subtraction for the sum —
//! which is exactly what the cracking layer's sorted pieces and the offline
//! layer's [`SortedIndex`](https://en.wikipedia.org/wiki/Sorted_array)
//! structures need. The build kernel lives in [`crate::scan::prefix_sums`],
//! next to the masked-sum kernel it replaces on those paths.
//!
//! Positions are *absolute* (the `base` offset records where the covered
//! slice starts), so one shared array can serve every sub-piece split out of
//! a sorted region without re-basing: the cracking layer hands an
//! `Arc<PrefixSums>` down to all descendants of a sorted piece.

use std::ops::Range;

use crate::scan::prefix_sums;
use crate::Value;

/// An exclusive prefix-sum array over a value slice starting at an absolute
/// position `base`.
///
/// Entry `i` holds the exact sum of the first `i` covered values, so the sum
/// of absolute positions `[a, b)` is `sums[b - base] - sums[a - base]`. Sums
/// are `i128`, exact over the full `i64` value domain at any length.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PrefixSums {
    base: usize,
    sums: Vec<i128>,
}

impl PrefixSums {
    /// Builds the prefix sums of `values`, covering absolute positions
    /// `[base, base + values.len())`.
    #[must_use]
    pub fn build(base: usize, values: &[Value]) -> Self {
        PrefixSums {
            base,
            sums: prefix_sums(values),
        }
    }

    /// Reassembles a prefix-sum array from its serialized parts: the base
    /// position and the raw exclusive-prefix entries. Returns `None` when
    /// the entries cannot be a valid exclusive prefix array (empty, or not
    /// starting at zero) — decoding corrupted state must fail, not panic.
    #[must_use]
    pub fn from_parts(base: usize, sums: Vec<i128>) -> Option<Self> {
        if sums.first() != Some(&0) {
            return None;
        }
        Some(PrefixSums { base, sums })
    }

    /// The raw exclusive-prefix entries (`value_len() + 1` of them), for
    /// serialization.
    #[must_use]
    pub fn sums(&self) -> &[i128] {
        &self.sums
    }

    /// First absolute position covered.
    #[must_use]
    pub fn base(&self) -> usize {
        self.base
    }

    /// One past the last absolute position covered.
    #[must_use]
    pub fn end(&self) -> usize {
        self.base + self.value_len()
    }

    /// Number of values covered.
    #[must_use]
    pub fn value_len(&self) -> usize {
        self.sums.len() - 1
    }

    /// Whether no values are covered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.value_len() == 0
    }

    /// Whether the absolute position range lies within the covered extent.
    #[must_use]
    pub fn covers(&self, range: &Range<usize>) -> bool {
        range.start >= self.base && range.end <= self.end() && range.start <= range.end
    }

    /// The prefix value at absolute position `pos`: the sum of the covered
    /// values in `[base, pos)`.
    ///
    /// # Panics
    ///
    /// Panics if `pos` lies outside `[base, end]`.
    #[must_use]
    pub fn at(&self, pos: usize) -> i128 {
        self.sums[pos - self.base]
    }

    /// The exact sum of the values at absolute positions `range` — one
    /// subtraction, zero value reads.
    ///
    /// # Panics
    ///
    /// Panics if the range is not covered (see [`PrefixSums::covers`]).
    #[must_use]
    pub fn sum_range(&self, range: Range<usize>) -> i128 {
        if range.end <= range.start {
            return 0;
        }
        self.at(range.end) - self.at(range.start)
    }

    /// The sum of every covered value.
    #[must_use]
    pub fn total(&self) -> i128 {
        self.sums[self.sums.len() - 1]
    }

    /// A patched copy for an insertion: `piece` is the covered absolute
    /// range *before* the insert, `off` the relative offset at which value
    /// `v` was inserted. The result is re-based to `piece.start` and covers
    /// one more value — the entries up to `off` are copied, the suffix is
    /// shifted by one slot and raised by `v`.
    ///
    /// This is how the cracking layer's ripple-insert keeps a sorted
    /// piece's prefix array live instead of discarding it: the patch reads
    /// only the old array, never the data.
    ///
    /// # Panics
    ///
    /// Panics if `piece` is not covered or `off > piece.len()`.
    #[must_use]
    pub fn patch_insert(&self, piece: Range<usize>, off: usize, v: Value) -> PrefixSums {
        assert!(self.covers(&piece), "patched piece must be covered");
        let n = piece.end - piece.start;
        assert!(off <= n, "insert offset outside the piece");
        let rebase = self.at(piece.start);
        let mut sums = Vec::with_capacity(n + 2);
        for k in 0..=off {
            sums.push(self.at(piece.start + k) - rebase);
        }
        for k in off..=n {
            sums.push(self.at(piece.start + k) - rebase + i128::from(v));
        }
        PrefixSums {
            base: piece.start,
            sums,
        }
    }

    /// A patched copy for a removal: `piece` is the covered absolute range
    /// *before* the delete, `off` the relative offset whose value was
    /// removed. The result is re-based to `piece.start` and covers one
    /// value fewer — the suffix entries are shifted down and lowered by the
    /// removed value.
    ///
    /// # Panics
    ///
    /// Panics if `piece` is not covered or `off >= piece.len()`.
    #[must_use]
    pub fn patch_remove(&self, piece: Range<usize>, off: usize) -> PrefixSums {
        assert!(self.covers(&piece), "patched piece must be covered");
        let n = piece.end - piece.start;
        assert!(off < n, "remove offset outside the piece");
        let rebase = self.at(piece.start);
        let removed = self.sum_range(piece.start + off..piece.start + off + 1);
        let mut sums = Vec::with_capacity(n);
        for k in 0..=off {
            sums.push(self.at(piece.start + k) - rebase);
        }
        for k in off + 1..n {
            sums.push(self.at(piece.start + k + 1) - rebase - removed);
        }
        PrefixSums {
            base: piece.start,
            sums,
        }
    }

    /// Approximate heap footprint in bytes.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.sums.len() * std::mem::size_of::<i128>()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn build_and_query_ranges() {
        let values = [5, -3, 7, 0, 10];
        let p = PrefixSums::build(10, &values);
        assert_eq!(p.base(), 10);
        assert_eq!(p.end(), 15);
        assert_eq!(p.value_len(), 5);
        assert!(!p.is_empty());
        assert_eq!(p.total(), 19);
        assert_eq!(p.sum_range(10..15), 19);
        assert_eq!(p.sum_range(11..13), 4);
        assert_eq!(p.sum_range(12..12), 0);
        assert_eq!(p.at(10), 0);
        assert_eq!(p.at(12), 2);
    }

    #[test]
    fn covers_is_absolute() {
        let p = PrefixSums::build(4, &[1, 2, 3]);
        assert!(p.covers(&(4..7)));
        assert!(p.covers(&(5..5)));
        assert!(!p.covers(&(3..5)));
        assert!(!p.covers(&(5..8)));
    }

    #[test]
    fn empty_slice() {
        let p = PrefixSums::build(0, &[]);
        assert!(p.is_empty());
        assert_eq!(p.total(), 0);
        assert_eq!(p.sum_range(0..0), 0);
        assert_eq!(p.memory_bytes(), 16);
    }

    #[test]
    fn patch_insert_matches_rebuild() {
        let values = [2, 4, 6, 8];
        let p = PrefixSums::build(10, &values);
        for off in 0..=values.len() {
            let mut patched_values = values.to_vec();
            patched_values.insert(off, 5);
            let patched = p.patch_insert(10..14, off, 5);
            assert_eq!(
                patched,
                PrefixSums::build(10, &patched_values),
                "insert at {off}"
            );
        }
        // Patching a sub-range of a wider array re-bases to the sub-range.
        let sub = p.patch_insert(11..13, 1, 5);
        assert_eq!(sub, PrefixSums::build(11, &[4, 5, 6]));
    }

    #[test]
    fn patch_remove_matches_rebuild() {
        let values = [2, 4, 6, 8];
        let p = PrefixSums::build(10, &values);
        for off in 0..values.len() {
            let mut patched_values = values.to_vec();
            patched_values.remove(off);
            let patched = p.patch_remove(10..14, off);
            assert_eq!(
                patched,
                PrefixSums::build(10, &patched_values),
                "remove at {off}"
            );
        }
        let sub = p.patch_remove(11..13, 0);
        assert_eq!(sub, PrefixSums::build(11, &[6]));
    }

    #[test]
    fn extreme_values_stay_exact() {
        let values = vec![i64::MAX; 200];
        let p = PrefixSums::build(0, &values);
        assert_eq!(p.total(), i128::from(i64::MAX) * 200);
        let lows = vec![i64::MIN; 200];
        let p = PrefixSums::build(0, &lows);
        assert_eq!(p.sum_range(50..150), i128::from(i64::MIN) * 100);
    }
}
