//! The catalog: a registry of tables and a stable addressing scheme for
//! columns, used by every indexing subsystem to refer to "the column the
//! index / statistics / tuning action is about".

use std::collections::BTreeMap;

use crate::table::Table;
use crate::{Result, StorageError};

/// Identifier of a table in the catalog.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct TableId(pub u32);

/// Identifier of a column: the owning table plus the column's position.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct ColumnId {
    /// The table the column belongs to.
    pub table: TableId,
    /// Positional index of the column within the table.
    pub column: u32,
}

impl ColumnId {
    /// Creates a column id from raw parts.
    #[must_use]
    pub fn new(table: TableId, column: u32) -> Self {
        ColumnId { table, column }
    }
}

impl std::fmt::Display for ColumnId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "t{}c{}", self.table.0, self.column)
    }
}

/// The table catalog.
#[derive(Debug, Default)]
pub struct Catalog {
    tables: BTreeMap<TableId, Table>,
    next_id: u32,
}

impl Catalog {
    /// Creates an empty catalog.
    #[must_use]
    pub fn new() -> Self {
        Catalog::default()
    }

    /// Number of registered tables.
    #[must_use]
    pub fn table_count(&self) -> usize {
        self.tables.len()
    }

    /// Registers a table, returning its id. The table name must be unique.
    pub fn register(&mut self, table: Table) -> Result<TableId> {
        if self.tables.values().any(|t| t.name() == table.name()) {
            return Err(StorageError::TableAlreadyExists(table.name().to_string()));
        }
        let id = TableId(self.next_id);
        self.next_id += 1;
        self.tables.insert(id, table);
        Ok(id)
    }

    /// The id the next registered table will receive.
    #[must_use]
    pub fn next_table_id(&self) -> TableId {
        TableId(self.next_id)
    }

    /// Registers a table under a specific id — the recovery path: a
    /// snapshot decode or WAL replay must reproduce the original id
    /// assignment so that every [`ColumnId`] recorded elsewhere stays
    /// stable. Errors if the id or the name is already taken.
    pub fn register_with_id(&mut self, id: TableId, table: Table) -> Result<()> {
        if self.tables.contains_key(&id) {
            return Err(StorageError::TableAlreadyExists(format!("id {}", id.0)));
        }
        if self.tables.values().any(|t| t.name() == table.name()) {
            return Err(StorageError::TableAlreadyExists(table.name().to_string()));
        }
        self.next_id = self.next_id.max(id.0.saturating_add(1));
        self.tables.insert(id, table);
        Ok(())
    }

    /// Raises the id counter so the next registered table receives at
    /// least `next`. Recovery calls this with the snapshotted counter so
    /// that ids of tables dropped before the snapshot are never reused
    /// (stale references elsewhere must keep dangling, not alias).
    pub fn reserve_ids(&mut self, next: TableId) {
        self.next_id = self.next_id.max(next.0);
    }

    /// Creates and registers an empty table.
    pub fn create_table(&mut self, name: impl Into<String>) -> Result<TableId> {
        self.register(Table::new(name))
    }

    /// Removes a table by id, returning it if it existed.
    pub fn drop_table(&mut self, id: TableId) -> Option<Table> {
        self.tables.remove(&id)
    }

    /// Looks up a table by id.
    #[must_use]
    pub fn table(&self, id: TableId) -> Option<&Table> {
        self.tables.get(&id)
    }

    /// Looks up a table mutably by id.
    pub fn table_mut(&mut self, id: TableId) -> Option<&mut Table> {
        self.tables.get_mut(&id)
    }

    /// Looks up a table by id, returning an error if it does not exist.
    pub fn try_table(&self, id: TableId) -> Result<&Table> {
        self.table(id)
            .ok_or_else(|| StorageError::TableNotFound(format!("id {}", id.0)))
    }

    /// Looks up a table mutably by id, returning an error if missing.
    pub fn try_table_mut(&mut self, id: TableId) -> Result<&mut Table> {
        self.tables
            .get_mut(&id)
            .ok_or_else(|| StorageError::TableNotFound(format!("id {}", id.0)))
    }

    /// Looks up a table id by name.
    #[must_use]
    pub fn table_id(&self, name: &str) -> Option<TableId> {
        self.tables
            .iter()
            .find(|(_, t)| t.name() == name)
            .map(|(id, _)| *id)
    }

    /// Resolves a `(table name, column name)` pair to a [`ColumnId`].
    pub fn column_id(&self, table: &str, column: &str) -> Result<ColumnId> {
        let tid = self
            .table_id(table)
            .ok_or_else(|| StorageError::TableNotFound(table.to_string()))?;
        let t = self.try_table(tid)?;
        let idx = t
            .column_index(column)
            .ok_or_else(|| StorageError::ColumnNotFound(column.to_string()))?;
        Ok(ColumnId::new(tid, idx as u32))
    }

    /// Resolves a [`ColumnId`] back to the column it addresses.
    pub fn column(&self, id: ColumnId) -> Result<&crate::column::Column> {
        let t = self.try_table(id.table)?;
        t.column_at(id.column as usize)
            .ok_or_else(|| StorageError::ColumnNotFound(format!("{id}")))
    }

    /// Iterates over all `(id, table)` pairs.
    pub fn tables(&self) -> impl Iterator<Item = (TableId, &Table)> {
        self.tables.iter().map(|(id, t)| (*id, t))
    }

    /// All column ids in the catalog (every column of every table).
    #[must_use]
    pub fn all_column_ids(&self) -> Vec<ColumnId> {
        let mut out = Vec::new();
        for (tid, table) in self.tables() {
            for idx in 0..table.column_count() {
                out.push(ColumnId::new(tid, idx as u32));
            }
        }
        out
    }

    /// Total memory footprint of every registered table.
    #[must_use]
    pub fn memory_bytes(&self) -> usize {
        self.tables.values().map(Table::memory_bytes).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn catalog_with_table() -> (Catalog, TableId) {
        let mut c = Catalog::new();
        let mut t = Table::new("r");
        t.add_column_from_values("a", vec![1, 2, 3]).unwrap();
        t.add_column_from_values("b", vec![4, 5, 6]).unwrap();
        let id = c.register(t).unwrap();
        (c, id)
    }

    #[test]
    fn register_and_lookup() {
        let (c, id) = catalog_with_table();
        assert_eq!(c.table_count(), 1);
        assert!(c.table(id).is_some());
        assert_eq!(c.table_id("r"), Some(id));
        assert_eq!(c.table_id("missing"), None);
        assert!(c.try_table(TableId(99)).is_err());
    }

    #[test]
    fn duplicate_table_names_rejected() {
        let (mut c, _) = catalog_with_table();
        let err = c.create_table("r").unwrap_err();
        assert_eq!(err, StorageError::TableAlreadyExists("r".into()));
    }

    #[test]
    fn drop_table_removes_it() {
        let (mut c, id) = catalog_with_table();
        assert!(c.drop_table(id).is_some());
        assert!(c.table(id).is_none());
        assert!(c.drop_table(id).is_none());
    }

    #[test]
    fn column_id_resolution_round_trip() {
        let (c, id) = catalog_with_table();
        let cid = c.column_id("r", "b").unwrap();
        assert_eq!(cid, ColumnId::new(id, 1));
        assert_eq!(c.column(cid).unwrap().name(), "b");
        assert!(c.column_id("r", "z").is_err());
        assert!(c.column_id("x", "a").is_err());
        assert!(c.column(ColumnId::new(id, 7)).is_err());
    }

    #[test]
    fn all_column_ids_enumerates_every_column() {
        let (mut c, id) = catalog_with_table();
        let mut t2 = Table::new("s");
        t2.add_column_from_values("x", vec![1]).unwrap();
        let id2 = c.register(t2).unwrap();
        let ids = c.all_column_ids();
        assert_eq!(ids.len(), 3);
        assert!(ids.contains(&ColumnId::new(id, 0)));
        assert!(ids.contains(&ColumnId::new(id, 1)));
        assert!(ids.contains(&ColumnId::new(id2, 0)));
    }

    #[test]
    fn column_id_display_is_compact() {
        let cid = ColumnId::new(TableId(3), 5);
        assert_eq!(cid.to_string(), "t3c5");
    }

    #[test]
    fn table_mut_allows_appends() {
        let (mut c, id) = catalog_with_table();
        c.try_table_mut(id).unwrap().append_row(&[7, 8]).unwrap();
        assert_eq!(c.table(id).unwrap().row_count(), 4);
        assert!(c.memory_bytes() > 0);
    }
}
