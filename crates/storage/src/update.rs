//! Pending-update buffers.
//!
//! Following the cracking-under-updates design ("Updating a Cracked
//! Database", SIGMOD 2007) the base column and any cracked copies stay
//! untouched when updates arrive; inserts and deletes are collected in
//! per-column pending buffers and merged lazily into the auxiliary (cracked)
//! structures when a query touches the affected value range.

use crate::Value;

/// Pending inserts and deletes for one column.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct UpdateBuffer {
    inserts: Vec<Value>,
    deletes: Vec<Value>,
}

impl UpdateBuffer {
    /// Creates an empty update buffer.
    #[must_use]
    pub fn new() -> Self {
        UpdateBuffer::default()
    }

    /// Queues a value for insertion.
    pub fn insert(&mut self, v: Value) {
        self.inserts.push(v);
    }

    /// Queues a value for deletion (first matching occurrence is removed at
    /// merge time).
    pub fn delete(&mut self, v: Value) {
        self.deletes.push(v);
    }

    /// Number of pending inserts.
    #[must_use]
    pub fn pending_inserts(&self) -> usize {
        self.inserts.len()
    }

    /// Number of pending deletes.
    #[must_use]
    pub fn pending_deletes(&self) -> usize {
        self.deletes.len()
    }

    /// Whether there is nothing to merge.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.inserts.is_empty() && self.deletes.is_empty()
    }

    /// All pending inserts.
    #[must_use]
    pub fn inserts(&self) -> &[Value] {
        &self.inserts
    }

    /// All pending deletes.
    #[must_use]
    pub fn deletes(&self) -> &[Value] {
        &self.deletes
    }

    /// Removes and returns the pending inserts whose values fall in `[lo, hi)`.
    pub fn take_inserts_in_range(&mut self, lo: Value, hi: Value) -> Vec<Value> {
        let mut taken = Vec::new();
        let mut kept = Vec::with_capacity(self.inserts.len());
        for v in self.inserts.drain(..) {
            if v >= lo && v < hi {
                taken.push(v);
            } else {
                kept.push(v);
            }
        }
        self.inserts = kept;
        taken
    }

    /// Removes and returns the pending deletes whose values fall in `[lo, hi)`.
    pub fn take_deletes_in_range(&mut self, lo: Value, hi: Value) -> Vec<Value> {
        let mut taken = Vec::new();
        let mut kept = Vec::with_capacity(self.deletes.len());
        for v in self.deletes.drain(..) {
            if v >= lo && v < hi {
                taken.push(v);
            } else {
                kept.push(v);
            }
        }
        self.deletes = kept;
        taken
    }

    /// Net effect of the buffer on the count of values in `[lo, hi)`:
    /// `pending inserts in range − pending deletes in range`.
    #[must_use]
    pub fn net_count_in_range(&self, lo: Value, hi: Value) -> i64 {
        let ins = self.inserts.iter().filter(|&&v| v >= lo && v < hi).count() as i64;
        let del = self.deletes.iter().filter(|&&v| v >= lo && v < hi).count() as i64;
        ins - del
    }

    /// Clears all pending updates (after a full merge).
    pub fn clear(&mut self) {
        self.inserts.clear();
        self.deletes.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_buffer() {
        let b = UpdateBuffer::new();
        assert!(b.is_empty());
        assert_eq!(b.pending_inserts(), 0);
        assert_eq!(b.pending_deletes(), 0);
        assert_eq!(b.net_count_in_range(0, 100), 0);
    }

    #[test]
    fn insert_and_delete_queueing() {
        let mut b = UpdateBuffer::new();
        b.insert(5);
        b.insert(50);
        b.delete(7);
        assert!(!b.is_empty());
        assert_eq!(b.pending_inserts(), 2);
        assert_eq!(b.pending_deletes(), 1);
        assert_eq!(b.inserts(), &[5, 50]);
        assert_eq!(b.deletes(), &[7]);
    }

    #[test]
    fn take_inserts_in_range_partitions_buffer() {
        let mut b = UpdateBuffer::new();
        for v in [1, 10, 20, 30] {
            b.insert(v);
        }
        let taken = b.take_inserts_in_range(5, 25);
        assert_eq!(taken, vec![10, 20]);
        assert_eq!(b.inserts(), &[1, 30]);
        // Taking again yields nothing new for the same range.
        assert!(b.take_inserts_in_range(5, 25).is_empty());
    }

    #[test]
    fn take_deletes_in_range_partitions_buffer() {
        let mut b = UpdateBuffer::new();
        for v in [2, 12, 22] {
            b.delete(v);
        }
        let taken = b.take_deletes_in_range(10, 20);
        assert_eq!(taken, vec![12]);
        assert_eq!(b.deletes(), &[2, 22]);
    }

    #[test]
    fn net_count_reflects_inserts_minus_deletes() {
        let mut b = UpdateBuffer::new();
        b.insert(10);
        b.insert(11);
        b.delete(12);
        assert_eq!(b.net_count_in_range(10, 13), 1);
        assert_eq!(b.net_count_in_range(0, 5), 0);
    }

    #[test]
    fn clear_empties_everything() {
        let mut b = UpdateBuffer::new();
        b.insert(1);
        b.delete(2);
        b.clear();
        assert!(b.is_empty());
    }
}
