//! Property-based tests for the storage layer: scan operators, selection
//! vectors, statistics and update buffers.

use proptest::prelude::*;

use holistic_storage::{
    scan_count, scan_full, scan_materialize, scan_positions, scan_sum, Column, ColumnStats,
    EquiWidthHistogram, SelectionVector, UpdateBuffer,
};

fn reference_count(values: &[i64], lo: i64, hi: i64) -> u64 {
    values.iter().filter(|&&v| v >= lo && v < hi).count() as u64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn scan_operators_agree_with_each_other(
        values in prop::collection::vec(-500i64..500, 0..300),
        lo in -600i64..600,
        width in 0i64..400,
    ) {
        let hi = lo + width;
        let count = scan_count(&values, lo, hi);
        let sum = scan_sum(&values, lo, hi);
        let positions = scan_positions(&values, lo, hi);
        let materialized = scan_materialize(&values, lo, hi);
        let full = scan_full(&values, lo, hi);

        prop_assert_eq!(count, reference_count(&values, lo, hi));
        prop_assert_eq!(positions.len() as u64, count);
        prop_assert_eq!(materialized.len() as u64, count);
        prop_assert_eq!(full.count, count);
        prop_assert_eq!(full.sum, sum);
        prop_assert_eq!(full.rows.clone(), positions.clone());
        let manual_sum: i128 = materialized.iter().map(|&v| i128::from(v)).sum();
        prop_assert_eq!(manual_sum, sum);
        // Every reported position indeed qualifies.
        for row in positions.iter() {
            let v = values[row as usize];
            prop_assert!(v >= lo && v < hi);
        }
    }

    #[test]
    fn column_scan_matches_free_functions(
        values in prop::collection::vec(-500i64..500, 0..200),
        lo in -600i64..600,
        width in 0i64..300,
    ) {
        let hi = lo + width;
        let column = Column::from_values("a", values.clone());
        prop_assert_eq!(column.scan_count(lo, hi), scan_count(&values, lo, hi));
        let sel = column.scan_select(lo, hi);
        prop_assert_eq!(sel.len() as u64, column.scan_count(lo, hi));
        let gathered = column.gather(&sel).unwrap();
        prop_assert!(gathered.iter().all(|&v| v >= lo && v < hi));
    }

    #[test]
    fn selection_vector_set_operations_behave_like_sets(
        a in prop::collection::btree_set(0u32..200, 0..60),
        b in prop::collection::btree_set(0u32..200, 0..60),
    ) {
        let mut sa = SelectionVector::from_rows(a.iter().copied().collect());
        let mut sb = SelectionVector::from_rows(b.iter().copied().collect());
        let inter: Vec<u32> = a.intersection(&b).copied().collect();
        let uni: Vec<u32> = a.union(&b).copied().collect();
        prop_assert_eq!(sa.intersect(&mut sb).into_rows(), inter);
        prop_assert_eq!(sa.union(&mut sb).into_rows(), uni);
    }

    #[test]
    fn histogram_estimates_are_bounded_and_total_preserving(
        values in prop::collection::vec(-1000i64..1000, 1..400),
        lo in -1200i64..1200,
        width in 0i64..800,
    ) {
        let hist = EquiWidthHistogram::from_values(&values, 32);
        prop_assert_eq!(hist.total(), values.len() as u64);
        let est = hist.estimate_range(lo, lo + width);
        prop_assert!(est >= 0.0);
        prop_assert!(est <= values.len() as f64 + 1e-9);
        let sel = hist.estimate_selectivity(lo, lo + width);
        prop_assert!((0.0..=1.0).contains(&sel));
        // The full domain estimate accounts for (almost) all values.
        let full = hist.estimate_range(i64::MIN / 2, i64::MAX / 2);
        prop_assert!((full - values.len() as f64).abs() < 1.0);
    }

    #[test]
    fn column_stats_selectivity_is_sane(
        values in prop::collection::vec(-1000i64..1000, 1..300),
        lo in -1200i64..1200,
        width in 0i64..1000,
    ) {
        let stats = ColumnStats::from_values(&values);
        prop_assert_eq!(stats.count, values.len() as u64);
        prop_assert_eq!(stats.min, values.iter().copied().min());
        prop_assert_eq!(stats.max, values.iter().copied().max());
        let sel = stats.estimate_selectivity(lo, lo + width);
        prop_assert!((0.0..=1.0).contains(&sel));
        let true_sel = reference_count(&values, lo, lo + width) as f64 / values.len() as f64;
        // The histogram estimate must be within one bucket's worth of truth.
        prop_assert!((sel - true_sel).abs() <= 0.25, "sel={sel} true={true_sel}");
    }

    #[test]
    fn update_buffer_partitions_by_range(
        inserts in prop::collection::vec(-500i64..500, 0..100),
        deletes in prop::collection::vec(-500i64..500, 0..100),
        lo in -600i64..600,
        width in 0i64..500,
    ) {
        let hi = lo + width;
        let mut buffer = UpdateBuffer::new();
        for &v in &inserts {
            buffer.insert(v);
        }
        for &v in &deletes {
            buffer.delete(v);
        }
        let net_before = buffer.net_count_in_range(lo, hi);
        let taken_inserts = buffer.take_inserts_in_range(lo, hi);
        let taken_deletes = buffer.take_deletes_in_range(lo, hi);
        prop_assert!(taken_inserts.iter().all(|&v| v >= lo && v < hi));
        prop_assert!(taken_deletes.iter().all(|&v| v >= lo && v < hi));
        prop_assert!(buffer.inserts().iter().all(|&v| !(v >= lo && v < hi)));
        prop_assert!(buffer.deletes().iter().all(|&v| !(v >= lo && v < hi)));
        prop_assert_eq!(
            taken_inserts.len() as i64 - taken_deletes.len() as i64,
            net_before
        );
        prop_assert_eq!(
            buffer.pending_inserts() + taken_inserts.len(),
            inserts.len()
        );
        prop_assert_eq!(
            buffer.pending_deletes() + taken_deletes.len(),
            deletes.len()
        );
    }
}
