//! The COLT-style tuning policy: decide at epoch boundaries which indexes to
//! create and which to drop.

use std::collections::BTreeSet;

use holistic_offline::CostModel;

use crate::monitor::QueryMonitor;
use crate::ColumnId;

/// A physical-design change the policy wants applied.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TuningDecision {
    /// Build a full index on the column.
    Create(ColumnId),
    /// Drop the existing index on the column.
    Drop(ColumnId),
}

/// The online tuning policy.
///
/// At every epoch boundary the policy compares, per column, the *observed*
/// cost of the recent queries with the *predicted* cost had a full index
/// existed. If the projected savings over a look-ahead horizon exceed the
/// build cost, it asks for the index; if an indexed column has gone unused
/// for several consecutive epochs, it asks to drop the index (freeing memory
/// and maintenance effort).
#[derive(Debug, Clone)]
pub struct ColtPolicy {
    model: CostModel,
    /// How many future epochs of the observed access pattern the policy is
    /// willing to credit an index for (the amortization horizon).
    pub horizon_epochs: f64,
    /// Drop an index after this many consecutive idle epochs.
    pub drop_after_idle_epochs: u64,
    idle_epochs: std::collections::BTreeMap<ColumnId, u64>,
}

impl Default for ColtPolicy {
    fn default() -> Self {
        ColtPolicy {
            model: CostModel::new(),
            horizon_epochs: 4.0,
            drop_after_idle_epochs: 3,
            idle_epochs: std::collections::BTreeMap::new(),
        }
    }
}

impl ColtPolicy {
    /// Creates a policy with the default cost model and parameters.
    #[must_use]
    pub fn new() -> Self {
        Self::default()
    }

    /// Creates a policy with a custom cost model.
    #[must_use]
    pub fn with_model(model: CostModel) -> Self {
        ColtPolicy {
            model,
            ..Self::default()
        }
    }

    /// The policy's cost model.
    #[must_use]
    pub fn model(&self) -> &CostModel {
        &self.model
    }

    /// Evaluates the physical design at an epoch boundary.
    ///
    /// * `monitor` — the continuous statistics collected so far;
    /// * `epoch_counts` — per-column query counts of the epoch that just
    ///   closed (from [`QueryMonitor::end_epoch`]);
    /// * `existing` — columns that currently have a full index;
    /// * `column_rows` — row count per column (for build/probe costing).
    pub fn evaluate(
        &mut self,
        monitor: &QueryMonitor,
        epoch_counts: &std::collections::BTreeMap<ColumnId, u64>,
        existing: &BTreeSet<ColumnId>,
        mut column_rows: impl FnMut(ColumnId) -> usize,
    ) -> Vec<TuningDecision> {
        let mut decisions = Vec::new();

        // Track idleness of indexed columns.
        for &col in existing {
            let active = epoch_counts.get(&col).copied().unwrap_or(0) > 0;
            let idle = self.idle_epochs.entry(col).or_insert(0);
            if active {
                *idle = 0;
            } else {
                *idle += 1;
                if *idle >= self.drop_after_idle_epochs {
                    decisions.push(TuningDecision::Drop(col));
                    *idle = 0;
                }
            }
        }

        // Consider creating indexes for columns that were hot this epoch.
        for (&col, &count) in epoch_counts {
            if existing.contains(&col) || count == 0 {
                continue;
            }
            let Some(obs) = monitor.column(col) else {
                continue;
            };
            let rows = column_rows(col);
            if rows == 0 {
                continue;
            }
            let observed_per_query = if obs.ewma_cost > 0.0 {
                obs.ewma_cost
            } else if obs.queries > 0 {
                obs.total_cost / obs.queries as f64
            } else {
                continue;
            };
            let indexed_per_query = self.model.index_probe_cost(rows, obs.avg_selectivity);
            let savings_per_query = (observed_per_query - indexed_per_query).max(0.0);
            let projected_queries = count as f64 * self.horizon_epochs;
            let projected_savings = savings_per_query * projected_queries;
            let build_cost = self.model.full_build_cost(rows);
            if projected_savings > build_cost {
                decisions.push(TuningDecision::Create(col));
            }
        }
        decisions
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_storage::TableId;
    use std::collections::BTreeMap;

    fn col(i: u32) -> ColumnId {
        ColumnId::new(TableId(0), i)
    }

    const ROWS: usize = 1_000_000;

    fn monitor_with_hot_column(queries: u64) -> (QueryMonitor, BTreeMap<ColumnId, u64>) {
        let model = CostModel::new();
        let mut m = QueryMonitor::new();
        for _ in 0..queries {
            m.record(col(0), 100, 200, 0.01, model.scan_cost(ROWS));
        }
        let counts = m.end_epoch();
        (m, counts)
    }

    #[test]
    fn hot_scanned_column_triggers_index_creation() {
        let (m, counts) = monitor_with_hot_column(100);
        let mut policy = ColtPolicy::new();
        let decisions = policy.evaluate(&m, &counts, &BTreeSet::new(), |_| ROWS);
        assert_eq!(decisions, vec![TuningDecision::Create(col(0))]);
    }

    #[test]
    fn rarely_queried_column_is_not_indexed() {
        let (m, counts) = monitor_with_hot_column(1);
        let mut policy = ColtPolicy::new();
        let decisions = policy.evaluate(&m, &counts, &BTreeSet::new(), |_| ROWS);
        assert!(decisions.is_empty());
    }

    #[test]
    fn already_indexed_column_is_not_recreated() {
        let (m, counts) = monitor_with_hot_column(100);
        let mut policy = ColtPolicy::new();
        let existing: BTreeSet<ColumnId> = [col(0)].into_iter().collect();
        let decisions = policy.evaluate(&m, &counts, &existing, |_| ROWS);
        assert!(decisions.is_empty());
    }

    #[test]
    fn cheap_queries_do_not_justify_an_index() {
        // Queries already run at index-like cost (e.g. the column is cracked
        // well); building a full index is not worth it.
        let mut m = QueryMonitor::new();
        for _ in 0..100 {
            m.record(col(0), 0, 10, 0.0001, 50.0);
        }
        let counts = m.end_epoch();
        let mut policy = ColtPolicy::new();
        let decisions = policy.evaluate(&m, &counts, &BTreeSet::new(), |_| ROWS);
        assert!(decisions.is_empty());
    }

    #[test]
    fn idle_index_is_dropped_after_enough_epochs() {
        let mut policy = ColtPolicy::new();
        policy.drop_after_idle_epochs = 2;
        let existing: BTreeSet<ColumnId> = [col(5)].into_iter().collect();
        let m = QueryMonitor::new();
        let empty = BTreeMap::new();
        assert!(policy.evaluate(&m, &empty, &existing, |_| ROWS).is_empty());
        let decisions = policy.evaluate(&m, &empty, &existing, |_| ROWS);
        assert_eq!(decisions, vec![TuningDecision::Drop(col(5))]);
        // Counter resets after the drop decision.
        assert!(policy.evaluate(&m, &empty, &existing, |_| ROWS).is_empty());
    }

    #[test]
    fn active_index_is_never_dropped() {
        let mut policy = ColtPolicy::new();
        policy.drop_after_idle_epochs = 1;
        let existing: BTreeSet<ColumnId> = [col(0)].into_iter().collect();
        let (m, counts) = monitor_with_hot_column(10);
        for _ in 0..5 {
            let decisions = policy.evaluate(&m, &counts, &existing, |_| ROWS);
            assert!(decisions.is_empty());
        }
    }

    #[test]
    fn empty_column_is_ignored() {
        let (m, counts) = monitor_with_hot_column(100);
        let mut policy = ColtPolicy::new();
        let decisions = policy.evaluate(&m, &counts, &BTreeSet::new(), |_| 0);
        assert!(decisions.is_empty());
    }
}
