//! Soft indexes: index builds piggybacked on scans.
//!
//! Soft indexes (Lühring, Sattler et al. — ICDE Workshops 2007, ref 15)
//! reduce the online index-creation penalty by sharing the scan an index
//! build needs with a query that is scanning the same column anyway: the
//! query pays its scan once, and the index build only adds the sort of the
//! scanned values, not another full pass over base data.

use holistic_offline::{CostModel, SortedIndex};
use holistic_storage::Column;

/// Outcome of a piggybacked index build.
#[derive(Debug)]
pub struct SoftBuildOutcome {
    /// The finished index.
    pub index: SortedIndex,
    /// Extra cost charged on top of the scan the query performed anyway
    /// (work units).
    pub extra_cost: f64,
    /// Cost a stand-alone build would have had (work units).
    pub standalone_cost: f64,
}

/// Builds full indexes piggybacked on query scans.
#[derive(Debug, Clone, Default)]
pub struct SoftIndexBuilder {
    model: CostModel,
}

impl SoftIndexBuilder {
    /// Creates a soft-index builder with the default cost model.
    #[must_use]
    pub fn new() -> Self {
        SoftIndexBuilder {
            model: CostModel::new(),
        }
    }

    /// Creates a soft-index builder with a custom cost model.
    #[must_use]
    pub fn with_model(model: CostModel) -> Self {
        SoftIndexBuilder { model }
    }

    /// Builds an index on `column`, assuming a concurrent query is already
    /// scanning it. The returned [`SoftBuildOutcome::extra_cost`] excludes
    /// the scan that is shared with the query.
    ///
    /// The index is handed over with its prefix-sum array seeded: the build
    /// is already streaming the sorted values, so the extra pass rides the
    /// same piggyback logic as the build itself, and every aggregate query
    /// on the soft-built index answers zero-read from day one
    /// ([`SortedIndex::query_sum`]).
    #[must_use]
    pub fn build_shared(&self, column: &Column) -> SoftBuildOutcome {
        let n = column.len();
        let index = SortedIndex::build(column);
        index.seed_prefix();
        let standalone_cost = self.model.full_build_cost(n) + self.model.scan_cost(n);
        let extra_cost = self.model.full_build_cost(n);
        SoftBuildOutcome {
            index,
            extra_cost,
            standalone_cost,
        }
    }

    /// Fraction of the stand-alone build cost saved by sharing the scan.
    #[must_use]
    pub fn sharing_savings(&self, rows: usize) -> f64 {
        let standalone = self.model.full_build_cost(rows) + self.model.scan_cost(rows);
        if standalone <= 0.0 {
            return 0.0;
        }
        self.model.scan_cost(rows) / standalone
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shared_build_is_cheaper_than_standalone() {
        let builder = SoftIndexBuilder::new();
        let column = Column::from_values("a", (0..10_000).rev().collect());
        let outcome = builder.build_shared(&column);
        assert!(outcome.extra_cost < outcome.standalone_cost);
        assert_eq!(outcome.index.len(), 10_000);
        assert_eq!(outcome.index.count(0, 100), 100);
    }

    #[test]
    fn sharing_savings_fraction_is_sane() {
        let builder = SoftIndexBuilder::new();
        let s = builder.sharing_savings(1_000_000);
        assert!(s > 0.0 && s < 1.0);
        assert_eq!(builder.sharing_savings(0), 0.0);
    }

    #[test]
    fn empty_column_builds_empty_index() {
        let builder = SoftIndexBuilder::new();
        let column = Column::from_values("a", vec![]);
        let outcome = builder.build_shared(&column);
        assert!(outcome.index.is_empty());
        assert_eq!(outcome.extra_cost, 0.0);
    }
}
