//! # holistic-online
//!
//! Online indexing for the holistic indexing kernel.
//!
//! Online indexing (COLT — SIGMOD 2006, Bruno & Chaudhuri — ICDE 2007, soft
//! indexes — ICDE Workshops 2007; refs [16, 4, 15] in the paper) sits
//! between offline and adaptive indexing: the system *continuously monitors*
//! the running workload, and *periodically* (every epoch of N queries)
//! re-evaluates the physical design, creating indexes that have become
//! worthwhile and dropping those that no longer earn their keep. Queries
//! that arrive during a tuning period pay the index-building penalty — the
//! fundamental limitation the paper points out.
//!
//! The crate provides:
//!
//! * [`QueryMonitor`] — continuous per-column workload/cost statistics.
//! * [`EpochManager`] — epoch bookkeeping ("reconsider every N queries").
//! * [`ColtPolicy`] — the benefit-vs-build-cost decision rule.
//! * [`SoftIndexBuilder`] — index builds piggybacked on scans, which reduce
//!   (but do not eliminate) the online build penalty.
//! * [`OnlineTuner`] — the composed online tuning loop used by the engine.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod colt;
pub mod epoch;
pub mod monitor;
pub mod soft_index;
pub mod tuner;

pub use colt::{ColtPolicy, TuningDecision};
pub use epoch::EpochManager;
pub use monitor::{ColumnObservation, QueryMonitor};
pub use soft_index::SoftIndexBuilder;
pub use tuner::OnlineTuner;

pub use holistic_storage::{ColumnId, Value};
