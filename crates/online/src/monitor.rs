//! Continuous workload monitoring.

use std::collections::BTreeMap;

use holistic_offline::WorkloadSummary;

use crate::{ColumnId, Value};

/// Observed statistics for one column.
#[derive(Debug, Clone, PartialEq)]
pub struct ColumnObservation {
    /// Queries observed on this column since monitoring started.
    pub queries: u64,
    /// Queries observed in the current epoch (reset by [`QueryMonitor::end_epoch`]).
    pub queries_this_epoch: u64,
    /// Total observed execution cost (work units) on this column.
    pub total_cost: f64,
    /// Exponentially weighted moving average of per-query cost.
    pub ewma_cost: f64,
    /// Average observed selectivity.
    pub avg_selectivity: f64,
}

impl Default for ColumnObservation {
    fn default() -> Self {
        ColumnObservation {
            queries: 0,
            queries_this_epoch: 0,
            total_cost: 0.0,
            ewma_cost: 0.0,
            avg_selectivity: 0.0,
        }
    }
}

/// The continuous query monitor: the "statistical analysis during workload
/// execution" column of the paper's Table 1.
#[derive(Debug, Clone, Default)]
pub struct QueryMonitor {
    columns: BTreeMap<ColumnId, ColumnObservation>,
    summary: WorkloadSummary,
    total_queries: u64,
    ewma_alpha: f64,
}

impl QueryMonitor {
    /// Creates a monitor with the default EWMA smoothing factor (0.2).
    #[must_use]
    pub fn new() -> Self {
        QueryMonitor {
            ewma_alpha: 0.2,
            ..Default::default()
        }
    }

    /// Creates a monitor with a custom EWMA smoothing factor in `(0, 1]`.
    #[must_use]
    pub fn with_alpha(alpha: f64) -> Self {
        QueryMonitor {
            ewma_alpha: alpha.clamp(f64::EPSILON, 1.0),
            ..Default::default()
        }
    }

    /// Records one executed range query and its observed cost.
    pub fn record(
        &mut self,
        column: ColumnId,
        lo: Value,
        hi: Value,
        selectivity: f64,
        observed_cost: f64,
    ) {
        let entry = self.columns.entry(column).or_default();
        let n = entry.queries as f64;
        entry.avg_selectivity =
            (entry.avg_selectivity * n + selectivity.clamp(0.0, 1.0)) / (n + 1.0);
        entry.queries += 1;
        entry.queries_this_epoch += 1;
        entry.total_cost += observed_cost.max(0.0);
        entry.ewma_cost = if entry.queries == 1 {
            observed_cost.max(0.0)
        } else {
            self.ewma_alpha * observed_cost.max(0.0) + (1.0 - self.ewma_alpha) * entry.ewma_cost
        };
        self.summary.record_query(column, selectivity, lo, hi);
        self.total_queries += 1;
    }

    /// Forgets a column entirely (dropped table): removes its observation
    /// and its contribution to the accumulated workload summary.
    pub fn forget_column(&mut self, id: ColumnId) -> bool {
        let existed = self.columns.remove(&id).is_some();
        self.summary.remove_column(id);
        existed
    }

    /// Total queries observed.
    #[must_use]
    pub fn total_queries(&self) -> u64 {
        self.total_queries
    }

    /// Observation for one column, if any query touched it.
    #[must_use]
    pub fn column(&self, id: ColumnId) -> Option<&ColumnObservation> {
        self.columns.get(&id)
    }

    /// All observed columns with their statistics.
    pub fn columns(&self) -> impl Iterator<Item = (ColumnId, &ColumnObservation)> {
        self.columns.iter().map(|(id, o)| (*id, o))
    }

    /// The workload summary accumulated so far (consumable by the offline
    /// advisor — this is how holistic indexing feeds observed knowledge into
    /// a-priori style analysis).
    #[must_use]
    pub fn summary(&self) -> &WorkloadSummary {
        &self.summary
    }

    /// Fraction of observed queries touching `column`.
    #[must_use]
    pub fn frequency(&self, column: ColumnId) -> f64 {
        if self.total_queries == 0 {
            return 0.0;
        }
        self.columns
            .get(&column)
            .map_or(0.0, |o| o.queries as f64 / self.total_queries as f64)
    }

    /// Closes an epoch: resets the per-epoch counters and returns the
    /// per-column query counts observed during the epoch.
    pub fn end_epoch(&mut self) -> BTreeMap<ColumnId, u64> {
        let mut per_epoch = BTreeMap::new();
        for (id, obs) in &mut self.columns {
            if obs.queries_this_epoch > 0 {
                per_epoch.insert(*id, obs.queries_this_epoch);
            }
            obs.queries_this_epoch = 0;
        }
        per_epoch
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_storage::TableId;

    fn col(i: u32) -> ColumnId {
        ColumnId::new(TableId(0), i)
    }

    #[test]
    fn empty_monitor() {
        let m = QueryMonitor::new();
        assert_eq!(m.total_queries(), 0);
        assert!(m.column(col(0)).is_none());
        assert_eq!(m.frequency(col(0)), 0.0);
    }

    #[test]
    fn record_accumulates_costs_and_selectivity() {
        let mut m = QueryMonitor::new();
        m.record(col(0), 10, 20, 0.01, 100.0);
        m.record(col(0), 30, 40, 0.03, 200.0);
        m.record(col(1), 0, 5, 0.5, 50.0);
        assert_eq!(m.total_queries(), 3);
        let c0 = m.column(col(0)).unwrap();
        assert_eq!(c0.queries, 2);
        assert!((c0.total_cost - 300.0).abs() < 1e-9);
        assert!((c0.avg_selectivity - 0.02).abs() < 1e-9);
        assert!((m.frequency(col(0)) - 2.0 / 3.0).abs() < 1e-9);
        // Summary is kept in sync for advisor consumption.
        assert_eq!(m.summary().total_queries(), 3);
        assert_eq!(m.summary().column(col(1)).unwrap().queries, 1);
    }

    #[test]
    fn ewma_tracks_recent_costs() {
        let mut m = QueryMonitor::with_alpha(0.5);
        m.record(col(0), 0, 1, 0.01, 100.0);
        assert!((m.column(col(0)).unwrap().ewma_cost - 100.0).abs() < 1e-9);
        m.record(col(0), 0, 1, 0.01, 0.0);
        assert!((m.column(col(0)).unwrap().ewma_cost - 50.0).abs() < 1e-9);
        m.record(col(0), 0, 1, 0.01, 0.0);
        assert!((m.column(col(0)).unwrap().ewma_cost - 25.0).abs() < 1e-9);
    }

    #[test]
    fn epoch_counters_reset_on_end_epoch() {
        let mut m = QueryMonitor::new();
        m.record(col(0), 0, 1, 0.01, 1.0);
        m.record(col(0), 0, 1, 0.01, 1.0);
        m.record(col(1), 0, 1, 0.01, 1.0);
        let epoch = m.end_epoch();
        assert_eq!(epoch[&col(0)], 2);
        assert_eq!(epoch[&col(1)], 1);
        assert_eq!(m.column(col(0)).unwrap().queries_this_epoch, 0);
        // Lifetime counters are unaffected.
        assert_eq!(m.column(col(0)).unwrap().queries, 2);
        // Second epoch with no queries reports nothing.
        assert!(m.end_epoch().is_empty());
    }

    #[test]
    fn negative_costs_are_clamped() {
        let mut m = QueryMonitor::new();
        m.record(col(0), 0, 1, 0.01, -10.0);
        assert_eq!(m.column(col(0)).unwrap().total_cost, 0.0);
        assert_eq!(m.column(col(0)).unwrap().ewma_cost, 0.0);
    }

    #[test]
    fn alpha_is_clamped_to_valid_range() {
        let m = QueryMonitor::with_alpha(5.0);
        assert!(m.ewma_alpha <= 1.0);
        let m = QueryMonitor::with_alpha(-1.0);
        assert!(m.ewma_alpha > 0.0);
    }
}
