//! The composed online tuning loop.

use std::collections::{BTreeMap, BTreeSet};
use std::sync::Arc;

use holistic_offline::SortedIndex;
use holistic_storage::Column;

use crate::colt::{ColtPolicy, TuningDecision};
use crate::epoch::EpochManager;
use crate::monitor::QueryMonitor;
use crate::{ColumnId, Value};

/// The online tuner: continuous monitoring, epoch-based re-evaluation and an
/// index store, composed the way COLT-style systems do.
#[derive(Debug)]
pub struct OnlineTuner {
    monitor: QueryMonitor,
    epochs: EpochManager,
    policy: ColtPolicy,
    indexes: BTreeMap<ColumnId, Arc<SortedIndex>>,
    /// Total work units spent building indexes online (this is the penalty
    /// the paper attributes to online indexing: queries arriving during the
    /// tuning period pay for it).
    build_work: f64,
    decisions_applied: u64,
}

impl OnlineTuner {
    /// Creates an online tuner that re-evaluates the design every
    /// `epoch_length` queries.
    #[must_use]
    pub fn new(epoch_length: u64) -> Self {
        OnlineTuner {
            monitor: QueryMonitor::new(),
            epochs: EpochManager::new(epoch_length),
            policy: ColtPolicy::new(),
            indexes: BTreeMap::new(),
            build_work: 0.0,
            decisions_applied: 0,
        }
    }

    /// Creates an online tuner with a custom policy.
    #[must_use]
    pub fn with_policy(epoch_length: u64, policy: ColtPolicy) -> Self {
        OnlineTuner {
            monitor: QueryMonitor::new(),
            epochs: EpochManager::new(epoch_length),
            policy,
            indexes: BTreeMap::new(),
            build_work: 0.0,
            decisions_applied: 0,
        }
    }

    /// The continuous monitor (shared with the holistic kernel for its own
    /// statistics-driven decisions).
    #[must_use]
    pub fn monitor(&self) -> &QueryMonitor {
        &self.monitor
    }

    /// Whether the tuner currently maintains a full index on `column`.
    #[must_use]
    pub fn has_index(&self, column: ColumnId) -> bool {
        self.indexes.contains_key(&column)
    }

    /// The full index on `column`, if one exists.
    #[must_use]
    pub fn index(&self, column: ColumnId) -> Option<&SortedIndex> {
        self.indexes.get(&column).map(Arc::as_ref)
    }

    /// A shared handle to the full index on `column`, if one exists. Lets
    /// callers clone the handle under a short lock and probe the index
    /// outside it, so concurrent probes never serialize on the tuner.
    #[must_use]
    pub fn index_arc(&self, column: ColumnId) -> Option<Arc<SortedIndex>> {
        self.indexes.get(&column).map(Arc::clone)
    }

    /// Shared handles to every maintained index, so idle-time maintenance
    /// (e.g. prefix-sum seeding) can run outside the tuner lock.
    #[must_use]
    pub fn index_arcs(&self) -> Vec<Arc<SortedIndex>> {
        self.indexes.values().map(Arc::clone).collect()
    }

    /// Number of columns that currently have an index.
    #[must_use]
    pub fn index_count(&self) -> usize {
        self.indexes.len()
    }

    /// Columns that currently have an index.
    #[must_use]
    pub fn indexed_columns(&self) -> BTreeSet<ColumnId> {
        self.indexes.keys().copied().collect()
    }

    /// Forgets a column entirely (dropped table): drops its index, if any,
    /// and removes it from the monitor so ghost columns never skew future
    /// tuning decisions. Returns whether any state existed for it.
    pub fn forget_column(&mut self, column: ColumnId) -> bool {
        let had_index = self.indexes.remove(&column).is_some();
        let had_observation = self.monitor.forget_column(column);
        had_index || had_observation
    }

    /// Total work units spent on online index builds so far.
    #[must_use]
    pub fn build_work(&self) -> f64 {
        self.build_work
    }

    /// Number of tuning decisions applied so far.
    #[must_use]
    pub fn decisions_applied(&self) -> u64 {
        self.decisions_applied
    }

    /// Records an executed query and, at epoch boundaries, re-evaluates the
    /// physical design. `resolve` maps column ids to base columns so that
    /// freshly recommended indexes can be built immediately (the online
    /// penalty). Returns the decisions applied at this call (usually empty).
    pub fn record_and_tune(
        &mut self,
        column: ColumnId,
        lo: Value,
        hi: Value,
        selectivity: f64,
        observed_cost: f64,
        mut resolve: impl FnMut(ColumnId) -> Option<Column>,
    ) -> Vec<TuningDecision> {
        self.monitor
            .record(column, lo, hi, selectivity, observed_cost);
        if !self.epochs.tick() {
            return Vec::new();
        }
        let epoch_counts = self.monitor.end_epoch();
        let existing = self.indexed_columns();
        let decisions = self
            .policy
            .evaluate(&self.monitor, &epoch_counts, &existing, |id| {
                resolve(id).map_or(0, |c| c.len())
            });
        for decision in &decisions {
            match decision {
                TuningDecision::Create(col) => {
                    if let Some(base) = resolve(*col) {
                        let cost = self.policy.model().full_build_cost(base.len());
                        let index = SortedIndex::build(&base);
                        // Seed the prefix array while the build already owns
                        // the epoch-boundary penalty: aggregates on the
                        // fresh index are zero-read from the first probe.
                        index.seed_prefix();
                        self.indexes.insert(*col, Arc::new(index));
                        self.build_work += cost;
                        self.decisions_applied += 1;
                    }
                }
                TuningDecision::Drop(col) => {
                    if self.indexes.remove(col).is_some() {
                        self.decisions_applied += 1;
                    }
                }
            }
        }
        decisions
    }

    /// Answers a range count using the maintained index if one exists.
    #[must_use]
    pub fn indexed_count(&self, column: ColumnId, lo: Value, hi: Value) -> Option<u64> {
        self.indexes.get(&column).map(|idx| idx.count(lo, hi))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_offline::CostModel;
    use holistic_storage::TableId;

    fn col(i: u32) -> ColumnId {
        ColumnId::new(TableId(0), i)
    }

    fn base_column(n: usize) -> Column {
        Column::from_values("a", (0..n as Value).rev().collect())
    }

    #[test]
    fn tuner_builds_index_for_hot_column_after_an_epoch() {
        let n = 100_000;
        let model = CostModel::new();
        let mut tuner = OnlineTuner::new(10);
        let base = base_column(n);
        let mut created = false;
        for q in 0..20 {
            let decisions =
                tuner.record_and_tune(col(0), 100, 200, 0.001, model.scan_cost(n), |_| {
                    Some(base.clone())
                });
            if decisions
                .iter()
                .any(|d| matches!(d, TuningDecision::Create(c) if *c == col(0)))
            {
                created = true;
                assert!(q >= 9, "index must not appear before the first epoch ends");
            }
        }
        assert!(created);
        assert!(tuner.has_index(col(0)));
        assert!(tuner.build_work() > 0.0);
        assert_eq!(tuner.decisions_applied(), 1);
        assert_eq!(tuner.indexed_count(col(0), 0, 50), Some(50));
        assert_eq!(tuner.indexed_count(col(1), 0, 50), None);
    }

    #[test]
    fn unused_index_gets_dropped_eventually() {
        let n = 100_000;
        let model = CostModel::new();
        let mut policy = ColtPolicy::new();
        policy.drop_after_idle_epochs = 2;
        let mut tuner = OnlineTuner::with_policy(10, policy);
        let base = base_column(n);
        // Phase 1: hammer column 0 until it is indexed.
        for _ in 0..20 {
            tuner.record_and_tune(col(0), 0, 100, 0.001, model.scan_cost(n), |_| {
                Some(base.clone())
            });
        }
        assert!(tuner.has_index(col(0)));
        // Phase 2: the workload moves entirely to column 1; the now-useless
        // index on column 0 is eventually dropped.
        let mut dropped = false;
        for _ in 0..30 {
            let decisions =
                tuner.record_and_tune(col(1), 0, 100, 0.001, model.scan_cost(n), |_| {
                    Some(base.clone())
                });
            if decisions
                .iter()
                .any(|d| matches!(d, TuningDecision::Drop(c) if *c == col(0)))
            {
                dropped = true;
            }
        }
        assert!(dropped);
        assert!(!tuner.has_index(col(0)));
    }

    #[test]
    fn no_tuning_happens_mid_epoch() {
        let model = CostModel::new();
        let mut tuner = OnlineTuner::new(1000);
        let base = base_column(10_000);
        for _ in 0..100 {
            let decisions =
                tuner.record_and_tune(col(0), 0, 10, 0.001, model.scan_cost(10_000), |_| {
                    Some(base.clone())
                });
            assert!(decisions.is_empty());
        }
        assert!(!tuner.has_index(col(0)));
        assert_eq!(tuner.monitor().total_queries(), 100);
    }

    #[test]
    fn forget_column_drops_index_and_observations() {
        let n = 100_000;
        let model = CostModel::new();
        let mut tuner = OnlineTuner::new(10);
        let base = base_column(n);
        for _ in 0..20 {
            tuner.record_and_tune(col(0), 0, 100, 0.001, model.scan_cost(n), |_| {
                Some(base.clone())
            });
        }
        assert!(tuner.has_index(col(0)));
        assert!(tuner.monitor().column(col(0)).is_some());
        assert!(tuner.forget_column(col(0)));
        assert!(!tuner.has_index(col(0)));
        assert!(tuner.index_arc(col(0)).is_none());
        assert!(tuner.monitor().column(col(0)).is_none());
        assert!(tuner.monitor().summary().column(col(0)).is_none());
        assert!(!tuner.forget_column(col(0)), "second forget is a no-op");
    }

    #[test]
    fn unresolvable_column_is_not_built() {
        let model = CostModel::new();
        let mut tuner = OnlineTuner::new(2);
        for _ in 0..10 {
            tuner.record_and_tune(col(0), 0, 10, 0.001, model.scan_cost(1_000_000), |_| None);
        }
        assert!(!tuner.has_index(col(0)));
        assert_eq!(tuner.build_work(), 0.0);
    }
}
