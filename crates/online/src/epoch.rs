//! Epoch bookkeeping: "periodically, after specific epochs, e.g. every N
//! queries, the physical design is reconsidered" (COLT).

/// Tracks query counts and signals epoch boundaries.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct EpochManager {
    epoch_length: u64,
    queries_in_epoch: u64,
    completed_epochs: u64,
}

impl EpochManager {
    /// Creates an epoch manager that closes an epoch every `epoch_length`
    /// queries.
    ///
    /// # Panics
    ///
    /// Panics if `epoch_length == 0`.
    #[must_use]
    pub fn new(epoch_length: u64) -> Self {
        assert!(epoch_length > 0, "epoch length must be positive");
        EpochManager {
            epoch_length,
            queries_in_epoch: 0,
            completed_epochs: 0,
        }
    }

    /// The configured epoch length.
    #[must_use]
    pub fn epoch_length(&self) -> u64 {
        self.epoch_length
    }

    /// Number of epochs completed so far.
    #[must_use]
    pub fn completed_epochs(&self) -> u64 {
        self.completed_epochs
    }

    /// Queries recorded in the current (incomplete) epoch.
    #[must_use]
    pub fn queries_in_epoch(&self) -> u64 {
        self.queries_in_epoch
    }

    /// Registers one query; returns `true` if this query closes an epoch
    /// (i.e. the physical design should be re-evaluated now).
    pub fn tick(&mut self) -> bool {
        self.queries_in_epoch += 1;
        if self.queries_in_epoch >= self.epoch_length {
            self.queries_in_epoch = 0;
            self.completed_epochs += 1;
            true
        } else {
            false
        }
    }

    /// Resets the current epoch without completing it (used when an external
    /// event — e.g. an explicit tuning pass — already re-evaluated the design).
    pub fn reset_epoch(&mut self) {
        self.queries_in_epoch = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_signals_every_n_queries() {
        let mut e = EpochManager::new(3);
        assert!(!e.tick());
        assert!(!e.tick());
        assert!(e.tick());
        assert_eq!(e.completed_epochs(), 1);
        assert!(!e.tick());
        assert_eq!(e.queries_in_epoch(), 1);
        assert!(!e.tick());
        assert!(e.tick());
        assert_eq!(e.completed_epochs(), 2);
    }

    #[test]
    fn epoch_length_one_signals_every_query() {
        let mut e = EpochManager::new(1);
        assert!(e.tick());
        assert!(e.tick());
        assert_eq!(e.completed_epochs(), 2);
    }

    #[test]
    fn reset_epoch_discards_partial_progress() {
        let mut e = EpochManager::new(5);
        e.tick();
        e.tick();
        e.reset_epoch();
        assert_eq!(e.queries_in_epoch(), 0);
        for _ in 0..4 {
            assert!(!e.tick());
        }
        assert!(e.tick());
    }

    #[test]
    #[should_panic(expected = "epoch length must be positive")]
    fn zero_epoch_length_panics() {
        let _ = EpochManager::new(0);
    }
}
