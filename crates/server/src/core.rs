//! The socket-independent service core: admission control, batch
//! formation, deadlines, fairness, and saturation mode.
//!
//! [`ServiceCore`] is the whole service except the wire. Reader threads
//! (or tests, with a manual [`ServiceClock`]) call [`ServiceCore::admit`];
//! a dispatcher calls [`ServiceCore::pump`] in a loop. Everything between
//! — bounded queues, per-client token buckets, column-bucketed batch
//! formation, deadline enforcement, cooperative cancellation, saturation
//! mode — lives here, so the overload machinery is testable without a
//! single socket and the TCP layer in [`crate::net`] stays a thin shell.
//!
//! # Admission state machine
//!
//! A query submitted by client *c* travels:
//!
//! ```text
//! admit(c, q) ──deadline already expired──▶ Err(DeadlineExceeded)
//!    │
//!    ├─ client unknown ────────────────────▶ Err(Unsupported)
//!    ├─ client queue ≥ cap, or no token ───▶ Err(Overloaded("client c"))
//!    ├─ global queue ≥ cap ────────────────▶ Err(Overloaded("global"))
//!    └─ enqueued into q.column's bucket ───▶ Ok(())        [response later]
//!
//! pump() — when a bucket ≥ max_batch, or the oldest entry waited ≥
//!          batch_deadline — drains one bucket (≤ max_batch entries) and
//!          dispatches it:
//!    cancelled client ─────────────────────▶ respond Err(Cancelled)
//!    deadline expired ─────────────────────▶ respond Err(DeadlineExceeded)
//!    saturated & zero-read answer exists ──▶ respond Ok (degraded path)
//!    otherwise ────────────────────────────▶ execute_batch_guarded
//! ```
//!
//! Every **admitted** query produces exactly one response on its
//! session's channel; every rejection is a typed error returned from
//! `admit` itself. Nothing is ever silently dropped.
//!
//! # Latch discipline
//!
//! The service locks sit at levels `ServiceRegistry = 2`,
//! `ServiceSession = 4` and `ServiceQueue = 6` — *above* the engine lock
//! (level 0) and *below* every engine-internal latch. Both entry points
//! acquire the engine read lock first (level 0, so 0 → 2 → 4 → 6 is
//! strictly increasing), and the dispatcher drops the queue guard before
//! touching session state or executing the batch, so no service lock is
//! ever held across engine work. The hierarchy is machine-checked in
//! debug/paranoia builds by `holistic-sync`.

use std::collections::{BTreeMap, HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, OnceLock};
use std::time::{Duration, Instant};

use holistic_core::{GuardedQuery, HolisticError, Query, QueryResult, SharedDatabase};
use holistic_storage::ColumnId;
use holistic_sync::{LockLevel, OrderedMutex, OrderedRwLock};

/// Tunables of the service layer. All bounds are hard: the service sheds
/// (typed errors) rather than queue without limit.
#[derive(Debug, Clone)]
pub struct ServiceConfig {
    /// Dispatch a column's bucket as soon as it holds this many queries.
    pub max_batch: usize,
    /// … or as soon as the oldest queued query has waited this long
    /// (group-commit-style batch formation: batch ≥ N or deadline ≤ T).
    pub batch_deadline: Duration,
    /// Hard bound on the total number of queued queries.
    pub global_queue_cap: usize,
    /// Hard bound on one client's share of the queue.
    pub per_client_cap: usize,
    /// Deadline applied to queries that do not carry their own;
    /// `Duration::ZERO` disables the default.
    pub default_deadline: Duration,
    /// Token-bucket refill rate per client, in queries per second.
    pub tokens_per_sec: f64,
    /// Token-bucket capacity (burst allowance) per client.
    pub token_burst: f64,
    /// Queue depth at which the service enters saturation mode.
    pub saturation_high: usize,
    /// Queue depth at which it leaves saturation mode (must be lower).
    pub saturation_low: usize,
    /// Earliest-deadline-first dispatch: order each admission bucket by
    /// deadline (ties and deadline-less queries fall back to arrival
    /// order) before draining a batch, so under backlog the queries
    /// closest to expiry execute first instead of shedding at dispatch.
    /// With uniform deadlines (every query on the configured default)
    /// EDF degenerates to FIFO, so enabling it never hurts; disable to
    /// measure strict arrival-order dispatch.
    pub edf_dispatch: bool,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_batch: 64,
            batch_deadline: Duration::from_millis(2),
            global_queue_cap: 4096,
            per_client_cap: 512,
            default_deadline: Duration::from_millis(100),
            tokens_per_sec: 50_000.0,
            token_burst: 1024.0,
            saturation_high: 3072,
            saturation_low: 1024,
            edf_dispatch: true,
        }
    }
}

impl ServiceConfig {
    /// Small bounds that make every admission path reachable in tests.
    #[must_use]
    pub fn for_testing() -> Self {
        ServiceConfig {
            max_batch: 4,
            batch_deadline: Duration::from_millis(5),
            global_queue_cap: 16,
            per_client_cap: 8,
            default_deadline: Duration::from_millis(100),
            tokens_per_sec: 1000.0,
            token_burst: 32.0,
            saturation_high: 12,
            saturation_low: 4,
            edf_dispatch: true,
        }
    }

    fn normalized(mut self) -> Self {
        self.max_batch = self.max_batch.max(1);
        self.global_queue_cap = self.global_queue_cap.max(1);
        self.per_client_cap = self.per_client_cap.max(1);
        self.saturation_high = self.saturation_high.clamp(1, self.global_queue_cap);
        self.saturation_low = self
            .saturation_low
            .min(self.saturation_high.saturating_sub(1));
        self
    }
}

/// The service's notion of time. The real clock is `Instant::now()`; the
/// manual clock is a fixed origin plus an explicitly advanced offset, so
/// deadline and batch-formation behavior is deterministic in tests.
#[derive(Debug)]
pub struct ServiceClock {
    origin: Instant,
    offset_micros: AtomicU64,
    manual: bool,
}

impl ServiceClock {
    /// Wall-clock time.
    #[must_use]
    pub fn real() -> Arc<Self> {
        Arc::new(ServiceClock {
            origin: Instant::now(),
            offset_micros: AtomicU64::new(0),
            manual: false,
        })
    }

    /// A clock that only moves when [`ServiceClock::advance`] is called.
    #[must_use]
    pub fn manual() -> Arc<Self> {
        Arc::new(ServiceClock {
            origin: Instant::now(),
            offset_micros: AtomicU64::new(0),
            manual: true,
        })
    }

    /// The current service time.
    #[must_use]
    pub fn now(&self) -> Instant {
        if self.manual {
            self.origin + Duration::from_micros(self.offset_micros.load(Ordering::Acquire))
        } else {
            Instant::now()
        }
    }

    /// Advances a manual clock (no effect on the real clock).
    pub fn advance(&self, by: Duration) {
        self.offset_micros
            .fetch_add(by.as_micros() as u64, Ordering::AcqRel);
    }
}

/// One response, delivered on the owning session's channel. Exactly one
/// of these exists per admitted query.
#[derive(Debug)]
pub struct ServiceResponse {
    /// The client's correlation id for the query.
    pub request_id: u64,
    /// The result, or the typed shed/error.
    pub result: Result<QueryResult, HolisticError>,
}

/// Per-client admission state.
struct SessionState {
    /// Queries this client currently has in the global queue.
    queued: usize,
    /// Token-bucket level; admission costs one token.
    tokens: f64,
    /// When the bucket was last refilled.
    refilled_at: Instant,
}

impl SessionState {
    fn refill(&mut self, now: Instant, config: &ServiceConfig) {
        let dt = now
            .saturating_duration_since(self.refilled_at)
            .as_secs_f64();
        self.tokens = (self.tokens + dt * config.tokens_per_sec).min(config.token_burst);
        self.refilled_at = now;
    }
}

/// One connected client: identity, cancellation flag, response channel,
/// and fairness state.
pub struct Session {
    client: u64,
    cancelled: Arc<AtomicBool>,
    sink: Sender<ServiceResponse>,
    state: OrderedMutex<SessionState>,
}

impl Session {
    /// The client id this session belongs to.
    #[must_use]
    pub fn client(&self) -> u64 {
        self.client
    }

    /// The cooperative cancellation flag shared with this session's
    /// queued queries; set when the connection drops.
    #[must_use]
    pub fn cancel_handle(&self) -> Arc<AtomicBool> {
        Arc::clone(&self.cancelled)
    }
}

/// One admitted query waiting in the global queue.
struct Pending {
    session: Arc<Session>,
    request_id: u64,
    query: Query,
    deadline: Option<Instant>,
    enqueued_at: Instant,
}

/// The admission queue: per-column buckets (batches execute best when
/// column-pure) plus the global total the caps and watermarks act on.
struct QueueState {
    buckets: BTreeMap<ColumnId, VecDeque<Pending>>,
    total: usize,
}

/// The admission-controlled batching service around a shared engine.
pub struct ServiceCore {
    config: ServiceConfig,
    engine: SharedDatabase,
    clock: Arc<ServiceClock>,
    registry: OrderedRwLock<HashMap<u64, Arc<Session>>>,
    queue: OrderedMutex<QueueState>,
    saturated: AtomicBool,
    tuner_pause: OnceLock<Arc<AtomicBool>>,
}

impl ServiceCore {
    /// A service over `engine` using the real clock.
    #[must_use]
    pub fn new(engine: SharedDatabase, config: ServiceConfig) -> Arc<Self> {
        Self::with_clock(engine, config, ServiceClock::real())
    }

    /// A service with an explicit (usually manual) clock.
    #[must_use]
    pub fn with_clock(
        engine: SharedDatabase,
        config: ServiceConfig,
        clock: Arc<ServiceClock>,
    ) -> Arc<Self> {
        Arc::new(ServiceCore {
            config: config.normalized(),
            engine,
            clock,
            registry: OrderedRwLock::new(
                LockLevel::ServiceRegistry,
                "ServiceCore::registry",
                HashMap::new(),
            ),
            queue: OrderedMutex::new(
                LockLevel::ServiceQueue,
                "ServiceCore::queue",
                QueueState {
                    buckets: BTreeMap::new(),
                    total: 0,
                },
            ),
            saturated: AtomicBool::new(false),
            tuner_pause: OnceLock::new(),
        })
    }

    /// Wires the background tuner's pause handle in: saturation mode
    /// pauses refinement, leaving saturation resumes it. May be called
    /// once; later calls are ignored.
    pub fn attach_tuner(&self, pause: Arc<AtomicBool>) {
        let _ = self.tuner_pause.set(pause);
    }

    /// The service clock (manual in tests).
    #[must_use]
    pub fn clock(&self) -> &Arc<ServiceClock> {
        &self.clock
    }

    /// The service configuration after normalization.
    #[must_use]
    pub fn config(&self) -> &ServiceConfig {
        &self.config
    }

    /// The shared engine the service dispatches into.
    #[must_use]
    pub fn engine(&self) -> &SharedDatabase {
        &self.engine
    }

    /// Registers client `client` and returns the receiving end of its
    /// response channel. Reconnecting an id cancels the old session's
    /// queued queries (the old receiver observes them as `Cancelled`).
    pub fn connect(&self, client: u64) -> Receiver<ServiceResponse> {
        self.connect_session(client).1
    }

    /// Like [`connect`](Self::connect), but also hands back the session
    /// itself so the caller can later tear down *exactly this* session
    /// with [`disconnect_session`](Self::disconnect_session) — immune to
    /// the reconnect race where a same-id successor registered first.
    pub fn connect_session(&self, client: u64) -> (Arc<Session>, Receiver<ServiceResponse>) {
        let (tx, rx) = mpsc::channel();
        let session = Arc::new(Session {
            client,
            cancelled: Arc::new(AtomicBool::new(false)),
            sink: tx,
            state: OrderedMutex::new(
                LockLevel::ServiceSession,
                "Session::state",
                SessionState {
                    queued: 0,
                    tokens: self.config.token_burst,
                    refilled_at: self.clock.now(),
                },
            ),
        });
        let old = self.registry.write().insert(client, Arc::clone(&session));
        if let Some(old) = old {
            old.cancelled.store(true, Ordering::Release);
        }
        (session, rx)
    }

    /// Deregisters a client and cooperatively abandons its queued
    /// queries: the cancellation flag is set, and the dispatcher sheds
    /// them with [`HolisticError::Cancelled`] instead of executing — a
    /// dropped connection never wedges a batch.
    pub fn disconnect(&self, client: u64) {
        let old = self.registry.write().remove(&client);
        if let Some(session) = old {
            session.cancelled.store(true, Ordering::Release);
        }
    }

    /// Tears down one specific session. Unlike
    /// [`disconnect`](Self::disconnect), this never touches a *successor*
    /// session that
    /// reconnected under the same client id: the registry entry is removed
    /// only if it is this very session.
    pub fn disconnect_session(&self, session: &Arc<Session>) {
        session.cancelled.store(true, Ordering::Release);
        let mut registry = self.registry.write();
        if registry
            .get(&session.client)
            .is_some_and(|current| Arc::ptr_eq(current, session))
        {
            registry.remove(&session.client);
        }
    }

    /// Admits one query for `client`, or sheds it with a typed error.
    ///
    /// `deadline` is relative to now; `None` applies the configured
    /// default. An admitted query (`Ok`) is owed exactly one
    /// [`ServiceResponse`] on the client's channel; a rejected query gets
    /// none — the typed error *is* its response.
    pub fn admit(
        &self,
        client: u64,
        request_id: u64,
        query: Query,
        deadline: Option<Duration>,
    ) -> Result<(), HolisticError> {
        let now = self.clock.now();
        let deadline = match deadline {
            Some(d) => Some(now + d),
            None if self.config.default_deadline > Duration::ZERO => {
                Some(now + self.config.default_deadline)
            }
            None => None,
        };
        // Engine read lock first (level 0): keeps the service locks above
        // it in acquisition order and makes the metrics sink reachable.
        let engine = self.engine.read();
        let metrics = engine.metrics();
        if deadline.is_some_and(|d| d <= now) {
            metrics.service_shed_deadline(1);
            return Err(HolisticError::DeadlineExceeded);
        }
        let session = self.registry.read().get(&client).cloned().ok_or_else(|| {
            HolisticError::Unsupported(format!("client {client} is not connected"))
        })?;
        if session.cancelled.load(Ordering::Acquire) {
            metrics.service_cancelled(1);
            return Err(HolisticError::Cancelled);
        }
        let mut state = session.state.lock();
        state.refill(now, &self.config);
        if state.queued >= self.config.per_client_cap || state.tokens < 1.0 {
            metrics.service_rejected(1, false);
            return Err(HolisticError::Overloaded(format!("client {client}")));
        }
        let mut queue = self.queue.lock();
        if queue.total >= self.config.global_queue_cap {
            metrics.service_rejected(1, true);
            return Err(HolisticError::Overloaded("global".into()));
        }
        state.tokens -= 1.0;
        state.queued += 1;
        queue.total += 1;
        let depth = queue.total;
        queue
            .buckets
            .entry(query.column)
            .or_default()
            .push_back(Pending {
                session: Arc::clone(&session),
                request_id,
                query,
                deadline,
                enqueued_at: now,
            });
        metrics.service_admitted(1);
        metrics.service_queue_depth(depth as u64);
        self.update_saturation(depth, metrics);
        Ok(())
    }

    /// Delivers a typed error as the response to `request_id` on the
    /// client's channel. The TCP layer uses this for admission
    /// rejections so a connection's writer stays the only socket writer.
    pub fn respond_error(&self, client: u64, request_id: u64, error: HolisticError) {
        let session = self.registry.read().get(&client).cloned();
        if let Some(session) = session {
            let _ = session.sink.send(ServiceResponse {
                request_id,
                result: Err(error),
            });
        }
    }

    /// Forms and dispatches at most one batch, if one is ready: a column
    /// bucket reached `max_batch`, or the oldest queued query has waited
    /// `batch_deadline`. Returns the number of queries dispatched (0 if
    /// nothing was ready).
    pub fn pump(&self) -> usize {
        self.pump_inner(false)
    }

    /// Dispatches everything queued, regardless of formation thresholds.
    /// Used on shutdown so no admitted query is left unanswered.
    pub fn flush(&self) -> usize {
        let mut dispatched = 0;
        loop {
            let n = self.pump_inner(true);
            if n == 0 {
                return dispatched;
            }
            dispatched += n;
        }
    }

    /// Current total queue depth.
    pub fn queue_depth(&self) -> usize {
        let engine = self.engine.read();
        let depth = self.queue.lock().total;
        drop(engine);
        depth
    }

    /// Whether the service is currently in saturation mode.
    pub fn is_saturated(&self) -> bool {
        self.saturated.load(Ordering::Acquire)
    }

    fn update_saturation(&self, depth: usize, metrics: &holistic_core::EngineMetrics) {
        if !self.saturated.load(Ordering::Acquire) {
            if depth >= self.config.saturation_high {
                self.saturated.store(true, Ordering::Release);
                metrics.service_saturation_entered();
                if let Some(pause) = self.tuner_pause.get() {
                    pause.store(true, Ordering::Release);
                }
            }
        } else if depth <= self.config.saturation_low {
            self.saturated.store(false, Ordering::Release);
            if let Some(pause) = self.tuner_pause.get() {
                pause.store(false, Ordering::Release);
            }
        }
    }

    fn pump_inner(&self, force: bool) -> usize {
        let now = self.clock.now();
        // Engine read guard for the whole dispatch: level 0 precedes every
        // service lock, and execution needs it anyway.
        let engine = self.engine.read();
        // The batch about to be formed was queued under the *current*
        // mode; capture it before the post-drain watermark update can
        // leave saturation.
        let saturated = self.saturated.load(Ordering::Acquire);
        let batch: Vec<Pending> = {
            let mut queue = self.queue.lock();
            let full = queue
                .buckets
                .iter()
                .find(|(_, b)| b.len() >= self.config.max_batch)
                .map(|(c, _)| *c);
            let pick = if force {
                queue
                    .buckets
                    .iter()
                    .find(|(_, b)| !b.is_empty())
                    .map(|(c, _)| *c)
            } else {
                full.or_else(|| {
                    // The bucket holding the globally oldest entry, once
                    // that entry has aged past the formation deadline.
                    // (Scan the whole bucket, not just the front: EDF
                    // dispatch reorders buckets, so the oldest arrival is
                    // not necessarily at the head.)
                    queue
                        .buckets
                        .iter()
                        .filter_map(|(c, b)| b.iter().map(|p| p.enqueued_at).min().map(|t| (*c, t)))
                        .min_by_key(|&(_, t)| t)
                        .filter(|&(_, t)| t + self.config.batch_deadline <= now)
                        .map(|(c, _)| c)
                })
            };
            let Some(column) = pick else {
                return 0;
            };
            let Some(bucket) = queue.buckets.get_mut(&column) else {
                return 0;
            };
            if self.config.edf_dispatch {
                // Earliest deadline first within the bucket; stable sort
                // keeps arrival order for ties, and deadline-less queries
                // (key starts with `true`) sort after every dated one.
                bucket.make_contiguous().sort_by_key(|p| {
                    (
                        p.deadline.is_none(),
                        p.deadline.unwrap_or(p.enqueued_at),
                        p.enqueued_at,
                    )
                });
            }
            let take = bucket.len().min(self.config.max_batch);
            let drained: Vec<Pending> = bucket.drain(..take).collect();
            if bucket.is_empty() {
                queue.buckets.remove(&column);
            }
            queue.total -= drained.len();
            let depth = queue.total;
            self.update_saturation(depth, engine.metrics());
            drained
        }; // ServiceQueue guard dropped: no service lock held past here.
        if batch.is_empty() {
            return 0;
        }
        // Per-session bookkeeping (level 4, one session at a time).
        for pending in &batch {
            let mut state = pending.session.state.lock();
            state.queued = state.queued.saturating_sub(1);
        }
        // Dispatch-time shed checks against the *service* clock; the
        // engine re-checks with the wall clock as a final backstop.
        let mut results: Vec<Option<Result<QueryResult, HolisticError>>> =
            (0..batch.len()).map(|_| None).collect();
        let mut live: Vec<usize> = Vec::new();
        for (i, pending) in batch.iter().enumerate() {
            if pending.session.cancelled.load(Ordering::Acquire) {
                results[i] = Some(Err(HolisticError::Cancelled));
            } else if pending.deadline.is_some_and(|d| d <= now) {
                results[i] = Some(Err(HolisticError::DeadlineExceeded));
            } else {
                live.push(i);
            }
        }
        // Saturation mode: prefer zero-read answers from the learned
        // state; only queries that would require reorganization proceed
        // to the full batch path.
        if saturated && !live.is_empty() {
            let mut degraded = 0u64;
            live.retain(|&i| match engine.execute_if_resolved(&batch[i].query) {
                Ok(Some(result)) => {
                    results[i] = Some(Ok(result));
                    degraded += 1;
                    false
                }
                Ok(None) => true,
                Err(e) => {
                    results[i] = Some(Err(e));
                    false
                }
            });
            if degraded > 0 {
                engine.metrics().service_degraded_answers(degraded);
            }
        }
        if !live.is_empty() {
            let items: Vec<GuardedQuery> = live
                .iter()
                .map(|&i| {
                    let pending = &batch[i];
                    let mut g = GuardedQuery::new(pending.query)
                        .with_cancel(pending.session.cancel_handle());
                    if let Some(d) = pending.deadline {
                        g = g.with_deadline(d);
                    }
                    g
                })
                .collect();
            let out = engine.execute_batch_guarded(&items);
            for (&i, result) in live.iter().zip(out) {
                results[i] = Some(result);
            }
        }
        let metrics = engine.metrics();
        for (pending, slot) in batch.iter().zip(results) {
            let result = match slot {
                Some(r) => r,
                // Unreachable by construction (every index is either shed
                // or live); kept typed so it could never panic a batch.
                None => Err(HolisticError::Validation(
                    "dispatch left a query slot unfilled".into(),
                )),
            };
            match &result {
                Err(HolisticError::DeadlineExceeded) => metrics.service_shed_deadline(1),
                Err(HolisticError::Cancelled) => metrics.service_cancelled(1),
                _ => {}
            }
            // A dead receiver means the client is gone; the response is
            // dropped with the channel, which is exactly "cancelled".
            let _ = pending.session.sink.send(ServiceResponse {
                request_id: pending.request_id,
                result,
            });
        }
        batch.len()
    }
}

impl std::fmt::Debug for ServiceCore {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ServiceCore")
            .field("config", &self.config)
            .field("saturated", &self.saturated.load(Ordering::Relaxed))
            .finish_non_exhaustive()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use holistic_core::{Database, HolisticConfig, IndexingStrategy};

    fn service(config: ServiceConfig) -> (Arc<ServiceCore>, SharedDatabase, ColumnId) {
        let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
        let values: Vec<i64> = (0..2000).map(|i| (i * 7919) % 2000).collect();
        let table = db.create_table("t", vec![("v", values)]).expect("create");
        let column = db.column_id(table, "v").expect("column");
        let engine = db.into_shared();
        let core = ServiceCore::with_clock(Arc::clone(&engine), config, ServiceClock::manual());
        (core, engine, column)
    }

    #[test]
    fn admitted_batch_dispatches_on_size_threshold() {
        let (core, _engine, column) = service(ServiceConfig::for_testing());
        let rx = core.connect(1);
        for i in 0..4 {
            core.admit(
                1,
                i,
                Query::range(column, (i as i64) * 10, (i as i64) * 10 + 50),
                None,
            )
            .expect("admit");
        }
        assert_eq!(core.queue_depth(), 4);
        assert_eq!(core.pump(), 4, "bucket reached max_batch");
        assert_eq!(core.queue_depth(), 0);
        let mut got: Vec<u64> = (0..4)
            .map(|_| rx.recv().expect("response").request_id)
            .collect();
        got.sort_unstable();
        assert_eq!(got, vec![0, 1, 2, 3]);
        assert!(holistic_sync::held_locks().is_empty());
    }

    #[test]
    fn undersized_batch_waits_for_the_formation_deadline() {
        let (core, _engine, column) = service(ServiceConfig::for_testing());
        let rx = core.connect(1);
        core.admit(1, 7, Query::range(column, 0, 100), None)
            .expect("admit");
        assert_eq!(core.pump(), 0, "batch not full, deadline not reached");
        core.clock().advance(Duration::from_millis(6));
        assert_eq!(core.pump(), 1, "formation deadline fired");
        assert_eq!(rx.recv().expect("response").request_id, 7);
    }

    #[test]
    fn edf_dispatch_prefers_earliest_deadlines_under_backlog() {
        let mut config = ServiceConfig::for_testing();
        config.max_batch = 2;
        let (core, _engine, column) = service(config);
        let rx = core.connect(1);
        let q = Query::range(column, 0, 10);
        // Arrival order: relaxed, urgent, middling.
        core.admit(1, 0, q, Some(Duration::from_millis(90)))
            .expect("admit");
        core.admit(1, 1, q, Some(Duration::from_millis(10)))
            .expect("admit");
        core.admit(1, 2, q, Some(Duration::from_millis(50)))
            .expect("admit");
        // The bucket exceeds max_batch: the first dispatch takes the two
        // queries closest to expiry, not the two oldest arrivals.
        assert_eq!(core.pump(), 2);
        let first: Vec<u64> = (0..2)
            .map(|_| rx.recv().expect("response").request_id)
            .collect();
        assert_eq!(first, vec![1, 2], "earliest deadlines dispatch first");
        // The relaxed query is not starved: the formation deadline still
        // fires on its (oldest remaining) arrival time.
        core.clock().advance(Duration::from_millis(6));
        assert_eq!(core.pump(), 1);
        assert_eq!(rx.recv().expect("response").request_id, 0);
        assert!(holistic_sync::held_locks().is_empty());
    }

    #[test]
    fn fifo_dispatch_preserves_arrival_order_when_edf_is_off() {
        let mut config = ServiceConfig::for_testing();
        config.max_batch = 2;
        config.edf_dispatch = false;
        let (core, _engine, column) = service(config);
        let rx = core.connect(1);
        let q = Query::range(column, 0, 10);
        core.admit(1, 0, q, Some(Duration::from_millis(90)))
            .expect("admit");
        core.admit(1, 1, q, Some(Duration::from_millis(10)))
            .expect("admit");
        core.admit(1, 2, q, Some(Duration::from_millis(50)))
            .expect("admit");
        assert_eq!(core.pump(), 2);
        let first: Vec<u64> = (0..2)
            .map(|_| rx.recv().expect("response").request_id)
            .collect();
        assert_eq!(first, vec![0, 1], "strict arrival order without EDF");
    }

    #[test]
    fn per_client_and_global_bounds_reject_typed() {
        let mut config = ServiceConfig::for_testing();
        config.per_client_cap = 2;
        config.global_queue_cap = 3;
        let (core, engine, column) = service(config);
        let _rx1 = core.connect(1);
        let _rx2 = core.connect(2);
        let q = Query::range(column, 0, 10);
        core.admit(1, 0, q, None).expect("admit");
        core.admit(1, 1, q, None).expect("admit");
        let client_full = core.admit(1, 2, q, None).expect_err("client cap");
        assert_eq!(client_full, HolisticError::Overloaded("client 1".into()));
        core.admit(2, 3, q, None).expect("admit");
        let global_full = core.admit(2, 4, q, None).expect_err("global cap");
        assert_eq!(global_full, HolisticError::Overloaded("global".into()));
        let svc = engine.read().metrics().service();
        assert_eq!(svc.admitted, 3);
        assert_eq!(svc.rejected_client, 1);
        assert_eq!(svc.rejected_global, 1);
    }

    #[test]
    fn token_bucket_limits_a_heavy_tenant_but_not_its_neighbor() {
        let mut config = ServiceConfig::for_testing();
        config.token_burst = 3.0;
        config.tokens_per_sec = 10.0;
        config.per_client_cap = 100;
        config.global_queue_cap = 100;
        let (core, _engine, column) = service(config);
        let _rx1 = core.connect(1);
        let _rx2 = core.connect(2);
        let q = Query::range(column, 0, 10);
        for i in 0..3 {
            core.admit(1, i, q, None).expect("burst fits");
        }
        assert!(matches!(
            core.admit(1, 3, q, None),
            Err(HolisticError::Overloaded(_))
        ));
        // The neighbor still has its own bucket.
        core.admit(2, 4, q, None).expect("neighbor unaffected");
        // Refill: 10 tokens/s × 200 ms = 2 more for the heavy tenant.
        core.clock().advance(Duration::from_millis(200));
        core.admit(1, 5, q, None).expect("refilled");
        core.admit(1, 6, q, None).expect("refilled");
        assert!(matches!(
            core.admit(1, 7, q, None),
            Err(HolisticError::Overloaded(_))
        ));
    }

    #[test]
    fn deadlines_are_enforced_at_admission_and_dispatch() {
        let (core, _engine, column) = service(ServiceConfig::for_testing());
        let rx = core.connect(1);
        let q = Query::range(column, 0, 10);
        // Admission: an already-expired deadline never enters the queue.
        assert_eq!(
            core.admit(1, 0, q, Some(Duration::ZERO)),
            Err(HolisticError::DeadlineExceeded)
        );
        assert_eq!(core.queue_depth(), 0);
        // Dispatch: admitted in time, but the clock outruns the deadline
        // while queued.
        core.admit(1, 1, q, Some(Duration::from_millis(10)))
            .expect("admit");
        core.clock().advance(Duration::from_millis(20));
        assert_eq!(core.pump(), 1);
        let resp = rx.recv().expect("response");
        assert_eq!(resp.request_id, 1);
        assert_eq!(resp.result, Err(HolisticError::DeadlineExceeded));
    }

    #[test]
    fn disconnect_cancels_queued_queries_without_wedging_the_batch() {
        let (core, _engine, column) = service(ServiceConfig::for_testing());
        let rx1 = core.connect(1);
        let rx2 = core.connect(2);
        core.admit(1, 0, Query::range(column, 0, 10), None)
            .expect("admit");
        core.admit(2, 1, Query::range(column, 5, 25), None)
            .expect("admit");
        core.disconnect(1);
        core.clock().advance(Duration::from_millis(6));
        assert_eq!(core.pump(), 2);
        let r1 = rx1.recv().expect("cancelled response still delivered");
        assert_eq!(r1.result, Err(HolisticError::Cancelled));
        let r2 = rx2.recv().expect("batchmate unaffected");
        assert_eq!(r2.result.as_ref().map(|r| r.count), Ok(20));
    }

    #[test]
    fn saturation_pauses_the_tuner_and_prefers_zero_read_answers() {
        let mut config = ServiceConfig::for_testing();
        config.saturation_high = 3;
        config.saturation_low = 0;
        config.global_queue_cap = 100;
        config.per_client_cap = 100;
        let (core, engine, column) = service(config);
        let pause = Arc::new(AtomicBool::new(false));
        core.attach_tuner(Arc::clone(&pause));
        let rx = core.connect(1);
        // Warm the learned state so the degraded path can answer.
        engine
            .read()
            .execute(&holistic_core::Query::range(column, 100, 200))
            .expect("warm");
        for i in 0..4 {
            core.admit(1, i, Query::range(column, 100, 200), None)
                .expect("admit");
        }
        assert!(core.is_saturated(), "high watermark crossed");
        assert!(pause.load(Ordering::Acquire), "tuner paused");
        assert_eq!(core.pump(), 4);
        for _ in 0..4 {
            let resp = rx.recv().expect("response");
            assert_eq!(resp.result.as_ref().map(|r| r.count), Ok(100));
        }
        let svc = engine.read().metrics().service();
        assert_eq!(svc.saturation_entries, 1);
        assert_eq!(svc.degraded_answers, 4, "all answered zero-read");
        assert!(!core.is_saturated(), "drained below the low watermark");
        assert!(!pause.load(Ordering::Acquire), "tuner resumed");
    }

    #[test]
    fn flush_answers_everything_and_leaves_no_latch_residue() {
        holistic_sync::set_enforcement(true);
        let (core, _engine, column) = service(ServiceConfig::for_testing());
        let rx = core.connect(1);
        for i in 0..7 {
            core.admit(1, i, Query::range(column, i as i64, i as i64 + 100), None)
                .expect("admit");
        }
        assert_eq!(core.flush(), 7);
        let mut seen: Vec<u64> = (0..7)
            .map(|_| rx.recv().expect("resp").request_id)
            .collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..7).collect::<Vec<_>>());
        assert!(holistic_sync::held_locks().is_empty());
    }
}
