//! # holistic-server
//!
//! The overload-safe front door of the holistic indexing engine: a
//! std-TCP query service (no async runtime, no external dependencies)
//! that turns concurrent client traffic into the engine's best execution
//! shape — admission-controlled, column-grouped batches — and degrades
//! *gracefully* under load instead of falling over.
//!
//! The engine's biggest measured lever is batching (warm 7.9× at batch
//! 256), but batches have to come from somewhere: [`ServiceCore`] forms
//! them from in-flight queries, dispatching when a column's bucket
//! reaches `max_batch` or the oldest entry has waited `batch_deadline` —
//! group-commit for queries. Around that sit the robustness guarantees:
//!
//! * **Bounded queues** — global and per-client; both reject with a typed
//!   [`HolisticError::Overloaded`] naming the queue, never grow unbounded.
//! * **Deadlines** — enforced at admission *and* dispatch; late queries
//!   are shed with [`HolisticError::DeadlineExceeded`], never
//!   half-executed (a shed query does no engine work at all).
//! * **Cooperative cancellation** — a dropped connection flags its
//!   session; queued queries are shed with [`HolisticError::Cancelled`]
//!   instead of wedging their batch.
//! * **Fairness** — per-client token buckets, so one heavy tenant cannot
//!   starve its neighbors of admission.
//! * **Saturation mode** — above a queue-depth watermark the service
//!   pauses the background tuner and prefers zero-read answers from the
//!   already-learned index state (`execute_if_resolved`).
//! * **Exactly one response** — every admitted query produces exactly one
//!   response or one typed shed; the chaos sweep in this crate's tests
//!   proves it under deterministic connection failure
//!   ([`ConnectionChaos`]: drop/delay/truncate the k-th wire op).
//!
//! The wire format is a length-prefixed binary protocol ([`protocol`])
//! built on the same checksummed codec as the persistence layer. The TCP
//! shell ([`net`]) is a thin thread-per-connection layer over
//! [`ServiceCore`], which is fully drivable without sockets — the
//! property tests run thousands of admission interleavings against a
//! manual [`ServiceClock`].
//!
//! ```
//! use std::sync::Arc;
//! use holistic_core::{Database, HolisticConfig, IndexingStrategy, Query};
//! use holistic_server::{ServiceConfig, ServiceCore};
//!
//! let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
//! let table = db.create_table("t", vec![("v", (0..1000).collect())]).unwrap();
//! let column = db.column_id(table, "v").unwrap();
//! let core = ServiceCore::new(db.into_shared(), ServiceConfig::for_testing());
//!
//! let responses = core.connect(7);                        // client 7 joins
//! core.admit(7, 1, Query::range(column, 100, 200), None).unwrap();
//! core.flush();                                           // dispatcher's job
//! let resp = responses.recv().unwrap();
//! assert_eq!(resp.request_id, 1);
//! assert_eq!(resp.result.unwrap().count, 100);
//! ```
//!
//! [`HolisticError::Overloaded`]: holistic_core::HolisticError::Overloaded
//! [`HolisticError::DeadlineExceeded`]: holistic_core::HolisticError::DeadlineExceeded
//! [`HolisticError::Cancelled`]: holistic_core::HolisticError::Cancelled

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod chaos;
pub mod core;
pub mod net;
pub mod protocol;

pub use chaos::{ChaosMode, ChaosState, ConnectionChaos};
pub use core::{ServiceClock, ServiceConfig, ServiceCore, ServiceResponse, Session};
pub use net::{serve, Client, Server};
pub use protocol::{QueryReq, Request, RespStatus, ResponseFrame};
