//! The TCP shell around [`ServiceCore`]: accept loop, per-connection
//! reader, per-connection writer, and the dispatcher thread.
//!
//! Thread model (all plain `std::thread`, no runtime dependency):
//!
//! * **accept** — non-blocking accept loop; spawns one reader per
//!   connection and joins them on shutdown.
//! * **reader** (per connection) — expects a `Hello` frame, registers the
//!   session, then decodes `Query` frames and calls
//!   [`ServiceCore::admit`]; admission rejections are routed back through
//!   the session's response channel so the writer stays the connection's
//!   only socket writer (no interleaved frames, ever). Reader exit —
//!   clean EOF, torn frame, chaos — deregisters the session, which
//!   cooperatively cancels its queued queries.
//! * **writer** (per connection) — drains the session's response channel
//!   and writes one frame per response. Exits when every sender is gone:
//!   the registry entry (dropped at disconnect) and the queued queries
//!   (drained by the dispatcher within the formation deadline).
//! * **dispatcher** — calls [`ServiceCore::pump`] in a loop; on shutdown
//!   it keeps running until every connection has drained, then flushes.
//!
//! A connection that dies mid-frame is indistinguishable from hostile
//! input; both paths end at "close the connection, cancel its queue" and
//! never panic a thread or leak a latch.

use std::io::{self, ErrorKind, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::mpsc::Receiver;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use holistic_core::Query;

use crate::core::{ServiceCore, ServiceResponse};
use crate::protocol::{read_frame, write_frame, Request, ResponseFrame};

/// How often blocked reads wake up to check for shutdown.
const POLL_INTERVAL: Duration = Duration::from_millis(25);
/// A peer that stalls mid-frame longer than this is torn down.
const MID_FRAME_TIMEOUT: Duration = Duration::from_secs(5);

/// A running TCP service; dropping it without [`Server::shutdown`] leaks
/// the threads, so tests and binaries should always shut down.
pub struct Server {
    core: Arc<ServiceCore>,
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    stop_dispatch: Arc<AtomicBool>,
    accept_thread: Option<JoinHandle<()>>,
    dispatch_thread: Option<JoinHandle<()>>,
}

/// Binds `bind` (e.g. `"127.0.0.1:0"`) and serves `core` on it.
pub fn serve(core: Arc<ServiceCore>, bind: &str) -> io::Result<Server> {
    let listener = TcpListener::bind(bind)?;
    listener.set_nonblocking(true)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let stop_dispatch = Arc::new(AtomicBool::new(false));

    // If the engine came up through `Database::recover`, say what the
    // degradation ladder actually delivered — the operator's only
    // chance to notice cold/sampled columns before the workload does.
    if let Some(outcome) = core.engine().read().metrics().recovery() {
        eprintln!(
            "holistic-server {addr}: recovered engine \
             (snapshot={:?}, wal_records={}, wal_bytes_dropped={}, \
             cold_columns={}, crackers_reborn={}, sampled_columns={}, \
             learned_dropped={})",
            outcome.snapshot_generation,
            outcome.wal_records_replayed,
            outcome.wal_bytes_dropped,
            outcome.cold_columns.len(),
            outcome.crackers_reborn.len(),
            outcome.sampled_columns.len(),
            outcome.learned_state_dropped,
        );
    }

    let dispatch_thread = {
        let core = Arc::clone(&core);
        let stop = Arc::clone(&stop_dispatch);
        let idle = core
            .config()
            .batch_deadline
            .div_f64(4.0)
            .max(Duration::from_micros(200));
        std::thread::spawn(move || {
            while !stop.load(Ordering::Acquire) {
                if core.pump() == 0 {
                    std::thread::sleep(idle);
                }
            }
            core.flush();
        })
    };

    let accept_thread = {
        let core = Arc::clone(&core);
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut connections: Vec<JoinHandle<()>> = Vec::new();
            while !stop.load(Ordering::Acquire) {
                match listener.accept() {
                    Ok((stream, _)) => {
                        let core = Arc::clone(&core);
                        let stop = Arc::clone(&stop);
                        connections.push(std::thread::spawn(move || {
                            let _ = run_connection(&core, stream, &stop);
                        }));
                    }
                    Err(e) if e.kind() == ErrorKind::WouldBlock => {
                        std::thread::sleep(Duration::from_millis(2));
                    }
                    Err(_) => break,
                }
            }
            for conn in connections {
                let _ = conn.join();
            }
        })
    };

    Ok(Server {
        core,
        addr,
        stop,
        stop_dispatch,
        accept_thread: Some(accept_thread),
        dispatch_thread: Some(dispatch_thread),
    })
}

impl Server {
    /// The bound address (useful with port 0).
    #[must_use]
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The service core behind this server.
    #[must_use]
    pub fn core(&self) -> &Arc<ServiceCore> {
        &self.core
    }

    /// Stops accepting, drains every connection, flushes the queue, and
    /// joins all threads. Order matters: the dispatcher must outlive the
    /// connections so their writers can drain queued responses.
    pub fn shutdown(mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(t) = self.accept_thread.take() {
            let _ = t.join();
        }
        self.stop_dispatch.store(true, Ordering::Release);
        if let Some(t) = self.dispatch_thread.take() {
            let _ = t.join();
        }
    }
}

/// Reads one frame with shutdown polling: the socket wakes every
/// [`POLL_INTERVAL`] while idle, but once a frame header starts the read
/// switches to a generous blocking timeout so a slow-but-live peer never
/// has its frame torn by the poll.
fn read_frame_interruptible(
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> io::Result<Option<Vec<u8>>> {
    loop {
        if stop.load(Ordering::Acquire) {
            return Ok(None);
        }
        stream.set_read_timeout(Some(POLL_INTERVAL))?;
        let mut first = [0u8; 1];
        match stream.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => {
                stream.set_read_timeout(Some(MID_FRAME_TIMEOUT))?;
                let mut rest = [0u8; 3];
                stream.read_exact(&mut rest)?;
                let len = u32::from_le_bytes([first[0], rest[0], rest[1], rest[2]]) as usize;
                if len > crate::protocol::MAX_FRAME {
                    return Err(io::Error::new(
                        ErrorKind::InvalidData,
                        "frame length exceeds MAX_FRAME",
                    ));
                }
                let mut payload = vec![0u8; len];
                stream.read_exact(&mut payload)?;
                return Ok(Some(payload));
            }
            Err(e) if e.kind() == ErrorKind::WouldBlock || e.kind() == ErrorKind::TimedOut => {
                continue;
            }
            Err(e) if e.kind() == ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
}

fn run_connection(
    core: &Arc<ServiceCore>,
    mut stream: TcpStream,
    stop: &AtomicBool,
) -> io::Result<()> {
    let _ = stream.set_nodelay(true);
    // The first frame must be a Hello; anything else is a protocol
    // violation and closes the connection before any state exists.
    let Some(frame) = read_frame_interruptible(&mut stream, stop)? else {
        return Ok(());
    };
    let Ok(Request::Hello { client }) = Request::decode(&frame) else {
        return Ok(());
    };
    let (session, responses) = core.connect_session(client);
    let writer = {
        let stream = stream.try_clone()?;
        std::thread::spawn(move || writer_loop(stream, responses))
    };
    let result = reader_loop(core, client, &mut stream, stop);
    // Deregister *this* session: drops the registry's channel sender and
    // cancels queued queries; the writer exits once the dispatcher drains
    // them. Identity-aware so a same-id reconnect racing our teardown is
    // never cancelled by mistake.
    core.disconnect_session(&session);
    // The session holds a response Sender; drop it BEFORE joining the
    // writer, which only exits once every sender is gone.
    drop(session);
    let _ = writer.join();
    result
}

fn reader_loop(
    core: &Arc<ServiceCore>,
    client: u64,
    stream: &mut TcpStream,
    stop: &AtomicBool,
) -> io::Result<()> {
    loop {
        let Some(frame) = read_frame_interruptible(stream, stop)? else {
            return Ok(());
        };
        let Ok(Request::Query(req)) = Request::decode(&frame) else {
            // Garbage or an out-of-place Hello: close, don't guess.
            return Ok(());
        };
        let deadline =
            (req.deadline_ms > 0).then(|| Duration::from_millis(u64::from(req.deadline_ms)));
        let query = if req.materialize {
            Query::range_materialized(req.column, req.lo, req.hi)
        } else {
            Query::range(req.column, req.lo, req.hi)
        };
        if let Err(error) = core.admit(client, req.request_id, query, deadline) {
            core.respond_error(client, req.request_id, error);
        }
    }
}

fn writer_loop(mut stream: TcpStream, responses: Receiver<ServiceResponse>) {
    let _ = stream.set_write_timeout(Some(MID_FRAME_TIMEOUT));
    // Keep draining until every sender is dropped even if the socket
    // dies, so queued responses never back up behind a dead wire.
    let mut wire_alive = true;
    while let Ok(response) = responses.recv() {
        if !wire_alive {
            continue;
        }
        let frame = ResponseFrame::from_result(response.request_id, &response.result);
        if write_frame(&mut stream, &frame.encode()).is_err() {
            wire_alive = false;
        }
    }
    let _ = stream.shutdown(std::net::Shutdown::Both);
}

/// A minimal blocking client for tests, benches and examples: `Hello` on
/// connect, pipelined queries, frame-at-a-time responses.
#[derive(Debug)]
pub struct Client {
    stream: TcpStream,
}

impl Client {
    /// Connects and introduces itself as `client`.
    pub fn connect(addr: SocketAddr, client: u64) -> io::Result<Client> {
        let mut stream = TcpStream::connect(addr)?;
        let _ = stream.set_nodelay(true);
        write_frame(&mut stream, &Request::Hello { client }.encode())?;
        Ok(Client { stream })
    }

    /// Sends one query; the response arrives via [`Client::recv`].
    pub fn send(&mut self, req: &crate::protocol::QueryReq) -> io::Result<()> {
        write_frame(&mut self.stream, &Request::Query(*req).encode())
    }

    /// Receives the next response frame (`Ok(None)` = server closed).
    pub fn recv(&mut self) -> io::Result<Option<ResponseFrame>> {
        let Some(frame) = read_frame(&mut self.stream)? else {
            return Ok(None);
        };
        ResponseFrame::decode(&frame)
            .map(Some)
            .map_err(|e| io::Error::new(ErrorKind::InvalidData, e.to_string()))
    }

    /// Bounds how long [`Client::recv`] blocks.
    pub fn set_recv_timeout(&self, timeout: Option<Duration>) -> io::Result<()> {
        self.stream.set_read_timeout(timeout)
    }

    /// A duplicate handle onto the same connection (reader/writer split).
    pub fn try_clone(&self) -> io::Result<Client> {
        Ok(Client {
            stream: self.stream.try_clone()?,
        })
    }
}

// Writer access for wrapping the raw stream (chaos tests).
impl Read for Client {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.stream.read(buf)
    }
}

impl Write for Client {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        self.stream.write(buf)
    }

    fn flush(&mut self) -> io::Result<()> {
        self.stream.flush()
    }
}
