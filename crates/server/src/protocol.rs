//! The wire protocol: length-prefixed binary frames.
//!
//! Every message is one *frame*: a little-endian `u32` payload length
//! followed by that many payload bytes. Payloads are encoded with the
//! bounds-checked [`Encoder`]/[`Decoder`] pair from `holistic-persist` —
//! the same codec the snapshot and WAL formats use — so a truncated or
//! corrupted frame decodes to a typed [`PersistError::Corrupt`], never a
//! garbage message. The first byte of every payload is a message tag.
//!
//! Client → server:
//!
//! | Tag | Message | Fields |
//! |----:|---------|--------|
//! | 1 | [`Request::Hello`] | `client: u64` — tenant identity for fair scheduling |
//! | 2 | [`Request::Query`] | see [`QueryReq`] |
//!
//! Server → client: one [`ResponseFrame`] per admitted or rejected query,
//! carrying the query's `request_id` and either results or a typed shed
//! status — the exactly-one-response contract the service enforces.
//!
//! [`PersistError::Corrupt`]: holistic_persist::PersistError

use std::io::{self, Read, Write};

use holistic_core::{HolisticError, QueryResult};
use holistic_persist::{Decoder, Encoder, PersistError};
use holistic_storage::{ColumnId, TableId};

/// Upper bound on a frame payload. A frame header claiming more than this
/// is treated as protocol corruption instead of an allocation request —
/// a garbage or hostile length prefix must not OOM the server.
pub const MAX_FRAME: usize = 1 << 26;

const TAG_HELLO: u8 = 1;
const TAG_QUERY: u8 = 2;
const TAG_RESPONSE: u8 = 3;

/// Writes one length-prefixed frame and flushes the stream.
pub fn write_frame<W: Write>(w: &mut W, payload: &[u8]) -> io::Result<()> {
    if payload.len() > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidInput,
            "frame exceeds MAX_FRAME",
        ));
    }
    w.write_all(&(payload.len() as u32).to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Reads one frame. `Ok(None)` is a clean end-of-stream (the peer closed
/// between frames); EOF *inside* a frame — a torn frame — surfaces as
/// [`io::ErrorKind::UnexpectedEof`] so callers can tell the two apart.
pub fn read_frame<R: Read>(r: &mut R) -> io::Result<Option<Vec<u8>>> {
    let mut len = [0u8; 4];
    // Read the first header byte by hand: EOF here is a clean close.
    let mut first = [0u8; 1];
    loop {
        match r.read(&mut first) {
            Ok(0) => return Ok(None),
            Ok(_) => break,
            Err(e) if e.kind() == io::ErrorKind::Interrupted => continue,
            Err(e) => return Err(e),
        }
    }
    len[0] = first[0];
    r.read_exact(&mut len[1..])?;
    let n = u32::from_le_bytes(len) as usize;
    if n > MAX_FRAME {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            "frame length exceeds MAX_FRAME",
        ));
    }
    let mut payload = vec![0u8; n];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// One query as submitted on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryReq {
    /// Client-chosen id echoed on the response; the client's correlation
    /// key for pipelined queries.
    pub request_id: u64,
    /// The queried column.
    pub column: ColumnId,
    /// Inclusive lower predicate bound.
    pub lo: i64,
    /// Exclusive upper predicate bound.
    pub hi: i64,
    /// Whether to return the qualifying values, not just count/sum.
    pub materialize: bool,
    /// Per-query deadline in milliseconds from admission; `0` means "use
    /// the server's configured default".
    pub deadline_ms: u32,
}

/// A client → server message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// The mandatory first message of a connection: who is asking.
    Hello {
        /// Tenant identity; admission fairness (token buckets, per-client
        /// queue bounds) is keyed by this id.
        client: u64,
    },
    /// A range query.
    Query(QueryReq),
}

impl Request {
    /// Encodes the request into a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        match self {
            Request::Hello { client } => {
                e.put_u8(TAG_HELLO);
                e.put_u64(*client);
            }
            Request::Query(q) => {
                e.put_u8(TAG_QUERY);
                e.put_u64(q.request_id);
                e.put_u32(q.column.table.0);
                e.put_u32(q.column.column);
                e.put_i64(q.lo);
                e.put_i64(q.hi);
                e.put_bool(q.materialize);
                e.put_u32(q.deadline_ms);
            }
        }
        e.into_bytes()
    }

    /// Decodes a frame payload into a request.
    pub fn decode(buf: &[u8]) -> Result<Request, PersistError> {
        let mut d = Decoder::new(buf);
        let req = match d.take_u8()? {
            TAG_HELLO => Request::Hello {
                client: d.take_u64()?,
            },
            TAG_QUERY => Request::Query(QueryReq {
                request_id: d.take_u64()?,
                column: ColumnId::new(TableId(d.take_u32()?), d.take_u32()?),
                lo: d.take_i64()?,
                hi: d.take_i64()?,
                materialize: d.take_bool()?,
                deadline_ms: d.take_u32()?,
            }),
            tag => {
                return Err(PersistError::Corrupt(format!(
                    "unknown request tag {tag:#x}"
                )))
            }
        };
        d.finish()?;
        Ok(req)
    }
}

/// The typed outcome of a query, as carried on the wire.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[repr(u8)]
pub enum RespStatus {
    /// The query executed; `count`/`sum`/`values` are valid.
    Ok = 0,
    /// Shed at admission: a bounded queue was full or a rate limit fired.
    /// `detail` names the rejecting queue (`"global"` or the client).
    Overloaded = 1,
    /// Shed because the deadline expired before execution.
    DeadlineExceeded = 2,
    /// Abandoned because the owning connection dropped.
    Cancelled = 3,
    /// Any other engine error; `detail` carries the display string.
    Error = 4,
}

impl RespStatus {
    fn from_u8(v: u8) -> Result<Self, PersistError> {
        match v {
            0 => Ok(RespStatus::Ok),
            1 => Ok(RespStatus::Overloaded),
            2 => Ok(RespStatus::DeadlineExceeded),
            3 => Ok(RespStatus::Cancelled),
            4 => Ok(RespStatus::Error),
            b => Err(PersistError::Corrupt(format!(
                "unknown response status {b:#x}"
            ))),
        }
    }

    /// Whether this status is a typed load shed (the query was never
    /// executed, not even partially, and is safe to retry).
    #[must_use]
    pub fn is_shed(&self) -> bool {
        matches!(
            self,
            RespStatus::Overloaded | RespStatus::DeadlineExceeded | RespStatus::Cancelled
        )
    }
}

/// A server → client message: the response to exactly one query.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ResponseFrame {
    /// Echo of the query's `request_id`.
    pub request_id: u64,
    /// The typed outcome.
    pub status: RespStatus,
    /// Number of qualifying rows (0 unless `status == Ok`).
    pub count: u64,
    /// Sum of qualifying values (0 unless `status == Ok`).
    pub sum: i128,
    /// Qualifying values, when the query asked for materialization.
    pub values: Option<Vec<i64>>,
    /// Human-readable detail for `Overloaded`/`Error` statuses.
    pub detail: String,
}

impl ResponseFrame {
    /// Builds the wire response for an engine-side result.
    #[must_use]
    pub fn from_result(request_id: u64, result: &Result<QueryResult, HolisticError>) -> Self {
        match result {
            Ok(r) => ResponseFrame {
                request_id,
                status: RespStatus::Ok,
                count: r.count,
                sum: r.sum,
                values: r.values.clone(),
                detail: String::new(),
            },
            Err(e) => {
                let status = match e {
                    HolisticError::Overloaded(_) => RespStatus::Overloaded,
                    HolisticError::DeadlineExceeded => RespStatus::DeadlineExceeded,
                    HolisticError::Cancelled => RespStatus::Cancelled,
                    _ => RespStatus::Error,
                };
                let detail = match e {
                    HolisticError::Overloaded(queue) => queue.clone(),
                    HolisticError::DeadlineExceeded | HolisticError::Cancelled => String::new(),
                    other => other.to_string(),
                };
                ResponseFrame {
                    request_id,
                    status,
                    count: 0,
                    sum: 0,
                    values: None,
                    detail,
                }
            }
        }
    }

    /// Encodes the response into a frame payload.
    #[must_use]
    pub fn encode(&self) -> Vec<u8> {
        let mut e = Encoder::new();
        e.put_u8(TAG_RESPONSE);
        e.put_u64(self.request_id);
        e.put_u8(self.status as u8);
        e.put_u64(self.count);
        e.put_i128(self.sum);
        match &self.values {
            Some(vs) => {
                e.put_bool(true);
                e.put_i64_slice(vs);
            }
            None => e.put_bool(false),
        }
        e.put_str(&self.detail);
        e.into_bytes()
    }

    /// Decodes a frame payload into a response.
    pub fn decode(buf: &[u8]) -> Result<ResponseFrame, PersistError> {
        let mut d = Decoder::new(buf);
        let tag = d.take_u8()?;
        if tag != TAG_RESPONSE {
            return Err(PersistError::Corrupt(format!(
                "unknown response tag {tag:#x}"
            )));
        }
        let resp = ResponseFrame {
            request_id: d.take_u64()?,
            status: RespStatus::from_u8(d.take_u8()?)?,
            count: d.take_u64()?,
            sum: d.take_i128()?,
            values: if d.take_bool()? {
                Some(d.take_i64_vec()?)
            } else {
                None
            },
            detail: d.take_str()?,
        };
        d.finish()?;
        Ok(resp)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_query() -> Request {
        Request::Query(QueryReq {
            request_id: 42,
            column: ColumnId::new(TableId(3), 1),
            lo: -100,
            hi: 250,
            materialize: true,
            deadline_ms: 75,
        })
    }

    #[test]
    fn requests_round_trip() {
        for req in [Request::Hello { client: 7 }, sample_query()] {
            let bytes = req.encode();
            assert_eq!(Request::decode(&bytes).expect("decode"), req);
        }
    }

    #[test]
    fn responses_round_trip() {
        let ok = ResponseFrame {
            request_id: 9,
            status: RespStatus::Ok,
            count: 3,
            sum: -12,
            values: Some(vec![1, -5, -8]),
            detail: String::new(),
        };
        let shed = ResponseFrame::from_result(10, &Err(HolisticError::Overloaded("global".into())));
        for resp in [ok, shed] {
            let bytes = resp.encode();
            assert_eq!(ResponseFrame::decode(&bytes).expect("decode"), resp);
        }
    }

    #[test]
    fn typed_errors_map_to_typed_statuses() {
        let cases: Vec<(HolisticError, RespStatus)> = vec![
            (
                HolisticError::Overloaded("client 3".into()),
                RespStatus::Overloaded,
            ),
            (
                HolisticError::DeadlineExceeded,
                RespStatus::DeadlineExceeded,
            ),
            (HolisticError::Cancelled, RespStatus::Cancelled),
            (HolisticError::Persist("disk".into()), RespStatus::Error),
        ];
        for (err, status) in cases {
            let frame = ResponseFrame::from_result(1, &Err(err));
            assert_eq!(frame.status, status);
            assert_eq!(frame.status.is_shed(), status != RespStatus::Error);
        }
    }

    #[test]
    fn truncated_payloads_decode_to_typed_corruption() {
        let bytes = sample_query().encode();
        for cut in 0..bytes.len() {
            let err = Request::decode(&bytes[..cut]);
            assert!(err.is_err(), "truncation at {cut} must not decode");
        }
        // Trailing garbage is corruption too, not silently ignored.
        let mut padded = bytes.clone();
        padded.push(0xff);
        assert!(Request::decode(&padded).is_err());
    }

    #[test]
    fn frames_round_trip_and_reject_oversize() {
        let mut wire = Vec::new();
        write_frame(&mut wire, b"abc").expect("write");
        write_frame(&mut wire, b"").expect("write");
        let mut r = &wire[..];
        assert_eq!(read_frame(&mut r).expect("frame 1"), Some(b"abc".to_vec()));
        assert_eq!(read_frame(&mut r).expect("frame 2"), Some(Vec::new()));
        assert_eq!(read_frame(&mut r).expect("eof"), None);

        // A torn frame (header promises more than the stream holds) is an
        // UnexpectedEof error, not a clean None.
        let mut torn = Vec::new();
        write_frame(&mut torn, b"hello world").expect("write");
        torn.truncate(7);
        let mut r = &torn[..];
        let err = read_frame(&mut r).expect_err("torn frame");
        assert_eq!(err.kind(), io::ErrorKind::UnexpectedEof);

        // A hostile length prefix is rejected before allocation.
        let huge = (MAX_FRAME as u32 + 1).to_le_bytes();
        let mut r = &huge[..];
        assert!(read_frame(&mut r).is_err());
    }
}
