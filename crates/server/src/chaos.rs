//! Deterministic connection chaos: the wire-level sibling of the disk
//! `FaultInjector`.
//!
//! [`ConnectionChaos`] wraps any `Read`/`Write` stream and misbehaves at
//! exactly the *k*-th wire operation — drop the connection, truncate a
//! write mid-frame, or delay — where operations are counted across both
//! directions through a shared [`ChaosState`]. Wrapping the two halves of
//! a duplexed `TcpStream` (via `try_clone`) with the same state keeps the
//! count global per connection, so a sweep over `k` visits every
//! interleaving point of a session deterministically: after the hello,
//! between two pipelined queries, halfway through a response frame, …
//!
//! The chaos sweep tests use this to prove the service's
//! exactly-one-response contract survives arbitrary connection failure:
//! no admitted query is ever lost, duplicated, or answered with a torn
//! frame, and a killed session leaves no latch residue behind.

use std::io::{self, Read, Write};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// What to do at the chosen operation index.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ChaosMode {
    /// Fail the k-th operation with `ConnectionReset` and every operation
    /// after it: the peer vanished between two wire ops.
    DropAt(u64),
    /// At the k-th operation, deliver only *half*: a write pushes half the
    /// buffer to the wire then fails, a read reports end-of-stream. The
    /// peer observes a torn frame.
    TruncateAt(u64),
    /// Stall the k-th operation for the given duration, then proceed — a
    /// network hiccup, not a failure.
    DelayAt(u64, Duration),
}

/// Operation counter and liveness flag shared between the read and write
/// halves of one chaotic connection.
#[derive(Debug, Default)]
pub struct ChaosState {
    ops: AtomicU64,
    dead: AtomicBool,
}

impl ChaosState {
    /// A fresh counter starting at operation 0.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(ChaosState::default())
    }

    /// Wire operations performed so far across every wrapper sharing this
    /// state. Run a session once un-killed to learn its op count, then
    /// sweep `k` over `0..ops()`.
    pub fn ops(&self) -> u64 {
        self.ops.load(Ordering::Relaxed)
    }
}

/// A `Read`/`Write` adapter that injects [`ChaosMode`] faults at a
/// deterministic operation index.
#[derive(Debug)]
pub struct ConnectionChaos<S> {
    inner: S,
    mode: ChaosMode,
    state: Arc<ChaosState>,
}

impl<S> ConnectionChaos<S> {
    /// Wraps `inner`, counting operations in the shared `state`.
    pub fn new(inner: S, mode: ChaosMode, state: Arc<ChaosState>) -> Self {
        ConnectionChaos { inner, mode, state }
    }

    /// Whether a fault already fired on this connection.
    pub fn is_dead(&self) -> bool {
        self.state.dead.load(Ordering::Acquire)
    }

    /// Checks the fault schedule for the next operation. Returns the
    /// action to take: `Proceed`, `Truncate` (this op only), or an error.
    fn admit(&mut self) -> io::Result<Admit> {
        if self.is_dead() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: connection already dead",
            ));
        }
        let k = self.state.ops.fetch_add(1, Ordering::Relaxed);
        match self.mode {
            ChaosMode::DropAt(at) if k >= at => {
                self.state.dead.store(true, Ordering::Release);
                Err(io::Error::new(
                    io::ErrorKind::ConnectionReset,
                    "chaos: connection dropped",
                ))
            }
            ChaosMode::TruncateAt(at) if k >= at => {
                self.state.dead.store(true, Ordering::Release);
                Ok(Admit::Truncate)
            }
            ChaosMode::DelayAt(at, pause) if k == at => {
                std::thread::sleep(pause);
                Ok(Admit::Proceed)
            }
            _ => Ok(Admit::Proceed),
        }
    }
}

enum Admit {
    Proceed,
    Truncate,
}

impl<S: Read> Read for ConnectionChaos<S> {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        match self.admit()? {
            // A truncated read is a premature end-of-stream: the bytes the
            // peer sent after this point never arrive.
            Admit::Truncate => Ok(0),
            Admit::Proceed => self.inner.read(buf),
        }
    }
}

impl<S: Write> Write for ConnectionChaos<S> {
    fn write(&mut self, buf: &[u8]) -> io::Result<usize> {
        match self.admit()? {
            Admit::Truncate => {
                // Half the buffer reaches the wire, then the connection
                // dies — the peer sees a torn frame. Reporting the error
                // (not a short write) stops `write_all` from retrying.
                let half = buf.len() / 2;
                self.inner.write_all(&buf[..half])?;
                let _ = self.inner.flush();
                Err(io::Error::new(
                    io::ErrorKind::BrokenPipe,
                    "chaos: write truncated",
                ))
            }
            Admit::Proceed => self.inner.write(buf),
        }
    }

    fn flush(&mut self) -> io::Result<()> {
        // Flushes are not scheduled operations; they only observe death.
        if self.is_dead() {
            return Err(io::Error::new(
                io::ErrorKind::ConnectionReset,
                "chaos: connection already dead",
            ));
        }
        self.inner.flush()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::Cursor;

    #[test]
    fn drop_kills_the_kth_op_and_everything_after() {
        let state = ChaosState::new();
        let mut w = ConnectionChaos::new(Vec::new(), ChaosMode::DropAt(2), Arc::clone(&state));
        assert!(w.write(b"a").is_ok());
        assert!(w.write(b"b").is_ok());
        let err = w.write(b"c").expect_err("third op dies");
        assert_eq!(err.kind(), io::ErrorKind::ConnectionReset);
        assert!(w.write(b"d").is_err(), "dead stays dead");
        assert_eq!(w.inner, b"ab");
    }

    #[test]
    fn counter_is_shared_across_directions() {
        let state = ChaosState::new();
        let mut w = ConnectionChaos::new(Vec::new(), ChaosMode::DropAt(1), Arc::clone(&state));
        let mut r = ConnectionChaos::new(
            Cursor::new(b"xyz".to_vec()),
            ChaosMode::DropAt(1),
            Arc::clone(&state),
        );
        let mut buf = [0u8; 1];
        assert!(r.read(&mut buf).is_ok(), "op 0 proceeds");
        assert!(w.write(b"a").is_err(), "op 1 on the other half dies");
        assert!(r.read(&mut buf).is_err(), "death is shared");
        assert_eq!(state.ops(), 2);
    }

    #[test]
    fn truncate_delivers_half_a_write_then_dies() {
        let state = ChaosState::new();
        let mut w = ConnectionChaos::new(Vec::new(), ChaosMode::TruncateAt(0), state);
        let err = w.write(b"12345678").expect_err("truncated");
        assert_eq!(err.kind(), io::ErrorKind::BrokenPipe);
        assert_eq!(w.inner, b"1234", "exactly half reached the wire");
    }

    #[test]
    fn truncated_read_is_premature_eof() {
        let state = ChaosState::new();
        let mut r = ConnectionChaos::new(
            Cursor::new(b"abcdef".to_vec()),
            ChaosMode::TruncateAt(1),
            state,
        );
        let mut buf = [0u8; 3];
        assert_eq!(r.read(&mut buf).expect("op 0"), 3);
        assert_eq!(r.read(&mut buf).expect("op 1 truncates"), 0);
    }

    #[test]
    fn delay_stalls_exactly_once_and_proceeds() {
        let state = ChaosState::new();
        let mut w = ConnectionChaos::new(
            Vec::new(),
            ChaosMode::DelayAt(1, Duration::from_millis(5)),
            state,
        );
        let t0 = std::time::Instant::now();
        assert!(w.write(b"a").is_ok());
        assert!(t0.elapsed() < Duration::from_millis(5));
        let t1 = std::time::Instant::now();
        assert!(w.write(b"b").is_ok());
        assert!(t1.elapsed() >= Duration::from_millis(5));
        assert!(w.write(b"c").is_ok(), "delay is not a failure");
        assert_eq!(w.inner, b"abc");
    }
}
