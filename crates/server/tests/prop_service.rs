//! Property: the batched service is *answer-equivalent* to a sequential
//! reference, and its admission ledger balances exactly.
//!
//! Arbitrary interleavings of admissions, manual-clock advances, pumps,
//! disconnects and reconnects are driven against an in-process
//! [`ServiceCore`]. For every operation stream:
//!
//! * every admitted query (admit returned `Ok`) produces **exactly one**
//!   response across all response channels — current and abandoned alike —
//!   and every rejected query produces none;
//! * every `Ok` response carries the same count/sum a fresh sequential
//!   engine produces for that range (batching, reordering, saturation and
//!   cancellation never change an answer that is delivered);
//! * every error response is a *typed* shed (`Overloaded`,
//!   `DeadlineExceeded`, `Cancelled`) — never an untyped failure;
//! * the queue depth never exceeds the configured global cap;
//! * the driving thread ends with zero latch residue under enforcement.

use std::collections::HashMap;
use std::sync::mpsc::Receiver;
use std::time::Duration;

use proptest::prelude::*;

use holistic_core::{Database, HolisticConfig, HolisticError, IndexingStrategy, Query};
use holistic_server::{ServiceClock, ServiceConfig, ServiceCore, ServiceResponse};

const CLIENTS: u64 = 3;

#[derive(Debug, Clone, PartialEq, Eq)]
enum Op {
    /// Admit a range query for a client; `deadline_ms == 0` uses the
    /// service default.
    Admit {
        client: u64,
        lo: i64,
        width: i64,
        deadline_ms: u32,
    },
    AdvanceClock(u64),
    Pump,
    Disconnect(u64),
    Reconnect(u64),
}

prop_compose! {
    /// Raw `(tag, client, lo, width, ms)` tuples decoded into ops (the
    /// vendored proptest has no `prop_oneof`). Admissions dominate so the
    /// queue actually fills.
    fn arb_ops()(raw in prop::collection::vec(
        ((0u8..10, 0u64..CLIENTS), (-200i64..600, 0i64..250, 0u64..30)),
        10..60,
    )) -> Vec<Op> {
        raw.into_iter()
            .map(|((tag, client), (lo, width, ms))| match tag {
                0..=5 => Op::Admit { client, lo, width, deadline_ms: (ms as u32) * 3 },
                6 => Op::AdvanceClock(ms),
                7 => Op::Pump,
                8 => Op::Disconnect(client),
                _ => Op::Reconnect(client),
            })
            .collect()
    }
}

fn table_values() -> Vec<i64> {
    (0..800).map(|i| (i * 37) % 700 - 150).collect()
}

fn reference(lo: i64, hi: i64) -> (u64, i128) {
    let mut count = 0u64;
    let mut sum = 0i128;
    for v in table_values() {
        if v >= lo && v < hi {
            count += 1;
            sum += i128::from(v);
        }
    }
    (count, sum)
}

fn drain(channels: &mut Vec<Receiver<ServiceResponse>>) -> Vec<ServiceResponse> {
    let mut all = Vec::new();
    for rx in channels.drain(..) {
        while let Ok(resp) = rx.try_recv() {
            all.push(resp);
        }
    }
    all
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn batched_service_is_answer_equivalent_to_sequential(ops in arb_ops()) {
        holistic_sync::set_enforcement(true);

        let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
        let table = db.create_table("t", vec![("v", table_values())]).unwrap();
        let column = db.column_id(table, "v").unwrap();

        let clock = ServiceClock::manual();
        let mut config = ServiceConfig::for_testing();
        config.default_deadline = Duration::from_millis(40);
        let core = ServiceCore::with_clock(db.into_shared(), config, clock);

        // All response channels ever handed out — replaced receivers keep
        // collecting the sheds of their abandoned sessions.
        let mut channels: Vec<Receiver<ServiceResponse>> = Vec::new();
        for client in 0..CLIENTS {
            channels.push(core.connect(client));
        }

        // request_id -> (lo, hi) for every *admitted* query.
        let mut admitted: HashMap<u64, (i64, i64)> = HashMap::new();
        let mut rejected: Vec<u64> = Vec::new();
        let mut next_request = 0u64;

        for op in &ops {
            match op {
                Op::Admit { client, lo, width, deadline_ms } => {
                    let request_id = next_request;
                    next_request += 1;
                    let hi = lo + width;
                    let deadline = if *deadline_ms == 0 {
                        None
                    } else {
                        Some(Duration::from_millis(u64::from(*deadline_ms)))
                    };
                    match core.admit(*client, request_id, Query::range(column, *lo, hi), deadline) {
                        Ok(()) => {
                            admitted.insert(request_id, (*lo, hi));
                        }
                        Err(e) => {
                            // Rejections are typed: backpressure, a hopeless
                            // deadline, or a client that is gone.
                            prop_assert!(
                                e.is_shed() || matches!(e, HolisticError::Unsupported(_)),
                                "untyped rejection: {e}"
                            );
                            rejected.push(request_id);
                        }
                    }
                }
                Op::AdvanceClock(ms) => core.clock().advance(Duration::from_millis(*ms)),
                Op::Pump => {
                    core.pump();
                }
                Op::Disconnect(client) => core.disconnect(*client),
                Op::Reconnect(client) => {
                    channels.push(core.connect(*client));
                }
            }
            prop_assert!(
                core.queue_depth() <= core.config().global_queue_cap,
                "queue depth {} exceeded the global cap {}",
                core.queue_depth(),
                core.config().global_queue_cap,
            );
        }

        core.flush();
        prop_assert_eq!(core.queue_depth(), 0, "flush left queries behind");

        let responses = drain(&mut channels);

        // The ledger: every admitted query answered exactly once, every
        // rejected query never answered.
        let mut seen: HashMap<u64, u32> = HashMap::new();
        for resp in &responses {
            *seen.entry(resp.request_id).or_insert(0) += 1;
        }
        for (request_id, count) in &seen {
            prop_assert_eq!(
                *count, 1,
                "request {} answered {} times", request_id, count
            );
            prop_assert!(
                admitted.contains_key(request_id),
                "request {} answered but never admitted", request_id
            );
        }
        for request_id in admitted.keys() {
            prop_assert!(
                seen.contains_key(request_id),
                "admitted request {} was lost", request_id
            );
        }
        for request_id in &rejected {
            prop_assert!(
                !seen.contains_key(request_id),
                "rejected request {} was answered anyway", request_id
            );
        }

        // Answer equivalence: a delivered Ok equals the sequential
        // reference; a delivered error is a typed shed.
        for resp in &responses {
            let (lo, hi) = admitted[&resp.request_id];
            match &resp.result {
                Ok(result) => {
                    let (count, sum) = reference(lo, hi);
                    prop_assert_eq!(result.count, count, "wrong count for [{}, {})", lo, hi);
                    prop_assert_eq!(result.sum, sum, "wrong sum for [{}, {})", lo, hi);
                }
                Err(e) => prop_assert!(e.is_shed(), "untyped error response: {e}"),
            }
        }

        prop_assert!(
            holistic_sync::held_locks().is_empty(),
            "latch residue after the op stream"
        );
    }
}
