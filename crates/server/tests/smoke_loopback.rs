//! End-to-end smoke: a real loopback server under an open-loop Poisson
//! load, driven by the workload crate's generator. This is the CI smoke
//! job's target — it runs under `HOLISTIC_PARANOIA=1` and keeps its
//! runtime to well under a second of offered load.
//!
//! Checked end to end:
//!
//! * every request sent on an intact connection receives exactly one
//!   response frame (admission rejections arrive as typed frames too);
//! * every `Ok` answer equals a brute-force scan of the column;
//! * every non-`Ok` status is a typed shed, never `Error`;
//! * the service ledger balances: `admitted = delivered Ok + engine sheds`
//!   and `rejected` equals the typed rejection frames the clients saw;
//! * no latch residue on the driving thread.

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use holistic_core::{Database, HolisticConfig, IndexingStrategy};
use holistic_server::{serve, Client, QueryReq, RespStatus, ServiceConfig, ServiceCore};
use holistic_workload::{OpenLoopBuilder, UniformRangeGenerator};

const ROWS: i64 = 5_000;
const ARRIVALS: usize = 240;
const RATE_QPS: f64 = 600.0;
const LOAD_CLIENTS: usize = 3;

fn values() -> Vec<i64> {
    (0..ROWS).map(|i| (i * 7919) % ROWS).collect()
}

fn reference(lo: i64, hi: i64) -> (u64, i128) {
    let mut count = 0u64;
    let mut sum = 0i128;
    for v in values() {
        if v >= lo && v < hi {
            count += 1;
            sum += i128::from(v);
        }
    }
    (count, sum)
}

#[test]
fn poisson_load_over_loopback_answers_everything_exactly_once() {
    holistic_sync::set_enforcement(true);

    let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
    let table = db.create_table("t", vec![("v", values())]).unwrap();
    let column = db.column_id(table, "v").unwrap();
    let engine = db.into_shared();

    let config = ServiceConfig {
        max_batch: 16,
        batch_deadline: Duration::from_millis(1),
        default_deadline: Duration::from_secs(5),
        ..ServiceConfig::default()
    };
    let core = ServiceCore::new(Arc::clone(&engine), config);
    let server = serve(core, "127.0.0.1:0").expect("bind loopback");
    let addr = server.addr();

    // An open-loop Poisson schedule over the load clients: arrival times
    // are fixed up front; senders pace against the wall clock regardless
    // of response progress.
    let schedule = OpenLoopBuilder::new(RATE_QPS)
        .with_clients(LOAD_CLIENTS)
        .build(
            &mut UniformRangeGenerator::new(0, 0, ROWS, 0.01),
            ARRIVALS,
            &mut StdRng::seed_from_u64(42),
        );

    let mut handles = Vec::new();
    for client in 0..LOAD_CLIENTS {
        let mine: Vec<_> = schedule
            .iter()
            .filter(|a| a.client == client)
            .copied()
            .collect();
        handles.push(thread::spawn(move || {
            let sender = Client::connect(addr, client as u64).expect("connect");
            let mut receiver = sender.try_clone().expect("clone");
            receiver
                .set_recv_timeout(Some(Duration::from_secs(10)))
                .expect("timeout");

            // The sender tells the collector what it sent (and when) over
            // a channel; the collector correlates response frames by id.
            let (meta_tx, meta_rx) = mpsc::channel::<(u64, i64, i64, Instant)>();
            let expected = mine.len();
            let collector = thread::spawn(move || {
                let mut pending = std::collections::HashMap::new();
                let mut seen = std::collections::HashSet::new();
                let mut ok = 0usize;
                let mut shed = 0usize;
                let mut latencies = Vec::new();
                for _ in 0..expected {
                    let resp = receiver
                        .recv()
                        .expect("recv failed")
                        .expect("server closed early");
                    while let Ok((id, lo, hi, at)) = meta_rx.try_recv() {
                        pending.insert(id, (lo, hi, at));
                    }
                    let (lo, hi, sent_at) = pending
                        .get(&resp.request_id)
                        .copied()
                        .expect("response for a request never sent");
                    assert!(
                        seen.insert(resp.request_id),
                        "request {} answered twice",
                        resp.request_id
                    );
                    match resp.status {
                        RespStatus::Ok => {
                            let (count, sum) = reference(lo, hi);
                            assert_eq!(resp.count, count, "wrong count for [{lo}, {hi})");
                            assert_eq!(resp.sum, sum, "wrong sum for [{lo}, {hi})");
                            latencies.push(sent_at.elapsed());
                            ok += 1;
                        }
                        RespStatus::Error => panic!("untyped error: {}", resp.detail),
                        _ => shed += 1,
                    }
                }
                (ok, shed, latencies)
            });

            let mut sender = sender;
            let start = Instant::now();
            for (i, arrival) in mine.iter().enumerate() {
                if let Some(wait) = arrival.at.checked_sub(start.elapsed()) {
                    thread::sleep(wait);
                }
                let req = QueryReq {
                    request_id: i as u64,
                    column,
                    lo: arrival.query.lo,
                    hi: arrival.query.hi,
                    materialize: false,
                    deadline_ms: 0,
                };
                meta_tx
                    .send((req.request_id, req.lo, req.hi, Instant::now()))
                    .expect("collector alive");
                sender.send(&req).expect("send");
            }
            drop(meta_tx);
            collector.join().expect("collector panicked")
        }));
    }

    let mut ok = 0usize;
    let mut shed = 0usize;
    let mut latencies: Vec<Duration> = Vec::new();
    for handle in handles {
        let (o, s, l) = handle.join().expect("load client panicked");
        ok += o;
        shed += s;
        latencies.extend(l);
    }

    // Exactly one response per send, across all clients.
    assert_eq!(ok + shed, ARRIVALS, "lost or duplicated responses");
    // This load is far below capacity: the vast majority must succeed.
    assert!(
        ok * 10 >= ARRIVALS * 9,
        "excessive shedding: {ok}/{ARRIVALS} ok"
    );

    // Latency sanity: an Ok answer implies dispatch before its deadline;
    // wire latency stays within the same order of magnitude.
    latencies.sort();
    let p99 = latencies[latencies.len() * 99 / 100];
    assert!(p99 < Duration::from_secs(6), "p99 {p99:?} out of bounds");

    server.shutdown();

    // The service ledger balances against what the clients observed.
    let svc = engine.read().metrics().service();
    assert_eq!(
        svc.admitted as usize,
        ok + shed - (svc.rejected_global + svc.rejected_client) as usize,
        "admitted = responses - typed rejections"
    );
    assert!(
        holistic_sync::held_locks().is_empty(),
        "latch residue on the driving thread"
    );
}
