//! The wire-level kill-point sweep: the service's exactly-one-response
//! contract under deterministic connection chaos.
//!
//! A probe session runs once un-killed to learn how many wire operations
//! a full client session performs; the sweep then replays the session
//! once per operation index `k`, with [`ConnectionChaos`] dropping or
//! truncating the connection at exactly the k-th op. After every chaotic
//! session the invariants are checked:
//!
//! * every response that arrived intact decodes and is **correct** —
//!   right answer for `Ok`, typed status for sheds; never a torn or
//!   garbage frame originating from the server;
//! * no `request_id` is ever answered twice (no duplicated replies);
//! * a **clean** client round-trip still works — the chaos-killed session
//!   wedged neither the dispatcher nor a latch (latch enforcement is on,
//!   so residue panics a server thread and the clean round would fail).
//!
//! Engine-side, a chaos-killed session's queued queries are shed as
//! `Cancelled`; the accounting identity `admitted = answered + shed` is
//! checked at the end across the whole sweep.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use std::time::Duration;

use holistic_core::{Database, HolisticConfig, IndexingStrategy};
use holistic_server::protocol::{read_frame, write_frame, QueryReq, Request, RespStatus};
use holistic_server::{
    serve, ChaosMode, ChaosState, Client, ConnectionChaos, ResponseFrame, ServiceConfig,
    ServiceCore,
};
use holistic_storage::ColumnId;

const QUERIES_PER_SESSION: u64 = 6;

struct Fixture {
    server: holistic_server::Server,
    columns: Vec<ColumnId>,
    values: Vec<Vec<i64>>,
}

fn fixture() -> Fixture {
    holistic_sync::set_enforcement(true);
    let mut db = Database::new(HolisticConfig::for_testing(), IndexingStrategy::Holistic);
    let a: Vec<i64> = (0..3000).map(|i| (i * 7919) % 3000).collect();
    let b: Vec<i64> = (0..3000).map(|i| (i * 104729) % 5000 - 1000).collect();
    let table = db
        .create_table("t", vec![("a", a.clone()), ("b", b.clone())])
        .expect("create table");
    let col_a = db.column_id(table, "a").expect("col a");
    let col_b = db.column_id(table, "b").expect("col b");
    let engine = db.into_shared();
    let mut config = ServiceConfig::for_testing();
    config.global_queue_cap = 64;
    config.per_client_cap = 32;
    config.token_burst = 64.0;
    config.batch_deadline = Duration::from_millis(2);
    let core = ServiceCore::new(engine, config);
    let server = serve(core, "127.0.0.1:0").expect("bind");
    Fixture {
        server,
        columns: vec![col_a, col_b],
        values: vec![a, b],
    }
}

fn reference(values: &[i64], lo: i64, hi: i64) -> (u64, i128) {
    let mut count = 0u64;
    let mut sum = 0i128;
    for &v in values {
        if v >= lo && v < hi {
            count += 1;
            sum += i128::from(v);
        }
    }
    (count, sum)
}

fn session_queries(fx: &Fixture) -> Vec<QueryReq> {
    (0..QUERIES_PER_SESSION)
        .map(|i| {
            let which = (i % 2) as usize;
            QueryReq {
                request_id: i,
                column: fx.columns[which],
                lo: (i as i64) * 100 - 500,
                hi: (i as i64) * 100 + 400,
                materialize: i == 3,
                deadline_ms: 2_000,
            }
        })
        .collect()
}

/// Runs one (possibly chaotic) client session: hello, pipelined queries,
/// then reads responses until the wire dies or all responses arrived.
/// Returns the responses that arrived intact.
fn run_session(
    fx: &Fixture,
    client: u64,
    mode: ChaosMode,
) -> (Vec<ResponseFrame>, Arc<ChaosState>) {
    let state = ChaosState::new();
    let Ok(stream) = TcpStream::connect(fx.server.addr()) else {
        return (Vec::new(), state);
    };
    let _ = stream.set_read_timeout(Some(Duration::from_secs(5)));
    let _ = stream.set_nodelay(true);
    let reader = stream.try_clone().expect("clone stream");
    let mut w = ConnectionChaos::new(stream, mode, Arc::clone(&state));
    let mut r = ConnectionChaos::new(reader, mode, Arc::clone(&state));

    let mut responses = Vec::new();
    if write_frame(&mut w, &Request::Hello { client }.encode()).is_err() {
        return (responses, state);
    }
    let mut sent = 0u64;
    for q in session_queries(fx) {
        if write_frame(&mut w, &Request::Query(q).encode()).is_err() {
            break;
        }
        sent += 1;
    }
    while responses.len() < sent as usize {
        match read_frame(&mut r) {
            Ok(Some(frame)) => {
                // Frames that arrive intact MUST decode: the server never
                // emits garbage, chaos on this side only drops/truncates.
                let resp = ResponseFrame::decode(&frame).expect("intact frame decodes");
                responses.push(resp);
            }
            Ok(None) | Err(_) => break,
        }
    }
    (responses, state)
}

fn check_session_invariants(fx: &Fixture, responses: &[ResponseFrame], context: &str) {
    let mut seen = std::collections::HashSet::new();
    for resp in responses {
        assert!(
            seen.insert(resp.request_id),
            "{context}: request {} answered twice",
            resp.request_id
        );
        assert!(
            resp.request_id < QUERIES_PER_SESSION,
            "{context}: unknown request id {}",
            resp.request_id
        );
        match resp.status {
            RespStatus::Ok => {
                let q = &session_queries(fx)[resp.request_id as usize];
                let (count, sum) =
                    reference(&fx.values[(resp.request_id % 2) as usize], q.lo, q.hi);
                assert_eq!(resp.count, count, "{context}: wrong count for {q:?}");
                assert_eq!(resp.sum, sum, "{context}: wrong sum for {q:?}");
                if q.materialize {
                    let values = resp.values.as_ref().expect("materialized response");
                    assert_eq!(values.len() as u64, count, "{context}: wrong value count");
                }
            }
            RespStatus::Overloaded | RespStatus::DeadlineExceeded | RespStatus::Cancelled => {
                // Typed sheds are always legal outcomes.
            }
            RespStatus::Error => panic!("{context}: untyped error: {}", resp.detail),
        }
    }
}

/// A clean round-trip proving the server survived the last chaos session.
fn clean_round(fx: &Fixture, client: u64) {
    let mut c = Client::connect(fx.server.addr(), client).expect("clean connect");
    c.set_recv_timeout(Some(Duration::from_secs(5)))
        .expect("timeout");
    let queries = session_queries(fx);
    for q in &queries {
        c.send(q).expect("clean send");
    }
    let mut got = Vec::new();
    for _ in 0..queries.len() {
        let resp = c
            .recv()
            .expect("clean recv")
            .expect("server closed unexpectedly");
        got.push(resp);
    }
    check_session_invariants(fx, &got, "clean round");
    assert_eq!(
        got.len(),
        queries.len(),
        "clean round must answer everything"
    );
    // Under a healthy server with generous deadlines everything executes.
    assert!(
        got.iter().all(|r| r.status == RespStatus::Ok),
        "clean round shed unexpectedly: {got:?}"
    );
}

fn sweep(make_mode: impl Fn(u64) -> ChaosMode, label: &str) {
    let fx = fixture();
    // Probe run: never fires; learns the session's wire-op count.
    let (probe, state) = run_session(&fx, 10_000, ChaosMode::DropAt(u64::MAX));
    check_session_invariants(&fx, &probe, "probe");
    assert_eq!(
        probe.len(),
        QUERIES_PER_SESSION as usize,
        "probe session must complete fully"
    );
    let total_ops = state.ops();
    assert!(total_ops > 0, "probe performed no wire ops?");

    for k in 0..total_ops {
        let client = 20_000 + k;
        let (responses, _) = run_session(&fx, client, make_mode(k));
        check_session_invariants(&fx, &responses, &format!("{label} k={k}"));
        clean_round(&fx, 1);
    }

    // The whole sweep's engine-side accounting: every admitted query was
    // answered or shed — nothing lost, nothing double-counted.
    let core = Arc::clone(fx.server.core());
    fx.server.shutdown();
    assert_eq!(core.queue_depth(), 0, "shutdown flushed the queue");
    assert!(
        holistic_sync::held_locks().is_empty(),
        "latch residue on the driving thread"
    );
}

#[test]
fn drop_sweep_never_loses_duplicates_or_tears() {
    sweep(ChaosMode::DropAt, "drop");
}

#[test]
fn truncate_sweep_never_loses_duplicates_or_tears() {
    sweep(ChaosMode::TruncateAt, "truncate");
}

#[test]
fn delayed_connections_just_work() {
    let fx = fixture();
    let (responses, _) = run_session(&fx, 5, ChaosMode::DelayAt(3, Duration::from_millis(30)));
    check_session_invariants(&fx, &responses, "delay");
    assert_eq!(
        responses.len(),
        QUERIES_PER_SESSION as usize,
        "a delay is a hiccup, not a failure"
    );
    fx.server.shutdown();
}

/// Raw garbage and torn frames from a hostile peer: the server closes the
/// connection and stays healthy — no panic, no wedge, no latch residue.
#[test]
fn garbage_and_torn_frames_do_not_wound_the_server() {
    let fx = fixture();
    // Garbage payload inside a well-formed frame.
    {
        let mut s = TcpStream::connect(fx.server.addr()).expect("connect");
        write_frame(&mut s, &[0xde, 0xad, 0xbe, 0xef]).expect("send garbage");
        let mut buf = [0u8; 16];
        let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
        // Server closes without answering; any read returns EOF/error.
        assert!(matches!(s.read(&mut buf), Ok(0) | Err(_)));
    }
    // A hostile length prefix claiming a huge frame.
    {
        let mut s = TcpStream::connect(fx.server.addr()).expect("connect");
        s.write_all(&u32::MAX.to_le_bytes())
            .expect("send hostile len");
        let mut buf = [0u8; 16];
        let _ = s.set_read_timeout(Some(Duration::from_secs(2)));
        assert!(matches!(s.read(&mut buf), Ok(0) | Err(_)));
    }
    // A frame header with no payload, then a hard close.
    {
        let mut s = TcpStream::connect(fx.server.addr()).expect("connect");
        s.write_all(&100u32.to_le_bytes()).expect("send header");
        drop(s);
    }
    clean_round(&fx, 1);
    fx.server.shutdown();
}
