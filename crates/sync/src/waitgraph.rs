//! Cross-thread wait-for graph (the `wait-graph` cargo feature).
//!
//! The static hierarchy check in `lib.rs` is per-thread: it catches a
//! thread acquiring out of order, which is sufficient to rule out cycles
//! *when enforcement is on everywhere*. This module is the dynamic
//! backstop for everything else — it tracks, globally, which thread
//! holds which lock in which mode and which lock each thread is blocked
//! on, and panics with the full cycle *before* a deadlock can latch.
//!
//! Conflict detection is mode-aware: shared holders do not conflict with
//! a shared acquisition, so reader pile-ups on the engine lock never
//! report a false cycle.
//!
//! Every blocking acquisition serializes through one registry mutex, so
//! this is a stress-test diagnostic, not a production mode.

use std::collections::HashMap;
// The registry cannot itself be an ordered lock (it backs the ordered
// locks), so it uses std directly. lint:allow(raw-lock)
use std::sync::Mutex;
use std::thread::ThreadId;

/// How an acquisition (or holder) uses a lock.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum Mode {
    /// Shared (RwLock read).
    Shared,
    /// Exclusive (RwLock write, Mutex lock).
    Exclusive,
}

impl Mode {
    fn conflicts_with(self, other: Mode) -> bool {
        matches!(self, Mode::Exclusive) || matches!(other, Mode::Exclusive)
    }
}

#[derive(Default)]
struct Graph {
    /// lock id -> current holders (a lock can have many shared holders).
    holders: HashMap<usize, Vec<(ThreadId, Mode)>>,
    /// thread -> the lock it is currently blocked acquiring.
    waiting: HashMap<ThreadId, (usize, Mode)>,
    /// lock id -> diagnostic name (last seen).
    names: HashMap<usize, &'static str>,
}

static GRAPH: Mutex<Option<Graph>> = Mutex::new(None);

fn with_graph<R>(f: impl FnOnce(&mut Graph) -> R) -> R {
    let mut slot = match GRAPH.lock() {
        Ok(g) => g,
        // A panic while the registry was held (it never should be) must
        // not cascade into every later acquisition.
        Err(poisoned) => poisoned.into_inner(),
    };
    f(slot.get_or_insert_with(Graph::default))
}

/// Registration for one blocking acquisition: created before the block,
/// consumed by [`WaitReg::acquired`] once the lock is held. Dropping it
/// un-acquired (unwind while blocked) removes the waiting edge.
pub(crate) struct WaitReg {
    lock: usize,
    mode: Mode,
    armed: bool,
}

impl WaitReg {
    /// Record that the current thread is about to block on `lock`.
    ///
    /// # Panics
    /// If blocking would close a wait-for cycle with the current holders
    /// and waiters — i.e. this acquisition would deadlock.
    pub(crate) fn begin(lock: usize, name: &'static str, mode: Mode) -> Self {
        let me = std::thread::current().id();
        let cycle = with_graph(|g| {
            g.names.insert(lock, name);
            if let Some(desc) = find_cycle(g, me, lock, mode) {
                return Some(desc);
            }
            g.waiting.insert(me, (lock, mode));
            None
        });
        if let Some(desc) = cycle {
            // lint:allow(panic-path) -- deadlock detection reports by panic
            panic!("deadlock cycle detected: {desc}");
        }
        WaitReg {
            lock,
            mode,
            armed: true,
        }
    }

    /// The blocked acquisition succeeded: waiting edge becomes a holder.
    pub(crate) fn acquired(mut self) {
        let me = std::thread::current().id();
        with_graph(|g| {
            g.waiting.remove(&me);
            g.holders
                .entry(self.lock)
                .or_default()
                .push((me, self.mode));
        });
        self.armed = false;
    }
}

impl Drop for WaitReg {
    fn drop(&mut self) {
        if self.armed {
            let me = std::thread::current().id();
            with_graph(|g| {
                g.waiting.remove(&me);
            });
        }
    }
}

/// A guard dropped: remove one matching holder entry.
pub(crate) fn wait_release(lock: usize, mode: Mode) {
    let me = std::thread::current().id();
    with_graph(|g| {
        if let Some(hs) = g.holders.get_mut(&lock) {
            if let Some(i) = hs.iter().rposition(|&(t, m)| t == me && m == mode) {
                hs.remove(i);
            }
            if hs.is_empty() {
                g.holders.remove(&lock);
            }
        }
    });
}

/// Would `me` blocking on `(lock, mode)` close a cycle? Walks
/// conflicting holders of the target lock, then whatever *they* are
/// blocked on, transitively, looking for a path back to `me`.
fn find_cycle(g: &Graph, me: ThreadId, lock: usize, mode: Mode) -> Option<String> {
    fn name(g: &Graph, lock: usize) -> &'static str {
        g.names.get(&lock).copied().unwrap_or("<unknown>")
    }
    fn walk(
        g: &Graph,
        me: ThreadId,
        lock: usize,
        mode: Mode,
        visited: &mut Vec<ThreadId>,
        path: &mut Vec<String>,
    ) -> bool {
        let Some(holders) = g.holders.get(&lock) else {
            return false;
        };
        for &(t, held_mode) in holders {
            if !mode.conflicts_with(held_mode) {
                continue;
            }
            if t == me {
                return true;
            }
            if visited.contains(&t) {
                continue;
            }
            visited.push(t);
            if let Some(&(next_lock, next_mode)) = g.waiting.get(&t) {
                path.push(format!(
                    "{t:?} holds {:?} and waits for {:?}",
                    name(g, lock),
                    name(g, next_lock)
                ));
                if walk(g, me, next_lock, next_mode, visited, path) {
                    return true;
                }
                path.pop();
            }
        }
        false
    }

    let mut visited = Vec::new();
    let mut path = vec![format!("{me:?} wants {:?} ({mode:?})", name(g, lock))];
    if walk(g, me, lock, mode, &mut visited, &mut path) {
        Some(path.join("; "))
    } else {
        None
    }
}
