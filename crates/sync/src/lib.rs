//! # holistic-sync
//!
//! The ordered lock layer: every lock in the workspace is an
//! [`OrderedRwLock`] or [`OrderedMutex`] carrying a compile-time
//! [`LockLevel`] and a static name. Under enforcement (debug builds,
//! `HOLISTIC_PARANOIA=1`, or [`set_enforcement`]) each thread keeps a
//! stack of the levels it holds and any acquisition that is not strictly
//! deeper than everything already held panics, naming both locks. That
//! turns latch-order violations — the classic source of rare production
//! deadlocks — into immediate, deterministic test failures.
//!
//! The hierarchy (documented in `ARCHITECTURE.md`, enforced here and by
//! the `holistic-analysis` lint):
//!
//! | Level | Name        | Lock                                          |
//! |------:|-------------|-----------------------------------------------|
//! |     0 | Engine      | caller-owned `Arc<OrderedRwLock<Database>>`   |
//! |     2 | ServiceRegistry | `holistic-server` client/session map      |
//! |     4 | ServiceSession  | per-session state + response writer       |
//! |     6 | ServiceQueue    | `holistic-server` global admission queue  |
//! |    10 | Persistence | `Database::persistence` (serializes IO)       |
//! |    15 | HealthMap   | `Database::health` column-health map          |
//! |    20 | CrackerMap  | `Database::crackers` map lock                 |
//! |    25 | Shard       | per-column shard-list lock (`ConcurrentCrackerColumn::shards`) |
//! |    30 | Column      | per-shard `ConcurrentCrackerColumn` piece-table latch |
//! |    40 | Online      | `Database::online` tuner state                |
//! |    50 | StatsMap    | `KernelStatistics::columns` map lock          |
//! |    60 | Histogram   | per-column `ColumnStats::predicate`           |
//! |    70 | Summary     | `KernelStatistics::summary`                   |
//! |    80 | Metrics     | `EngineMetrics::queries`                      |
//! |    90 | Penalty     | `Database::pending_penalty`                   |
//!
//! A thread may hold any subset of these simultaneously as long as it
//! acquired them in strictly increasing level order; two locks at the
//! same level must never be held together (same-level reentrancy is how
//! reader/writer self-deadlocks happen).
//!
//! When enforcement is off (release builds by default) an acquisition
//! costs one relaxed atomic load and a predictable branch on top of the
//! underlying lock — the wrappers are newtypes around the vendored
//! `parking_lot` stand-ins and add no other state per lock beyond the
//! level and name.
//!
//! The `wait-graph` cargo feature additionally maintains a global
//! wait-for graph and panics on cross-thread cycles *before* blocking —
//! a backstop for deadlocks the static hierarchy cannot see (e.g. when
//! enforcement is off). It serializes every blocking acquisition through
//! a registry lock, so it is for stress tests only:
//! `cargo test -p holistic-sync --features wait-graph`.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::cell::RefCell;
use std::fmt;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};

// The vendored parking_lot stand-in hands back std's guard types.
use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

use parking_lot::{Mutex, RwLock};

/// Position of a lock in the global latch hierarchy.
///
/// Levels must be acquired in strictly increasing order within a thread;
/// the numeric gaps leave room for future locks without renumbering
/// (`Shard = 25` was slotted into exactly such a gap).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[repr(u8)]
pub enum LockLevel {
    /// The caller-owned engine lock (`Arc<OrderedRwLock<Database>>`).
    Engine = 0,
    /// `holistic-server` client/session registry map.
    ///
    /// The service layer sits *above* the engine in call order but its
    /// locks are never held across an `Engine` acquisition: the
    /// dispatcher drains queues, drops every service guard, and only
    /// then takes the engine read lock. Placing the service levels
    /// between `Engine` and `Persistence` additionally allows sending
    /// responses while an engine guard is still held (0 → 2/4/6 is
    /// strictly increasing).
    ServiceRegistry = 2,
    /// Per-session service state (queued-query count, response writer).
    ServiceSession = 4,
    /// The global admission queue in `holistic-server`.
    ServiceQueue = 6,
    /// `Database::persistence`: serializes snapshot/WAL IO.
    Persistence = 10,
    /// `Database::health`: the per-column health / scrub-cursor map.
    ///
    /// Sits above `CrackerMap` so quarantine decisions (made while no
    /// cracker handle is held) can still consult health before touching
    /// the cracker map, and is never held across a `Column` latch.
    HealthMap = 15,
    /// `Database::crackers`: the column-id → cracker map.
    CrackerMap = 20,
    /// The shard-*list* lock of a sharded `ConcurrentCrackerColumn`: read
    /// to fan a query out over the shard slots, written only when an
    /// insert spills past the last shard's extent and appends a slot.
    ///
    /// Sits between `CrackerMap` and `Column` (the gap reserved for it):
    /// a fan-out holds the list lock while visiting shard latches one at
    /// a time. Two `Column`-level shard latches are never held together —
    /// same-level enforcement turns that into a panic — so intra-query
    /// parallel cracking hands each shard to its own worker thread.
    Shard = 25,
    /// The per-shard reader/writer piece-table latch (each shard of a
    /// `ConcurrentCrackerColumn`; an unsharded column is one shard).
    Column = 30,
    /// `Database::online`: the online tuner state.
    Online = 40,
    /// `KernelStatistics::columns`: the per-column statistics map.
    StatsMap = 50,
    /// Per-column predicate histogram (`ColumnStats::predicate`).
    Histogram = 60,
    /// `KernelStatistics::summary`: the observed-workload summary.
    Summary = 70,
    /// `EngineMetrics::queries`: the query-record log.
    Metrics = 80,
    /// `Database::pending_penalty`: offline-build latency accounting.
    Penalty = 90,
}

// --- enforcement switch ----------------------------------------------------

const ENFORCE_UNINIT: u8 = 0;
const ENFORCE_OFF: u8 = 1;
const ENFORCE_ON: u8 = 2;

static ENFORCE: AtomicU8 = AtomicU8::new(ENFORCE_UNINIT);

/// Turn hierarchy enforcement on or off for the whole process.
///
/// The engine wires this to `HolisticConfig::paranoia`, so
/// `HolisticConfig::for_testing()` and `HOLISTIC_PARANOIA=1` enable it in
/// release builds; debug builds default to on.
pub fn set_enforcement(on: bool) {
    ENFORCE.store(if on { ENFORCE_ON } else { ENFORCE_OFF }, Ordering::Relaxed);
}

/// Whether hierarchy enforcement is currently active.
///
/// The first call resolves the default: on under `debug_assertions`,
/// otherwise taken from the `HOLISTIC_PARANOIA` environment variable.
#[inline]
pub fn enforcement_enabled() -> bool {
    match ENFORCE.load(Ordering::Relaxed) {
        ENFORCE_ON => true,
        ENFORCE_OFF => false,
        _ => {
            let on = cfg!(debug_assertions) || paranoia_env();
            set_enforcement(on);
            on
        }
    }
}

fn paranoia_env() -> bool {
    std::env::var("HOLISTIC_PARANOIA")
        .map(|v| !v.is_empty() && v != "0" && !v.eq_ignore_ascii_case("false"))
        .unwrap_or(false)
}

// --- per-thread held-lock stack --------------------------------------------

struct Held {
    level: u8,
    name: &'static str,
    token: u64,
}

thread_local! {
    static HELD: RefCell<Vec<Held>> = const { RefCell::new(Vec::new()) };
}

/// Monotonic token source; `0` is reserved for "nothing to release"
/// (acquisitions made while enforcement was off).
static NEXT_TOKEN: AtomicU64 = AtomicU64::new(1);

/// Levels (and names) of the locks the current thread holds, innermost
/// last. Only tracked while enforcement is on; exposed for tests and
/// diagnostics.
pub fn held_locks() -> Vec<(u8, &'static str)> {
    HELD.try_with(|h| h.borrow().iter().map(|e| (e.level, e.name)).collect())
        .unwrap_or_default()
}

/// Validate an acquisition against the held stack and push it.
/// Returns the token to release on drop (0 when enforcement is off).
#[inline]
fn check_acquire(level: LockLevel, name: &'static str) -> u64 {
    if !enforcement_enabled() {
        return 0;
    }
    HELD.try_with(|h| {
        let mut stack = h.borrow_mut();
        if let Some(deepest) = stack.iter().max_by_key(|e| e.level) {
            if level as u8 <= deepest.level {
                // lint:allow(panic-path) -- this panic IS the enforcement
                panic!(
                    "lock order violation: acquiring {name:?} (level {} = {level:?}) \
                     while holding {:?} (level {}); locks must be taken in strictly \
                     increasing LockLevel order",
                    level as u8, deepest.name, deepest.level,
                );
            }
        }
        let token = NEXT_TOKEN.fetch_add(1, Ordering::Relaxed);
        stack.push(Held {
            level: level as u8,
            name,
            token,
        });
        token
    })
    // During thread teardown the TLS slot may already be gone; skip
    // tracking rather than abort inside a destructor.
    .unwrap_or(0)
}

#[inline]
fn release_token(token: u64) {
    if token == 0 {
        return;
    }
    let _ = HELD.try_with(|h| {
        let mut stack = h.borrow_mut();
        // Guards may drop out of LIFO order (two-phase code keeps an outer
        // guard while cycling inner ones), so find the entry by token.
        if let Some(i) = stack.iter().rposition(|e| e.token == token) {
            stack.remove(i);
        }
    });
}

// --- wait-for graph (feature-gated) ----------------------------------------

#[cfg(feature = "wait-graph")]
mod waitgraph;

#[cfg(feature = "wait-graph")]
use waitgraph::{Mode, WaitReg};

#[cfg(not(feature = "wait-graph"))]
#[derive(Clone, Copy)]
enum Mode {
    Shared,
    Exclusive,
}

/// No-op stand-in so the lock code reads the same with the feature off.
#[cfg(not(feature = "wait-graph"))]
struct WaitReg;

#[cfg(not(feature = "wait-graph"))]
impl WaitReg {
    #[inline]
    fn begin(_lock: usize, _name: &'static str, _mode: Mode) -> Self {
        WaitReg
    }
    #[inline]
    fn acquired(self) {}
}

#[cfg(not(feature = "wait-graph"))]
#[inline]
fn wait_release(_lock: usize, _mode: Mode) {}

#[cfg(feature = "wait-graph")]
use waitgraph::wait_release;

// --- ordered RwLock --------------------------------------------------------

/// A reader/writer lock with a fixed [`LockLevel`] and name, enforcing
/// the global latch hierarchy on every acquisition (see crate docs).
pub struct OrderedRwLock<T> {
    level: LockLevel,
    name: &'static str,
    inner: RwLock<T>,
}

impl<T> OrderedRwLock<T> {
    /// Create a lock at `level`. The name appears in violation panics and
    /// deadlock reports; use the field path (e.g. `"Database::crackers"`).
    pub fn new(level: LockLevel, name: &'static str, value: T) -> Self {
        Self {
            level,
            name,
            inner: RwLock::new(value),
        }
    }

    /// The lock's position in the hierarchy.
    pub fn level(&self) -> LockLevel {
        self.level
    }

    /// The lock's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Consume the lock, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    fn id(&self) -> usize {
        std::ptr::from_ref(&self.inner) as usize
    }

    /// Acquire shared access, blocking until available.
    ///
    /// # Panics
    /// Under enforcement, if the calling thread already holds a lock at
    /// this level or deeper.
    #[inline]
    pub fn read(&self) -> OrderedRwLockReadGuard<'_, T> {
        let token = check_acquire(self.level, self.name);
        let reg = WaitReg::begin(self.id(), self.name, Mode::Shared);
        let guard = self.inner.read();
        reg.acquired();
        OrderedRwLockReadGuard {
            lock_id: self.id(),
            token,
            guard,
        }
    }

    /// Acquire exclusive access, blocking until available.
    ///
    /// # Panics
    /// Under enforcement, if the calling thread already holds a lock at
    /// this level or deeper.
    #[inline]
    pub fn write(&self) -> OrderedRwLockWriteGuard<'_, T> {
        let token = check_acquire(self.level, self.name);
        let reg = WaitReg::begin(self.id(), self.name, Mode::Exclusive);
        let guard = self.inner.write();
        reg.acquired();
        OrderedRwLockWriteGuard {
            lock_id: self.id(),
            token,
            guard,
        }
    }

    /// Try to acquire shared access without blocking. Hierarchy checks
    /// still apply: even a `try_` acquisition out of order is a protocol
    /// violation (holding it while blocking on a shallower lock is the
    /// deadlock).
    #[inline]
    pub fn try_read(&self) -> Option<OrderedRwLockReadGuard<'_, T>> {
        let token = check_acquire(self.level, self.name);
        match self.inner.try_read() {
            Some(guard) => Some(OrderedRwLockReadGuard {
                lock_id: self.id(),
                token,
                guard,
            }),
            None => {
                release_token(token);
                None
            }
        }
    }

    /// Try to acquire exclusive access without blocking (checked like
    /// [`Self::try_read`]).
    #[inline]
    pub fn try_write(&self) -> Option<OrderedRwLockWriteGuard<'_, T>> {
        let token = check_acquire(self.level, self.name);
        match self.inner.try_write() {
            Some(guard) => Some(OrderedRwLockWriteGuard {
                lock_id: self.id(),
                token,
                guard,
            }),
            None => {
                release_token(token);
                None
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedRwLock<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("OrderedRwLock");
        s.field("name", &self.name).field("level", &self.level);
        match self.inner.try_read() {
            Some(guard) => s.field("data", &&*guard).finish(),
            None => s.field("data", &"<locked>").finish(),
        }
    }
}

/// Shared guard for [`OrderedRwLock`]; releases the hierarchy entry on drop.
pub struct OrderedRwLockReadGuard<'a, T> {
    lock_id: usize,
    token: u64,
    guard: RwLockReadGuard<'a, T>,
}

impl<T> std::ops::Deref for OrderedRwLockReadGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> Drop for OrderedRwLockReadGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        wait_release(self.lock_id, Mode::Shared);
        release_token(self.token);
    }
}

/// Exclusive guard for [`OrderedRwLock`]; releases the hierarchy entry on
/// drop.
pub struct OrderedRwLockWriteGuard<'a, T> {
    lock_id: usize,
    token: u64,
    guard: RwLockWriteGuard<'a, T>,
}

impl<T> std::ops::Deref for OrderedRwLockWriteGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for OrderedRwLockWriteGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for OrderedRwLockWriteGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        wait_release(self.lock_id, Mode::Exclusive);
        release_token(self.token);
    }
}

// --- ordered Mutex ---------------------------------------------------------

/// A mutex with a fixed [`LockLevel`] and name, enforcing the global
/// latch hierarchy on every acquisition (see crate docs).
pub struct OrderedMutex<T> {
    level: LockLevel,
    name: &'static str,
    inner: Mutex<T>,
}

impl<T> OrderedMutex<T> {
    /// Create a mutex at `level` (see [`OrderedRwLock::new`]).
    pub fn new(level: LockLevel, name: &'static str, value: T) -> Self {
        Self {
            level,
            name,
            inner: Mutex::new(value),
        }
    }

    /// The lock's position in the hierarchy.
    pub fn level(&self) -> LockLevel {
        self.level
    }

    /// The lock's diagnostic name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// Consume the mutex, returning the protected value.
    pub fn into_inner(self) -> T {
        self.inner.into_inner()
    }

    fn id(&self) -> usize {
        std::ptr::from_ref(&self.inner) as usize
    }

    /// Acquire the mutex, blocking until available.
    ///
    /// # Panics
    /// Under enforcement, if the calling thread already holds a lock at
    /// this level or deeper.
    #[inline]
    pub fn lock(&self) -> OrderedMutexGuard<'_, T> {
        let token = check_acquire(self.level, self.name);
        let reg = WaitReg::begin(self.id(), self.name, Mode::Exclusive);
        let guard = self.inner.lock();
        reg.acquired();
        OrderedMutexGuard {
            lock_id: self.id(),
            token,
            guard,
        }
    }

    /// Try to acquire the mutex without blocking (hierarchy-checked like
    /// [`OrderedRwLock::try_read`]).
    #[inline]
    pub fn try_lock(&self) -> Option<OrderedMutexGuard<'_, T>> {
        let token = check_acquire(self.level, self.name);
        match self.inner.try_lock() {
            Some(guard) => Some(OrderedMutexGuard {
                lock_id: self.id(),
                token,
                guard,
            }),
            None => {
                release_token(token);
                None
            }
        }
    }
}

impl<T: fmt::Debug> fmt::Debug for OrderedMutex<T> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let mut s = f.debug_struct("OrderedMutex");
        s.field("name", &self.name).field("level", &self.level);
        match self.inner.try_lock() {
            Some(guard) => s.field("data", &&*guard).finish(),
            None => s.field("data", &"<locked>").finish(),
        }
    }
}

/// Guard for [`OrderedMutex`]; releases the hierarchy entry on drop.
pub struct OrderedMutexGuard<'a, T> {
    lock_id: usize,
    token: u64,
    guard: MutexGuard<'a, T>,
}

impl<T> std::ops::Deref for OrderedMutexGuard<'_, T> {
    type Target = T;
    #[inline]
    fn deref(&self) -> &T {
        &self.guard
    }
}

impl<T> std::ops::DerefMut for OrderedMutexGuard<'_, T> {
    #[inline]
    fn deref_mut(&mut self) -> &mut T {
        &mut self.guard
    }
}

impl<T> Drop for OrderedMutexGuard<'_, T> {
    #[inline]
    fn drop(&mut self) {
        wait_release(self.lock_id, Mode::Exclusive);
        release_token(self.token);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn on() {
        set_enforcement(true);
    }

    #[test]
    fn in_order_acquisition_is_fine() {
        on();
        let engine = OrderedRwLock::new(LockLevel::Engine, "engine", 1);
        let column = OrderedRwLock::new(LockLevel::Column, "column", 2);
        let metrics = OrderedMutex::new(LockLevel::Metrics, "metrics", 3);
        let e = engine.read();
        let c = column.write();
        let m = metrics.lock();
        assert_eq!((*e, *c, *m), (1, 2, 3));
        assert_eq!(held_locks().len(), 3);
        drop((e, c, m));
        assert!(held_locks().is_empty());
    }

    #[test]
    #[should_panic(expected = "lock order violation")]
    fn stats_before_column_panics() {
        on();
        let stats = OrderedRwLock::new(LockLevel::StatsMap, "stats.columns", ());
        let column = OrderedRwLock::new(LockLevel::Column, "column.inner", ());
        let _s = stats.read();
        let _c = column.write(); // 30 after 50: out of order
    }

    #[test]
    #[should_panic(expected = "lock order violation")]
    fn same_level_reentrancy_panics() {
        on();
        let a = OrderedMutex::new(LockLevel::Online, "online.a", ());
        let b = OrderedMutex::new(LockLevel::Online, "online.b", ());
        let _a = a.lock();
        let _b = b.lock(); // same level held twice
    }

    #[test]
    fn non_lifo_drop_order_is_tracked_correctly() {
        on();
        let a = OrderedRwLock::new(LockLevel::CrackerMap, "a", ());
        let b = OrderedRwLock::new(LockLevel::Column, "b", ());
        let c = OrderedMutex::new(LockLevel::Online, "c", ());
        let ga = a.read();
        let gb = b.read();
        drop(ga); // outer guard released first
        let gc = c.lock();
        assert_eq!(
            held_locks().iter().map(|&(l, _)| l).collect::<Vec<_>>(),
            vec![LockLevel::Column as u8, LockLevel::Online as u8]
        );
        drop((gb, gc));
        assert!(held_locks().is_empty());
    }

    #[test]
    fn failed_try_acquisition_leaves_no_residue() {
        on();
        let col = OrderedRwLock::new(LockLevel::Column, "col", ());
        let pen = OrderedMutex::new(LockLevel::Penalty, "pen", ());
        let w = col.write();
        let p = pen.lock();
        // Contended try_* from another thread must not leave entries on
        // *its* stack.
        std::thread::scope(|s| {
            s.spawn(|| {
                on();
                assert!(col.try_read().is_none());
                assert!(col.try_write().is_none());
                assert!(pen.try_lock().is_none());
                assert!(held_locks().is_empty());
            });
        });
        drop((w, p));
        // Successful try_* acquisitions are tracked and released.
        let g = col.try_write().expect("uncontended");
        assert_eq!(held_locks().len(), 1);
        drop(g);
        assert!(held_locks().is_empty());
    }

    #[test]
    fn sequential_same_level_is_fine() {
        on();
        let a = OrderedMutex::new(LockLevel::Histogram, "h1", ());
        let b = OrderedMutex::new(LockLevel::Histogram, "h2", ());
        drop(a.lock());
        drop(b.lock()); // not held simultaneously: allowed
    }

    #[test]
    fn into_inner_and_accessors() {
        let l = OrderedRwLock::new(LockLevel::Summary, "s", 7);
        assert_eq!(l.level(), LockLevel::Summary);
        assert_eq!(l.name(), "s");
        assert_eq!(l.into_inner(), 7);
        let m = OrderedMutex::new(LockLevel::Metrics, "m", 9);
        assert_eq!(m.into_inner(), 9);
    }
}
