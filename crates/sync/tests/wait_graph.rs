//! Stress tests for the feature-gated wait-for graph:
//! `cargo test -p holistic-sync --features wait-graph`.
//!
//! These run with hierarchy enforcement OFF — the static level check
//! would reject the deadlocking shape before it ever blocked, and the
//! wait-for graph exists precisely as the backstop for that mode.

#![cfg(feature = "wait-graph")]

use std::sync::{Arc, Barrier};

use holistic_sync::{set_enforcement, LockLevel, OrderedMutex, OrderedRwLock};

/// Two threads lock two mutexes in opposite orders. Without the graph
/// this hangs forever; with it, exactly one thread panics with the cycle
/// before blocking, the other completes.
#[test]
fn deadlock_cycle_is_detected_not_hung() {
    set_enforcement(false);
    let x = Arc::new(OrderedMutex::new(LockLevel::Column, "lock-x", ()));
    let y = Arc::new(OrderedMutex::new(LockLevel::Column, "lock-y", ()));
    let barrier = Arc::new(Barrier::new(2));

    let spawn =
        |first: Arc<OrderedMutex<()>>, second: Arc<OrderedMutex<()>>, gate: Arc<Barrier>| {
            std::thread::spawn(move || {
                let _g = first.lock();
                gate.wait(); // both threads hold their first lock before either
                let _h = second.lock(); // tries to take the other's
            })
        };
    let a = spawn(Arc::clone(&x), Arc::clone(&y), Arc::clone(&barrier));
    let b = spawn(y, x, barrier);

    let results = [a.join(), b.join()];
    let panics: Vec<String> = results
        .into_iter()
        .filter_map(|r| r.err())
        .map(|e| {
            e.downcast_ref::<String>()
                .cloned()
                .or_else(|| e.downcast_ref::<&str>().map(|s| s.to_string()))
                .unwrap_or_default()
        })
        .collect();
    assert_eq!(panics.len(), 1, "exactly one thread must detect the cycle");
    assert!(
        panics[0].contains("deadlock cycle detected"),
        "panic must name the cycle, got: {}",
        panics[0]
    );
}

/// Shared acquisitions do not conflict with shared holders: two threads
/// read-locking two RwLocks in opposite orders is NOT a cycle and must
/// complete without a report.
#[test]
fn read_read_opposite_order_is_not_a_cycle() {
    set_enforcement(false);
    let x = Arc::new(OrderedRwLock::new(LockLevel::Column, "rw-x", 1));
    let y = Arc::new(OrderedRwLock::new(LockLevel::Column, "rw-y", 2));
    let barrier = Arc::new(Barrier::new(2));

    let spawn =
        |first: Arc<OrderedRwLock<i32>>, second: Arc<OrderedRwLock<i32>>, gate: Arc<Barrier>| {
            std::thread::spawn(move || {
                let g = first.read();
                gate.wait();
                let h = second.read();
                gate.wait(); // both threads hold both read guards here
                *g + *h
            })
        };
    let a = spawn(Arc::clone(&x), Arc::clone(&y), Arc::clone(&barrier));
    let b = spawn(y, x, barrier);
    assert_eq!(a.join().expect("no false deadlock report"), 3);
    assert_eq!(b.join().expect("no false deadlock report"), 3);
}
