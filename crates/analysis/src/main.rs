//! The workspace lint driver: `cargo run -p holistic-analysis --release`.
//!
//! Walks every `.rs` file under the workspace's `crates/`, `src/`,
//! `tests/` and `examples/` directories (skipping `vendor/` and
//! `target/`), applies the rules in `holistic-analysis`'s library, and
//! prints rustc-style diagnostics plus a machine-readable JSON summary
//! line. Exit code 0 means a clean tree; 1 means findings; 2 means the
//! lint itself could not run.
//!
//! An optional argument overrides the workspace root (used by the
//! self-tests): `cargo run -p holistic-analysis -- /path/to/tree`.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

use holistic_analysis::{scan_file, Allowlist, Finding, Rule};

fn workspace_root() -> PathBuf {
    // crates/analysis -> crates -> workspace root.
    let manifest = Path::new(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(Path::parent)
        .unwrap_or(manifest)
        .to_path_buf()
}

/// Collect workspace-relative paths of every `.rs` file to scan.
fn collect_sources(root: &Path) -> Result<Vec<String>, String> {
    let mut out = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(root, &dir, &mut out)?;
        }
    }
    out.sort();
    Ok(out)
}

fn walk(root: &Path, dir: &Path, out: &mut Vec<String>) -> Result<(), String> {
    let entries = std::fs::read_dir(dir).map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("read_dir {}: {e}", dir.display()))?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "vendor" || name == "target" || name.starts_with('.') {
                continue;
            }
            walk(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = path
                .strip_prefix(root)
                .map_err(|e| format!("strip_prefix: {e}"))?;
            out.push(rel.to_string_lossy().replace('\\', "/"));
        }
    }
    Ok(())
}

fn load_allowlist(root: &Path) -> Result<Allowlist, String> {
    let path = root.join("crates/analysis/allowlist.txt");
    if !path.is_file() {
        return Ok(Allowlist::default());
    }
    let text = std::fs::read_to_string(&path).map_err(|e| format!("{}: {e}", path.display()))?;
    Allowlist::parse(&text)
}

fn run() -> Result<Vec<Finding>, String> {
    let root = match std::env::args().nth(1) {
        Some(arg) => PathBuf::from(arg),
        None => workspace_root(),
    };
    let allow = load_allowlist(&root)?;
    let files = collect_sources(&root)?;
    let mut findings = Vec::new();
    let mut by_rule: BTreeMap<&'static str, usize> =
        Rule::ALL.iter().map(|r| (r.name(), 0)).collect();
    for rel in &files {
        let source = std::fs::read_to_string(root.join(rel)).map_err(|e| format!("{rel}: {e}"))?;
        for finding in scan_file(rel, &source, &allow) {
            *by_rule.entry(finding.rule.name()).or_insert(0) += 1;
            findings.push(finding);
        }
    }
    for f in &findings {
        println!("{f}");
    }
    // Machine-readable summary: one JSON object on the last line.
    let rules_json: Vec<String> = by_rule
        .iter()
        .map(|(rule, count)| format!("\"{rule}\": {count}"))
        .collect();
    println!(
        "{{\"files_scanned\": {}, \"findings\": {}, \"by_rule\": {{{}}}}}",
        files.len(),
        findings.len(),
        rules_json.join(", ")
    );
    Ok(findings)
}

fn main() -> ExitCode {
    match run() {
        Ok(findings) if findings.is_empty() => ExitCode::SUCCESS,
        Ok(_) => ExitCode::from(1),
        Err(e) => {
            eprintln!("holistic-analysis: error: {e}");
            ExitCode::from(2)
        }
    }
}
