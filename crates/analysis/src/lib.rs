//! # holistic-analysis
//!
//! A self-contained, repo-specific lint for the holistic-indexing
//! workspace: a hand-rolled lexical scanner (no `syn` — the build
//! environment has no registry access) plus five rules that make the
//! concurrency and reliability protocols of this codebase *build
//! failures* instead of code-review conventions:
//!
//! | Rule | What it rejects |
//! |------|-----------------|
//! | `raw-lock` | `Mutex`/`RwLock` construction or `parking_lot` use outside `crates/sync` and `vendor/` — every lock must be a `holistic-sync` ordered lock carrying its `LockLevel` |
//! | `panic-path` | `unwrap()`/`expect(`/`panic!`/`unreachable!`/`todo!`/`unimplemented!` in non-test production code — the engine returns `HolisticError`, it does not abort query threads |
//! | `io-under-lock` | filesystem/IO calls lexically inside a lock-guard scope in persistence-touching code — IO under a latch stalls every waiter for a disk's worth of time |
//! | `unsafe-no-safety` | an `unsafe` token without a nearby `// SAFETY:` comment |
//! | `catch-unwind-outside-boundary` | `catch_unwind` in production code outside the engine's single containment module — panic containment is only sound where everything the closure touched is discarded (quarantine), so exactly one audited boundary exists |
//!
//! The scanner strips comments and string literals with a real state
//! machine (nested block comments, raw strings, char-vs-lifetime), skips
//! `#[cfg(test)]` regions by brace tracking, and exposes everything as
//! plain functions over source text so the rules are unit-testable on
//! fixture snippets. Escapes: a tab-separated allowlist file for audited
//! sites, and inline `// lint:allow(<rule>)` on (or right above) a line.
//!
//! Run it as `cargo run -p holistic-analysis --release`; it walks the
//! workspace, prints rustc-style `file:line` diagnostics, a JSON
//! summary, and exits non-zero on any finding.

#![warn(missing_docs)]
#![deny(unsafe_code)]

use std::fmt;

/// The lint rules, in reporting order.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Rule {
    /// Raw `Mutex`/`RwLock` construction outside the ordered lock layer.
    RawLock,
    /// Panicking call on a non-test production path.
    PanicPath,
    /// Filesystem/IO call inside a lock-guard scope in persist code.
    IoUnderLock,
    /// `unsafe` without a `// SAFETY:` comment.
    UnsafeNoSafety,
    /// `catch_unwind` outside the engine's single containment module.
    CatchUnwindOutsideBoundary,
}

impl Rule {
    /// Every rule, in reporting order.
    pub const ALL: [Rule; 5] = [
        Rule::RawLock,
        Rule::PanicPath,
        Rule::IoUnderLock,
        Rule::UnsafeNoSafety,
        Rule::CatchUnwindOutsideBoundary,
    ];

    /// The rule's stable identifier (used in diagnostics, the allowlist
    /// and `lint:allow(...)` markers).
    #[must_use]
    pub fn name(self) -> &'static str {
        match self {
            Rule::RawLock => "raw-lock",
            Rule::PanicPath => "panic-path",
            Rule::IoUnderLock => "io-under-lock",
            Rule::UnsafeNoSafety => "unsafe-no-safety",
            Rule::CatchUnwindOutsideBoundary => "catch-unwind-outside-boundary",
        }
    }
}

impl fmt::Display for Rule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// One lint finding: a rule violated at a specific source line.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// The violated rule.
    pub rule: Rule,
    /// Workspace-relative path of the file.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Human-readable explanation.
    pub message: String,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: error[{}]: {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

// --- source stripping -------------------------------------------------------

/// A source file split into line-aligned code and comment text: `code[i]`
/// is line `i` with comments and string/char-literal *contents* blanked
/// (quotes kept, so token shapes survive), `comments[i]` is the comment
/// text of line `i`.
#[derive(Debug)]
pub struct Stripped {
    /// Code-only text per line.
    pub code: Vec<String>,
    /// Comment-only text per line (line, doc and block comments).
    pub comments: Vec<String>,
}

/// Lexes `src` into [`Stripped`]. Handles nested block comments, raw
/// strings (`r#".."#`, any hash depth, `b`/`br` prefixes), escapes, and
/// the char-literal-vs-lifetime ambiguity.
#[must_use]
pub fn strip_source(src: &str) -> Stripped {
    #[derive(PartialEq)]
    enum St {
        Code,
        LineComment,
        BlockComment(u32),
        Str,
        RawStr(u32),
        CharLit,
    }
    let mut st = St::Code;
    let mut code = Vec::new();
    let mut comments = Vec::new();
    let mut code_line = String::new();
    let mut comment_line = String::new();
    let chars: Vec<char> = src.chars().collect();
    let mut i = 0;
    while i < chars.len() {
        let c = chars[i];
        if c == '\n' {
            if st == St::LineComment {
                st = St::Code;
            }
            code.push(std::mem::take(&mut code_line));
            comments.push(std::mem::take(&mut comment_line));
            i += 1;
            continue;
        }
        match st {
            St::Code => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('/') {
                    st = St::LineComment;
                    code_line.push(' ');
                    i += 2;
                } else if c == '/' && next == Some('*') {
                    st = St::BlockComment(1);
                    code_line.push(' ');
                    i += 2;
                } else if c == '"' {
                    st = St::Str;
                    code_line.push('"');
                    i += 1;
                } else if (c == 'r' || (c == 'b' && next == Some('r')))
                    && is_raw_string_start(&chars, i)
                {
                    // Skip prefix + hashes up to and including the quote.
                    let mut j = i;
                    while chars.get(j) == Some(&'r') || chars.get(j) == Some(&'b') {
                        j += 1;
                    }
                    let mut hashes = 0u32;
                    while chars.get(j) == Some(&'#') {
                        hashes += 1;
                        j += 1;
                    }
                    st = St::RawStr(hashes);
                    code_line.push('"');
                    i = j + 1; // past the opening quote
                } else if c == '\'' {
                    // Lifetime (`'a`) vs char literal (`'a'`, `'\n'`).
                    let escaped = next == Some('\\');
                    let closes = chars.get(i + 2) == Some(&'\'');
                    if escaped || closes {
                        st = St::CharLit;
                    } else {
                        code_line.push(c);
                    }
                    i += 1;
                } else {
                    code_line.push(c);
                    i += 1;
                }
            }
            St::LineComment => {
                comment_line.push(c);
                i += 1;
            }
            St::BlockComment(depth) => {
                let next = chars.get(i + 1).copied();
                if c == '/' && next == Some('*') {
                    st = St::BlockComment(depth + 1);
                    i += 2;
                } else if c == '*' && next == Some('/') {
                    st = if depth == 1 {
                        St::Code
                    } else {
                        St::BlockComment(depth - 1)
                    };
                    i += 2;
                } else {
                    comment_line.push(c);
                    i += 1;
                }
            }
            St::Str => {
                if c == '\\' {
                    i += 2; // escape: skip the escaped char
                } else if c == '"' {
                    st = St::Code;
                    code_line.push('"');
                    i += 1;
                } else {
                    i += 1;
                }
            }
            St::RawStr(hashes) => {
                if c == '"' {
                    let mut j = i + 1;
                    let mut seen = 0u32;
                    while seen < hashes && chars.get(j) == Some(&'#') {
                        seen += 1;
                        j += 1;
                    }
                    if seen == hashes {
                        st = St::Code;
                        code_line.push('"');
                        i = j;
                    } else {
                        i += 1;
                    }
                } else {
                    i += 1;
                }
            }
            St::CharLit => {
                if c == '\\' {
                    i += 2;
                } else if c == '\'' {
                    st = St::Code;
                    i += 1;
                } else {
                    i += 1;
                }
            }
        }
    }
    code.push(code_line);
    comments.push(comment_line);
    Stripped { code, comments }
}

/// `r"`, `r#"`, `br"`, ... at position `i`?
fn is_raw_string_start(chars: &[char], i: usize) -> bool {
    // Not part of a longer identifier (`for`, `attr`, ...).
    if i > 0 && (chars[i - 1].is_alphanumeric() || chars[i - 1] == '_') {
        return false;
    }
    let mut j = i;
    if chars.get(j) == Some(&'b') {
        j += 1;
    }
    if chars.get(j) != Some(&'r') {
        return false;
    }
    j += 1;
    while chars.get(j) == Some(&'#') {
        j += 1;
    }
    chars.get(j) == Some(&'"')
}

/// Does `line` contain `tok` at an identifier boundary (not inside a
/// longer identifier on either side)?
fn has_token(line: &str, tok: &str) -> bool {
    let ident = |c: char| c.is_alphanumeric() || c == '_';
    let mut from = 0;
    while let Some(pos) = line[from..].find(tok) {
        let at = from + pos;
        // Boundaries are only guarded on the sides where the token itself
        // is identifier-like: `.unwrap()` starts with `.` (any receiver
        // before it is fine) and ends with `)`; `unsafe` needs both.
        let tok_first_ident = tok.chars().next().is_some_and(ident);
        let before_ok =
            !tok_first_ident || at == 0 || !ident(line[..at].chars().next_back().unwrap_or(' '));
        let after = line[at + tok.len()..].chars().next();
        let tok_last_ident = tok.chars().next_back().is_some_and(ident);
        let after_ok = !tok_last_ident || !after.is_some_and(ident);
        if before_ok && after_ok {
            return true;
        }
        from = at + tok.len();
    }
    false
}

// --- allowlist --------------------------------------------------------------

/// The audited-exceptions list: tab-separated `rule<TAB>path-substring
/// <TAB>line-substring` entries, `#` comments and blank lines ignored.
/// A finding is suppressed when an entry's rule matches, its path
/// substring occurs in the file path, and its line substring occurs in
/// the finding's (or, for `io-under-lock`, the guard acquisition's)
/// source line.
#[derive(Debug, Default)]
pub struct Allowlist {
    entries: Vec<(String, String, String)>,
}

impl Allowlist {
    /// Parses the allowlist format. Malformed lines (fewer than three
    /// tab-separated fields) are reported as errors, not ignored.
    pub fn parse(text: &str) -> Result<Allowlist, String> {
        let mut entries = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim_end();
            if line.trim().is_empty() || line.trim_start().starts_with('#') {
                continue;
            }
            let parts: Vec<&str> = line.split('\t').collect();
            if parts.len() != 3 {
                return Err(format!(
                    "allowlist line {}: expected 3 tab-separated fields (rule, \
                     path-substring, line-substring), got {}",
                    i + 1,
                    parts.len()
                ));
            }
            if !Rule::ALL.iter().any(|r| r.name() == parts[0]) {
                return Err(format!(
                    "allowlist line {}: unknown rule {:?}",
                    i + 1,
                    parts[0]
                ));
            }
            entries.push((
                parts[0].to_string(),
                parts[1].to_string(),
                parts[2].to_string(),
            ));
        }
        Ok(Allowlist { entries })
    }

    /// Whether any entry suppresses `rule` at `path` for a finding whose
    /// relevant source texts are `texts`.
    #[must_use]
    pub fn permits(&self, rule: Rule, path: &str, texts: &[&str]) -> bool {
        self.entries.iter().any(|(r, p, l)| {
            r == rule.name()
                && path.contains(p.as_str())
                && texts.iter().any(|t| t.contains(l.as_str()))
        })
    }
}

// --- the scanner ------------------------------------------------------------

/// `// lint:allow(rule)` on the same line or the line above?
fn inline_allowed(stripped: &Stripped, line_idx: usize, rule: Rule) -> bool {
    let marker = format!("lint:allow({})", rule.name());
    let here = stripped
        .comments
        .get(line_idx)
        .is_some_and(|c| c.contains(&marker));
    // A marker on the previous line only counts when that line is a
    // standalone comment — a trailing comment belongs to its own line.
    let above = line_idx > 0
        && stripped
            .comments
            .get(line_idx - 1)
            .is_some_and(|c| c.contains(&marker))
        && stripped
            .code
            .get(line_idx - 1)
            .is_some_and(|c| c.trim().is_empty());
    here || above
}

fn path_has_component(path: &str, component: &str) -> bool {
    path.split('/').any(|c| c == component)
}

/// Scans one file and returns its findings. `path` must be
/// workspace-relative with `/` separators — rule applicability is
/// path-based (see crate docs).
#[must_use]
pub fn scan_file(path: &str, source: &str, allow: &Allowlist) -> Vec<Finding> {
    let stripped = strip_source(source);
    let raw_lock_applies = !path.starts_with("vendor/")
        && !path.contains("/vendor/")
        && !path.starts_with("crates/sync/");
    let in_test_target = path_has_component(path, "tests")
        || path_has_component(path, "benches")
        || path_has_component(path, "examples");
    let io_applies = path.contains("persist");
    let catch_unwind_applies = !path.starts_with("vendor/") && !path.contains("/vendor/");

    let mut findings = Vec::new();
    let mut push =
        |stripped: &Stripped, rule: Rule, line_idx: usize, message: String, extra: &[&str]| {
            if inline_allowed(stripped, line_idx, rule) {
                return;
            }
            let mut texts: Vec<&str> = vec![&stripped.code[line_idx]];
            texts.extend_from_slice(extra);
            if allow.permits(rule, path, &texts) {
                return;
            }
            findings.push(Finding {
                rule,
                path: path.to_string(),
                line: line_idx + 1,
                message,
            });
        };

    // Brace-depth bookkeeping: `#[cfg(test)]` regions and guard scopes.
    let mut depth: i32 = 0;
    let mut test_region_floor: Option<i32> = None;
    let mut pending_test_attr = false;
    // Open lock-guard scopes: (depth at acquisition, acquisition line text).
    let mut guard_scopes: Vec<(i32, String)> = Vec::new();

    for (idx, line) in stripped.code.iter().enumerate() {
        let test_at_start = test_region_floor.is_some();

        // --- rules that also apply inside test code ---
        if raw_lock_applies {
            for tok in ["Mutex::new(", "RwLock::new("] {
                if has_token(line, tok) {
                    push(
                        &stripped,
                        Rule::RawLock,
                        idx,
                        format!(
                            "raw `{}` — construct an Ordered{} from `holistic-sync` \
                             with its LockLevel instead",
                            tok.trim_end_matches('('),
                            tok.trim_end_matches("::new(")
                        ),
                        &[],
                    );
                }
            }
            for tok in ["parking_lot", "std::sync::Mutex", "std::sync::RwLock"] {
                if has_token(line, tok) {
                    push(
                        &stripped,
                        Rule::RawLock,
                        idx,
                        format!(
                            "`{tok}` outside the ordered lock layer — all locks go \
                             through `holistic-sync`"
                        ),
                        &[],
                    );
                }
            }
        }

        if has_token(line, "unsafe") {
            let safety_near = (idx.saturating_sub(3)..=idx).any(|i| {
                stripped
                    .comments
                    .get(i)
                    .is_some_and(|c| c.contains("SAFETY:"))
            });
            if !safety_near {
                push(
                    &stripped,
                    Rule::UnsafeNoSafety,
                    idx,
                    "`unsafe` without a `// SAFETY:` comment on or above the line".to_string(),
                    &[],
                );
            }
        }

        // --- production-only rules (skip test targets and cfg(test)) ---
        let in_test = in_test_target || test_at_start;
        if !in_test {
            for tok in [
                ".unwrap()",
                ".expect(",
                "panic!",
                "unreachable!",
                "todo!",
                "unimplemented!",
            ] {
                if has_token(line, tok) {
                    push(
                        &stripped,
                        Rule::PanicPath,
                        idx,
                        format!(
                            "`{tok}` on a production path — return a typed \
                             `HolisticError` (or allowlist a provably-infallible site)"
                        ),
                        &[],
                    );
                }
            }
        }

        // --- catch-unwind-outside-boundary: exactly one audited
        // containment module may swallow panics (its entry lives in the
        // allowlist); anywhere else a caught unwind hides a latch left in
        // an inconsistent (non-poisoning) state ---
        if catch_unwind_applies && !in_test && has_token(line, "catch_unwind") {
            push(
                &stripped,
                Rule::CatchUnwindOutsideBoundary,
                idx,
                "`catch_unwind` outside the engine's containment boundary — \
                 route panic containment through `engine::containment`"
                    .to_string(),
                &[],
            );
        }

        // --- io-under-lock: guard scopes and IO tokens ---
        if io_applies && !in_test {
            let acquires = [".lock()", ".read()", ".write()"]
                .iter()
                .any(|t| line.contains(t));
            let io_line = io_token(line);
            if let Some(tok) = io_line {
                let scope_texts: Vec<&str> = guard_scopes.iter().map(|(_, t)| t.as_str()).collect();
                if !guard_scopes.is_empty() {
                    push(
                        &stripped,
                        Rule::IoUnderLock,
                        idx,
                        format!(
                            "IO call `{tok}` while a lock guard from line \
                             {:?} is held — do the IO outside the latch",
                            guard_scopes
                                .last()
                                .map(|(_, t)| t.trim())
                                .unwrap_or_default()
                        ),
                        &scope_texts,
                    );
                } else if acquires {
                    // Guard and IO in one expression (`x.lock().append(..)`).
                    push(
                        &stripped,
                        Rule::IoUnderLock,
                        idx,
                        format!("IO call `{tok}` chained on a lock guard"),
                        &[],
                    );
                }
            }
            // A `let`-bound (or match-scrutinee) guard opens a scope that
            // lexically lasts to the end of the enclosing block.
            if acquires && (line.contains("let ") || line.contains("match ")) && io_line.is_none() {
                guard_scopes.push((depth, line.clone()));
            }
        }

        // --- brace tracking (after rule checks: attributes/braces on the
        // line apply from the next line onward) ---
        for c in line.chars() {
            match c {
                '{' => {
                    if pending_test_attr {
                        test_region_floor = test_region_floor.or(Some(depth));
                        pending_test_attr = false;
                    }
                    depth += 1;
                }
                '}' => {
                    depth -= 1;
                    if test_region_floor.is_some_and(|d| depth <= d) {
                        test_region_floor = None;
                    }
                    guard_scopes.retain(|&(d, _)| d <= depth);
                }
                ';' => {
                    // `#[cfg(test)] use ...;` — the attribute was consumed
                    // by a braceless item, not a block.
                    pending_test_attr = false;
                }
                _ => {}
            }
        }
        if line.contains("cfg(test)") || line.contains("cfg(any(test") {
            pending_test_attr = true;
        }
    }
    findings
}

/// The IO token present in a code line, if any.
fn io_token(line: &str) -> Option<&'static str> {
    const IO_TOKENS: [&str; 14] = [
        "std::fs",
        "fs::read",
        "fs::write",
        "fs::remove_file",
        "fs::rename",
        "fs::create_dir",
        "fs::read_dir",
        "File::open",
        "File::create",
        "OpenOptions",
        "atomic_write(",
        "sync_all(",
        "sync_data(",
        "WalWriter::",
    ];
    IO_TOKENS.into_iter().find(|t| line.contains(t))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scan(path: &str, src: &str) -> Vec<Finding> {
        scan_file(path, src, &Allowlist::default())
    }

    fn rules(findings: &[Finding]) -> Vec<Rule> {
        findings.iter().map(|f| f.rule).collect()
    }

    // --- stripping ---

    #[test]
    fn strings_and_comments_are_blanked() {
        let s = strip_source(
            "let x = \"Mutex::new(.unwrap()\"; // .unwrap() here\n/* panic! */ let y = 1;",
        );
        assert!(!s.code[0].contains("unwrap"));
        assert!(s.comments[0].contains(".unwrap()"));
        assert!(!s.code[1].contains("panic"));
        assert!(s.code[1].contains("let y = 1;"));
    }

    #[test]
    fn raw_strings_and_char_literals() {
        let s = strip_source(
            "let r = r#\"panic!(\"x\")\"#;\nlet c = '\\'';\nlet lt: &'static str = \"\";",
        );
        assert!(!s.code[0].contains("panic"));
        assert!(s.code[1].contains("let c ="));
        assert!(s.code[2].contains("&'static str"));
    }

    #[test]
    fn nested_block_comments() {
        let s = strip_source("/* a /* b */ still comment */ code()");
        assert!(!s.code[0].contains('a'));
        assert!(s.code[0].contains("code()"));
    }

    // --- raw-lock ---

    #[test]
    fn raw_lock_flags_construction_and_imports() {
        let bad = "use parking_lot::RwLock;\nlet m = Mutex::new(0);\nlet r = RwLock::new(1);\nuse std::sync::Mutex;\n";
        let f = scan("crates/core/src/x.rs", bad);
        assert_eq!(rules(&f), vec![Rule::RawLock; 4]);
    }

    #[test]
    fn raw_lock_ignores_ordered_wrappers_and_exempt_paths() {
        let good = "let m = OrderedMutex::new(LockLevel::Metrics, \"m\", 0);\nlet r = OrderedRwLock::new(LockLevel::Column, \"r\", 1);\n";
        assert!(scan("crates/core/src/x.rs", good).is_empty());
        let raw = "let m = Mutex::new(0);\n";
        assert!(scan("crates/sync/src/lib.rs", raw).is_empty());
        assert!(scan("vendor/parking_lot/src/lib.rs", raw).is_empty());
    }

    #[test]
    fn raw_lock_applies_to_tests_too() {
        let f = scan("tests/integration_x.rs", "let m = RwLock::new(db);\n");
        assert_eq!(rules(&f), vec![Rule::RawLock]);
    }

    // --- panic-path ---

    #[test]
    fn panic_path_flags_production_panics() {
        let bad = "fn f(x: Option<u8>) -> u8 {\n    let a = x.unwrap();\n    let b = x.expect(\"set\");\n    panic!(\"no\");\n}\n";
        let f = scan("crates/core/src/y.rs", bad);
        assert_eq!(
            rules(&f),
            vec![Rule::PanicPath, Rule::PanicPath, Rule::PanicPath]
        );
    }

    #[test]
    fn panic_path_skips_cfg_test_blocks_and_test_targets() {
        let src = "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { None::<u8>.unwrap(); }\n}\nfn also_ok() {}\n";
        assert!(scan("crates/core/src/y.rs", src).is_empty());
        assert!(scan("tests/foo.rs", "fn t() { x.unwrap(); }\n").is_empty());
        assert!(scan("crates/bench/benches/b.rs", "x.expect(\"y\");\n").is_empty());
    }

    #[test]
    fn cfg_test_on_braceless_item_does_not_swallow_later_code() {
        let src = "#[cfg(test)]\nuse foo::bar;\nfn f() { x.unwrap(); }\n";
        let f = scan("crates/core/src/y.rs", src);
        assert_eq!(rules(&f), vec![Rule::PanicPath]);
    }

    #[test]
    fn panic_path_ignores_unwrap_or_and_doc_comments() {
        let src =
            "/// example: `x.unwrap()` then panic!\nfn f(x: Option<u8>) -> u8 { x.unwrap_or(0) }\n";
        assert!(scan("crates/core/src/y.rs", src).is_empty());
    }

    // --- io-under-lock ---

    #[test]
    fn io_inside_guard_scope_is_flagged() {
        let src = "fn snapshot(&self) {\n    let guard = self.state.lock();\n    std::fs::write(path, bytes);\n}\n";
        let f = scan("crates/core/src/engine/persist.rs", src);
        assert_eq!(rules(&f), vec![Rule::IoUnderLock]);
    }

    #[test]
    fn io_after_guard_scope_closes_is_fine() {
        let src = "fn snapshot(&self) {\n    {\n        let guard = self.state.lock();\n        encode(&guard);\n    }\n    std::fs::write(path, bytes);\n}\n";
        assert!(scan("crates/core/src/engine/persist.rs", src).is_empty());
    }

    #[test]
    fn io_chained_on_a_guard_is_flagged() {
        let src = "fn f(&self) { self.wal.lock().sync_all(); }\n";
        let f = scan("crates/persist/src/wal.rs", src);
        assert_eq!(rules(&f), vec![Rule::IoUnderLock]);
    }

    #[test]
    fn io_rule_only_applies_to_persist_paths() {
        let src = "fn f(&self) {\n    let g = self.x.lock();\n    std::fs::write(p, b);\n}\n";
        assert!(scan("crates/core/src/metrics.rs", src).is_empty());
    }

    // --- unsafe-no-safety ---

    #[test]
    fn unsafe_without_safety_comment_is_flagged() {
        let f = scan("crates/core/src/z.rs", "fn f() { unsafe { do_thing() } }\n");
        assert_eq!(rules(&f), vec![Rule::UnsafeNoSafety]);
    }

    #[test]
    fn unsafe_with_safety_comment_passes() {
        let src = "// SAFETY: the buffer outlives the call.\nfn f() { unsafe { do_thing() } }\n";
        assert!(scan("crates/core/src/z.rs", src).is_empty());
        // `deny(unsafe_code)` is not an unsafe token.
        assert!(scan("crates/core/src/z.rs", "#![deny(unsafe_code)]\n").is_empty());
    }

    // --- catch-unwind-outside-boundary ---

    #[test]
    fn catch_unwind_outside_the_boundary_is_flagged() {
        let src = "fn f() { let r = std::panic::catch_unwind(|| work()); }\n";
        let f = scan("crates/core/src/engine/mod.rs", src);
        assert_eq!(rules(&f), vec![Rule::CatchUnwindOutsideBoundary]);
    }

    #[test]
    fn catch_unwind_is_exempt_in_tests_and_vendor() {
        let src = "fn f() { let r = std::panic::catch_unwind(|| work()); }\n";
        assert!(scan("crates/core/tests/prop_x.rs", src).is_empty());
        assert!(scan("vendor/proptest/src/lib.rs", src).is_empty());
        let in_test_mod =
            "fn ok() {}\n#[cfg(test)]\nmod tests {\n    fn t() { let _ = std::panic::catch_unwind(|| x()); }\n}\n";
        assert!(scan("crates/core/src/engine/mod.rs", in_test_mod).is_empty());
    }

    #[test]
    fn catch_unwind_boundary_module_is_allowlistable() {
        let allow = Allowlist::parse(
            "catch-unwind-outside-boundary\tengine/containment.rs\tcatch_unwind\n",
        )
        .expect("parses");
        let src = "pub fn contain<T>(f: impl FnOnce() -> T) -> Result<T, String> {\n    match catch_unwind(AssertUnwindSafe(f)) {\n        Ok(v) => Ok(v),\n        Err(_) => Err(String::new()),\n    }\n}\n";
        assert!(scan_file("crates/core/src/engine/containment.rs", src, &allow).is_empty());
        // The same code anywhere else stays a finding.
        assert_eq!(
            scan_file("crates/core/src/engine/mod.rs", src, &allow).len(),
            1
        );
    }

    // --- escapes ---

    #[test]
    fn inline_allow_suppresses_on_same_or_previous_line() {
        let src = "// lint:allow(panic-path) -- provably infallible\nfn f() { x.unwrap(); }\nfn g() { y.unwrap(); } // lint:allow(panic-path)\nfn h() { z.unwrap(); }\n";
        let f = scan("crates/core/src/y.rs", src);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 4);
    }

    #[test]
    fn allowlist_entries_suppress_by_rule_path_and_line() {
        let allow =
            Allowlist::parse("# audited\npanic-path\tcrates/core/\tx.unwrap()\n").expect("parses");
        let src = "fn f() { x.unwrap(); }\nfn g() { y.unwrap(); }\n";
        let f = scan_file("crates/core/src/y.rs", src, &allow);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].line, 2);
        // Same source in another crate: entry does not apply.
        assert_eq!(scan_file("crates/offline/src/y.rs", src, &allow).len(), 2);
    }

    #[test]
    fn allowlist_rejects_malformed_lines() {
        assert!(Allowlist::parse("panic-path only-two-fields\n").is_err());
        assert!(Allowlist::parse("not-a-rule\tx\ty\n").is_err());
    }

    #[test]
    fn io_under_lock_allowlist_matches_the_guard_line() {
        let allow =
            Allowlist::parse("io-under-lock\tpersist\tself.persistence.lock()\n").expect("parses");
        let src = "fn snapshot(&self) {\n    let g = self.persistence.lock();\n    std::fs::write(p, b);\n}\n";
        assert!(scan_file("crates/core/src/engine/persist.rs", src, &allow).is_empty());
    }
}
