//! Range-predicate generators.

use rand::Rng;

use crate::query::RangeQuery;
use crate::zipf::Zipf;
use crate::Value;

/// A source of range queries.
pub trait QueryGenerator {
    /// Produces the next query.
    fn next_query<R: Rng + ?Sized>(&mut self, rng: &mut R) -> RangeQuery;

    /// Produces `n` queries.
    fn generate<R: Rng + ?Sized>(&mut self, n: usize, rng: &mut R) -> Vec<RangeQuery>
    where
        Self: Sized,
    {
        (0..n).map(|_| self.next_query(rng)).collect()
    }
}

/// Width of the value range that yields the requested selectivity over a
/// uniform domain `[lo, hi)`.
fn width_for_selectivity(lo: Value, hi: Value, selectivity: f64) -> Value {
    let span = (hi - lo).max(1) as f64;
    ((span * selectivity.clamp(0.0, 1.0)).round() as Value).max(1)
}

/// The paper's default generator: ranges of fixed selectivity whose position
/// is uniformly random within the column domain.
#[derive(Debug, Clone)]
pub struct UniformRangeGenerator {
    column: usize,
    domain_lo: Value,
    domain_hi: Value,
    width: Value,
}

impl UniformRangeGenerator {
    /// Creates a generator over the domain `[domain_lo, domain_hi)` with the
    /// given selectivity (fraction of the domain covered by each query).
    #[must_use]
    pub fn new(column: usize, domain_lo: Value, domain_hi: Value, selectivity: f64) -> Self {
        assert!(domain_hi > domain_lo, "domain must be non-empty");
        UniformRangeGenerator {
            column,
            domain_lo,
            domain_hi,
            width: width_for_selectivity(domain_lo, domain_hi, selectivity),
        }
    }

    /// The width of the generated ranges.
    #[must_use]
    pub fn range_width(&self) -> Value {
        self.width
    }
}

impl QueryGenerator for UniformRangeGenerator {
    fn next_query<R: Rng + ?Sized>(&mut self, rng: &mut R) -> RangeQuery {
        let max_start = (self.domain_hi - self.width).max(self.domain_lo);
        let lo = if max_start > self.domain_lo {
            rng.gen_range(self.domain_lo..=max_start)
        } else {
            self.domain_lo
        };
        RangeQuery::new(self.column, lo, lo + self.width)
    }
}

/// Skewed generator: range *centers* follow a Zipf distribution over buckets
/// of the domain, so a few regions of the column are much hotter than the
/// rest (typical of exploratory drill-down workloads).
#[derive(Debug, Clone)]
pub struct ZipfRangeGenerator {
    column: usize,
    domain_lo: Value,
    domain_hi: Value,
    width: Value,
    buckets: usize,
    zipf: Zipf,
}

impl ZipfRangeGenerator {
    /// Creates a skewed generator with `buckets` hot regions and Zipf
    /// parameter `theta`.
    #[must_use]
    pub fn new(
        column: usize,
        domain_lo: Value,
        domain_hi: Value,
        selectivity: f64,
        buckets: usize,
        theta: f64,
    ) -> Self {
        assert!(domain_hi > domain_lo, "domain must be non-empty");
        let buckets = buckets.max(1);
        ZipfRangeGenerator {
            column,
            domain_lo,
            domain_hi,
            width: width_for_selectivity(domain_lo, domain_hi, selectivity),
            buckets,
            zipf: Zipf::new(buckets, theta),
        }
    }
}

impl QueryGenerator for ZipfRangeGenerator {
    fn next_query<R: Rng + ?Sized>(&mut self, rng: &mut R) -> RangeQuery {
        let span = self.domain_hi - self.domain_lo;
        let bucket_width = (span / self.buckets as Value).max(1);
        let bucket = self.zipf.sample(rng) as Value;
        let bucket_lo = self.domain_lo + bucket * bucket_width;
        let bucket_hi = (bucket_lo + bucket_width).min(self.domain_hi);
        let max_start = (bucket_hi - self.width).max(bucket_lo);
        let lo = if max_start > bucket_lo {
            rng.gen_range(bucket_lo..=max_start)
        } else {
            bucket_lo
        };
        RangeQuery::new(self.column, lo, lo + self.width)
    }
}

/// Sequential (sliding-window) generator: each query's range starts where
/// the previous one ended. The classic adversarial pattern for plain
/// cracking and the motivation for stochastic cracking.
#[derive(Debug, Clone)]
pub struct SequentialRangeGenerator {
    column: usize,
    domain_lo: Value,
    domain_hi: Value,
    width: Value,
    cursor: Value,
}

impl SequentialRangeGenerator {
    /// Creates a sliding-window generator starting at the domain minimum.
    #[must_use]
    pub fn new(column: usize, domain_lo: Value, domain_hi: Value, selectivity: f64) -> Self {
        assert!(domain_hi > domain_lo, "domain must be non-empty");
        SequentialRangeGenerator {
            column,
            domain_lo,
            domain_hi,
            width: width_for_selectivity(domain_lo, domain_hi, selectivity),
            cursor: domain_lo,
        }
    }
}

impl QueryGenerator for SequentialRangeGenerator {
    fn next_query<R: Rng + ?Sized>(&mut self, _rng: &mut R) -> RangeQuery {
        let lo = self.cursor;
        let hi = (lo + self.width).min(self.domain_hi);
        self.cursor = if hi >= self.domain_hi {
            self.domain_lo
        } else {
            hi
        };
        RangeQuery::new(self.column, lo, hi)
    }
}

/// Wraps an inner generator and cycles the produced queries round-robin over
/// `columns` (the paper's Exp2: queries arrive on all 10 columns in a
/// round-robin fashion).
#[derive(Debug, Clone)]
pub struct RoundRobinColumns<G> {
    inner: G,
    columns: usize,
    next_column: usize,
}

impl<G: QueryGenerator> RoundRobinColumns<G> {
    /// Creates a round-robin wrapper over `columns` columns.
    #[must_use]
    pub fn new(inner: G, columns: usize) -> Self {
        assert!(columns > 0, "need at least one column");
        RoundRobinColumns {
            inner,
            columns,
            next_column: 0,
        }
    }
}

impl<G: QueryGenerator> QueryGenerator for RoundRobinColumns<G> {
    fn next_query<R: Rng + ?Sized>(&mut self, rng: &mut R) -> RangeQuery {
        let mut q = self.inner.next_query(rng);
        q.column = self.next_column;
        self.next_column = (self.next_column + 1) % self.columns;
        q
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    const DOMAIN: (Value, Value) = (1, 100_000_001);

    #[test]
    fn uniform_generator_respects_domain_and_selectivity() {
        let mut g = UniformRangeGenerator::new(0, DOMAIN.0, DOMAIN.1, 0.01);
        let mut rng = StdRng::seed_from_u64(1);
        let width = g.range_width();
        assert_eq!(width, 1_000_000);
        for _ in 0..100 {
            let q = g.next_query(&mut rng);
            assert_eq!(q.column, 0);
            assert!(q.lo >= DOMAIN.0);
            assert!(q.hi <= DOMAIN.1);
            assert_eq!(q.hi - q.lo, width);
        }
    }

    #[test]
    fn uniform_generator_spreads_over_domain() {
        let mut g = UniformRangeGenerator::new(0, 0, 1_000_000, 0.001);
        let mut rng = StdRng::seed_from_u64(2);
        let starts: Vec<Value> = (0..200).map(|_| g.next_query(&mut rng).lo).collect();
        let low_half = starts.iter().filter(|&&s| s < 500_000).count();
        assert!(low_half > 50 && low_half < 150, "low_half={low_half}");
    }

    #[test]
    fn tiny_selectivity_still_produces_nonempty_ranges() {
        let mut g = UniformRangeGenerator::new(0, 0, 100, 1e-9);
        let mut rng = StdRng::seed_from_u64(3);
        let q = g.next_query(&mut rng);
        assert!(q.hi > q.lo);
    }

    #[test]
    fn zipf_generator_concentrates_queries() {
        let mut g = ZipfRangeGenerator::new(0, 0, 1_000_000, 0.001, 100, 1.2);
        let mut rng = StdRng::seed_from_u64(4);
        let n = 2000;
        let hot = (0..n)
            .map(|_| g.next_query(&mut rng))
            .filter(|q| q.lo < 100_000)
            .count();
        assert!(
            hot as f64 / n as f64 > 0.5,
            "hot fraction {}",
            hot as f64 / n as f64
        );
    }

    #[test]
    fn sequential_generator_slides_and_wraps() {
        let mut g = SequentialRangeGenerator::new(0, 0, 100, 0.1);
        let mut rng = StdRng::seed_from_u64(5);
        let q1 = g.next_query(&mut rng);
        let q2 = g.next_query(&mut rng);
        assert_eq!(q1.lo, 0);
        assert_eq!(q2.lo, q1.hi);
        // Drive it past the end of the domain and observe the wrap-around.
        let mut last = q2;
        for _ in 0..20 {
            last = g.next_query(&mut rng);
        }
        assert!(last.lo < 100);
        assert!(last.hi <= 100);
    }

    #[test]
    fn round_robin_cycles_columns() {
        let inner = UniformRangeGenerator::new(0, 0, 1000, 0.01);
        let mut g = RoundRobinColumns::new(inner, 3);
        let mut rng = StdRng::seed_from_u64(6);
        let cols: Vec<usize> = (0..7).map(|_| g.next_query(&mut rng).column).collect();
        assert_eq!(cols, vec![0, 1, 2, 0, 1, 2, 0]);
    }

    #[test]
    fn generate_produces_requested_count() {
        let mut g = UniformRangeGenerator::new(0, 0, 1000, 0.05);
        let mut rng = StdRng::seed_from_u64(7);
        assert_eq!(g.generate(42, &mut rng).len(), 42);
    }

    #[test]
    #[should_panic(expected = "domain must be non-empty")]
    fn empty_domain_panics() {
        let _ = UniformRangeGenerator::new(0, 10, 10, 0.1);
    }

    #[test]
    #[should_panic(expected = "need at least one column")]
    fn round_robin_zero_columns_panics() {
        let inner = UniformRangeGenerator::new(0, 0, 10, 0.1);
        let _ = RoundRobinColumns::new(inner, 0);
    }
}
