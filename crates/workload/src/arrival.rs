//! Arrival models: how queries and idle windows interleave over a session.

use std::time::Duration;

use rand::Rng;

use crate::generators::QueryGenerator;
use crate::query::{IdleWindow, RangeQuery, WorkloadEvent};

/// How idle time is distributed over the query sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Queries arrive back to back with no idle time at all (the environment
    /// adaptive indexing is designed for).
    Steady,
    /// The paper's Exp1 setup: an idle window before the first query and one
    /// after every `every` queries, each worth `actions` refinement actions.
    PeriodicIdle {
        /// Queries between idle windows.
        every: usize,
        /// Refinement actions that fit in one idle window.
        actions: u64,
    },
    /// Bursts of `burst_len` queries separated by idle windows worth
    /// `actions` refinement actions (social-network / web-log style traffic).
    Bursty {
        /// Queries per burst.
        burst_len: usize,
        /// Refinement actions that fit in the gap between bursts.
        actions: u64,
    },
}

/// Builds a full workload session (a sequence of [`WorkloadEvent`]s) from a
/// query generator and an arrival model.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    model: ArrivalModel,
    /// Idle window granted before the first query (the paper's `T_init`).
    initial_idle: Option<IdleWindow>,
}

impl SessionBuilder {
    /// Creates a session builder for the given arrival model.
    #[must_use]
    pub fn new(model: ArrivalModel) -> Self {
        SessionBuilder {
            model,
            initial_idle: None,
        }
    }

    /// Grants an idle window before the first query (offline-style a-priori
    /// idle time).
    #[must_use]
    pub fn with_initial_idle(mut self, idle: IdleWindow) -> Self {
        self.initial_idle = Some(idle);
        self
    }

    /// Builds a session of `queries` queries drawn from `generator`.
    pub fn build<G: QueryGenerator, R: Rng + ?Sized>(
        &self,
        generator: &mut G,
        queries: usize,
        rng: &mut R,
    ) -> Vec<WorkloadEvent> {
        let mut events = Vec::with_capacity(queries + queries / 16 + 2);
        if let Some(idle) = self.initial_idle {
            events.push(WorkloadEvent::Idle(idle));
        }
        match self.model {
            ArrivalModel::Steady => {
                for _ in 0..queries {
                    events.push(WorkloadEvent::Query(generator.next_query(rng)));
                }
            }
            ArrivalModel::PeriodicIdle { every, actions } => {
                let every = every.max(1);
                for i in 0..queries {
                    if i > 0 && i % every == 0 {
                        events.push(WorkloadEvent::Idle(IdleWindow::Actions(actions)));
                    }
                    events.push(WorkloadEvent::Query(generator.next_query(rng)));
                }
            }
            ArrivalModel::Bursty { burst_len, actions } => {
                let burst_len = burst_len.max(1);
                let mut issued = 0usize;
                while issued < queries {
                    let this_burst = burst_len.min(queries - issued);
                    for _ in 0..this_burst {
                        events.push(WorkloadEvent::Query(generator.next_query(rng)));
                    }
                    issued += this_burst;
                    if issued < queries {
                        events.push(WorkloadEvent::Idle(IdleWindow::Actions(actions)));
                    }
                }
            }
        }
        events
    }
}

/// Closed-loop batched arrivals: `clients` concurrent connections each keep
/// exactly one query in flight, so on every round the engine receives the
/// whole set of in-flight queries as one batch (the execution model of a
/// batched `execute_batch` endpoint serving a connection pool). A session is
/// therefore a sequence of batches of `clients` queries (the final batch may
/// be smaller), optionally separated by idle windows every `idle_every`
/// batches — the batched analogue of [`ArrivalModel::PeriodicIdle`].
#[derive(Debug, Clone)]
pub struct BatchSessionBuilder {
    clients: usize,
    idle_every: Option<(usize, u64)>,
}

/// One event of a batched workload session.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BatchEvent {
    /// A batch of in-flight queries arrives and must be answered together.
    Batch(Vec<RangeQuery>),
    /// No client has a query in flight for a while.
    Idle(IdleWindow),
}

impl BatchSessionBuilder {
    /// Creates a builder for batches of `clients` in-flight queries
    /// (clamped to at least 1).
    #[must_use]
    pub fn new(clients: usize) -> Self {
        BatchSessionBuilder {
            clients: clients.max(1),
            idle_every: None,
        }
    }

    /// Injects an idle window worth `actions` refinement actions after every
    /// `batches` batches.
    #[must_use]
    pub fn with_periodic_idle(mut self, batches: usize, actions: u64) -> Self {
        self.idle_every = Some((batches.max(1), actions));
        self
    }

    /// The number of in-flight clients (== the batch size).
    #[must_use]
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// Builds a session of `queries` total queries drawn from `generator`,
    /// grouped into closed-loop batches.
    pub fn build<G: QueryGenerator, R: Rng + ?Sized>(
        &self,
        generator: &mut G,
        queries: usize,
        rng: &mut R,
    ) -> Vec<BatchEvent> {
        let batches = queries.div_ceil(self.clients);
        let mut events = Vec::with_capacity(batches + batches / 8 + 1);
        let mut issued = 0usize;
        let mut batches_emitted = 0usize;
        while issued < queries {
            if let Some((every, actions)) = self.idle_every {
                if batches_emitted > 0 && batches_emitted.is_multiple_of(every) {
                    events.push(BatchEvent::Idle(IdleWindow::Actions(actions)));
                }
            }
            let this_batch = self.clients.min(queries - issued);
            events.push(BatchEvent::Batch(
                (0..this_batch).map(|_| generator.next_query(rng)).collect(),
            ));
            issued += this_batch;
            batches_emitted += 1;
        }
        events
    }
}

/// One arrival of an open-loop workload: *when* the query is offered,
/// *who* offers it, and the query itself.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OpenLoopArrival {
    /// Offset from the start of the run at which the query is submitted.
    pub at: Duration,
    /// Index of the submitting client (`0..clients`).
    pub client: usize,
    /// The query.
    pub query: RangeQuery,
}

/// Open-loop Poisson arrivals: queries are offered at exponentially
/// distributed inter-arrival times at a configured rate, *independent of
/// service times*. Unlike the closed-loop [`BatchSessionBuilder`] — where
/// `clients` bounds the in-flight work by construction — an open-loop
/// source keeps offering when the service lags, so queues grow without
/// bound unless the service sheds. This is the regime admission control
/// exists for, and the load shape the `micro_service_latency` bench
/// sweeps (p50/p99 vs offered rate).
#[derive(Debug, Clone)]
pub struct OpenLoopBuilder {
    rate_qps: f64,
    clients: usize,
}

impl OpenLoopBuilder {
    /// Arrivals at `rate_qps` queries per second (clamped to a small
    /// positive rate), offered by a single client.
    #[must_use]
    pub fn new(rate_qps: f64) -> Self {
        OpenLoopBuilder {
            rate_qps: rate_qps.max(1e-6),
            clients: 1,
        }
    }

    /// Spreads the arrival stream uniformly over `clients` simulated
    /// clients (clamped to at least 1). Splitting a Poisson process
    /// uniformly yields independent Poisson processes per client, so this
    /// models `clients` tenants each offering `rate / clients` qps.
    #[must_use]
    pub fn with_clients(mut self, clients: usize) -> Self {
        self.clients = clients.max(1);
        self
    }

    /// The configured offered rate in queries per second.
    #[must_use]
    pub fn rate_qps(&self) -> f64 {
        self.rate_qps
    }

    /// The number of simulated clients.
    #[must_use]
    pub fn clients(&self) -> usize {
        self.clients
    }

    /// Builds a schedule of `queries` arrivals with queries drawn from
    /// `generator`. Timestamps are strictly non-decreasing.
    pub fn build<G: QueryGenerator, R: Rng + ?Sized>(
        &self,
        generator: &mut G,
        queries: usize,
        rng: &mut R,
    ) -> Vec<OpenLoopArrival> {
        let mut at_secs = 0.0f64;
        (0..queries)
            .map(|_| {
                // Inverse-CDF exponential sample; 1 - u ∈ (0, 1] keeps the
                // logarithm finite.
                let u: f64 = rng.gen();
                at_secs += -(1.0 - u).ln() / self.rate_qps;
                OpenLoopArrival {
                    at: Duration::from_secs_f64(at_secs),
                    client: rng.gen_range(0..self.clients),
                    query: generator.next_query(rng),
                }
            })
            .collect()
    }
}

impl BatchSessionBuilder {
    /// The open-loop companion of this closed-loop builder: the same
    /// client population, but offering queries at `rate_qps` regardless
    /// of how fast the service answers.
    #[must_use]
    pub fn open_loop(&self, rate_qps: f64) -> OpenLoopBuilder {
        OpenLoopBuilder::new(rate_qps).with_clients(self.clients)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::UniformRangeGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen() -> UniformRangeGenerator {
        UniformRangeGenerator::new(0, 0, 10_000, 0.01)
    }

    fn count_events(events: &[WorkloadEvent]) -> (usize, usize) {
        let queries = events.iter().filter(|e| e.as_query().is_some()).count();
        let idles = events.iter().filter(|e| e.is_idle()).count();
        (queries, idles)
    }

    #[test]
    fn steady_model_has_no_idle_events() {
        let mut rng = StdRng::seed_from_u64(1);
        let events = SessionBuilder::new(ArrivalModel::Steady).build(&mut gen(), 50, &mut rng);
        let (q, i) = count_events(&events);
        assert_eq!(q, 50);
        assert_eq!(i, 0);
    }

    #[test]
    fn periodic_idle_matches_paper_exp1_shape() {
        // 1000 queries, idle every 100: T_init + 9 interior idle windows.
        let mut rng = StdRng::seed_from_u64(2);
        let events = SessionBuilder::new(ArrivalModel::PeriodicIdle {
            every: 100,
            actions: 10,
        })
        .with_initial_idle(IdleWindow::Actions(10))
        .build(&mut gen(), 1000, &mut rng);
        let (q, i) = count_events(&events);
        assert_eq!(q, 1000);
        assert_eq!(i, 10);
        assert!(events[0].is_idle(), "the initial idle window comes first");
        // Idle windows appear exactly every 100 queries.
        let mut queries_seen = 0;
        for e in &events[1..] {
            match e {
                WorkloadEvent::Query(_) => queries_seen += 1,
                WorkloadEvent::Idle(_) => {
                    assert_eq!(
                        queries_seen % 100,
                        0,
                        "idle window not on a 100-query boundary"
                    );
                }
            }
        }
    }

    #[test]
    fn bursty_model_alternates_bursts_and_idles() {
        let mut rng = StdRng::seed_from_u64(3);
        let events = SessionBuilder::new(ArrivalModel::Bursty {
            burst_len: 10,
            actions: 50,
        })
        .build(&mut gen(), 35, &mut rng);
        let (q, i) = count_events(&events);
        assert_eq!(q, 35);
        assert_eq!(i, 3); // after bursts of 10, 10, 10 (not after the final 5)
        assert!(!events.last().unwrap().is_idle());
    }

    #[test]
    fn zero_queries_yields_only_initial_idle() {
        let mut rng = StdRng::seed_from_u64(4);
        let events = SessionBuilder::new(ArrivalModel::Steady)
            .with_initial_idle(IdleWindow::Actions(100))
            .build(&mut gen(), 0, &mut rng);
        assert_eq!(events.len(), 1);
        assert!(events[0].is_idle());
    }

    #[test]
    fn batched_sessions_preserve_query_count_and_batch_size() {
        let mut rng = StdRng::seed_from_u64(8);
        let events = BatchSessionBuilder::new(64).build(&mut gen(), 1000, &mut rng);
        let sizes: Vec<usize> = events
            .iter()
            .filter_map(|e| match e {
                BatchEvent::Batch(b) => Some(b.len()),
                BatchEvent::Idle(_) => None,
            })
            .collect();
        assert_eq!(sizes.iter().sum::<usize>(), 1000);
        assert_eq!(sizes.len(), 16); // ceil(1000 / 64)
        assert!(sizes[..15].iter().all(|&s| s == 64));
        assert_eq!(sizes[15], 1000 - 15 * 64);
    }

    #[test]
    fn batched_sessions_interleave_idle_windows() {
        let mut rng = StdRng::seed_from_u64(9);
        let events =
            BatchSessionBuilder::new(10)
                .with_periodic_idle(2, 5)
                .build(&mut gen(), 60, &mut rng);
        let idles = events
            .iter()
            .filter(|e| matches!(e, BatchEvent::Idle(_)))
            .count();
        assert_eq!(idles, 2); // after batches 2 and 4, none after the last
        assert!(matches!(events[0], BatchEvent::Batch(_)));
        assert!(matches!(events.last(), Some(BatchEvent::Batch(_))));
    }

    #[test]
    fn batched_sessions_clamp_degenerate_parameters() {
        let mut rng = StdRng::seed_from_u64(10);
        let builder = BatchSessionBuilder::new(0);
        assert_eq!(builder.clients(), 1);
        let events = builder.build(&mut gen(), 3, &mut rng);
        assert_eq!(events.len(), 3);
        assert!(BatchSessionBuilder::new(8)
            .build(&mut gen(), 0, &mut rng)
            .is_empty());
    }

    #[test]
    fn open_loop_arrivals_match_the_offered_rate() {
        let mut rng = StdRng::seed_from_u64(11);
        let rate = 500.0;
        let n = 4000;
        let schedule = OpenLoopBuilder::new(rate)
            .with_clients(4)
            .build(&mut gen(), n, &mut rng);
        assert_eq!(schedule.len(), n);
        // Timestamps are non-decreasing.
        assert!(schedule.windows(2).all(|w| w[0].at <= w[1].at));
        // Every client participates and ids stay in range.
        assert!(schedule.iter().all(|a| a.client < 4));
        for c in 0..4 {
            assert!(schedule.iter().any(|a| a.client == c));
        }
        // The empirical rate is within 10% of the offered rate (the
        // relative error of a Poisson count at n = 4000 is ~1.6%).
        let span = schedule[n - 1].at.as_secs_f64();
        let empirical = (n as f64) / span;
        assert!(
            (empirical / rate - 1.0).abs() < 0.1,
            "empirical rate {empirical:.1} vs offered {rate}"
        );
    }

    #[test]
    fn open_loop_extends_the_closed_loop_builder() {
        let open = BatchSessionBuilder::new(16).open_loop(100.0);
        assert_eq!(open.clients(), 16);
        assert!((open.rate_qps() - 100.0).abs() < f64::EPSILON);
        // Degenerate parameters are clamped, not panicked on.
        let degenerate = OpenLoopBuilder::new(-3.0).with_clients(0);
        assert_eq!(degenerate.clients(), 1);
        assert!(degenerate.rate_qps() > 0.0);
        let mut rng = StdRng::seed_from_u64(12);
        assert!(degenerate.build(&mut gen(), 0, &mut rng).is_empty());
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let mut rng = StdRng::seed_from_u64(5);
        let events = SessionBuilder::new(ArrivalModel::PeriodicIdle {
            every: 0,
            actions: 1,
        })
        .build(&mut gen(), 5, &mut rng);
        let (q, i) = count_events(&events);
        assert_eq!(q, 5);
        assert_eq!(i, 4);
        let events = SessionBuilder::new(ArrivalModel::Bursty {
            burst_len: 0,
            actions: 1,
        })
        .build(&mut gen(), 3, &mut rng);
        let (q, _) = count_events(&events);
        assert_eq!(q, 3);
    }
}
