//! Arrival models: how queries and idle windows interleave over a session.

use rand::Rng;

use crate::generators::QueryGenerator;
use crate::query::{IdleWindow, WorkloadEvent};

/// How idle time is distributed over the query sequence.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum ArrivalModel {
    /// Queries arrive back to back with no idle time at all (the environment
    /// adaptive indexing is designed for).
    Steady,
    /// The paper's Exp1 setup: an idle window before the first query and one
    /// after every `every` queries, each worth `actions` refinement actions.
    PeriodicIdle {
        /// Queries between idle windows.
        every: usize,
        /// Refinement actions that fit in one idle window.
        actions: u64,
    },
    /// Bursts of `burst_len` queries separated by idle windows worth
    /// `actions` refinement actions (social-network / web-log style traffic).
    Bursty {
        /// Queries per burst.
        burst_len: usize,
        /// Refinement actions that fit in the gap between bursts.
        actions: u64,
    },
}

/// Builds a full workload session (a sequence of [`WorkloadEvent`]s) from a
/// query generator and an arrival model.
#[derive(Debug, Clone)]
pub struct SessionBuilder {
    model: ArrivalModel,
    /// Idle window granted before the first query (the paper's `T_init`).
    initial_idle: Option<IdleWindow>,
}

impl SessionBuilder {
    /// Creates a session builder for the given arrival model.
    #[must_use]
    pub fn new(model: ArrivalModel) -> Self {
        SessionBuilder {
            model,
            initial_idle: None,
        }
    }

    /// Grants an idle window before the first query (offline-style a-priori
    /// idle time).
    #[must_use]
    pub fn with_initial_idle(mut self, idle: IdleWindow) -> Self {
        self.initial_idle = Some(idle);
        self
    }

    /// Builds a session of `queries` queries drawn from `generator`.
    pub fn build<G: QueryGenerator, R: Rng + ?Sized>(
        &self,
        generator: &mut G,
        queries: usize,
        rng: &mut R,
    ) -> Vec<WorkloadEvent> {
        let mut events = Vec::with_capacity(queries + queries / 16 + 2);
        if let Some(idle) = self.initial_idle {
            events.push(WorkloadEvent::Idle(idle));
        }
        match self.model {
            ArrivalModel::Steady => {
                for _ in 0..queries {
                    events.push(WorkloadEvent::Query(generator.next_query(rng)));
                }
            }
            ArrivalModel::PeriodicIdle { every, actions } => {
                let every = every.max(1);
                for i in 0..queries {
                    if i > 0 && i % every == 0 {
                        events.push(WorkloadEvent::Idle(IdleWindow::Actions(actions)));
                    }
                    events.push(WorkloadEvent::Query(generator.next_query(rng)));
                }
            }
            ArrivalModel::Bursty { burst_len, actions } => {
                let burst_len = burst_len.max(1);
                let mut issued = 0usize;
                while issued < queries {
                    let this_burst = burst_len.min(queries - issued);
                    for _ in 0..this_burst {
                        events.push(WorkloadEvent::Query(generator.next_query(rng)));
                    }
                    issued += this_burst;
                    if issued < queries {
                        events.push(WorkloadEvent::Idle(IdleWindow::Actions(actions)));
                    }
                }
            }
        }
        events
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::generators::UniformRangeGenerator;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn gen() -> UniformRangeGenerator {
        UniformRangeGenerator::new(0, 0, 10_000, 0.01)
    }

    fn count_events(events: &[WorkloadEvent]) -> (usize, usize) {
        let queries = events.iter().filter(|e| e.as_query().is_some()).count();
        let idles = events.iter().filter(|e| e.is_idle()).count();
        (queries, idles)
    }

    #[test]
    fn steady_model_has_no_idle_events() {
        let mut rng = StdRng::seed_from_u64(1);
        let events = SessionBuilder::new(ArrivalModel::Steady).build(&mut gen(), 50, &mut rng);
        let (q, i) = count_events(&events);
        assert_eq!(q, 50);
        assert_eq!(i, 0);
    }

    #[test]
    fn periodic_idle_matches_paper_exp1_shape() {
        // 1000 queries, idle every 100: T_init + 9 interior idle windows.
        let mut rng = StdRng::seed_from_u64(2);
        let events = SessionBuilder::new(ArrivalModel::PeriodicIdle {
            every: 100,
            actions: 10,
        })
        .with_initial_idle(IdleWindow::Actions(10))
        .build(&mut gen(), 1000, &mut rng);
        let (q, i) = count_events(&events);
        assert_eq!(q, 1000);
        assert_eq!(i, 10);
        assert!(events[0].is_idle(), "the initial idle window comes first");
        // Idle windows appear exactly every 100 queries.
        let mut queries_seen = 0;
        for e in &events[1..] {
            match e {
                WorkloadEvent::Query(_) => queries_seen += 1,
                WorkloadEvent::Idle(_) => {
                    assert_eq!(
                        queries_seen % 100,
                        0,
                        "idle window not on a 100-query boundary"
                    );
                }
            }
        }
    }

    #[test]
    fn bursty_model_alternates_bursts_and_idles() {
        let mut rng = StdRng::seed_from_u64(3);
        let events = SessionBuilder::new(ArrivalModel::Bursty {
            burst_len: 10,
            actions: 50,
        })
        .build(&mut gen(), 35, &mut rng);
        let (q, i) = count_events(&events);
        assert_eq!(q, 35);
        assert_eq!(i, 3); // after bursts of 10, 10, 10 (not after the final 5)
        assert!(!events.last().unwrap().is_idle());
    }

    #[test]
    fn zero_queries_yields_only_initial_idle() {
        let mut rng = StdRng::seed_from_u64(4);
        let events = SessionBuilder::new(ArrivalModel::Steady)
            .with_initial_idle(IdleWindow::Actions(100))
            .build(&mut gen(), 0, &mut rng);
        assert_eq!(events.len(), 1);
        assert!(events[0].is_idle());
    }

    #[test]
    fn degenerate_parameters_are_clamped() {
        let mut rng = StdRng::seed_from_u64(5);
        let events = SessionBuilder::new(ArrivalModel::PeriodicIdle {
            every: 0,
            actions: 1,
        })
        .build(&mut gen(), 5, &mut rng);
        let (q, i) = count_events(&events);
        assert_eq!(q, 5);
        assert_eq!(i, 4);
        let events = SessionBuilder::new(ArrivalModel::Bursty {
            burst_len: 0,
            actions: 1,
        })
        .build(&mut gen(), 3, &mut rng);
        let (q, _) = count_events(&events);
        assert_eq!(q, 3);
    }
}
