//! # holistic-workload
//!
//! Workload generators, arrival/idle-time models and query traces for the
//! holistic indexing experiments.
//!
//! The paper's evaluation uses synthetic select-project workloads over
//! integer columns: every query is of the form
//! `SELECT A_i FROM R WHERE A_i >= low AND A_i < high`, with a fixed
//! selectivity (1%) and randomly positioned ranges, optionally spread
//! round-robin over several columns, and with *controlled idle time*
//! injected before the first query and every fixed number of queries. This
//! crate provides those generators plus the more realistic arrival models
//! (bursty traffic, skewed value ranges, sliding windows) used by the
//! examples and the ablation benchmarks.
//!
//! * [`query`] — the query and event types.
//! * [`generators`] — range-predicate generators (uniform, zipf-skewed,
//!   sequential, round-robin over columns).
//! * [`arrival`] — arrival models that interleave queries with idle windows.
//! * [`trace`] — recording and replaying workload traces.
//! * [`zipf`] — a small Zipf sampler used by the skewed generator.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod arrival;
pub mod generators;
pub mod query;
pub mod trace;
pub mod zipf;

pub use arrival::{
    ArrivalModel, BatchEvent, BatchSessionBuilder, OpenLoopArrival, OpenLoopBuilder, SessionBuilder,
};
pub use generators::{
    QueryGenerator, RoundRobinColumns, SequentialRangeGenerator, UniformRangeGenerator,
    ZipfRangeGenerator,
};
pub use query::{IdleWindow, RangeQuery, WorkloadEvent};
pub use trace::QueryTrace;
pub use zipf::Zipf;

/// Value type used by the workload generators (matches the storage layer).
pub type Value = i64;
