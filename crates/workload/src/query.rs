//! Query and workload-event types.

use serde::{Deserialize, Serialize};

use crate::Value;

/// A range select-project query on one column:
/// `SELECT A_c FROM R WHERE A_c >= lo AND A_c < hi`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RangeQuery {
    /// Positional index of the queried column within the table.
    pub column: usize,
    /// Inclusive lower predicate bound.
    pub lo: Value,
    /// Exclusive upper predicate bound.
    pub hi: Value,
}

impl RangeQuery {
    /// Creates a range query.
    #[must_use]
    pub fn new(column: usize, lo: Value, hi: Value) -> Self {
        RangeQuery { column, lo, hi }
    }

    /// Width of the requested value range (0 for empty/inverted ranges).
    #[must_use]
    pub fn width(&self) -> u64 {
        if self.hi <= self.lo {
            0
        } else {
            (self.hi - self.lo) as u64
        }
    }

    /// Whether the predicate selects nothing by construction.
    #[must_use]
    pub fn is_empty_range(&self) -> bool {
        self.hi <= self.lo
    }
}

/// An idle window in the workload: a stretch of time with no queries, which
/// a holistic kernel can spend on auxiliary index refinement.
///
/// The paper controls idle time by the number of refinement actions it
/// permits (`X` in Exp1); wall-clock budgets are supported as well for the
/// realistic arrival models.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum IdleWindow {
    /// Enough idle time to apply this many refinement actions.
    Actions(u64),
    /// A wall-clock idle budget, in microseconds.
    Micros(u64),
}

impl IdleWindow {
    /// The action budget, if this window is expressed in actions.
    #[must_use]
    pub fn actions(&self) -> Option<u64> {
        match self {
            IdleWindow::Actions(a) => Some(*a),
            IdleWindow::Micros(_) => None,
        }
    }
}

/// One event of a workload session: either a query arrives or the system is
/// idle for a while.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum WorkloadEvent {
    /// A query arrives and must be answered now.
    Query(RangeQuery),
    /// No queries arrive for a while; the budget describes how long.
    Idle(IdleWindow),
}

impl WorkloadEvent {
    /// The query, if this event is a query.
    #[must_use]
    pub fn as_query(&self) -> Option<&RangeQuery> {
        match self {
            WorkloadEvent::Query(q) => Some(q),
            WorkloadEvent::Idle(_) => None,
        }
    }

    /// Whether this event is an idle window.
    #[must_use]
    pub fn is_idle(&self) -> bool {
        matches!(self, WorkloadEvent::Idle(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_query_width_and_emptiness() {
        let q = RangeQuery::new(0, 10, 20);
        assert_eq!(q.width(), 10);
        assert!(!q.is_empty_range());
        let empty = RangeQuery::new(1, 20, 10);
        assert_eq!(empty.width(), 0);
        assert!(empty.is_empty_range());
        let point = RangeQuery::new(2, 5, 5);
        assert!(point.is_empty_range());
    }

    #[test]
    fn idle_window_actions_accessor() {
        assert_eq!(IdleWindow::Actions(10).actions(), Some(10));
        assert_eq!(IdleWindow::Micros(500).actions(), None);
    }

    #[test]
    fn workload_event_accessors() {
        let q = WorkloadEvent::Query(RangeQuery::new(0, 1, 2));
        let i = WorkloadEvent::Idle(IdleWindow::Actions(5));
        assert!(q.as_query().is_some());
        assert!(!q.is_idle());
        assert!(i.as_query().is_none());
        assert!(i.is_idle());
    }
}
