//! A small Zipf(θ) sampler over `{0, …, n-1}`.
//!
//! Used by the skewed workload generator to concentrate query ranges on a
//! few hot regions of the value domain, which is how exploratory workloads
//! over logs and scientific archives typically behave.

use rand::Rng;

/// A Zipf distribution over ranks `0..n` with skew parameter `theta`.
///
/// `theta = 0` degenerates to the uniform distribution; larger values make
/// low ranks increasingly hot (θ around 1 is the classic web-access skew).
#[derive(Debug, Clone)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Creates a sampler over `n` ranks with skew `theta`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `theta` is negative or not finite.
    #[must_use]
    pub fn new(n: usize, theta: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(
            theta >= 0.0 && theta.is_finite(),
            "theta must be finite and >= 0"
        );
        let mut weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(theta)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        for w in &mut weights {
            acc += *w / total;
            *w = acc;
        }
        // Guard against floating point drift.
        if let Some(last) = weights.last_mut() {
            *last = 1.0;
        }
        Zipf { cdf: weights }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has a single rank.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws a rank in `0..n`.
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        self.cdf.partition_point(|&c| c < u).min(self.cdf.len() - 1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn samples_are_in_range() {
        let z = Zipf::new(10, 1.0);
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            assert!(z.sample(&mut rng) < 10);
        }
        assert_eq!(z.len(), 10);
        assert!(!z.is_empty());
    }

    #[test]
    fn theta_zero_is_roughly_uniform() {
        let z = Zipf::new(4, 0.0);
        let mut rng = StdRng::seed_from_u64(2);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut rng)] += 1;
        }
        for &c in &counts {
            assert!((c as f64 - 10_000.0).abs() < 1_000.0, "counts={counts:?}");
        }
    }

    #[test]
    fn larger_theta_concentrates_on_low_ranks() {
        let z = Zipf::new(100, 1.2);
        let mut rng = StdRng::seed_from_u64(3);
        let mut low = 0usize;
        let n = 10_000;
        for _ in 0..n {
            if z.sample(&mut rng) < 10 {
                low += 1;
            }
        }
        assert!(
            low as f64 / n as f64 > 0.5,
            "low fraction {}",
            low as f64 / n as f64
        );
    }

    #[test]
    fn single_rank_always_samples_zero() {
        let z = Zipf::new(1, 2.0);
        let mut rng = StdRng::seed_from_u64(4);
        assert_eq!(z.sample(&mut rng), 0);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = Zipf::new(0, 1.0);
    }

    #[test]
    #[should_panic(expected = "theta must be finite")]
    fn negative_theta_panics() {
        let _ = Zipf::new(5, -1.0);
    }
}
