//! Recording and replaying workload traces.
//!
//! Traces make experiments reproducible across engines and strategies: the
//! benchmark harness generates a session once, saves it, and replays the
//! exact same event sequence for scan / offline / adaptive / holistic runs.
//! The on-disk format is a simple line-oriented text format (one event per
//! line) so traces are diffable and easy to inspect; the types also derive
//! `serde` so users can plug in any serde-compatible format.

use serde::{Deserialize, Serialize};

use crate::query::{IdleWindow, RangeQuery, WorkloadEvent};

/// A recorded workload session.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct QueryTrace {
    events: Vec<WorkloadEvent>,
}

/// Errors produced when parsing a textual trace.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceParseError {
    /// 1-based line number of the offending line.
    pub line: usize,
    /// Description of the problem.
    pub message: String,
}

impl std::fmt::Display for TraceParseError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "trace parse error at line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for TraceParseError {}

impl QueryTrace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        QueryTrace::default()
    }

    /// Creates a trace from a pre-built event sequence.
    #[must_use]
    pub fn from_events(events: Vec<WorkloadEvent>) -> Self {
        QueryTrace { events }
    }

    /// Appends an event.
    pub fn push(&mut self, event: WorkloadEvent) {
        self.events.push(event);
    }

    /// The recorded events.
    #[must_use]
    pub fn events(&self) -> &[WorkloadEvent] {
        &self.events
    }

    /// Number of events (queries + idle windows).
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// Number of query events.
    #[must_use]
    pub fn query_count(&self) -> usize {
        self.events
            .iter()
            .filter(|e| e.as_query().is_some())
            .count()
    }

    /// Serializes the trace to the line-oriented text format.
    ///
    /// Format, one event per line:
    /// `Q <column> <lo> <hi>`, `IA <actions>`, or `IM <micros>`.
    #[must_use]
    pub fn to_text(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 16);
        for event in &self.events {
            match event {
                WorkloadEvent::Query(q) => {
                    out.push_str(&format!("Q {} {} {}\n", q.column, q.lo, q.hi));
                }
                WorkloadEvent::Idle(IdleWindow::Actions(a)) => {
                    out.push_str(&format!("IA {a}\n"));
                }
                WorkloadEvent::Idle(IdleWindow::Micros(m)) => {
                    out.push_str(&format!("IM {m}\n"));
                }
            }
        }
        out
    }

    /// Parses a trace from the line-oriented text format produced by
    /// [`QueryTrace::to_text`]. Blank lines and lines starting with `#` are
    /// ignored.
    pub fn from_text(text: &str) -> Result<Self, TraceParseError> {
        let mut events = Vec::new();
        for (i, raw) in text.lines().enumerate() {
            let line = raw.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            let mut parts = line.split_whitespace();
            let Some(tag) = parts.next() else {
                continue;
            };
            let parse = |s: Option<&str>, what: &str| -> Result<i64, TraceParseError> {
                s.ok_or_else(|| TraceParseError {
                    line: i + 1,
                    message: format!("missing {what}"),
                })?
                .parse::<i64>()
                .map_err(|e| TraceParseError {
                    line: i + 1,
                    message: format!("bad {what}: {e}"),
                })
            };
            let event = match tag {
                "Q" => {
                    let column = parse(parts.next(), "column")?;
                    let lo = parse(parts.next(), "lo")?;
                    let hi = parse(parts.next(), "hi")?;
                    if column < 0 {
                        return Err(TraceParseError {
                            line: i + 1,
                            message: "column must be non-negative".to_string(),
                        });
                    }
                    WorkloadEvent::Query(RangeQuery::new(column as usize, lo, hi))
                }
                "IA" => WorkloadEvent::Idle(IdleWindow::Actions(
                    parse(parts.next(), "actions")?.max(0) as u64,
                )),
                "IM" => WorkloadEvent::Idle(IdleWindow::Micros(
                    parse(parts.next(), "micros")?.max(0) as u64,
                )),
                other => {
                    return Err(TraceParseError {
                        line: i + 1,
                        message: format!("unknown event tag `{other}`"),
                    })
                }
            };
            if parts.next().is_some() {
                return Err(TraceParseError {
                    line: i + 1,
                    message: "trailing tokens".to_string(),
                });
            }
            events.push(event);
        }
        Ok(QueryTrace { events })
    }
}

impl IntoIterator for QueryTrace {
    type Item = WorkloadEvent;
    type IntoIter = std::vec::IntoIter<WorkloadEvent>;

    fn into_iter(self) -> Self::IntoIter {
        self.events.into_iter()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> QueryTrace {
        QueryTrace::from_events(vec![
            WorkloadEvent::Idle(IdleWindow::Actions(100)),
            WorkloadEvent::Query(RangeQuery::new(0, 10, 20)),
            WorkloadEvent::Query(RangeQuery::new(3, -50, 50)),
            WorkloadEvent::Idle(IdleWindow::Micros(2500)),
            WorkloadEvent::Query(RangeQuery::new(1, 0, 1)),
        ])
    }

    #[test]
    fn text_round_trip_preserves_events() {
        let trace = sample_trace();
        let text = trace.to_text();
        let parsed = QueryTrace::from_text(&text).unwrap();
        assert_eq!(parsed, trace);
        assert_eq!(parsed.len(), 5);
        assert_eq!(parsed.query_count(), 3);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "# a comment\n\nQ 0 1 2\n  \n# another\nIA 7\n";
        let parsed = QueryTrace::from_text(text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(parsed.query_count(), 1);
    }

    #[test]
    fn parse_errors_carry_line_numbers() {
        let err = QueryTrace::from_text("Q 0 1 2\nX 9\n").unwrap_err();
        assert_eq!(err.line, 2);
        assert!(err.to_string().contains("unknown event tag"));
        let err = QueryTrace::from_text("Q 0 1\n").unwrap_err();
        assert_eq!(err.line, 1);
        assert!(err.message.contains("missing hi"));
        let err = QueryTrace::from_text("Q 0 1 2 3\n").unwrap_err();
        assert!(err.message.contains("trailing"));
        let err = QueryTrace::from_text("Q -1 1 2\n").unwrap_err();
        assert!(err.message.contains("non-negative"));
        let err = QueryTrace::from_text("IA abc\n").unwrap_err();
        assert!(err.message.contains("bad actions"));
    }

    #[test]
    fn push_and_iterate() {
        let mut trace = QueryTrace::new();
        assert!(trace.is_empty());
        trace.push(WorkloadEvent::Query(RangeQuery::new(0, 1, 2)));
        trace.push(WorkloadEvent::Idle(IdleWindow::Actions(1)));
        let events: Vec<WorkloadEvent> = trace.clone().into_iter().collect();
        assert_eq!(events.len(), 2);
        assert_eq!(trace.events().len(), 2);
    }

    #[test]
    fn negative_idle_budgets_clamp_to_zero() {
        let parsed = QueryTrace::from_text("IA -5\n").unwrap();
        assert_eq!(
            parsed.events()[0],
            WorkloadEvent::Idle(IdleWindow::Actions(0))
        );
    }
}
