//! The snapshot container format: a versioned, checksummed, sectioned
//! binary image.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic            8  b"HOLISNAP"
//! format version   u32
//! generation       u64
//! section count    u32
//! per section:     tag u32 · offset u64 · len u64 · crc32 u32
//! directory crc32  u32   (over every byte above)
//! ...section payloads at their recorded offsets...
//! ```
//!
//! The directory carries its own CRC so a flipped byte anywhere in the
//! header makes the whole file unusable *detectably*; each payload carries
//! its own CRC so one corrupted section (say, the learned cracker state)
//! can be dropped while the others (the base data image) are still
//! trusted — the hinge of the recovery degradation ladder.

use crate::crc::crc32;
use crate::{Decoder, Encoder, PersistError, Result};

/// Magic bytes identifying a snapshot file.
pub const SNAPSHOT_MAGIC: &[u8; 8] = b"HOLISNAP";
/// Current snapshot format version.
pub const SNAPSHOT_VERSION: u32 = 1;

/// Builds a snapshot file from tagged sections.
#[derive(Debug)]
pub struct SnapshotBuilder {
    generation: u64,
    sections: Vec<(u32, Vec<u8>)>,
}

impl SnapshotBuilder {
    /// Starts a snapshot for the given generation number.
    #[must_use]
    pub fn new(generation: u64) -> Self {
        SnapshotBuilder {
            generation,
            sections: Vec::new(),
        }
    }

    /// Appends a tagged section payload.
    pub fn add_section(&mut self, tag: u32, payload: Vec<u8>) {
        self.sections.push((tag, payload));
    }

    /// Serializes the complete snapshot file.
    #[must_use]
    pub fn finish(self) -> Vec<u8> {
        // Header size: magic + version + generation + count
        //              + per-section directory entry + directory crc.
        let header_len = 8 + 4 + 8 + 4 + self.sections.len() * 24 + 4;
        let mut e = Encoder::new();
        e.put_bytes(SNAPSHOT_MAGIC);
        e.put_u32(SNAPSHOT_VERSION);
        e.put_u64(self.generation);
        e.put_u32(self.sections.len() as u32);
        let mut offset = header_len as u64;
        for (tag, payload) in &self.sections {
            e.put_u32(*tag);
            e.put_u64(offset);
            e.put_u64(payload.len() as u64);
            e.put_u32(crc32(payload));
            offset += payload.len() as u64;
        }
        let mut bytes = e.into_bytes();
        let dir_crc = crc32(&bytes);
        bytes.extend_from_slice(&dir_crc.to_le_bytes());
        debug_assert_eq!(bytes.len(), header_len);
        for (_, payload) in &self.sections {
            bytes.extend_from_slice(payload);
        }
        bytes
    }
}

/// One section recovered from a snapshot file.
#[derive(Debug, Clone)]
pub struct LoadedSection {
    /// The section's tag.
    pub tag: u32,
    /// The payload — `None` if its CRC failed or its extent lay outside
    /// the file (that section is corrupt; others may still be good).
    pub payload: Option<Vec<u8>>,
}

/// A parsed snapshot file.
#[derive(Debug, Clone)]
pub struct Snapshot {
    /// Generation number recorded in the header.
    pub generation: u64,
    /// The sections, in file order.
    pub sections: Vec<LoadedSection>,
}

impl Snapshot {
    /// Returns the payload of the first section with `tag`, if that
    /// section exists and passed its checksum.
    #[must_use]
    pub fn section(&self, tag: u32) -> Option<&[u8]> {
        self.sections
            .iter()
            .find(|s| s.tag == tag)
            .and_then(|s| s.payload.as_deref())
    }

    /// Parses a snapshot file. Fails with [`PersistError::Corrupt`] if the
    /// header or section directory is damaged (nothing in the file can be
    /// trusted); individual payload corruption is reported per section.
    pub fn parse(bytes: &[u8]) -> Result<Snapshot> {
        let mut d = Decoder::new(bytes);
        let magic = d.take_bytes(8)?;
        if magic != SNAPSHOT_MAGIC {
            return Err(PersistError::Corrupt("bad snapshot magic".into()));
        }
        let version = d.take_u32()?;
        if version != SNAPSHOT_VERSION {
            return Err(PersistError::Corrupt(format!(
                "unsupported snapshot version {version}"
            )));
        }
        let generation = d.take_u64()?;
        let count = d.take_u32()? as usize;
        // Each directory entry is 24 bytes + 4 for the directory CRC.
        if count
            .checked_mul(24)
            .and_then(|n| n.checked_add(4))
            .is_none_or(|need| need > d.remaining())
        {
            return Err(PersistError::Corrupt("truncated section directory".into()));
        }
        let mut entries = Vec::with_capacity(count);
        for _ in 0..count {
            let tag = d.take_u32()?;
            let offset = d.take_u64()?;
            let len = d.take_u64()?;
            let crc = d.take_u32()?;
            entries.push((tag, offset, len, crc));
        }
        let dir_end = bytes.len() - d.remaining();
        let stored_dir_crc = d.take_u32()?;
        if crc32(&bytes[..dir_end]) != stored_dir_crc {
            return Err(PersistError::Corrupt(
                "section directory crc mismatch".into(),
            ));
        }
        let sections = entries
            .into_iter()
            .map(|(tag, offset, len, crc)| {
                let payload = usize::try_from(offset)
                    .ok()
                    .zip(usize::try_from(len).ok())
                    .and_then(|(off, len)| {
                        let end = off.checked_add(len)?;
                        bytes.get(off..end)
                    })
                    .filter(|payload| crc32(payload) == crc)
                    .map(<[u8]>::to_vec);
                LoadedSection { tag, payload }
            })
            .collect();
        Ok(Snapshot {
            generation,
            sections,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Vec<u8> {
        let mut b = SnapshotBuilder::new(7);
        b.add_section(1, b"meta-bytes".to_vec());
        b.add_section(2, b"data-image".to_vec());
        b.add_section(3, vec![]);
        b.finish()
    }

    #[test]
    fn round_trip() {
        let snap = Snapshot::parse(&sample()).unwrap();
        assert_eq!(snap.generation, 7);
        assert_eq!(snap.sections.len(), 3);
        assert_eq!(snap.section(1), Some(b"meta-bytes".as_slice()));
        assert_eq!(snap.section(2), Some(b"data-image".as_slice()));
        assert_eq!(snap.section(3), Some(b"".as_slice()));
        assert_eq!(snap.section(9), None);
    }

    #[test]
    fn payload_flip_corrupts_only_that_section() {
        let mut bytes = sample();
        // Flip a byte inside the second section's payload.
        let len = bytes.len();
        bytes[len - 1] ^= 0xFF; // last byte of the "data-image" payload
        let snap = Snapshot::parse(&bytes).unwrap();
        assert!(snap.section(1).is_some());
        assert_eq!(snap.section(2), None, "corrupt payload must be dropped");
    }

    #[test]
    fn header_flip_corrupts_the_whole_file() {
        for pos in 0..20 {
            let mut bytes = sample();
            bytes[pos] ^= 0xA5;
            assert!(
                Snapshot::parse(&bytes).is_err(),
                "header flip at {pos} went undetected"
            );
        }
    }

    #[test]
    fn every_single_byte_flip_is_detected_or_isolated() {
        let clean = sample();
        for pos in 0..clean.len() {
            let mut bytes = clean.clone();
            bytes[pos] ^= 0x5A;
            match Snapshot::parse(&bytes) {
                Err(PersistError::Corrupt(_)) => {}
                Ok(snap) => {
                    // Parse succeeded: at least one section must have been
                    // flagged corrupt, and surviving sections must be exact.
                    assert!(
                        snap.sections.iter().any(|s| s.payload.is_none()),
                        "flip at {pos} silently accepted"
                    );
                    if let Some(p) = snap.section(1) {
                        assert_eq!(p, b"meta-bytes");
                    }
                    if let Some(p) = snap.section(2) {
                        assert_eq!(p, b"data-image");
                    }
                }
                Err(e) => panic!("unexpected error class: {e}"),
            }
        }
    }

    #[test]
    fn truncation_is_detected() {
        let clean = sample();
        for cut in 0..clean.len() {
            match Snapshot::parse(&clean[..cut]) {
                Err(_) => {}
                Ok(snap) => assert!(
                    snap.sections.iter().any(|s| s.payload.is_none()),
                    "truncation to {cut} bytes went unnoticed"
                ),
            }
        }
    }
}
