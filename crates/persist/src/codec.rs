//! Bounds-checked little-endian byte codec.
//!
//! Every on-disk structure in the persistence layer is serialized through
//! [`Encoder`] and parsed back through [`Decoder`]. The decoder is written
//! for *hostile* input — snapshots and WAL records are validated by CRC
//! before decoding, but the recovery fuzz tests also feed deliberately
//! corrupted bytes straight through here, so:
//!
//! * every read is bounds-checked and returns [`PersistError::Corrupt`]
//!   instead of panicking, and
//! * length prefixes are only trusted up to the number of bytes actually
//!   remaining, so a flipped length byte cannot trigger a multi-gigabyte
//!   allocation.

use crate::{PersistError, Result};

/// Append-only little-endian byte writer.
#[derive(Debug, Default, Clone)]
pub struct Encoder {
    buf: Vec<u8>,
}

impl Encoder {
    /// Creates an empty encoder.
    #[must_use]
    pub fn new() -> Self {
        Encoder::default()
    }

    /// Number of bytes written so far.
    #[must_use]
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether nothing has been written yet.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Consumes the encoder, returning the bytes.
    #[must_use]
    pub fn into_bytes(self) -> Vec<u8> {
        self.buf
    }

    /// Writes a single byte.
    pub fn put_u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    /// Writes a bool as one byte.
    pub fn put_bool(&mut self, v: bool) {
        self.buf.push(u8::from(v));
    }

    /// Writes a `u32` little-endian.
    pub fn put_u32(&mut self, v: u32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `u64` little-endian.
    pub fn put_u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes a `usize` as a `u64`.
    pub fn put_usize(&mut self, v: usize) {
        self.put_u64(v as u64);
    }

    /// Writes an `i64` little-endian.
    pub fn put_i64(&mut self, v: i64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes an `i128` little-endian.
    pub fn put_i128(&mut self, v: i128) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    /// Writes raw bytes (no length prefix).
    pub fn put_bytes(&mut self, bytes: &[u8]) {
        self.buf.extend_from_slice(bytes);
    }

    /// Writes a length-prefixed UTF-8 string.
    pub fn put_str(&mut self, s: &str) {
        self.put_usize(s.len());
        self.buf.extend_from_slice(s.as_bytes());
    }

    /// Writes a length-prefixed `i64` slice.
    pub fn put_i64_slice(&mut self, vs: &[i64]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_i64(v);
        }
    }

    /// Writes a length-prefixed `u32` slice.
    pub fn put_u32_slice(&mut self, vs: &[u32]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_u32(v);
        }
    }

    /// Writes a length-prefixed `i128` slice.
    pub fn put_i128_slice(&mut self, vs: &[i128]) {
        self.put_usize(vs.len());
        for &v in vs {
            self.put_i128(v);
        }
    }

    /// Writes `Some(v)` as `1` + the value, `None` as `0`.
    pub fn put_opt_i64(&mut self, v: Option<i64>) {
        match v {
            Some(v) => {
                self.put_u8(1);
                self.put_i64(v);
            }
            None => self.put_u8(0),
        }
    }

    /// Writes `Some(v)` as `1` + the value, `None` as `0`.
    pub fn put_opt_i128(&mut self, v: Option<i128>) {
        match v {
            Some(v) => {
                self.put_u8(1);
                self.put_i128(v);
            }
            None => self.put_u8(0),
        }
    }
}

/// Bounds-checked little-endian byte reader.
#[derive(Debug, Clone)]
pub struct Decoder<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Decoder<'a> {
    /// Wraps a byte slice for decoding.
    #[must_use]
    pub fn new(buf: &'a [u8]) -> Self {
        Decoder { buf, pos: 0 }
    }

    /// Bytes not yet consumed.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    /// Whether every byte has been consumed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.remaining() == 0
    }

    fn corrupt(what: &str) -> PersistError {
        PersistError::Corrupt(format!("truncated or invalid field: {what}"))
    }

    /// Takes `n` raw bytes.
    pub fn take_bytes(&mut self, n: usize) -> Result<&'a [u8]> {
        if self.remaining() < n {
            return Err(Self::corrupt("raw bytes"));
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    /// Takes one byte.
    pub fn take_u8(&mut self) -> Result<u8> {
        Ok(self.take_bytes(1)?[0])
    }

    /// Takes a bool (one byte, `0` or `1`).
    pub fn take_bool(&mut self) -> Result<bool> {
        match self.take_u8()? {
            0 => Ok(false),
            1 => Ok(true),
            b => Err(PersistError::Corrupt(format!("invalid bool byte {b:#x}"))),
        }
    }

    /// Takes a little-endian `u32`.
    pub fn take_u32(&mut self) -> Result<u32> {
        let b = self.take_bytes(4)?;
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Takes a little-endian `u64`.
    pub fn take_u64(&mut self) -> Result<u64> {
        let b = self.take_bytes(8)?;
        Ok(u64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Takes a `u64` and converts it to `usize`.
    pub fn take_usize(&mut self) -> Result<usize> {
        usize::try_from(self.take_u64()?).map_err(|_| Self::corrupt("usize overflow"))
    }

    /// Takes a little-endian `i64`.
    pub fn take_i64(&mut self) -> Result<i64> {
        let b = self.take_bytes(8)?;
        Ok(i64::from_le_bytes([
            b[0], b[1], b[2], b[3], b[4], b[5], b[6], b[7],
        ]))
    }

    /// Takes a little-endian `i128`.
    pub fn take_i128(&mut self) -> Result<i128> {
        let b = self.take_bytes(16)?;
        let mut arr = [0u8; 16];
        arr.copy_from_slice(b);
        Ok(i128::from_le_bytes(arr))
    }

    /// Takes a length prefix for elements of `elem_size` bytes, verifying
    /// that the announced payload actually fits in the remaining input.
    pub fn take_len(&mut self, elem_size: usize) -> Result<usize> {
        let n = self.take_usize()?;
        let need = n
            .checked_mul(elem_size)
            .ok_or_else(|| Self::corrupt("length overflow"))?;
        if need > self.remaining() {
            return Err(Self::corrupt("length exceeds remaining input"));
        }
        Ok(n)
    }

    /// Takes a length-prefixed UTF-8 string.
    pub fn take_str(&mut self) -> Result<String> {
        let n = self.take_len(1)?;
        let bytes = self.take_bytes(n)?;
        String::from_utf8(bytes.to_vec())
            .map_err(|_| PersistError::Corrupt("invalid utf-8 in string".into()))
    }

    /// Takes a length-prefixed `i64` vector. The length check happens
    /// once up front, so the per-element loop carries no `Result`
    /// plumbing — at snapshot scale (millions of values) the bounds
    /// checks were a measurable slice of restart time.
    pub fn take_i64_vec(&mut self) -> Result<Vec<i64>> {
        let n = self.take_len(8)?;
        let bytes = self.take_bytes(n * 8)?;
        let mut out = Vec::with_capacity(n);
        for c in bytes.chunks_exact(8) {
            out.push(i64::from_le_bytes([
                c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7],
            ]));
        }
        Ok(out)
    }

    /// Takes a length-prefixed `u32` vector (bulk path, see
    /// [`Decoder::take_i64_vec`]).
    pub fn take_u32_vec(&mut self) -> Result<Vec<u32>> {
        let n = self.take_len(4)?;
        let bytes = self.take_bytes(n * 4)?;
        let mut out = Vec::with_capacity(n);
        for c in bytes.chunks_exact(4) {
            out.push(u32::from_le_bytes([c[0], c[1], c[2], c[3]]));
        }
        Ok(out)
    }

    /// Takes a length-prefixed `i128` vector (bulk path, see
    /// [`Decoder::take_i64_vec`]).
    pub fn take_i128_vec(&mut self) -> Result<Vec<i128>> {
        let n = self.take_len(16)?;
        let bytes = self.take_bytes(n * 16)?;
        let mut out = Vec::with_capacity(n);
        for c in bytes.chunks_exact(16) {
            let mut arr = [0u8; 16];
            arr.copy_from_slice(c);
            out.push(i128::from_le_bytes(arr));
        }
        Ok(out)
    }

    /// Takes an optional `i64` (see [`Encoder::put_opt_i64`]).
    pub fn take_opt_i64(&mut self) -> Result<Option<i64>> {
        if self.take_bool()? {
            Ok(Some(self.take_i64()?))
        } else {
            Ok(None)
        }
    }

    /// Takes an optional `i128` (see [`Encoder::put_opt_i128`]).
    pub fn take_opt_i128(&mut self) -> Result<Option<i128>> {
        if self.take_bool()? {
            Ok(Some(self.take_i128()?))
        } else {
            Ok(None)
        }
    }

    /// Asserts that every byte was consumed — trailing garbage is treated
    /// as corruption, not ignored.
    pub fn finish(self) -> Result<()> {
        if self.is_empty() {
            Ok(())
        } else {
            Err(PersistError::Corrupt(format!(
                "{} trailing bytes after decoded value",
                self.remaining()
            )))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_all_types() {
        let mut e = Encoder::new();
        e.put_u8(7);
        e.put_bool(true);
        e.put_u32(0xDEAD_BEEF);
        e.put_u64(u64::MAX);
        e.put_usize(42);
        e.put_i64(-5);
        e.put_i128(i128::MIN);
        e.put_str("piece");
        e.put_i64_slice(&[1, -2, 3]);
        e.put_u32_slice(&[9, 8]);
        e.put_i128_slice(&[i128::MAX]);
        e.put_opt_i64(Some(-9));
        e.put_opt_i64(None);
        e.put_opt_i128(Some(11));
        let bytes = e.into_bytes();

        let mut d = Decoder::new(&bytes);
        assert_eq!(d.take_u8().unwrap(), 7);
        assert!(d.take_bool().unwrap());
        assert_eq!(d.take_u32().unwrap(), 0xDEAD_BEEF);
        assert_eq!(d.take_u64().unwrap(), u64::MAX);
        assert_eq!(d.take_usize().unwrap(), 42);
        assert_eq!(d.take_i64().unwrap(), -5);
        assert_eq!(d.take_i128().unwrap(), i128::MIN);
        assert_eq!(d.take_str().unwrap(), "piece");
        assert_eq!(d.take_i64_vec().unwrap(), vec![1, -2, 3]);
        assert_eq!(d.take_u32_vec().unwrap(), vec![9, 8]);
        assert_eq!(d.take_i128_vec().unwrap(), vec![i128::MAX]);
        assert_eq!(d.take_opt_i64().unwrap(), Some(-9));
        assert_eq!(d.take_opt_i64().unwrap(), None);
        assert_eq!(d.take_opt_i128().unwrap(), Some(11));
        d.finish().unwrap();
    }

    #[test]
    fn truncated_input_is_an_error_not_a_panic() {
        let mut e = Encoder::new();
        e.put_i64_slice(&[1, 2, 3, 4]);
        let bytes = e.into_bytes();
        for cut in 0..bytes.len() {
            let mut d = Decoder::new(&bytes[..cut]);
            assert!(d.take_i64_vec().is_err(), "cut at {cut} decoded");
        }
    }

    #[test]
    fn absurd_length_prefix_is_rejected_before_allocation() {
        let mut e = Encoder::new();
        e.put_u64(u64::MAX); // claims ~2^64 elements
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        assert!(d.take_i64_vec().is_err());
        let mut d = Decoder::new(&bytes);
        assert!(d.take_str().is_err());
    }

    #[test]
    fn trailing_bytes_are_corruption() {
        let mut e = Encoder::new();
        e.put_u8(1);
        e.put_u8(2);
        let bytes = e.into_bytes();
        let mut d = Decoder::new(&bytes);
        d.take_u8().unwrap();
        assert!(d.finish().is_err());
    }

    #[test]
    fn invalid_bool_byte_is_corruption() {
        let mut d = Decoder::new(&[7]);
        assert!(d.take_bool().is_err());
    }
}
