//! The append-only write-ahead log.
//!
//! Layout (all integers little-endian):
//!
//! ```text
//! magic      8  b"HOLIWAL0"
//! version    u32
//! records:   len u32 · crc32 u32 · payload (len bytes)   ...repeated
//! ```
//!
//! Records are length-prefixed and individually checksummed. A crash in
//! the middle of an append leaves a *torn tail*: a partial length prefix,
//! a partial payload, or a payload whose CRC no longer matches. The reader
//! stops at the first record it cannot validate and reports how many
//! trailing bytes it dropped — a torn tail is truncated, never misread,
//! and never hides the valid records before it.

use std::fs::File;
use std::path::Path;
use std::sync::Arc;

use crate::crc::crc32;
use crate::io::{inj_fsync, inj_write, open_append, FaultInjector};
use crate::{Encoder, Result};

/// Magic bytes identifying a WAL file.
pub const WAL_MAGIC: &[u8; 8] = b"HOLIWAL0";
/// Current WAL format version.
pub const WAL_VERSION: u32 = 1;
/// Size of the file header in bytes.
pub const WAL_HEADER_LEN: usize = 12;

fn header_bytes() -> Vec<u8> {
    let mut e = Encoder::new();
    e.put_bytes(WAL_MAGIC);
    e.put_u32(WAL_VERSION);
    e.into_bytes()
}

/// The valid contents of a WAL file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WalContents {
    /// The validated record payloads, in append order.
    pub records: Vec<Vec<u8>>,
    /// Bytes dropped from the torn/corrupt tail (0 for a clean log). If
    /// the header itself is invalid, this is the whole file and no records
    /// are returned.
    pub dropped_bytes: usize,
    /// Length in bytes of the valid prefix (header + validated records);
    /// truncate the file to this length before appending again.
    pub valid_len: u64,
}

/// Decodes a WAL file image, stopping at the first invalid record.
#[must_use]
pub fn decode_wal(bytes: &[u8]) -> WalContents {
    if bytes.len() < WAL_HEADER_LEN || &bytes[..8] != WAL_MAGIC {
        return WalContents {
            records: Vec::new(),
            dropped_bytes: bytes.len(),
            valid_len: 0,
        };
    }
    let version = u32::from_le_bytes([bytes[8], bytes[9], bytes[10], bytes[11]]);
    if version != WAL_VERSION {
        return WalContents {
            records: Vec::new(),
            dropped_bytes: bytes.len(),
            valid_len: 0,
        };
    }
    let mut records = Vec::new();
    let mut pos = WAL_HEADER_LEN;
    loop {
        let rest = &bytes[pos..];
        if rest.len() < 8 {
            break;
        }
        let len = u32::from_le_bytes([rest[0], rest[1], rest[2], rest[3]]) as usize;
        let crc = u32::from_le_bytes([rest[4], rest[5], rest[6], rest[7]]);
        let Some(payload) = rest.get(8..8 + len) else {
            break;
        };
        if crc32(payload) != crc {
            break;
        }
        records.push(payload.to_vec());
        pos += 8 + len;
    }
    WalContents {
        records,
        dropped_bytes: bytes.len() - pos,
        valid_len: pos as u64,
    }
}

/// Serializes a complete WAL file image from record payloads — used when
/// compacting the log after a snapshot.
#[must_use]
pub fn encode_wal<'a>(records: impl IntoIterator<Item = &'a [u8]>) -> Vec<u8> {
    let mut bytes = header_bytes();
    for payload in records {
        bytes.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        bytes.extend_from_slice(&crc32(payload).to_le_bytes());
        bytes.extend_from_slice(payload);
    }
    bytes
}

/// Appends checksummed records to a WAL file, fsyncing each one.
#[derive(Debug)]
pub struct WalWriter {
    file: File,
    injector: Arc<FaultInjector>,
}

impl WalWriter {
    /// Creates a fresh WAL at `path` (truncating any previous file) and
    /// writes the header durably.
    pub fn create(path: &Path, injector: Arc<FaultInjector>) -> Result<Self> {
        let mut file = File::create(path)?;
        inj_write(&mut file, &header_bytes(), &injector)?;
        inj_fsync(&file, &injector)?;
        Ok(WalWriter { file, injector })
    }

    /// Opens an existing WAL for appending after truncating it to
    /// `valid_len` (as reported by [`decode_wal`]), discarding any torn
    /// tail left by a crash.
    pub fn open_append(path: &Path, valid_len: u64, injector: Arc<FaultInjector>) -> Result<Self> {
        let file = File::options().write(true).open(path)?;
        file.set_len(valid_len)?;
        file.sync_all()?;
        drop(file);
        let file = open_append(path)?;
        Ok(WalWriter { file, injector })
    }

    /// Appends one record (length prefix + CRC + payload) and fsyncs.
    pub fn append(&mut self, payload: &[u8]) -> Result<()> {
        let mut record = Vec::with_capacity(8 + payload.len());
        record.extend_from_slice(&(payload.len() as u32).to_le_bytes());
        record.extend_from_slice(&crc32(payload).to_le_bytes());
        record.extend_from_slice(payload);
        inj_write(&mut self.file, &record, &self.injector)?;
        inj_fsync(&self.file, &self.injector)
    }

    /// Group commit: appends every record in one write and one fsync.
    ///
    /// A crash mid-append leaves a torn tail that [`decode_wal`] truncates
    /// to a durable *prefix* of the batch, in order — never a hole, never
    /// a reordering. Callers that treat the batch as a sequence of
    /// independent operations therefore keep per-operation crash
    /// semantics while paying a single fsync. A no-op for an empty batch
    /// (no IO at all).
    pub fn append_batch<'a>(&mut self, payloads: impl IntoIterator<Item = &'a [u8]>) -> Result<()> {
        let mut buf = Vec::new();
        for payload in payloads {
            buf.extend_from_slice(&(payload.len() as u32).to_le_bytes());
            buf.extend_from_slice(&crc32(payload).to_le_bytes());
            buf.extend_from_slice(payload);
        }
        if buf.is_empty() {
            return Ok(());
        }
        inj_write(&mut self.file, &buf, &self.injector)?;
        inj_fsync(&self.file, &self.injector)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::path::PathBuf;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("holistic-persist-wal-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn append_and_decode_round_trip() {
        let dir = tmpdir("roundtrip");
        let path = dir.join("wal.log");
        let inj = FaultInjector::new();
        let mut w = WalWriter::create(&path, Arc::clone(&inj)).unwrap();
        w.append(b"alpha").unwrap();
        w.append(b"").unwrap();
        w.append(b"gamma-record").unwrap();
        let contents = decode_wal(&std::fs::read(&path).unwrap());
        assert_eq!(
            contents.records,
            vec![b"alpha".to_vec(), b"".to_vec(), b"gamma-record".to_vec()]
        );
        assert_eq!(contents.dropped_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn torn_tail_is_truncated_not_misread() {
        let inj = FaultInjector::new();
        let dir = tmpdir("torn");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, Arc::clone(&inj)).unwrap();
        w.append(b"kept-record").unwrap();
        let clean = std::fs::read(&path).unwrap();
        // Simulate every possible torn append of a second record.
        let full = encode_wal([b"kept-record".as_slice(), b"torn-record".as_slice()]);
        let second_start = clean.len();
        for cut in second_start..full.len() {
            let torn = &full[..cut];
            let contents = decode_wal(torn);
            assert_eq!(
                contents.records,
                vec![b"kept-record".to_vec()],
                "cut at {cut}"
            );
            assert_eq!(contents.valid_len as usize, second_start);
            assert_eq!(contents.dropped_bytes, cut - second_start);
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn mid_log_flip_stops_replay_at_the_flip() {
        let bytes = encode_wal([b"one".as_slice(), b"two".as_slice(), b"three".as_slice()]);
        // Flip a byte in the second record's payload.
        let mut corrupt = bytes.clone();
        let pos = WAL_HEADER_LEN + 8 + 3 + 8; // first byte of "two"
        corrupt[pos] ^= 0xA5;
        let contents = decode_wal(&corrupt);
        assert_eq!(contents.records, vec![b"one".to_vec()]);
        assert!(contents.dropped_bytes > 0);
    }

    #[test]
    fn invalid_header_yields_no_records() {
        let mut bytes = encode_wal([b"x".as_slice()]);
        bytes[0] ^= 0xFF;
        let contents = decode_wal(&bytes);
        assert!(contents.records.is_empty());
        assert_eq!(contents.dropped_bytes, bytes.len());
        assert!(decode_wal(b"").records.is_empty());
    }

    #[test]
    fn reopen_after_torn_tail_truncates_then_appends() {
        let inj = FaultInjector::new();
        let dir = tmpdir("reopen");
        let path = dir.join("wal.log");
        let mut w = WalWriter::create(&path, Arc::clone(&inj)).unwrap();
        w.append(b"first").unwrap();
        drop(w);
        // Leave a torn tail by hand.
        let mut bytes = std::fs::read(&path).unwrap();
        let valid_len = bytes.len() as u64;
        bytes.extend_from_slice(&[13, 0, 0, 0, 1, 2]); // partial record
        std::fs::write(&path, &bytes).unwrap();
        let contents = decode_wal(&std::fs::read(&path).unwrap());
        assert_eq!(contents.valid_len, valid_len);
        let mut w = WalWriter::open_append(&path, contents.valid_len, Arc::clone(&inj)).unwrap();
        w.append(b"second").unwrap();
        let contents = decode_wal(&std::fs::read(&path).unwrap());
        assert_eq!(
            contents.records,
            vec![b"first".to_vec(), b"second".to_vec()]
        );
        assert_eq!(contents.dropped_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn batch_append_is_one_write_one_fsync() {
        let dir = tmpdir("batch");
        let path = dir.join("wal.log");
        let inj = FaultInjector::new();
        let mut w = WalWriter::create(&path, Arc::clone(&inj)).unwrap();
        let before = inj.ops_performed();
        w.append_batch([b"a".as_slice(), b"bb".as_slice(), b"ccc".as_slice()])
            .unwrap();
        assert_eq!(inj.ops_performed() - before, 2, "one write + one fsync");
        // An empty batch performs no IO at all.
        w.append_batch(std::iter::empty()).unwrap();
        assert_eq!(inj.ops_performed() - before, 2);
        let contents = decode_wal(&std::fs::read(&path).unwrap());
        assert_eq!(
            contents.records,
            vec![b"a".to_vec(), b"bb".to_vec(), b"ccc".to_vec()]
        );
        assert_eq!(contents.dropped_bytes, 0);
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn killed_batch_append_leaves_a_record_prefix() {
        let dir = tmpdir("batchkill");
        let batch = [b"one".as_slice(), b"two-two".as_slice(), b"333".as_slice()];
        // A batch append is write+fsync = 2 ops; sweep both kill points.
        for kill in 0..2u64 {
            let path = dir.join(format!("wal-{kill}.log"));
            let inj = FaultInjector::new();
            let mut w = WalWriter::create(&path, Arc::clone(&inj)).unwrap();
            w.append(b"durable").unwrap();
            inj.arm(inj.ops_performed() + kill);
            assert!(w.append_batch(batch).is_err());
            inj.disarm();
            let contents = decode_wal(&std::fs::read(&path).unwrap());
            // Whatever survives is a prefix of the batch, in order, after
            // the earlier record — the torn tail never reorders or skips.
            assert!(!contents.records.is_empty());
            assert_eq!(contents.records[0], b"durable".to_vec());
            assert!(contents.records.len() <= 1 + batch.len());
            for (got, want) in contents.records[1..].iter().zip(batch) {
                assert_eq!(got.as_slice(), want);
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn killed_append_is_recoverable_at_every_op() {
        let dir = tmpdir("killsweep");
        let inj = FaultInjector::new();
        // Each append is write+fsync = 2 ops; sweep both kill points.
        for kill in 0..2u64 {
            let path = dir.join(format!("wal-{kill}.log"));
            let mut w = WalWriter::create(&path, Arc::clone(&inj)).unwrap();
            w.append(b"durable").unwrap();
            inj.arm(inj.ops_performed() + kill);
            assert!(w.append(b"killed-record").is_err());
            inj.disarm();
            let contents = decode_wal(&std::fs::read(&path).unwrap());
            // The first record always survives; the killed one either made
            // it fully (kill at fsync) or is dropped as a torn tail.
            assert!(!contents.records.is_empty());
            assert_eq!(contents.records[0], b"durable".to_vec());
            assert!(contents.records.len() <= 2);
            if contents.records.len() == 2 {
                assert_eq!(contents.records[1], b"killed-record".to_vec());
            }
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
