//! Durable file IO with deterministic fault injection.
//!
//! Every disk mutation the persistence layer performs — writes, fsyncs,
//! renames — goes through a shared [`FaultInjector`]. The injector counts
//! operations globally and can be *armed* to "crash" at an exact operation
//! index: the armed operation (and everything after it) fails with
//! [`PersistError::Crashed`], and if the kill lands on a write, a
//! deterministic torn prefix of the buffer is left on disk — exactly the
//! situation a real power cut produces mid-write. Recovery tests sweep the
//! kill index across a whole workload to prove that *no* crash point can
//! corrupt the store.
//!
//! [`atomic_write`] is the durability protocol used for snapshots and WAL
//! rewrites: write to a temporary file in the same directory, fsync it,
//! rename over the target, fsync the directory. A crash before the rename
//! leaves the old file intact; after the rename, the new one is complete.

use std::fs::{File, OpenOptions};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::{PersistError, Result};

/// The classes of IO operation the injector can kill.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum IoOp {
    /// A buffer write to a file.
    Write,
    /// An fsync of a file or directory.
    Fsync,
    /// An atomic rename.
    Rename,
}

impl std::fmt::Display for IoOp {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(match self {
            IoOp::Write => "write",
            IoOp::Fsync => "fsync",
            IoOp::Rename => "rename",
        })
    }
}

/// Outcome of admitting one IO operation past the injector.
enum Admit {
    /// Proceed normally.
    Proceed,
    /// This exact operation is the kill point: perform its torn side
    /// effect (writes only), then fail.
    CrashNow(u64),
    /// The process already "died" at an earlier operation; fail without
    /// any side effect.
    Dead(u64),
}

/// Deterministic crash-point injector shared by all persistence IO.
///
/// Disarmed (the default) it only counts operations; [`FaultInjector::arm`]
/// schedules a crash at a specific global operation index. The count is
/// what makes kill-point sweeps exhaustive: run a workload once disarmed to
/// learn how many IO operations it performs, then re-run it once per index.
#[derive(Debug)]
pub struct FaultInjector {
    ops: AtomicU64,
    kill_at: AtomicU64,
}

const DISARMED: u64 = u64::MAX;

impl FaultInjector {
    /// Creates a disarmed injector.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(FaultInjector {
            ops: AtomicU64::new(0),
            kill_at: AtomicU64::new(DISARMED),
        })
    }

    /// Schedules a crash at global operation index `index` (0-based,
    /// counted from construction or the last [`FaultInjector::reset`]).
    pub fn arm(&self, index: u64) {
        self.kill_at.store(index, Ordering::SeqCst);
    }

    /// Cancels any scheduled crash; operations proceed normally again.
    pub fn disarm(&self) {
        self.kill_at.store(DISARMED, Ordering::SeqCst);
    }

    /// Resets the operation counter (and disarms).
    pub fn reset(&self) {
        self.disarm();
        self.ops.store(0, Ordering::SeqCst);
    }

    /// IO operations admitted so far (including failed ones).
    #[must_use]
    pub fn ops_performed(&self) -> u64 {
        self.ops.load(Ordering::SeqCst)
    }

    fn admit(&self) -> Admit {
        let idx = self.ops.fetch_add(1, Ordering::SeqCst);
        let kill = self.kill_at.load(Ordering::SeqCst);
        if idx < kill {
            Admit::Proceed
        } else if idx == kill {
            Admit::CrashNow(idx)
        } else {
            Admit::Dead(idx)
        }
    }

    /// Deterministic torn-prefix length for the killed write of `len`
    /// bytes: some proper prefix (possibly empty, possibly all but the
    /// very end) derived from the kill index so sweeps are reproducible.
    fn torn_len(index: u64, len: usize) -> usize {
        if len == 0 {
            return 0;
        }
        (index.wrapping_mul(0x9E37_79B9_7F4A_7C15) % (len as u64 + 1)) as usize
    }
}

/// Writes the whole buffer to `file` through the injector. A kill at this
/// operation leaves a deterministic torn prefix in the file.
pub fn inj_write(file: &mut File, bytes: &[u8], inj: &FaultInjector) -> Result<()> {
    match inj.admit() {
        Admit::Proceed => {
            file.write_all(bytes)?;
            Ok(())
        }
        Admit::CrashNow(idx) => {
            let torn = FaultInjector::torn_len(idx, bytes.len());
            // Best effort, exactly like a real torn write: some prefix
            // lands on disk, the rest never does.
            let _ = file.write_all(&bytes[..torn]);
            let _ = file.flush();
            Err(PersistError::Crashed {
                op: IoOp::Write,
                index: idx,
            })
        }
        Admit::Dead(idx) => Err(PersistError::Crashed {
            op: IoOp::Write,
            index: idx,
        }),
    }
}

/// Fsyncs `file` through the injector. In this simulation a kill at the
/// fsync leaves previously written bytes in place (the interesting torn
/// states come from killed writes); the caller still observes the crash.
pub fn inj_fsync(file: &File, inj: &FaultInjector) -> Result<()> {
    match inj.admit() {
        Admit::Proceed => {
            file.sync_all()?;
            Ok(())
        }
        Admit::CrashNow(idx) | Admit::Dead(idx) => Err(PersistError::Crashed {
            op: IoOp::Fsync,
            index: idx,
        }),
    }
}

/// Renames `from` to `to` through the injector. A kill at the rename means
/// the rename did not happen — `to` keeps its old contents.
pub fn inj_rename(from: &Path, to: &Path, inj: &FaultInjector) -> Result<()> {
    match inj.admit() {
        Admit::Proceed => {
            std::fs::rename(from, to)?;
            Ok(())
        }
        Admit::CrashNow(idx) | Admit::Dead(idx) => Err(PersistError::Crashed {
            op: IoOp::Rename,
            index: idx,
        }),
    }
}

fn fsync_dir(dir: &Path, inj: &FaultInjector) -> Result<()> {
    // Directory fsync makes the rename itself durable.
    let d = File::open(dir)?;
    inj_fsync(&d, inj)
}

fn tmp_path(target: &Path) -> PathBuf {
    let mut name = target
        .file_name()
        .map_or_else(|| "file".into(), |n| n.to_os_string());
    name.push(".tmp");
    target.with_file_name(name)
}

/// Atomically replaces `path` with `bytes`: write to a temporary file in
/// the same directory, fsync, rename over the target, fsync the directory.
///
/// Under any single crash point the target either keeps its previous
/// contents or holds the complete new contents — never a torn mixture.
pub fn atomic_write(path: &Path, bytes: &[u8], inj: &FaultInjector) -> Result<()> {
    let tmp = tmp_path(path);
    let mut file = File::create(&tmp)?;
    inj_write(&mut file, bytes, inj)?;
    inj_fsync(&file, inj)?;
    drop(file);
    inj_rename(&tmp, path, inj)?;
    if let Some(dir) = path.parent() {
        fsync_dir(dir, inj)?;
    }
    Ok(())
}

/// Opens `path` for appending through the injector-aware writer path.
pub fn open_append(path: &Path) -> Result<File> {
    Ok(OpenOptions::new().append(true).open(path)?)
}

/// Test helper: XOR one byte of the file at `offset % len` — the byte-flip
/// corruption used by the recovery fuzz tests. No-op on empty files.
pub fn flip_byte(path: &Path, offset: u64) -> Result<()> {
    let mut bytes = std::fs::read(path)?;
    if bytes.is_empty() {
        return Ok(());
    }
    let pos = (offset % bytes.len() as u64) as usize;
    bytes[pos] ^= 0xA5;
    std::fs::write(path, bytes)?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tmpdir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("holistic-persist-io-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn atomic_write_replaces_contents() {
        let dir = tmpdir("replace");
        let path = dir.join("state.bin");
        let inj = FaultInjector::new();
        atomic_write(&path, b"first", &inj).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second", &inj).unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn every_kill_point_leaves_old_or_new_contents() {
        let dir = tmpdir("killsweep");
        let path = dir.join("state.bin");
        let inj = FaultInjector::new();
        atomic_write(&path, b"old-contents", &inj).unwrap();
        let ops_per_write = inj.ops_performed();
        assert!(ops_per_write >= 3, "write+fsync+rename at minimum");

        for kill in 0..ops_per_write {
            atomic_write(&path, b"old-contents", &inj).unwrap();
            let base = inj.ops_performed();
            inj.arm(base + kill);
            let err = atomic_write(&path, b"NEW!", &inj).unwrap_err();
            assert!(matches!(err, PersistError::Crashed { .. }));
            inj.disarm();
            let on_disk = std::fs::read(&path).unwrap();
            assert!(
                on_disk == b"old-contents" || on_disk == b"NEW!",
                "kill at {kill} left torn target: {on_disk:?}"
            );
        }
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn killed_append_leaves_a_proper_prefix() {
        let dir = tmpdir("torn");
        let path = dir.join("wal.bin");
        std::fs::write(&path, b"head").unwrap();
        let inj = FaultInjector::new();
        inj.arm(0);
        let mut f = open_append(&path).unwrap();
        let err = inj_write(&mut f, b"record-bytes", &inj).unwrap_err();
        assert!(matches!(
            err,
            PersistError::Crashed {
                op: IoOp::Write,
                ..
            }
        ));
        let on_disk = std::fs::read(&path).unwrap();
        assert!(on_disk.starts_with(b"head"));
        assert!(on_disk.len() <= b"head".len() + b"record-bytes".len());
        assert!(b"head"
            .iter()
            .chain(b"record-bytes")
            .copied()
            .take(on_disk.len())
            .eq(on_disk.iter().copied()));
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn dead_injector_fails_everything_without_side_effects() {
        let dir = tmpdir("dead");
        let path = dir.join("state.bin");
        let inj = FaultInjector::new();
        atomic_write(&path, b"alive", &inj).unwrap();
        inj.arm(0); // already past op 0: everything from here on is dead
        assert!(atomic_write(&path, b"zombie", &inj).is_err());
        assert_eq!(std::fs::read(&path).unwrap(), b"alive");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn flip_byte_changes_exactly_one_byte() {
        let dir = tmpdir("flip");
        let path = dir.join("f.bin");
        std::fs::write(&path, vec![0u8; 32]).unwrap();
        flip_byte(&path, 70).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        let changed = bytes.iter().filter(|&&b| b != 0).count();
        assert_eq!(changed, 1);
        assert_eq!(bytes[70 % 32], 0xA5);
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
