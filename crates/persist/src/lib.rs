//! # holistic-persist
//!
//! Crash-safe persistence primitives for the holistic indexing kernel:
//! the on-disk building blocks that let a column's *earned* state — cracked
//! piece tables, per-piece sums, prefix arrays — survive a restart.
//!
//! The crate provides four layers, each independently testable:
//!
//! * [`crc`] — CRC-32 (IEEE polynomial), the integrity check stamped on
//!   every snapshot section and WAL record.
//! * [`codec`] — a bounds-checked little-endian byte [`codec::Encoder`] /
//!   [`codec::Decoder`] pair. Decoding never panics and never trusts a
//!   length field it cannot back with remaining bytes, so corrupted input
//!   surfaces as [`PersistError::Corrupt`] rather than an abort or an
//!   absurd allocation.
//! * [`io`] — durable file operations (write-temp-then-fsync-then-rename
//!   plus directory fsync) routed through a deterministic
//!   [`io::FaultInjector`]: every write/fsync/rename is an injection point
//!   that can "crash" the process at an exact operation index, optionally
//!   leaving a torn prefix on disk — the substrate of the recovery
//!   proptests.
//! * [`snapshot`] / [`wal`] — the two file formats: a versioned snapshot
//!   container with a checksummed section directory and per-section CRCs,
//!   and an append-only write-ahead log of length-prefixed, checksummed
//!   records whose torn tail is detected and truncated, never misread.
//!
//! The crate is deliberately a leaf: it knows nothing about columns,
//! pieces or engines. The storage and cracking crates serialize their own
//! types through [`codec`]; the engine composes the files.

#![warn(missing_docs)]
#![deny(unsafe_code)]

pub mod codec;
pub mod crc;
pub mod io;
pub mod snapshot;
pub mod wal;

pub use codec::{Decoder, Encoder};
pub use crc::crc32;
pub use io::{atomic_write, flip_byte, FaultInjector, IoOp};
pub use snapshot::{LoadedSection, Snapshot, SnapshotBuilder};
pub use wal::{decode_wal, encode_wal, WalContents, WalWriter, WAL_HEADER_LEN};

/// Errors produced by the persistence layer.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PersistError {
    /// An operating-system level IO failure (stringified `io::Error`).
    Io(String),
    /// On-disk bytes failed validation: bad magic, unknown version,
    /// truncated structure or checksum mismatch.
    Corrupt(String),
    /// The fault injector killed the process at this IO operation. Nothing
    /// after the kill point reached disk (a torn prefix of the killed
    /// write may have).
    Crashed {
        /// The operation the simulated crash landed on.
        op: IoOp,
        /// Global operation index at which the injector fired.
        index: u64,
    },
}

impl std::fmt::Display for PersistError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            PersistError::Io(msg) => write!(f, "io error: {msg}"),
            PersistError::Corrupt(msg) => write!(f, "corrupt persistent state: {msg}"),
            PersistError::Crashed { op, index } => {
                write!(f, "simulated crash at io operation {index} ({op:?})")
            }
        }
    }
}

impl std::error::Error for PersistError {}

impl From<std::io::Error> for PersistError {
    fn from(e: std::io::Error) -> Self {
        PersistError::Io(e.to_string())
    }
}

/// Convenience result type for persistence operations.
pub type Result<T> = std::result::Result<T, PersistError>;
