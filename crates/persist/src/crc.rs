//! CRC-32 (IEEE 802.3 polynomial, reflected), the checksum stamped on
//! every snapshot section and WAL record.
//!
//! Hand-rolled because the build environment vendors its dependencies: the
//! algorithm is the ubiquitous CRC-32 used by zip/gzip/ethernet, so
//! checksums written here are verifiable with any standard tool. The inner
//! loop uses the slicing-by-8 table variant (eight bytes per step through
//! eight derived tables) instead of the classic byte-at-a-time loop: the
//! restart path checksums every snapshot byte, and at 1M-row scale the
//! byte-wise CRC alone cost more than a third of recovery wall time.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn make_tables() -> [[u32; 256]; 8] {
    let mut tables = [[0u32; 256]; 8];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        tables[0][i] = crc;
        i += 1;
    }
    // tables[t][b] = CRC of byte b followed by t zero bytes, so eight
    // lookups combine to advance the state by eight input bytes at once.
    let mut t = 1;
    while t < 8 {
        let mut i = 0;
        while i < 256 {
            let prev = tables[t - 1][i];
            tables[t][i] = (prev >> 8) ^ tables[0][(prev & 0xFF) as usize];
            i += 1;
        }
        t += 1;
    }
    tables
}

static TABLES: [[u32; 256]; 8] = make_tables();

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        let mut chunks = bytes.chunks_exact(8);
        for chunk in &mut chunks {
            let lo = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]) ^ crc;
            let hi = u32::from_le_bytes([chunk[4], chunk[5], chunk[6], chunk[7]]);
            crc = TABLES[7][(lo & 0xFF) as usize]
                ^ TABLES[6][((lo >> 8) & 0xFF) as usize]
                ^ TABLES[5][((lo >> 16) & 0xFF) as usize]
                ^ TABLES[4][(lo >> 24) as usize]
                ^ TABLES[3][(hi & 0xFF) as usize]
                ^ TABLES[2][((hi >> 8) & 0xFF) as usize]
                ^ TABLES[1][((hi >> 16) & 0xFF) as usize]
                ^ TABLES[0][(hi >> 24) as usize];
        }
        for &b in chunks.remainder() {
            crc = (crc >> 8) ^ TABLES[0][((crc ^ u32::from(b)) & 0xFF) as usize];
        }
        self.state = crc;
    }

    /// Finishes and returns the checksum.
    #[must_use]
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 64];
        let clean = crc32(&data);
        for i in 0..64 {
            data[i] ^= 0x01;
            assert_ne!(crc32(&data), clean, "flip at byte {i} went undetected");
            data[i] ^= 0x01;
        }
    }
}
