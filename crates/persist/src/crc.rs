//! CRC-32 (IEEE 802.3 polynomial, reflected), the checksum stamped on
//! every snapshot section and WAL record.
//!
//! Hand-rolled because the build environment vendors its dependencies: the
//! algorithm is the ubiquitous table-driven byte-at-a-time CRC-32 used by
//! zip/gzip/ethernet, so checksums written here are verifiable with any
//! standard tool.

/// Reflected IEEE polynomial.
const POLY: u32 = 0xEDB8_8320;

const fn make_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// Streaming CRC-32 state.
#[derive(Debug, Clone)]
pub struct Crc32 {
    state: u32,
}

impl Default for Crc32 {
    fn default() -> Self {
        Crc32::new()
    }
}

impl Crc32 {
    /// Starts a fresh checksum.
    #[must_use]
    pub fn new() -> Self {
        Crc32 { state: !0 }
    }

    /// Feeds bytes into the checksum.
    pub fn update(&mut self, bytes: &[u8]) {
        let mut crc = self.state;
        for &b in bytes {
            let idx = ((crc ^ u32::from(b)) & 0xFF) as usize;
            crc = (crc >> 8) ^ TABLE[idx];
        }
        self.state = crc;
    }

    /// Finishes and returns the checksum.
    #[must_use]
    pub fn finalize(&self) -> u32 {
        !self.state
    }
}

/// One-shot CRC-32 of a byte slice.
#[must_use]
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut c = Crc32::new();
    c.update(bytes);
    c.finalize()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // The classic check value for CRC-32/ISO-HDLC.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn streaming_matches_one_shot() {
        let data = b"the quick brown fox jumps over the lazy dog";
        let mut c = Crc32::new();
        for chunk in data.chunks(7) {
            c.update(chunk);
        }
        assert_eq!(c.finalize(), crc32(data));
    }

    #[test]
    fn single_bit_flip_changes_checksum() {
        let mut data = vec![0u8; 64];
        let clean = crc32(&data);
        for i in 0..64 {
            data[i] ^= 0x01;
            assert_ne!(crc32(&data), clean, "flip at byte {i} went undetected");
            data[i] ^= 0x01;
        }
    }
}
