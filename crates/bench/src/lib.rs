//! Shared infrastructure for the benchmark harness.
//!
//! Every table and figure of the paper has a dedicated bench target (see
//! `benches/`); they all build on the helpers here: dataset generation that
//! matches the paper's setup (uniformly distributed integers in `[1, N]`),
//! workload replay against a [`Database`] under any [`IndexingStrategy`],
//! cumulative-response-time series extraction, and simple aligned-column
//! report printing.
//!
//! Scale knobs (environment variables), so the harness runs on a laptop yet
//! can be pushed toward the paper's original sizes:
//!
//! * `HOLISTIC_SCALE` — values per column (default 1,000,000; paper: 10^8)
//! * `HOLISTIC_QUERIES` — queries per experiment (default 1,000; paper: 10^4)

use std::time::Duration;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use holistic_core::{Database, HolisticConfig, IdleBudget, IndexingStrategy, Query};
use holistic_storage::ColumnId;
use holistic_workload::{IdleWindow, RangeQuery, WorkloadEvent};

pub use holistic_core as core;
pub use holistic_workload as workload;

/// Values per column used by the experiment benches.
#[must_use]
pub fn scale() -> usize {
    std::env::var("HOLISTIC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

/// Number of queries per experiment.
#[must_use]
pub fn query_count() -> usize {
    std::env::var("HOLISTIC_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000)
}

/// Generates a column of `n` uniformly distributed integers in `[1, n]`,
/// matching the paper's data generator.
#[must_use]
pub fn uniform_column(n: usize, seed: u64) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|_| rng.gen_range(1..=n as i64)).collect()
}

/// Builds a database with `columns` columns of `n` uniform values each and
/// returns it together with the column ids (in positional order).
#[must_use]
pub fn build_database(
    strategy: IndexingStrategy,
    config: HolisticConfig,
    columns: usize,
    n: usize,
) -> (Database, Vec<ColumnId>) {
    let mut db = Database::new(config, strategy);
    let names: Vec<String> = (0..columns).map(|i| format!("a{i}")).collect();
    let data: Vec<(&str, Vec<i64>)> = names
        .iter()
        .enumerate()
        .map(|(i, name)| (name.as_str(), uniform_column(n, 0xC0FFEE + i as u64)))
        .collect();
    let table = db.create_table("r", data).expect("create table");
    let ids = db.column_ids(table).expect("column ids");
    (db, ids)
}

/// The outcome of replaying a workload session against one strategy.
#[derive(Debug, Clone)]
pub struct RunOutcome {
    /// Strategy name.
    pub strategy: String,
    /// Cumulative query response time (micros) after each query.
    pub cumulative_micros: Vec<u128>,
    /// Total query response time.
    pub total_query_time: Duration,
    /// Total time spent on idle-time tuning.
    pub tuning_time: Duration,
    /// Total time spent building full indexes.
    pub build_time: Duration,
    /// Auxiliary refinement actions applied.
    pub auxiliary_actions: u64,
    /// Crack-kernel dispatches, split by physical form (branchy/predicated).
    pub kernel_dispatches: holistic_core::KernelDispatches,
}

impl RunOutcome {
    /// Total time including tuning and builds (the "investment" view).
    #[must_use]
    pub fn total_with_tuning(&self) -> Duration {
        self.total_query_time + self.tuning_time + self.build_time
    }
}

/// Replays a workload session (queries + idle windows) against the database.
///
/// * Query events execute a range query on the event's column (resolved via
///   `columns[event.column]`).
/// * Idle events hand the engine an idle budget — strategies that cannot
///   exploit idle time (scan, adaptive) simply skip them, which is exactly
///   how the paper treats them.
pub fn replay_session(
    db: &mut Database,
    columns: &[ColumnId],
    events: &[WorkloadEvent],
    exploit_idle: bool,
) -> RunOutcome {
    for event in events {
        match event {
            WorkloadEvent::Query(RangeQuery { column, lo, hi }) => {
                let col = columns[*column % columns.len()];
                db.execute(&Query::range(col, *lo, *hi)).expect("query");
            }
            WorkloadEvent::Idle(window) => {
                if exploit_idle {
                    let budget = match window {
                        IdleWindow::Actions(a) => IdleBudget::Actions(*a),
                        IdleWindow::Micros(m) => IdleBudget::Duration(Duration::from_micros(*m)),
                    };
                    db.run_idle(budget);
                }
            }
        }
    }
    let metrics = db.metrics();
    RunOutcome {
        strategy: db.strategy().to_string(),
        cumulative_micros: metrics.cumulative_micros(),
        total_query_time: metrics.total_query_time(),
        tuning_time: metrics.tuning_time(),
        build_time: metrics.build_time(),
        auxiliary_actions: metrics.auxiliary_actions(),
        kernel_dispatches: metrics.kernel_dispatches(),
    }
}

/// Log-spaced sample points (1, 2, …, 10, 20, …, 100, 200, …) up to `max`,
/// matching the log-scale x-axis of the paper's figures.
#[must_use]
pub fn log_points(max: usize) -> Vec<usize> {
    let mut points = Vec::new();
    let mut decade = 1usize;
    while decade <= max {
        for step in 1..10 {
            let p = decade * step;
            if p > max {
                break;
            }
            points.push(p);
        }
        decade *= 10;
    }
    if points.last().copied() != Some(max) && max > 0 {
        points.push(max);
    }
    points
}

/// Prints a cumulative-response-time series table: one row per sample point,
/// one column per outcome.
pub fn print_series(title: &str, outcomes: &[RunOutcome]) {
    println!("\n=== {title} ===");
    print!("{:>10}", "query");
    for o in outcomes {
        print!("{:>18}", o.strategy);
    }
    println!();
    let max = outcomes
        .iter()
        .map(|o| o.cumulative_micros.len())
        .min()
        .unwrap_or(0);
    for &p in &log_points(max) {
        print!("{:>10}", p);
        for o in outcomes {
            print!("{:>18}", o.cumulative_micros[p - 1]);
        }
        println!();
    }
    println!("(cumulative response time in microseconds)");
}

/// Prints the total-time summary (the shape of the paper's Table 2).
pub fn print_totals(title: &str, outcomes: &[RunOutcome]) {
    println!("\n--- {title}: totals ---");
    println!(
        "{:>12} {:>16} {:>16} {:>16} {:>12} {:>18}",
        "strategy", "queries (ms)", "tuning (ms)", "builds (ms)", "aux actions", "cracks (br/pred)"
    );
    for o in outcomes {
        println!(
            "{:>12} {:>16.1} {:>16.1} {:>16.1} {:>12} {:>18}",
            o.strategy,
            o.total_query_time.as_secs_f64() * 1e3,
            o.tuning_time.as_secs_f64() * 1e3,
            o.build_time.as_secs_f64() * 1e3,
            o.auxiliary_actions,
            format!(
                "{}/{}",
                o.kernel_dispatches.branchy, o.kernel_dispatches.predicated
            ),
        );
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn log_points_cover_the_range() {
        assert_eq!(log_points(10), vec![1, 2, 3, 4, 5, 6, 7, 8, 9, 10]);
        let p = log_points(1000);
        assert_eq!(p.first(), Some(&1));
        assert_eq!(p.last(), Some(&1000));
        assert!(p.contains(&100) && p.contains(&900));
        let p = log_points(37);
        assert_eq!(p.last(), Some(&37));
        assert!(log_points(0).is_empty());
    }

    #[test]
    fn uniform_column_matches_paper_domain() {
        let c = uniform_column(10_000, 1);
        assert_eq!(c.len(), 10_000);
        assert!(c.iter().all(|&v| (1..=10_000).contains(&v)));
        // Deterministic for a fixed seed.
        assert_eq!(c, uniform_column(10_000, 1));
        assert_ne!(c, uniform_column(10_000, 2));
    }

    #[test]
    fn replay_session_runs_queries_and_idle_windows() {
        let (mut db, cols) = build_database(
            IndexingStrategy::Holistic,
            HolisticConfig::for_testing(),
            2,
            5_000,
        );
        let events = vec![
            WorkloadEvent::Idle(IdleWindow::Actions(10)),
            WorkloadEvent::Query(RangeQuery::new(0, 100, 200)),
            WorkloadEvent::Query(RangeQuery::new(1, 500, 700)),
            WorkloadEvent::Idle(IdleWindow::Micros(200)),
            WorkloadEvent::Query(RangeQuery::new(0, 100, 200)),
        ];
        let outcome = replay_session(&mut db, &cols, &events, true);
        assert_eq!(outcome.cumulative_micros.len(), 3);
        assert!(outcome.auxiliary_actions >= 10);
        assert!(outcome.total_with_tuning() >= outcome.total_query_time);
        assert_eq!(outcome.strategy, "holistic");
    }

    #[test]
    fn scan_strategy_ignores_idle_windows() {
        let (mut db, cols) = build_database(
            IndexingStrategy::ScanOnly,
            HolisticConfig::for_testing(),
            1,
            2_000,
        );
        let events = vec![
            WorkloadEvent::Idle(IdleWindow::Actions(100)),
            WorkloadEvent::Query(RangeQuery::new(0, 10, 500)),
        ];
        let outcome = replay_session(&mut db, &cols, &events, false);
        assert_eq!(outcome.auxiliary_actions, 0);
        assert_eq!(outcome.tuning_time, Duration::ZERO);
    }
}
