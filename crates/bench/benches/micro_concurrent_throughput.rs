//! Multi-threaded query throughput on one shared engine.
//!
//! The point of the shared-reference query path: N query threads issue
//! range selects through `db.read().execute(..)` on the *same* engine,
//! with and without the background tuner racing them through the
//! per-column latches. Reported is aggregate throughput (queries/second)
//! per thread count, on a uniform and on a Zipf-skewed workload, plus the
//! 4-vs-1-thread scaling factor.
//!
//! The total workload is fixed (`HOLISTIC_QUERIES` queries, default 16,000)
//! and divided evenly among the threads, so every configuration does the
//! same work and the ratio to the 1-thread run is a true scaling factor.
//!
//! Each configuration also emits one machine-readable line:
//!
//! ```text
//! BENCH_JSON {"bench":"micro_concurrent_throughput","workload":…,…}
//! ```
//!
//! including `hw_threads` (`std::thread::available_parallelism`) and an
//! `oversubscribed` flag, because scaling beyond the machine's core count
//! is impossible: a 4-thread run on a 1-core container measures context
//! switching, not parallelism, and the bench says so loudly instead of
//! letting the flat curve pass as a regression (or the lucky one as a
//! result).
//!
//! Scale knobs: `HOLISTIC_SCALE` (values per column, default 100,000) and
//! `HOLISTIC_SHARD_EXTENT` (cracker shard extent; default `scale / 8`,
//! i.e. 8 shards per column; `0` benches the unsharded single-latch
//! layout).

use std::sync::Arc;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use holistic_bench::uniform_column;
use holistic_core::{
    BackgroundConfig, BackgroundTuner, Database, HolisticConfig, IndexingStrategy, Query,
};
use holistic_storage::ColumnId;
use holistic_workload::{QueryGenerator, UniformRangeGenerator, ZipfRangeGenerator};

const COLUMNS: usize = 4;
const SELECTIVITY: f64 = 0.01;
const WARMUP_QUERIES: usize = 512;

fn scale() -> usize {
    std::env::var("HOLISTIC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(100_000)
}

fn total_queries() -> usize {
    std::env::var("HOLISTIC_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(16_000)
}

/// Cracker shard extent for the benched engine (`HOLISTIC_SHARD_EXTENT`,
/// default `scale / 8` = 8 shards per column, `0` = unsharded).
fn shard_extent(n: usize) -> usize {
    std::env::var("HOLISTIC_SHARD_EXTENT")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(n / 8)
}

fn hw_threads() -> usize {
    std::thread::available_parallelism().map_or(0, |p| p.get())
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Workload {
    Uniform,
    Zipf,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Uniform => "uniform",
            Workload::Zipf => "zipf(1.0)",
        }
    }
}

fn generate_queries(
    workload: Workload,
    cols: &[ColumnId],
    n: usize,
    count: usize,
    seed: u64,
) -> Vec<Query> {
    let mut rng = StdRng::seed_from_u64(seed);
    let make =
        |q: holistic_workload::RangeQuery| Query::range(cols[q.column % cols.len()], q.lo, q.hi);
    match workload {
        Workload::Uniform => {
            let mut gens: Vec<UniformRangeGenerator> = (0..cols.len())
                .map(|c| UniformRangeGenerator::new(c, 1, n as i64 + 1, SELECTIVITY))
                .collect();
            (0..count)
                .map(|i| make(gens[i % cols.len()].next_query(&mut rng)))
                .collect()
        }
        Workload::Zipf => {
            let mut gens: Vec<ZipfRangeGenerator> = (0..cols.len())
                .map(|c| ZipfRangeGenerator::new(c, 1, n as i64 + 1, SELECTIVITY, 32, 1.0))
                .collect();
            (0..count)
                .map(|i| make(gens[i % cols.len()].next_query(&mut rng)))
                .collect()
        }
    }
}

/// One measured configuration: build a fresh engine, warm it, then hammer
/// it from `threads` threads. Returns aggregate queries/second.
fn run_config(workload: Workload, threads: usize, with_tuner: bool, n: usize) -> f64 {
    let config = HolisticConfig::default().with_shard_extent(shard_extent(n));
    let mut db = Database::new(config, IndexingStrategy::Holistic);
    let names: Vec<String> = (0..COLUMNS).map(|i| format!("a{i}")).collect();
    let data: Vec<(&str, Vec<i64>)> = names
        .iter()
        .enumerate()
        .map(|(i, name)| (name.as_str(), uniform_column(n, 0xBEEF + i as u64)))
        .collect();
    let table = db.create_table("r", data).expect("create table");
    let cols = db.column_ids(table).expect("column ids");
    let db = db.into_shared();

    // Warm-up: crack the columns into shape single-threaded so the measured
    // phase reflects the steady state (mostly shared-latch selects).
    for q in generate_queries(workload, &cols, n, WARMUP_QUERIES, 7) {
        db.read().execute(&q).expect("warmup query");
    }

    let tuner = with_tuner.then(|| {
        BackgroundTuner::spawn(
            Arc::clone(&db),
            BackgroundConfig {
                idle_threshold: std::time::Duration::ZERO,
                batch_actions: 64,
                poll_interval: std::time::Duration::from_micros(200),
                seed_prefix_sums: true,
                snapshot_on_idle: false,
                scrub_pieces: 64,
            },
        )
    });

    // One shared stream, split into per-thread chunks: every thread count
    // executes the exact same multiset of queries.
    let total = total_queries();
    let stream = generate_queries(workload, &cols, n, total, 100);
    let chunk = total.div_ceil(threads);
    let start = Instant::now();
    let handles: Vec<_> = stream
        .chunks(chunk)
        .map(|queries| {
            let db = Arc::clone(&db);
            let queries = queries.to_vec();
            std::thread::spawn(move || {
                for q in &queries {
                    let r = db.read().execute(q).expect("query");
                    std::hint::black_box(r.count);
                }
            })
        })
        .collect();
    for h in handles {
        h.join().expect("query thread panicked");
    }
    let elapsed = start.elapsed();
    if let Some(tuner) = tuner {
        tuner.stop();
    }
    assert!(db.read().validate(), "invariants violated under load");
    total as f64 / elapsed.as_secs_f64()
}

fn main() {
    let n = scale();
    let threads = [1usize, 2, 4, 8];
    let hw = hw_threads();
    let extent = shard_extent(n);
    println!(
        "micro_concurrent_throughput: {COLUMNS} columns x {n} values, {} total queries, \
         {:.1}% selectivity, shard extent {extent}, {hw} hardware threads",
        total_queries(),
        SELECTIVITY * 100.0,
    );
    if hw < *threads.iter().max().unwrap_or(&1) {
        println!(
            "WARNING: only {hw} hardware thread(s) available; configurations above that \
             measure time slicing, not parallelism — scaling factors from this box are \
             not meaningful"
        );
    }
    println!(
        "{:<12} {:>8} {:>8} {:>16} {:>16}",
        "workload", "threads", "tuner", "queries/s", "vs 1 thread"
    );
    for workload in [Workload::Uniform, Workload::Zipf] {
        for with_tuner in [false, true] {
            let mut base = 0.0;
            for &t in &threads {
                if t > hw && hw > 0 {
                    println!(
                        "WARNING: requesting {t} threads on {hw} hardware thread(s) — \
                         oversubscribed"
                    );
                }
                let qps = run_config(workload, t, with_tuner, n);
                if t == 1 {
                    base = qps;
                }
                println!(
                    "{:<12} {:>8} {:>8} {:>16.0} {:>15.2}x",
                    workload.name(),
                    t,
                    if with_tuner { "on" } else { "off" },
                    qps,
                    qps / base.max(1e-9),
                );
                println!(
                    "BENCH_JSON {{\"bench\":\"micro_concurrent_throughput\",\"workload\":\"{}\",\
                     \"threads\":{},\"tuner\":{},\"qps\":{:.0},\"vs_1_thread\":{:.3},\
                     \"hw_threads\":{},\"oversubscribed\":{},\"shard_extent\":{},\
                     \"scale\":{},\"total_queries\":{}}}",
                    workload.name(),
                    t,
                    with_tuner,
                    qps,
                    qps / base.max(1e-9),
                    hw,
                    t > hw,
                    extent,
                    n,
                    total_queries(),
                );
            }
        }
    }
}
