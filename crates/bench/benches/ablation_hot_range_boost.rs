//! Ablation A4: hot-range boosting during query processing (the paper's
//! "No Time" case).
//!
//! When no idle time ever appears, holistic indexing can still use its
//! statistics: if a column/value range is hot (more than n queries cracked
//! it), the select operator applies a few extra random cracks in that range
//! while it is there anyway. On a skewed workload this accelerates later
//! queries on the hot range; the ablation compares boost on vs off under a
//! steady (no-idle) arrival model.

use holistic_bench::{build_database, print_totals, replay_session, scale};
use holistic_core::{HolisticConfig, IndexingStrategy};
use holistic_workload::{ArrivalModel, QueryGenerator, SessionBuilder, ZipfRangeGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scale();
    let queries = 2_000;
    println!(
        "Ablation A4: hot-range boosting — one column of {n} values, {queries} zipf-skewed queries, no idle time"
    );

    let mut generator = ZipfRangeGenerator::new(0, 1, n as i64 + 1, 0.001, 64, 1.2);
    let mut rng = StdRng::seed_from_u64(21);
    let events = SessionBuilder::new(ArrivalModel::Steady).build(&mut generator, queries, &mut rng);
    // Sanity check that the generator produces usable queries.
    let mut probe_rng = StdRng::seed_from_u64(22);
    assert!(generator.next_query(&mut probe_rng).hi > 0);

    let boosted_cfg = HolisticConfig {
        hot_range_query_threshold: 4,
        boost_cracks_per_query: 4,
        ..HolisticConfig::default()
    };
    let (mut boosted_db, cols) = build_database(IndexingStrategy::Holistic, boosted_cfg, 1, n);
    let mut boosted = replay_session(&mut boosted_db, &cols, &events, false);
    boosted.strategy = "boost-on".to_string();
    let boosted_aux = boosted_db
        .stats()
        .column(cols[0])
        .map_or(0, |c| c.auxiliary_actions);

    let plain_cfg = HolisticConfig {
        boost_cracks_per_query: 0,
        ..HolisticConfig::default()
    };
    let (mut plain_db, plain_cols) = build_database(IndexingStrategy::Holistic, plain_cfg, 1, n);
    let mut plain = replay_session(&mut plain_db, &plain_cols, &events, false);
    plain.strategy = "boost-off".to_string();

    let outcomes = vec![plain, boosted];
    print_totals("A4: hot-range boosting", &outcomes);
    println!("boost-on applied {boosted_aux} auxiliary cracks inside hot ranges");
    println!(
        "piece counts after the workload: boost-off={}, boost-on={}",
        plain_db.piece_count(plain_cols[0]),
        boosted_db.piece_count(cols[0])
    );
}
