//! Ablation A2: how should idle actions be distributed over columns?
//!
//! The paper sketches a ranking scheme that weights columns by their
//! frequency in the workload and by how far their pieces still are from the
//! cache-resident target. This bench compares that ranking model against
//! two simpler policies (uniform round-robin over all columns, and a single
//! random column per action) on a skewed workload where one column receives
//! 80% of the queries.

use holistic_bench::{build_database, replay_session, scale};
use holistic_core::{Database, HolisticConfig, IdleBudget, IndexingStrategy, Query};
use holistic_storage::ColumnId;
use holistic_workload::{QueryGenerator, RangeQuery, UniformRangeGenerator, WorkloadEvent};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const COLUMNS: usize = 5;
const HOT_FRACTION: f64 = 0.8;

fn skewed_events(n: usize, queries: usize, seed: u64) -> Vec<WorkloadEvent> {
    let mut generator = UniformRangeGenerator::new(0, 1, n as i64 + 1, 0.01);
    let mut rng = StdRng::seed_from_u64(seed);
    (0..queries)
        .map(|_| {
            let mut q = generator.next_query(&mut rng);
            q.column = if rng.gen_bool(HOT_FRACTION) {
                0
            } else {
                rng.gen_range(1..COLUMNS)
            };
            WorkloadEvent::Query(q)
        })
        .collect()
}

/// Warms up statistics with a prefix of the workload so the ranking model
/// has knowledge to work with, then spends the idle budget per policy.
fn run_policy(
    name: &str,
    n: usize,
    events: &[WorkloadEvent],
    budget: u64,
    apply: impl Fn(&mut Database, &[ColumnId], u64),
) -> (String, std::time::Duration) {
    let (mut db, cols) = build_database(
        IndexingStrategy::Holistic,
        HolisticConfig::default(),
        COLUMNS,
        n,
    );
    // Observation prefix: 10% of the workload, executed before the idle time.
    let prefix = events.len() / 10;
    for event in &events[..prefix] {
        if let WorkloadEvent::Query(RangeQuery { column, lo, hi }) = event {
            db.execute(&Query::range(cols[*column], *lo, *hi)).unwrap();
        }
    }
    db.reset_metrics();
    apply(&mut db, &cols, budget);
    let outcome = replay_session(&mut db, &cols, &events[prefix..], false);
    (name.to_string(), outcome.total_query_time)
}

fn main() {
    let n = (scale() / 4).max(10_000);
    let queries = 500;
    let budget = 600u64;
    println!(
        "Ablation A2: idle-action ranking policy — {COLUMNS} columns of {n} values, \
         80% of {queries} queries hit column 0, idle budget {budget} actions"
    );
    let events = skewed_events(n, queries, 3);

    let results = vec![
        run_policy("ranking-model", n, &events, budget, |db, _cols, b| {
            db.run_idle(IdleBudget::Actions(b));
        }),
        run_policy("round-robin", n, &events, budget, |db, cols, b| {
            for i in 0..b {
                let col = cols[(i as usize) % cols.len()];
                db.warm_column(col, 1).unwrap();
            }
        }),
        run_policy("random-column", n, &events, budget, |db, cols, b| {
            let mut rng = StdRng::seed_from_u64(77);
            for _ in 0..b {
                let col = cols[rng.gen_range(0..cols.len())];
                db.warm_column(col, 1).unwrap();
            }
        }),
        run_policy("no-idle-work", n, &events, 0, |_db, _cols, _b| {}),
    ];

    println!("{:>16} {:>18}", "policy", "query time (ms)");
    for (name, total) in &results {
        println!("{:>16} {:>18.2}", name, total.as_secs_f64() * 1e3);
    }
    println!("(the frequency-aware ranking model should be at least as good as round-robin, and all should beat doing nothing)");
}
