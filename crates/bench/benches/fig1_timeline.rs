//! Figure 1: query sequence evolution with indexing — *when* each strategy
//! does its analysis, index building and idle-time exploitation relative to
//! the query stream.
//!
//! The paper's Figure 1 is an illustrative timeline; this bench renders the
//! same information as ASCII timelines, derived from the engine's strategy
//! descriptions plus a small simulated session that shows where tuning time
//! is actually spent in this implementation.

use holistic_bench::{build_database, replay_session};
use holistic_core::{strategy_timeline, HolisticConfig, IndexingStrategy};
use holistic_workload::{ArrivalModel, IdleWindow, SessionBuilder, UniformRangeGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    println!("Figure 1: query sequence evolution with indexing\n");
    for strategy in IndexingStrategy::all() {
        println!("{}:", strategy.name());
        for phase in strategy_timeline(strategy) {
            let marker = match (phase.during_workload, phase.exploits_idle) {
                (false, _) => "|== before workload ==|",
                (true, true) => "|-- during workload, uses idle time --|",
                (true, false) => "|-- during workload ------------------|",
            };
            println!("  {marker} {}", phase.label);
        }
        println!();
    }

    // A small concrete session making the difference measurable: 200 queries
    // with idle windows every 50 queries.
    let n = 200_000;
    let mut generator = UniformRangeGenerator::new(0, 1, n as i64 + 1, 0.01);
    let mut rng = StdRng::seed_from_u64(1);
    let events = SessionBuilder::new(ArrivalModel::PeriodicIdle {
        every: 50,
        actions: 200,
    })
    .with_initial_idle(IdleWindow::Actions(200))
    .build(&mut generator, 200, &mut rng);

    println!("Concrete session (N={n}, 200 queries, idle window every 50 queries):");
    println!(
        "{:>10} {:>16} {:>16} {:>14}",
        "strategy", "query time (ms)", "tuning (ms)", "aux actions"
    );
    for (strategy, exploit) in [
        (IndexingStrategy::ScanOnly, false),
        (IndexingStrategy::Adaptive, false),
        (IndexingStrategy::Holistic, true),
    ] {
        let (mut db, cols) = build_database(strategy, HolisticConfig::default(), 1, n);
        let outcome = replay_session(&mut db, &cols, &events, exploit);
        println!(
            "{:>10} {:>16.2} {:>16.2} {:>14}",
            outcome.strategy,
            outcome.total_query_time.as_secs_f64() * 1e3,
            outcome.tuning_time.as_secs_f64() * 1e3,
            outcome.auxiliary_actions
        );
    }
}
