//! Criterion micro-benchmarks for the partitioning kernels: the cost of a
//! single crack pass vs a full sort, which is the asymmetry the whole
//! adaptive-indexing argument rests on (one crack pass is O(n), a full sort
//! is O(n log n) and pays off only after many queries).

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use holistic_cracking::{crack_in_three, crack_in_two};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(n: usize) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(1);
    (0..n).map(|_| rng.gen_range(1..=n as i64)).collect()
}

fn bench_kernels(c: &mut Criterion) {
    let mut group = c.benchmark_group("crack_kernels");
    for &n in &[100_000usize, 1_000_000] {
        let data = dataset(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("crack_in_two", n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| black_box(crack_in_two(&mut d, n as i64 / 2)),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("crack_in_three", n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| black_box(crack_in_three(&mut d, n as i64 / 3, 2 * n as i64 / 3)),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("full_sort", n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    d.sort_unstable();
                    black_box(d.len())
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_kernels
}
criterion_main!(benches);
