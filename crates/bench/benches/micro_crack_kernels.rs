//! Criterion micro-benchmarks for the partitioning kernels.
//!
//! Two questions are answered here:
//!
//! 1. The classic adaptive-indexing asymmetry: one crack pass is O(n), a
//!    full sort is O(n log n) — the cost gap the whole cracking argument
//!    rests on (`full_sort` baselines).
//! 2. The branchy-vs-predicated trade-off across piece sizes: the branchy
//!    two-pointer loop mispredicts on uniform-random data, the predicated
//!    Lomuto loop executes a fixed instruction stream. The head-to-head
//!    sweep locates the crossover that justifies `CrackKernel::Auto`'s
//!    piece-length threshold, and the `auto` rows verify the dispatcher
//!    tracks the better kernel at every size.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use holistic_cracking::kernels::{
    crack_in_three, crack_in_three_pred, crack_in_two, crack_in_two_pred, crack_in_two_with_rowids,
    crack_in_two_with_rowids_pred, CrackKernel,
};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn dataset(n: usize) -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(1);
    (0..n).map(|_| rng.gen_range(1..=n as i64)).collect()
}

/// Piece sizes swept by the branchy-vs-predicated comparison: from well
/// inside L1 (1 Ki values = 8 KiB) to far out of cache (4 Mi values).
const PIECE_SIZES: [usize; 7] = [
    1 << 10,
    1 << 12,
    1 << 14,
    1 << 16,
    1 << 18,
    1 << 20,
    1 << 22,
];

fn bench_crack_in_two_head_to_head(c: &mut Criterion) {
    let mut group = c.benchmark_group("crack_in_two");
    for &n in &PIECE_SIZES {
        let data = dataset(n);
        let pivot = n as i64 / 2;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("branchy", n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| black_box(crack_in_two(&mut d, pivot)),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("predicated", n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| black_box(crack_in_two_pred(&mut d, pivot)),
                criterion::BatchSize::LargeInput,
            );
        });
        let auto = CrackKernel::auto();
        group.bench_with_input(BenchmarkId::new("auto", n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| black_box(auto.crack_in_two(&mut d, pivot)),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_crack_in_two_with_rowids(c: &mut Criterion) {
    let mut group = c.benchmark_group("crack_in_two_rowids");
    for &n in &[1 << 14, 1 << 20] {
        let data = dataset(n);
        let rowids: Vec<u32> = (0..n as u32).collect();
        let pivot = n as i64 / 2;
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("branchy", n), &n, |b, _| {
            b.iter_batched(
                || (data.clone(), rowids.clone()),
                |(mut d, mut r)| black_box(crack_in_two_with_rowids(&mut d, &mut r, pivot)),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("predicated", n), &n, |b, _| {
            b.iter_batched(
                || (data.clone(), rowids.clone()),
                |(mut d, mut r)| black_box(crack_in_two_with_rowids_pred(&mut d, &mut r, pivot)),
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

fn bench_crack_in_three_and_sort(c: &mut Criterion) {
    let mut group = c.benchmark_group("crack_in_three_and_sort");
    for &n in &[100_000usize, 1_000_000] {
        let data = dataset(n);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("three_branchy", n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| black_box(crack_in_three(&mut d, n as i64 / 3, 2 * n as i64 / 3)),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("three_predicated", n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| black_box(crack_in_three_pred(&mut d, n as i64 / 3, 2 * n as i64 / 3)),
                criterion::BatchSize::LargeInput,
            );
        });
        group.bench_with_input(BenchmarkId::new("full_sort", n), &n, |b, _| {
            b.iter_batched(
                || data.clone(),
                |mut d| {
                    d.sort_unstable();
                    black_box(d.len())
                },
                criterion::BatchSize::LargeInput,
            );
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_crack_in_two_head_to_head, bench_crack_in_two_with_rowids,
        bench_crack_in_three_and_sort
}
criterion_main!(benches);
