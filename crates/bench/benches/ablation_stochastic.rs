//! Ablation A5: stochastic cracking variants under an adversarial
//! (sequential sliding-window) workload.
//!
//! The paper's related-work section points to stochastic cracking as the
//! robustness fix for plain cracking; a holistic kernel should be able to
//! host any of these select-operator variants. This bench replays the same
//! sequential workload under each policy and reports total time and how
//! balanced the resulting piece index is.

use std::time::Instant;

use holistic_bench::scale;
use holistic_bench::uniform_column;
use holistic_cracking::stochastic::crack_select_with_policy;
use holistic_cracking::{CrackPolicy, CrackerColumn};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scale();
    let queries = 1_000usize;
    let width = (n / queries).max(1) as i64;
    println!(
        "Ablation A5: stochastic cracking on a sequential sliding-window workload \
         (N={n}, {queries} queries of width {width})"
    );
    println!(
        "{:>10} {:>16} {:>12} {:>18}",
        "policy", "total time (ms)", "pieces", "largest piece"
    );
    let policies = [
        CrackPolicy::Standard,
        CrackPolicy::ddc(),
        CrackPolicy::ddr(),
        CrackPolicy::Mdd1r,
    ];
    for policy in policies {
        let values = uniform_column(n, 17);
        let mut cracker = CrackerColumn::from_values(values);
        let mut rng = StdRng::seed_from_u64(17);
        let start = Instant::now();
        let mut total = 0u64;
        for q in 0..queries {
            let lo = 1 + q as i64 * width;
            let hi = lo + width;
            let range = crack_select_with_policy(&mut cracker, lo, hi, policy, &mut rng);
            total += (range.end - range.start) as u64;
        }
        let elapsed = start.elapsed();
        println!(
            "{:>10} {:>16.1} {:>12} {:>18}",
            policy.name(),
            elapsed.as_secs_f64() * 1e3,
            cracker.piece_count(),
            cracker.index().max_piece_len(),
        );
        assert!(total > 0, "workload must return rows");
    }
    println!(
        "(plain cracking leaves one huge unindexed tail piece; the stochastic variants do not)"
    );
}
