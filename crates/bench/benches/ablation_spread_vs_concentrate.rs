//! Ablation A1: spread the idle budget over many partial indexes vs
//! concentrate it on one column at a time.
//!
//! Section 3 of the paper argues that with an unknown amount of idle time it
//! is better to "spread the resources across multiple indexes, instead of
//! concentrating on only one index at a time" (e.g. 20 indexes at 5% each
//! rather than one index at 100%). This bench gives both policies the same
//! action budget and then runs a round-robin workload over all columns.

use holistic_bench::{build_database, print_totals, replay_session, scale};
use holistic_core::{HolisticConfig, IndexingStrategy};
use holistic_workload::{ArrivalModel, RoundRobinColumns, SessionBuilder, UniformRangeGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

const COLUMNS: usize = 8;

fn main() {
    let n = (scale() / 4).max(10_000);
    let queries = 400;
    let budget: u64 = 800; // total refinement actions granted a priori
    println!(
        "Ablation A1: spread vs concentrate — {COLUMNS} columns of {n} values, \
         {budget} a-priori refinement actions, {queries} round-robin queries"
    );

    let inner = UniformRangeGenerator::new(0, 1, n as i64 + 1, 0.01);
    let mut generator = RoundRobinColumns::new(inner, COLUMNS);
    let mut rng = StdRng::seed_from_u64(11);
    let events = SessionBuilder::new(ArrivalModel::Steady).build(&mut generator, queries, &mut rng);

    // Concentrate: all actions go to the first column.
    let (mut concentrate_db, cols) = build_database(
        IndexingStrategy::Holistic,
        HolisticConfig::default(),
        COLUMNS,
        n,
    );
    concentrate_db.warm_column(cols[0], budget).expect("warm");
    let mut concentrate = replay_session(&mut concentrate_db, &cols, &events, false);
    concentrate.strategy = "concentrate".to_string();

    // Spread: the same budget divided equally over all columns.
    let (mut spread_db, spread_cols) = build_database(
        IndexingStrategy::Holistic,
        HolisticConfig::default(),
        COLUMNS,
        n,
    );
    for &c in &spread_cols {
        spread_db
            .warm_column(c, budget / COLUMNS as u64)
            .expect("warm");
    }
    let mut spread = replay_session(&mut spread_db, &spread_cols, &events, false);
    spread.strategy = "spread".to_string();

    let outcomes = vec![concentrate, spread];
    print_totals("A1: spread vs concentrate", &outcomes);
    let ratio = outcomes[0].total_query_time.as_secs_f64()
        / outcomes[1].total_query_time.as_secs_f64().max(1e-9);
    println!("concentrate / spread total-time ratio: {ratio:.2}x (spread should win on round-robin workloads)");
}
