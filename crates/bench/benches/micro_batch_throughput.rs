//! Batched vs. sequential query execution throughput.
//!
//! The batched path (`Database::execute_batch`) amortizes per-query work —
//! latch acquisitions, piece-index searches and above all partitioning
//! passes — across all queries of a batch: every piece touched by a batch is
//! cracked around *all* of the batch's pivots with one multi-pivot pass.
//! This bench measures aggregate queries/second as a function of batch size
//! (1 = the sequential `execute` loop) on the cold-start phase (the first
//! `HOLISTIC_QUERIES` queries on a fresh column, where every query cracks
//! the same giant piece — exactly where the amortization is largest) and on
//! a warm index (where both paths degenerate to binary searches and the
//! batch win shrinks to bookkeeping).
//!
//! Queries are grouped with the closed-loop [`BatchSessionBuilder`] arrival
//! model: batch size N models N concurrent clients with one query in flight
//! each. Every batch size executes the exact same query stream.
//!
//! Scale knobs: `HOLISTIC_SCALE` (rows, default 1,000,000) and
//! `HOLISTIC_QUERIES` (measured queries, default 1,000).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use holistic_bench::uniform_column;
use holistic_core::{Database, HolisticConfig, IndexingStrategy, Query};
use holistic_storage::ColumnId;
use holistic_workload::{
    BatchEvent, BatchSessionBuilder, QueryGenerator, UniformRangeGenerator, ZipfRangeGenerator,
};

const SELECTIVITY: f64 = 0.01;
const BATCH_SIZES: [usize; 4] = [1, 8, 64, 256];
const WARMUP_QUERIES: usize = 4096;

fn scale() -> usize {
    std::env::var("HOLISTIC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

fn query_count() -> usize {
    std::env::var("HOLISTIC_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000)
}

#[derive(Clone, Copy, PartialEq, Eq)]
enum Workload {
    Uniform,
    Zipf,
}

impl Workload {
    fn name(self) -> &'static str {
        match self {
            Workload::Uniform => "uniform",
            Workload::Zipf => "zipf(1.0)",
        }
    }

    fn stream(self, col: ColumnId, n: usize, count: usize, seed: u64) -> Vec<Query> {
        let mut rng = StdRng::seed_from_u64(seed);
        match self {
            Workload::Uniform => {
                let mut g = UniformRangeGenerator::new(0, 1, n as i64 + 1, SELECTIVITY);
                (0..count)
                    .map(|_| {
                        let q = g.next_query(&mut rng);
                        Query::range(col, q.lo, q.hi)
                    })
                    .collect()
            }
            Workload::Zipf => {
                let mut g = ZipfRangeGenerator::new(0, 1, n as i64 + 1, SELECTIVITY, 32, 1.0);
                (0..count)
                    .map(|_| {
                        let q = g.next_query(&mut rng);
                        Query::range(col, q.lo, q.hi)
                    })
                    .collect()
            }
        }
    }
}

fn fresh_db(n: usize) -> (Database, ColumnId) {
    let mut db = Database::new(HolisticConfig::default(), IndexingStrategy::Adaptive);
    let table = db
        .create_table("r", vec![("a", uniform_column(n, 0xBA7C4))])
        .expect("create table");
    let col = db.column_id(table, "a").expect("column id");
    (db, col)
}

/// Groups `stream` into closed-loop batches of `batch_size` using the
/// workload crate's arrival model (the column is fixed, so only the bounds
/// travel through the generator).
fn group_into_batches(stream: &[Query], batch_size: usize) -> Vec<Vec<Query>> {
    struct Replay<'a> {
        stream: &'a [Query],
        next: usize,
    }
    impl QueryGenerator for Replay<'_> {
        fn next_query<R: rand::Rng + ?Sized>(
            &mut self,
            _rng: &mut R,
        ) -> holistic_workload::RangeQuery {
            let q = self.stream[self.next];
            self.next += 1;
            holistic_workload::RangeQuery::new(0, q.lo, q.hi)
        }
    }
    let column = stream.first().map(|q| q.column);
    let mut replay = Replay { stream, next: 0 };
    let mut rng = StdRng::seed_from_u64(0);
    BatchSessionBuilder::new(batch_size)
        .build(&mut replay, stream.len(), &mut rng)
        .into_iter()
        .map(|event| match event {
            BatchEvent::Batch(queries) => queries
                .into_iter()
                .map(|q| Query::range(column.expect("non-empty stream"), q.lo, q.hi))
                .collect(),
            BatchEvent::Idle(_) => unreachable!("no idle windows configured"),
        })
        .collect()
}

/// One measured configuration, repeated `REPS` times from scratch with the
/// best run reported (the cold phase is a one-shot phenomenon per run, so
/// repetitions guard against scheduler noise, not cache warmup).
fn run_config(workload: Workload, batch_size: usize, warm: bool, n: usize) -> f64 {
    const REPS: usize = 3;
    let mut best = f64::MAX;
    for _ in 0..REPS {
        let (db, col) = fresh_db(n);
        if warm {
            // Refine the index into its steady state first; the measured
            // phase then runs mostly resolved-boundary lookups.
            for q in workload.stream(col, n, WARMUP_QUERIES, 7) {
                db.execute(&q).expect("warmup query");
            }
        }
        let stream = workload.stream(col, n, query_count(), 100);
        let start = Instant::now();
        if batch_size == 1 {
            // The sequential baseline is the plain per-query path.
            for q in &stream {
                let r = db.execute(q).expect("query");
                std::hint::black_box(r.count);
            }
        } else {
            for batch in group_into_batches(&stream, batch_size) {
                let results = db.execute_batch(&batch).expect("batch");
                std::hint::black_box(results.len());
            }
        }
        best = best.min(start.elapsed().as_secs_f64());
        assert!(db.validate(), "invariants violated during bench");
    }
    query_count() as f64 / best
}

fn main() {
    let n = scale();
    println!(
        "micro_batch_throughput: {n} rows, {} queries/config, {:.1}% selectivity, \
         adaptive strategy (standard policy)",
        query_count(),
        SELECTIVITY * 100.0,
    );
    println!(
        "{:<12} {:>6} {:>8} {:>16} {:>16}",
        "workload", "phase", "batch", "queries/s", "vs batch 1"
    );
    for workload in [Workload::Uniform, Workload::Zipf] {
        for warm in [false, true] {
            let mut base = 0.0;
            for &batch_size in &BATCH_SIZES {
                let qps = run_config(workload, batch_size, warm, n);
                if batch_size == 1 {
                    base = qps;
                }
                println!(
                    "{:<12} {:>6} {:>8} {:>16.0} {:>15.2}x",
                    workload.name(),
                    if warm { "warm" } else { "cold" },
                    batch_size,
                    qps,
                    qps / base.max(1e-9),
                );
            }
        }
    }
}
