//! Crash recovery cost: how long a restart takes and what the recovered
//! engine is worth, against the only alternative — rebuilding cold.
//!
//! The holistic engine's value is *learned* state: crack boundaries, cached
//! sums, sorted pieces, prefix arrays. A process restart used to discard
//! all of it. This bench measures the persistence path end to end:
//!
//! 1. **snapshot** — wall time (and file size) of checkpointing a
//!    query-warmed engine (data + piece tables + prefix arrays, CRC'd,
//!    written atomically);
//! 2. **recover** — wall time of coming back from the snapshot plus a WAL
//!    tail of post-snapshot updates. Decode-time validation is *sampled*:
//!    structural invariants plus a deterministic piece sample are checked
//!    at restart, and the full O(data) pass is deferred to the background
//!    scrubber — so this figure should sit *below* the cold-rebuild time
//!    (the full-validation figure from the PR 6 baseline did not);
//! 3. **post-restart warm throughput** — the workload replayed on the
//!    recovered engine (learned state intact, so queries are resolved
//!    lookups), vs. the same replay on a **cold rebuild** (fresh engine
//!    over the same data, paying first-touch cracking again).
//!
//! Scale knobs: `HOLISTIC_SCALE` (rows, default 1,000,000) and
//! `HOLISTIC_QUERIES` (distinct queries, default 1,000).

use std::path::PathBuf;
use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use holistic_bench::uniform_column;
use holistic_core::{Database, FaultInjector, HolisticConfig, IndexingStrategy, Query};
use holistic_workload::{QueryGenerator, UniformRangeGenerator};

const SELECTIVITY: f64 = 0.01;
/// Post-snapshot updates forming the WAL tail recovery has to replay.
const WAL_TAIL: usize = 1_000;
/// Measured repetitions of the warm query set.
const REPS: usize = 5;

fn scale() -> usize {
    std::env::var("HOLISTIC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

fn query_count() -> usize {
    std::env::var("HOLISTIC_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000)
}

fn tmpdir() -> PathBuf {
    let dir = std::env::temp_dir().join(format!("holistic-micro-recovery-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).expect("create bench dir");
    dir
}

fn bounds(n: usize, count: usize, seed: u64) -> Vec<(i64, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = UniformRangeGenerator::new(0, 1, n as i64 + 1, SELECTIVITY);
    (0..count)
        .map(|_| {
            let q = g.next_query(&mut rng);
            (q.lo, q.hi)
        })
        .collect()
}

/// Best-of-3 wall time of replaying the query set `REPS` times, as q/s.
fn throughput(db: &Database, queries: &[Query]) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..REPS {
            for q in queries {
                let r = db.execute(q).expect("query");
                std::hint::black_box((r.count, r.sum));
            }
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    (queries.len() * REPS) as f64 / best
}

fn dir_bytes(dir: &PathBuf) -> u64 {
    std::fs::read_dir(dir)
        .map(|entries| {
            entries
                .filter_map(|e| e.ok())
                .filter_map(|e| e.metadata().ok())
                .map(|m| m.len())
                .sum()
        })
        .unwrap_or(0)
}

fn main() {
    let n = scale();
    let qcount = query_count();
    let dir = tmpdir();
    let warm = bounds(n, qcount, 0x5EED);
    println!(
        "micro_recovery: {n} rows, {qcount} queries, {WAL_TAIL} WAL-tail updates, \
         {:.1}% selectivity",
        SELECTIVITY * 100.0
    );

    // Build and warm the persisted engine: query-driven cracking plus an
    // idle-sorted second half of the workload's value space.
    let mut db = Database::new(HolisticConfig::default(), IndexingStrategy::Holistic);
    db.set_persistence(&dir, FaultInjector::new())
        .expect("enable persistence");
    let table = db
        .create_table("r", vec![("a", uniform_column(n, 0xBA7C4))])
        .expect("create table");
    let col = db.column_id(table, "a").expect("column id");
    let queries: Vec<Query> = warm
        .iter()
        .map(|&(lo, hi)| Query::range(col, lo, hi))
        .collect();
    for q in &queries {
        db.execute(q).expect("warm query");
    }
    let pieces_before = db.piece_count(col);

    // 1. Snapshot the warmed engine.
    let start = Instant::now();
    let generation = db.snapshot().expect("snapshot");
    let snap_time = start.elapsed();
    let on_disk = dir_bytes(&dir);
    println!(
        "\nsnapshot: generation {generation} in {:.1} ms ({:.1} MB on disk, {} pieces)",
        snap_time.as_secs_f64() * 1e3,
        on_disk as f64 / 1e6,
        pieces_before
    );

    // A WAL tail: post-snapshot updates recovery must replay.
    for i in 0..WAL_TAIL {
        db.insert(col, (i % n) as i64).expect("wal-tail insert");
    }
    drop(db); // crash

    // 2. Recover: snapshot load + validation + WAL replay.
    let start = Instant::now();
    let (recovered, outcome) = Database::recover(
        HolisticConfig::default(),
        IndexingStrategy::Holistic,
        &dir,
        FaultInjector::new(),
    )
    .expect("recovery");
    let rec_time = start.elapsed();
    assert_eq!(outcome.wal_records_replayed, WAL_TAIL as u64);
    assert!(
        outcome.cold_columns.is_empty(),
        "learned state must survive"
    );
    println!(
        "recover:  {:.1} ms (snapshot gen {:?}, {} WAL records replayed, {} pieces back, \
         {} columns on deferred/sampled validation)",
        rec_time.as_secs_f64() * 1e3,
        outcome.snapshot_generation,
        outcome.wal_records_replayed,
        recovered.piece_count(col),
        outcome.sampled_columns.len()
    );
    // The deferred full pass: how much idle scrub time restart bought.
    let start = Instant::now();
    let mut scrub_windows = 0u64;
    loop {
        let report = recovered.scrub_step(4096);
        assert!(!report.fault_found, "clean recovery must scrub clean");
        scrub_windows += 1;
        if report.completed_pass || report.column.is_none() || scrub_windows > 100_000 {
            break;
        }
    }
    println!(
        "deferred validation: full scrub pass in {:.1} ms across {scrub_windows} idle windows",
        start.elapsed().as_secs_f64() * 1e3
    );

    // 3. Cold rebuild baseline: fresh engine over the same data; its first
    // pass over the workload re-pays all of the cracking.
    let start = Instant::now();
    let mut cold = Database::new(HolisticConfig::default(), IndexingStrategy::Holistic);
    let cold_table = cold
        .create_table("r", vec![("a", uniform_column(n, 0xBA7C4))])
        .expect("create table");
    let cold_col = cold.column_id(cold_table, "a").expect("column id");
    for i in 0..WAL_TAIL {
        cold.insert(cold_col, (i % n) as i64).expect("insert");
    }
    let cold_queries: Vec<Query> = warm
        .iter()
        .map(|&(lo, hi)| Query::range(cold_col, lo, hi))
        .collect();
    for q in &cold_queries {
        cold.execute(q).expect("cold first pass");
    }
    let cold_first_pass = start.elapsed();

    // Steady-state throughput on both engines.
    let recovered_qps = throughput(&recovered, &queries);
    let cold_qps = throughput(&cold, &cold_queries);

    println!(
        "cold rebuild: {:.1} ms to rebuild + crack through the workload once",
        cold_first_pass.as_secs_f64() * 1e3
    );
    println!(
        "time to warm: recovered {:.1} ms vs cold {:.1} ms ({:.2}x)",
        rec_time.as_secs_f64() * 1e3,
        cold_first_pass.as_secs_f64() * 1e3,
        cold_first_pass.as_secs_f64() / rec_time.as_secs_f64().max(1e-9)
    );
    println!("\nsteady-state replay of the workload (queries/s):");
    println!("{:<22} {:>14}", "engine", "queries/s");
    println!("{:<22} {:>14.0}", "recovered (warm)", recovered_qps);
    println!("{:<22} {:>14.0}", "cold rebuild", cold_qps);

    let _ = std::fs::remove_dir_all(&dir);
}
