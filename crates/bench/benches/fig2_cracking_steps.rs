//! Figure 2: adaptive indexing (database cracking) illustrated — how the
//! physical organization of a column evolves with every query.
//!
//! The paper's Figure 2 shows a small column being cracked by two queries.
//! This bench reproduces that picture on a small column and then reports how
//! the piece count and average piece size evolve over a longer query
//! sequence on a realistic column size.

use holistic_cracking::CrackerColumn;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn main() {
    println!("Figure 2: adaptive indexing — column state after successive queries\n");
    small_illustration();
    piece_evolution();
}

fn small_illustration() {
    let values = vec![13, 16, 4, 9, 2, 12, 7, 1, 19, 3, 14, 11, 8, 6];
    println!("initial column: {values:?}");
    let mut cracker = CrackerColumn::from_values(values);
    for &(lo, hi) in &[(5i64, 11i64), (8, 14)] {
        let range = cracker.crack_select(lo, hi);
        println!("\nafter query  select * where {lo} <= A < {hi}   (result: positions {range:?})");
        println!("  data:   {:?}", cracker.data());
        for (i, piece) in cracker.pieces().iter().enumerate() {
            println!(
                "  piece {i}: positions [{}, {})  values [{}, {})",
                piece.start,
                piece.end,
                piece.lo.map_or("-inf".to_string(), |v| v.to_string()),
                piece.hi.map_or("+inf".to_string(), |v| v.to_string()),
            );
        }
    }
}

fn piece_evolution() {
    let n = 1_000_000usize;
    let mut rng = StdRng::seed_from_u64(99);
    let values: Vec<i64> = (0..n).map(|_| rng.gen_range(1..=n as i64)).collect();
    let mut cracker = CrackerColumn::from_values(values);
    println!("\nPiece evolution over a 1%-selectivity query sequence (N={n}):");
    println!("{:>8} {:>12} {:>18}", "queries", "pieces", "avg piece size");
    let mut executed = 0u32;
    for &checkpoint in &[1u32, 2, 4, 8, 16, 32, 64, 128, 256, 512, 1024] {
        while executed < checkpoint {
            let lo = rng.gen_range(1..=(n as i64 - n as i64 / 100).max(1));
            let hi = lo + n as i64 / 100;
            let _ = cracker.crack_select(lo, hi);
            executed += 1;
        }
        println!(
            "{:>8} {:>12} {:>18.0}",
            executed,
            cracker.piece_count(),
            cracker.avg_piece_len()
        );
    }
}
