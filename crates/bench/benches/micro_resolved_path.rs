//! Warm resolved-path throughput: the per-piece aggregate cache vs. the
//! pre-cache answer scan.
//!
//! PR 3's ceiling analysis identified the per-query answer scan (~80 MB of
//! result-range reads per 1k count/sum queries at 1M rows / 1 % selectivity)
//! as the dominant shared cost on the warm path. The aggregate cache removes
//! it: resolved count/sum queries compose whole-piece cached sums — O(log P)
//! metadata — and never touch the data array.
//!
//! Two measurements on the same warmed cracker column:
//!
//! * **scan answer** — the pre-cache path, reproduced exactly: resolve the
//!   position range under the shared latch, then run the storage layer's
//!   chunked masked-sum kernel over the result range;
//! * **cached answer** — the live path: `select_with_policy`, whose answer
//!   phase composes cached piece sums (scan fallback only for sum-less
//!   pieces, of which a query-cracked column has none).
//!
//! A third section reports the warm engine path (sequential and batch 64)
//! with the aggregate-cache hit counters, so the end-to-end effect is
//! visible alongside the isolated one.
//!
//! Scale knobs: `HOLISTIC_SCALE` (rows, default 1,000,000) and
//! `HOLISTIC_QUERIES` (distinct queries per config, default 1,000).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use holistic_bench::uniform_column;
use holistic_core::{Database, HolisticConfig, IndexingStrategy, Query};
use holistic_cracking::{ConcurrentCrackerColumn, CrackPolicy};
use holistic_workload::{QueryGenerator, UniformRangeGenerator};

const SELECTIVITY: f64 = 0.01;
/// Measured repetitions of the full query set (the resolved path is fast
/// enough that a single pass is timer noise).
const REPS: usize = 5;

fn scale() -> usize {
    std::env::var("HOLISTIC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

fn query_count() -> usize {
    std::env::var("HOLISTIC_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000)
}

fn bounds(n: usize, count: usize, seed: u64) -> Vec<(i64, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = UniformRangeGenerator::new(0, 1, n as i64 + 1, SELECTIVITY);
    (0..count)
        .map(|_| {
            let q = g.next_query(&mut rng);
            (q.lo, q.hi)
        })
        .collect()
}

/// Best-of-3 wall time of `f` run over `REPS` passes of the query set,
/// reported as aggregate queries/second.
fn measure(count: usize, mut f: impl FnMut()) -> f64 {
    let mut best = f64::MAX;
    for _ in 0..3 {
        let start = Instant::now();
        for _ in 0..REPS {
            f();
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    (count * REPS) as f64 / best
}

fn main() {
    let n = scale();
    let qs = bounds(n, query_count(), 0xC0FFEE);
    println!(
        "micro_resolved_path: {n} rows, {} distinct queries x {REPS} reps, \
         {:.1}% selectivity, warm (all bounds resolved)",
        qs.len(),
        SELECTIVITY * 100.0,
    );

    // ------------------------------------------------------------------
    // Isolated answer path: scan vs. aggregate cache on one warm column.
    // ------------------------------------------------------------------
    let column = ConcurrentCrackerColumn::from_values(uniform_column(n, 0xBA7C4));
    let mut rng = StdRng::seed_from_u64(1);
    for &(lo, hi) in &qs {
        // Warm-up: crack every bound (and seed the cache as a by-product).
        let _ = column.select_with_policy(lo, hi, false, CrackPolicy::Standard, &mut rng);
    }

    let scan_qps = measure(qs.len(), || {
        for &(lo, hi) in &qs {
            let sum = column.with_read(|col| {
                // The pre-cache answer path: resolved range + masked scan
                // of the whole result range.
                let range = col.select_if_resolved(lo, hi).expect("warmed");
                holistic_storage::scan_sum(col.view(range), lo, hi)
            });
            std::hint::black_box(sum);
        }
    });
    let cached_qps = measure(qs.len(), || {
        for &(lo, hi) in &qs {
            let out = column.select_with_policy(lo, hi, false, CrackPolicy::Standard, &mut rng);
            std::hint::black_box(out.sum);
        }
    });
    let stats = column.latch_stats();
    println!("\nanswer path (same warm column, count/sum only):");
    println!("{:<24} {:>16} {:>12}", "path", "queries/s", "vs scan");
    println!("{:<24} {:>16.0} {:>11.2}x", "scan answer", scan_qps, 1.0);
    println!(
        "{:<24} {:>16.0} {:>11.2}x",
        "cached answer",
        cached_qps,
        cached_qps / scan_qps.max(1e-9)
    );
    println!(
        "aggregate cache: {} hits, {} partial, {} misses",
        stats.aggregate_hits, stats.aggregate_partials, stats.aggregate_misses
    );

    // ------------------------------------------------------------------
    // End-to-end warm engine path (sequential and batch 64).
    // ------------------------------------------------------------------
    let mut db = Database::new(HolisticConfig::default(), IndexingStrategy::Adaptive);
    let table = db
        .create_table("r", vec![("a", uniform_column(n, 0xBA7C4))])
        .expect("create table");
    let col = db.column_id(table, "a").expect("column id");
    let stream: Vec<Query> = qs
        .iter()
        .map(|&(lo, hi)| Query::range(col, lo, hi))
        .collect();
    for q in &stream {
        db.execute(q).expect("warmup");
    }
    db.reset_metrics();

    let seq_qps = measure(stream.len(), || {
        for q in &stream {
            let r = db.execute(q).expect("query");
            std::hint::black_box(r.sum);
        }
    });
    let batch_qps = measure(stream.len(), || {
        for chunk in stream.chunks(64) {
            let r = db.execute_batch(chunk).expect("batch");
            std::hint::black_box(r.len());
        }
    });
    let cache = db.metrics().aggregate_cache();
    println!("\nwarm engine path (adaptive strategy):");
    println!("{:<24} {:>16}", "path", "queries/s");
    println!("{:<24} {:>16.0}", "execute (sequential)", seq_qps);
    println!("{:<24} {:>16.0}", "execute_batch (64)", batch_qps);
    println!(
        "aggregate cache: {} hits, {} partial, {} misses, {} values scanned",
        cache.hits, cache.partials, cache.misses, cache.scanned_values
    );
}
