//! Table 1: features of offline, online, adaptive and holistic indexing.
//!
//! This regenerates the paper's qualitative feature matrix from the
//! engine's own capability descriptions, so the claims stay tied to code.

use holistic_core::{strategy_timeline, IndexingStrategy};

fn mark(b: bool) -> &'static str {
    if b {
        "yes"
    } else {
        "-"
    }
}

fn main() {
    println!("Table 1: features of offline, online, adaptive and holistic indexing\n");
    println!(
        "{:<10} {:>22} {:>24} {:>26} {:>22} {:>10}",
        "Indexing",
        "stat. analysis a-priori",
        "idle time a-priori",
        "idle time during workload",
        "incremental indexing",
        "workload"
    );
    for strategy in [
        IndexingStrategy::Offline,
        IndexingStrategy::Online,
        IndexingStrategy::Adaptive,
        IndexingStrategy::Holistic,
    ] {
        let f = strategy.features();
        println!(
            "{:<10} {:>22} {:>24} {:>26} {:>22} {:>10}",
            strategy.name(),
            mark(f.statistical_analysis_a_priori),
            mark(f.exploits_idle_time_a_priori),
            mark(f.exploits_idle_time_during_workload),
            mark(f.incremental_indexing),
            f.workload.to_string()
        );
    }

    println!("\nLifecycle timelines (Figure 1 companion):");
    for strategy in IndexingStrategy::all() {
        println!("  {}:", strategy.name());
        for phase in strategy_timeline(strategy) {
            println!(
                "    [{}] {}",
                if phase.during_workload {
                    "during"
                } else {
                    "before"
                },
                phase.label
            );
        }
    }
}
