//! Exp2 / Figure 4: gains of holistic indexing with multiple indexes.
//!
//! Paper setup: 10 columns, workload known a priori (all columns equally
//! hot), but the a-priori idle time suffices to fully sort only 2 of the 10
//! columns. Offline indexing builds those 2 full indexes and answers the
//! other 8 columns with scans; holistic indexing spends the *same* idle
//! budget on 100 random cracking actions on *each* of the 10 columns, so
//! every query benefits at least a little. Queries then arrive round-robin
//! over all 10 columns. Holistic ends roughly two orders of magnitude ahead
//! (it only loses on the first couple of queries, which happen to hit the
//! fully indexed columns).

use holistic_bench::{
    build_database, print_series, print_totals, query_count, replay_session, scale,
};
use holistic_core::{HolisticConfig, IndexingStrategy};
use holistic_offline::WorkloadSummary;
use holistic_workload::{ArrivalModel, RoundRobinColumns, SessionBuilder, UniformRangeGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

const COLUMNS: usize = 10;
const FULL_INDEX_BUDGET: usize = 2;
const CRACKS_PER_COLUMN: u64 = 100;

fn main() {
    let n = scale();
    let queries = query_count();
    println!(
        "Exp2 (Figure 4): {COLUMNS} columns of {n} values, {queries} round-robin queries, \
         a-priori idle time = time to fully sort {FULL_INDEX_BUDGET} columns"
    );

    // Shared workload trace: round-robin over the 10 columns, 1% selectivity.
    let inner = UniformRangeGenerator::new(0, 1, n as i64 + 1, 0.01);
    let mut generator = RoundRobinColumns::new(inner, COLUMNS);
    let mut rng = StdRng::seed_from_u64(2012);
    let events = SessionBuilder::new(ArrivalModel::Steady).build(&mut generator, queries, &mut rng);

    // --- Offline: build as many full indexes as the budget allows. ------
    let (mut offline_db, offline_cols) = build_database(
        IndexingStrategy::Offline,
        HolisticConfig::default(),
        COLUMNS,
        n,
    );
    let mut summary = WorkloadSummary::new();
    for &c in &offline_cols {
        summary.declare(c, (queries / COLUMNS) as u64, 0.01);
    }
    let mut built = 0usize;
    let mut offline_build_time = std::time::Duration::ZERO;
    for &c in &offline_cols {
        if built >= FULL_INDEX_BUDGET {
            break;
        }
        offline_build_time += offline_db.build_full_index(c).expect("build index");
        built += 1;
    }
    println!(
        "offline: built {built} full indexes in {:.1} ms (this defines the idle budget)",
        offline_build_time.as_secs_f64() * 1e3
    );
    let offline = replay_session(&mut offline_db, &offline_cols, &events, false);

    // --- Holistic: spread the same idle budget over all 10 columns. -----
    let (mut holistic_db, holistic_cols) = build_database(
        IndexingStrategy::Holistic,
        HolisticConfig::default(),
        COLUMNS,
        n,
    );
    let mut holistic_prep = std::time::Duration::ZERO;
    for &c in &holistic_cols {
        holistic_prep += holistic_db.warm_column(c, CRACKS_PER_COLUMN).expect("warm");
    }
    println!(
        "holistic: applied {CRACKS_PER_COLUMN} cracks to each of {COLUMNS} columns in {:.1} ms",
        holistic_prep.as_secs_f64() * 1e3
    );
    let holistic = replay_session(&mut holistic_db, &holistic_cols, &events, false);

    let outcomes = vec![offline, holistic];
    print_series(
        "Figure 4: cumulative response time, offline vs holistic",
        &outcomes,
    );
    print_totals("Figure 4 totals", &outcomes);
    let ratio = outcomes[0].total_query_time.as_secs_f64()
        / outcomes[1].total_query_time.as_secs_f64().max(1e-9);
    println!("offline / holistic total-time ratio: {ratio:.1}x");
}
