//! Sorted-piece aggregate throughput: the prefix-sum answer path vs. the
//! masked-scan fallback it replaces, with the cracked-column cache path for
//! reference.
//!
//! PR 4's per-piece aggregate cache left a gap the ROADMAP recorded: the
//! strategies that invest the *most* in ordering — `sort_fully`, the
//! offline `SortedIndex`, the online soft index — got the *least* from the
//! cache, because binary-search splits of sorted pieces produced no sums
//! and the answer path fell back to the masked scan (reported as
//! partial/miss). Per-piece prefix sums close the gap: an aggregate whose
//! bounds land inside a sorted piece is two binary searches and one
//! subtraction, zero data-array reads.
//!
//! Three column-level paths, measured warm (same query set replayed) and
//! cold (every pass uses fresh bounds):
//!
//! * **sorted masked-scan** — the pre-prefix fallback, reproduced exactly:
//!   binary-search the position range on the sorted column, then run the
//!   storage layer's chunked masked-sum kernel over the result range;
//! * **sorted prefix** — the live path: `select_with_policy` on a
//!   `sort_fully`'d column, answered read-only under the shared latch from
//!   prefix differences (no splits, no data reads);
//! * **cracked cache** — PR 4's path on a query-warmed cracked column
//!   (whole-piece cached sums), for reference.
//!
//! A second section measures the engine's Offline strategy end-to-end:
//! `SortedIndex::range_sum` (the qualifying-slice scan the Offline/Online
//! answer path used before) vs. `Database::execute` on a prepared engine
//! (prefix-backed `query_sum`).
//!
//! Scale knobs: `HOLISTIC_SCALE` (rows, default 1,000,000) and
//! `HOLISTIC_QUERIES` (distinct queries per config, default 1,000).

use std::time::Instant;

use rand::rngs::StdRng;
use rand::SeedableRng;

use holistic_bench::uniform_column;
use holistic_core::{Database, HolisticConfig, IndexingStrategy, Query};
use holistic_cracking::{ConcurrentCrackerColumn, CrackPolicy, CrackerColumn};
use holistic_offline::{SortedIndex, WorkloadSummary};
use holistic_workload::{QueryGenerator, UniformRangeGenerator};

const SELECTIVITY: f64 = 0.01;
/// Measured repetitions of the full query set (the zero-read paths are fast
/// enough that a single pass is timer noise).
const REPS: usize = 5;

fn scale() -> usize {
    std::env::var("HOLISTIC_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000_000)
}

fn query_count() -> usize {
    std::env::var("HOLISTIC_QUERIES")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(1_000)
}

fn bounds(n: usize, count: usize, seed: u64) -> Vec<(i64, i64)> {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = UniformRangeGenerator::new(0, 1, n as i64 + 1, SELECTIVITY);
    (0..count)
        .map(|_| {
            let q = g.next_query(&mut rng);
            (q.lo, q.hi)
        })
        .collect()
}

/// Best-of-3 wall time of `f` run over `reps` passes, reported as aggregate
/// queries/second. `f` receives the pass number so cold paths can switch to
/// fresh bounds every pass.
fn measure(count: usize, reps: usize, mut f: impl FnMut(usize)) -> f64 {
    let mut best = f64::MAX;
    for round in 0..3 {
        let start = Instant::now();
        for rep in 0..reps {
            f(round * reps + rep);
        }
        best = best.min(start.elapsed().as_secs_f64());
    }
    (count * reps) as f64 / best
}

fn main() {
    let n = scale();
    let qcount = query_count();
    // 15 disjoint bound sets: one warm set plus fresh sets for cold passes.
    let sets: Vec<Vec<(i64, i64)>> = (0..15u64).map(|i| bounds(n, qcount, 0x5EED + i)).collect();
    let warm = &sets[0];
    println!(
        "micro_sorted_aggregates: {n} rows, {qcount} distinct queries x {REPS} reps, \
         {:.1}% selectivity",
        SELECTIVITY * 100.0,
    );

    // ------------------------------------------------------------------
    // Column-level answer paths on the same sorted data.
    // ------------------------------------------------------------------
    let mut sorted = CrackerColumn::from_values(uniform_column(n, 0xBA7C4));
    sorted.sort_fully();
    let sorted_data: Vec<i64> = sorted.data().to_vec();
    let sorted = ConcurrentCrackerColumn::new(sorted);
    let mut rng = StdRng::seed_from_u64(1);

    // The pre-prefix fallback: resolve by binary search, masked-scan the
    // result range (what a split sorted piece's sum-less children paid).
    let scan_fallback = |qs: &[(i64, i64)]| {
        for &(lo, hi) in qs {
            let start = sorted_data.partition_point(|&x| x < lo);
            let end = sorted_data.partition_point(|&x| x < hi);
            let sum = holistic_storage::scan_sum(&sorted_data[start..end], lo, hi);
            std::hint::black_box((end - start, sum));
        }
    };
    let scan_warm = measure(qcount, REPS, |_| scan_fallback(warm));
    let scan_cold = measure(qcount, REPS, |pass| scan_fallback(&sets[pass % 15]));

    // The live path: read-only prefix answers under the shared latch.
    let prefix_path = |qs: &[(i64, i64)], rng: &mut StdRng| {
        for &(lo, hi) in qs {
            let out = sorted.select_with_policy(lo, hi, false, CrackPolicy::Standard, rng);
            std::hint::black_box((out.count, out.sum));
        }
    };
    let prefix_warm = measure(qcount, REPS, |_| prefix_path(warm, &mut rng));
    let prefix_cold = measure(qcount, REPS, |pass| prefix_path(&sets[pass % 15], &mut rng));
    let stats = sorted.latch_stats();
    assert_eq!(
        stats.exclusive_selects, 0,
        "sorted path must stay read-only"
    );
    assert_eq!(
        stats.aggregate_partials + stats.aggregate_misses,
        0,
        "sorted path must never fall back"
    );

    // PR 4's reference: whole-piece cached sums on a query-warmed cracked
    // column (warm only — its cold pass would measure cracking, which
    // micro_batch_throughput already covers).
    let cracked = ConcurrentCrackerColumn::from_values(uniform_column(n, 0xBA7C4));
    for &(lo, hi) in warm {
        let _ = cracked.select_with_policy(lo, hi, false, CrackPolicy::Standard, &mut rng);
    }
    let cracked_warm = measure(qcount, REPS, |_| {
        for &(lo, hi) in warm {
            let out = cracked.select_with_policy(lo, hi, false, CrackPolicy::Standard, &mut rng);
            std::hint::black_box((out.count, out.sum));
        }
    });

    println!("\ncolumn answer paths (count/sum only, queries/s):");
    println!(
        "{:<26} {:>14} {:>14} {:>10} {:>10}",
        "path", "warm q/s", "cold q/s", "warm x", "cold x"
    );
    println!(
        "{:<26} {:>14.0} {:>14.0} {:>9.2}x {:>9.2}x",
        "sorted masked-scan", scan_warm, scan_cold, 1.0, 1.0
    );
    println!(
        "{:<26} {:>14.0} {:>14.0} {:>9.2}x {:>9.2}x",
        "sorted prefix",
        prefix_warm,
        prefix_cold,
        prefix_warm / scan_warm.max(1e-9),
        prefix_cold / scan_cold.max(1e-9)
    );
    println!(
        "{:<26} {:>14.0} {:>14} {:>9.2}x {:>10}",
        "cracked cache (PR 4)",
        cracked_warm,
        "-",
        cracked_warm / scan_warm.max(1e-9),
        "-"
    );
    println!(
        "sorted column cache: {} hits, {} prefix, {} partial, {} misses",
        stats.aggregate_hits,
        stats.aggregate_prefix,
        stats.aggregate_partials,
        stats.aggregate_misses
    );

    // ------------------------------------------------------------------
    // Engine-level Offline strategy: prefix-backed index probes vs. the
    // qualifying-slice scan the pre-prefix answer path performed.
    // ------------------------------------------------------------------
    let index = SortedIndex::build_from_values(&uniform_column(n, 0xBA7C4));
    let index_scan_qps = measure(qcount, REPS, |_| {
        for &(lo, hi) in warm {
            std::hint::black_box((index.count(lo, hi), index.range_sum(lo, hi)));
        }
    });

    let mut db = Database::new(HolisticConfig::default(), IndexingStrategy::Offline);
    let table = db
        .create_table("r", vec![("a", uniform_column(n, 0xBA7C4))])
        .expect("create table");
    let col = db.column_id(table, "a").expect("column id");
    let mut workload = WorkloadSummary::new();
    workload.declare(col, qcount as u64, SELECTIVITY);
    db.prepare_offline(&workload, None);
    let stream: Vec<Query> = warm
        .iter()
        .map(|&(lo, hi)| Query::range(col, lo, hi))
        .collect();
    db.reset_metrics();
    let engine_qps = measure(stream.len(), REPS, |_| {
        for q in &stream {
            let r = db.execute(q).expect("query");
            std::hint::black_box(r.sum);
        }
    });
    let cache = db.metrics().aggregate_cache();
    println!("\noffline strategy (full sorted index, warm):");
    println!("{:<26} {:>14} {:>10}", "path", "queries/s", "vs scan");
    println!(
        "{:<26} {:>14.0} {:>9.2}x",
        "index range_sum (scan)", index_scan_qps, 1.0
    );
    println!(
        "{:<26} {:>14.0} {:>9.2}x",
        "engine execute (prefix)",
        engine_qps,
        engine_qps / index_scan_qps.max(1e-9)
    );
    println!(
        "aggregate cache: {} hits, {} prefix, {} partial, {} misses, {} values scanned",
        cache.hits, cache.prefix, cache.partials, cache.misses, cache.scanned_values
    );
}
