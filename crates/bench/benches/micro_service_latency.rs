//! Service latency vs. offered load over a real loopback connection.
//!
//! The query service's whole point is graceful degradation: below
//! saturation it should add little latency over raw batch execution; past
//! saturation it must shed typed work instead of letting queues (and
//! latency) grow without bound. This bench measures that curve.
//!
//! Method: a closed-loop pipelined burst first *calibrates* the service's
//! capacity (achieved queries/second with a full pipeline — this also
//! warms the index). The open-loop sweep then offers Poisson arrivals at
//! 0.25×, 0.5×, 1× and 2× of calibrated capacity and records, per load
//! point, achieved throughput, p50/p99 latency of answered queries, and
//! the shed/rejection counts. At 2× the interesting numbers are the
//! *bounded* p99 of answered queries (deadline-capped) and the nonzero
//! shed column — an unprotected server would instead show unbounded
//! latency and zero sheds.
//!
//! The whole sweep runs twice, against a fresh server each time: once
//! with FIFO dispatch (`edf_dispatch: false`, the pre-EDF baseline) and
//! once with earliest-deadline-first ordering within admission buckets,
//! with sheds reported *by cause* (admission rejections vs. deadline
//! sheds vs. cancellations) so the effect of dispatch order — fewer
//! `shed_deadline` at overload — is separable from load shaping.
//!
//! Each load point emits one machine-readable line:
//!
//! ```text
//! BENCH_JSON {"bench":"micro_service_latency","offered_qps":…,…}
//! ```
//!
//! Scale knobs: `HOLISTIC_SCALE` (rows, default 1,000,000) and
//! `HOLISTIC_QUERIES` (arrivals per load point, default 1,000).

use std::sync::mpsc;
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use rand::rngs::StdRng;
use rand::SeedableRng;

use holistic_bench::{query_count, scale, uniform_column};
use holistic_core::{Database, HolisticConfig, IndexingStrategy, SharedDatabase};
use holistic_server::{serve, Client, QueryReq, RespStatus, Server, ServiceConfig, ServiceCore};
use holistic_storage::ColumnId;
use holistic_workload::{OpenLoopBuilder, UniformRangeGenerator};

const SELECTIVITY: f64 = 0.01;
const LOAD_CLIENTS: usize = 4;
const LOAD_MULTIPLIERS: [f64; 4] = [0.25, 0.5, 1.0, 2.0];
const QUERY_DEADLINE: Duration = Duration::from_millis(100);
const CALIBRATION_WINDOW: usize = 64;

fn service_config(edf_dispatch: bool) -> ServiceConfig {
    let base = ServiceConfig::default();
    ServiceConfig {
        max_batch: 64,
        batch_deadline: Duration::from_millis(1),
        default_deadline: QUERY_DEADLINE,
        // Four load clients must be able to push the *global* queue past
        // the saturation high watermark, or the degradation ladder never
        // shows.
        per_client_cap: base.global_queue_cap,
        edf_dispatch,
        ..base
    }
}

fn start_server(rows: usize, edf_dispatch: bool) -> (Server, SharedDatabase, ColumnId) {
    let mut db = Database::new(HolisticConfig::default(), IndexingStrategy::Holistic);
    let table = db
        .create_table("t", vec![("v", uniform_column(rows, 7))])
        .expect("create table");
    let column = db.column_id(table, "v").expect("column");
    let engine = db.into_shared();
    let core = ServiceCore::new(Arc::clone(&engine), service_config(edf_dispatch));
    let server = serve(core, "127.0.0.1:0").expect("bind loopback");
    (server, engine, column)
}

/// Closed-loop pipelined burst: `n` queries with a sliding in-flight
/// window (below the per-client admission cap, so nothing is rejected).
/// Returns achieved queries/second. Doubles as index warmup.
fn calibrate(addr: std::net::SocketAddr, column: ColumnId, rows: usize, n: usize) -> f64 {
    use holistic_workload::QueryGenerator;
    let mut generator = UniformRangeGenerator::new(0, 1, rows as i64, SELECTIVITY);
    let mut rng = StdRng::seed_from_u64(11);
    let mut client = Client::connect(addr, 1).expect("connect");
    client
        .set_recv_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");

    let mut send_one = |client: &mut Client, i: usize| {
        let q = generator.next_query(&mut rng);
        client
            .send(&QueryReq {
                request_id: i as u64,
                column,
                lo: q.lo,
                hi: q.hi,
                materialize: false,
                deadline_ms: 30_000,
            })
            .expect("send");
    };
    let recv_one = |client: &mut Client| {
        client
            .recv()
            .expect("recv")
            .expect("server closed during calibration");
    };

    let start = Instant::now();
    let window = CALIBRATION_WINDOW.min(n);
    for i in 0..window {
        send_one(&mut client, i);
    }
    for i in window..n {
        recv_one(&mut client);
        send_one(&mut client, i);
    }
    for _ in 0..window {
        recv_one(&mut client);
    }
    n as f64 / start.elapsed().as_secs_f64()
}

struct LoadPoint {
    offered_qps: f64,
    achieved_qps: f64,
    p50_us: u128,
    p99_us: u128,
    ok: usize,
    shed: usize,
    duration_s: f64,
}

/// One open-loop Poisson run at `rate` queries/second across
/// `LOAD_CLIENTS` connections.
fn run_load(
    addr: std::net::SocketAddr,
    column: ColumnId,
    rows: usize,
    rate: f64,
    arrivals: usize,
    seed: u64,
) -> LoadPoint {
    let schedule = OpenLoopBuilder::new(rate).with_clients(LOAD_CLIENTS).build(
        &mut UniformRangeGenerator::new(0, 1, rows as i64, SELECTIVITY),
        arrivals,
        &mut StdRng::seed_from_u64(seed),
    );

    let start = Instant::now();
    let mut handles = Vec::new();
    for client in 0..LOAD_CLIENTS {
        let mine: Vec<_> = schedule
            .iter()
            .filter(|a| a.client == client)
            .copied()
            .collect();
        handles.push(thread::spawn(move || {
            let sender = Client::connect(addr, 100 + client as u64).expect("connect");
            let mut receiver = sender.try_clone().expect("clone");
            receiver
                .set_recv_timeout(Some(Duration::from_secs(30)))
                .expect("timeout");
            let mut sender = sender;

            let (meta_tx, meta_rx) = mpsc::channel::<(u64, Instant)>();
            let expected = mine.len();
            let collector = thread::spawn(move || {
                let mut pending = std::collections::HashMap::new();
                let mut ok = Vec::new();
                let mut shed = 0usize;
                for _ in 0..expected {
                    let Ok(Some(resp)) = receiver.recv() else {
                        break;
                    };
                    while let Ok((id, at)) = meta_rx.try_recv() {
                        pending.insert(id, at);
                    }
                    let sent_at = pending[&resp.request_id];
                    if resp.status == RespStatus::Ok {
                        ok.push(sent_at.elapsed());
                    } else {
                        shed += 1;
                    }
                }
                (ok, shed)
            });

            let run_start = Instant::now();
            for (i, arrival) in mine.iter().enumerate() {
                if let Some(wait) = arrival.at.checked_sub(run_start.elapsed()) {
                    thread::sleep(wait);
                }
                let req = QueryReq {
                    request_id: i as u64,
                    column,
                    lo: arrival.query.lo,
                    hi: arrival.query.hi,
                    materialize: false,
                    deadline_ms: 0,
                };
                meta_tx
                    .send((req.request_id, Instant::now()))
                    .expect("collector");
                if sender.send(&req).is_err() {
                    break;
                }
            }
            drop(meta_tx);
            collector.join().expect("collector panicked")
        }));
    }

    let mut latencies: Vec<Duration> = Vec::new();
    let mut shed = 0usize;
    for handle in handles {
        let (ok, s) = handle.join().expect("load client panicked");
        latencies.extend(ok);
        shed += s;
    }
    let elapsed = start.elapsed().as_secs_f64();

    latencies.sort();
    let pct = |p: usize| -> u128 {
        if latencies.is_empty() {
            0
        } else {
            latencies[(latencies.len() - 1) * p / 100].as_micros()
        }
    };
    LoadPoint {
        offered_qps: rate,
        achieved_qps: latencies.len() as f64 / elapsed,
        p50_us: pct(50),
        p99_us: pct(99),
        ok: latencies.len(),
        shed,
        duration_s: elapsed,
    }
}

/// One full calibrate-and-sweep pass against a fresh server, so the two
/// dispatch modes see identical starting state and their shed counters
/// never mix.
fn run_mode(rows: usize, arrivals: usize, edf_dispatch: bool) {
    let mode = if edf_dispatch { "edf" } else { "fifo" };
    let (server, engine, column) = start_server(rows, edf_dispatch);
    let addr = server.addr();

    let capacity = calibrate(addr, column, rows, (arrivals * 2).max(2_000));
    println!("# [{mode}] calibrated capacity: {capacity:.0} q/s (closed-loop pipeline)");
    println!(
        "{:>6} {:>12} {:>14} {:>10} {:>10} {:>8} {:>8}",
        "mode", "offered q/s", "achieved q/s", "p50 µs", "p99 µs", "ok", "shed"
    );

    for (i, mult) in LOAD_MULTIPLIERS.iter().enumerate() {
        let rate = capacity * mult;
        // Each point offers at least ~0.5s of load so queueing actually
        // builds against the deadline — otherwise the overloaded points
        // finish before backpressure has anything to push back on.
        let point_arrivals = arrivals.max((rate * 0.5) as usize).min(50_000);
        let point = run_load(addr, column, rows, rate, point_arrivals, 100 + i as u64);
        println!(
            "{:>6} {:>12.0} {:>14.0} {:>10} {:>10} {:>8} {:>8}",
            mode,
            point.offered_qps,
            point.achieved_qps,
            point.p50_us,
            point.p99_us,
            point.ok,
            point.shed
        );
        let svc = engine.read().metrics().service();
        println!(
            "BENCH_JSON {{\"bench\":\"micro_service_latency\",\"dispatch\":\"{}\",\"offered_qps\":{:.1},\"achieved_qps\":{:.1},\"p50_us\":{},\"p99_us\":{},\"ok\":{},\"shed\":{},\"duration_s\":{:.3},\"load_multiplier\":{},\"deadline_ms\":{},\"admitted_total\":{},\"rejected_global\":{},\"rejected_client\":{},\"shed_deadline\":{},\"cancelled\":{},\"peak_queue_depth\":{}}}",
            mode,
            point.offered_qps,
            point.achieved_qps,
            point.p50_us,
            point.p99_us,
            point.ok,
            point.shed,
            point.duration_s,
            mult,
            QUERY_DEADLINE.as_millis(),
            svc.admitted,
            svc.rejected_global,
            svc.rejected_client,
            svc.shed_deadline,
            svc.cancelled,
            svc.peak_queue_depth,
        );
    }

    // Sheds by cause: admission rejections (global/per-client caps) are
    // load-shaping and should not move with dispatch order; deadline sheds
    // are the column EDF exists to cut.
    let svc = engine.read().metrics().service();
    println!(
        "# [{mode}] totals: admitted={} rejected_global={} rejected_client={} shed_deadline={} cancelled={} degraded={} saturation_entries={} peak_queue_depth={}",
        svc.admitted,
        svc.rejected_global,
        svc.rejected_client,
        svc.shed_deadline,
        svc.cancelled,
        svc.degraded_answers,
        svc.saturation_entries,
        svc.peak_queue_depth,
    );
    server.shutdown();
}

fn main() {
    let rows = scale();
    let arrivals = query_count();
    println!("# micro_service_latency: rows={rows} arrivals/load={arrivals}");
    // FIFO first (the pre-EDF baseline), then EDF, so the shed-by-cause
    // totals line up as a before/after pair.
    run_mode(rows, arrivals, false);
    run_mode(rows, arrivals, true);
}
