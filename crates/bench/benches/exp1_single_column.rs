//! Exp1 / Figure 3: gains of holistic indexing during a query sequence on a
//! single column, for different amounts of idle time (X = 10, 100, 1000
//! refinement actions per idle window).
//!
//! Paper setup: one column of 10^8 uniform integers, 10^4 queries of 1%
//! selectivity at random positions, an idle window before the first query
//! and another one every 100 queries. Offline indexing can only exploit the
//! idle time before the first query; if the full sort is not finished by
//! then, the first query waits for it. Cracking ignores idle time entirely.
//!
//! Scaled-down defaults (override with HOLISTIC_SCALE / HOLISTIC_QUERIES):
//! 10^6 values, 10^3 queries.

use std::time::{Duration, Instant};

use holistic_bench::{
    build_database, print_series, print_totals, query_count, replay_session, scale,
};
use holistic_core::{HolisticConfig, IndexingStrategy};
use holistic_offline::WorkloadSummary;
use holistic_workload::{
    ArrivalModel, IdleWindow, SessionBuilder, UniformRangeGenerator, WorkloadEvent,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scale();
    let queries = query_count();
    println!("Exp1 (Figure 3 / Table 2): single column, N={n}, {queries} queries, selectivity 1%");
    for &x in &[10u64, 100, 1000] {
        run_for_x(n, queries, x);
    }
}

fn run_for_x(n: usize, queries: usize, x: u64) {
    // One shared workload trace so every strategy answers exactly the same
    // queries with exactly the same idle windows.
    let mut generator = UniformRangeGenerator::new(0, 1, n as i64 + 1, 0.01);
    let mut rng = StdRng::seed_from_u64(42 + x);
    let events = SessionBuilder::new(ArrivalModel::PeriodicIdle {
        every: 100,
        actions: x,
    })
    .with_initial_idle(IdleWindow::Actions(x))
    .build(&mut generator, queries, &mut rng);

    // --- Holistic: exploits every idle window. -------------------------
    let (mut holistic_db, cols) =
        build_database(IndexingStrategy::Holistic, HolisticConfig::default(), 1, n);
    let holistic = replay_session(&mut holistic_db, &cols, &events, true);
    // The wall-clock duration of the first idle window defines T_init, the
    // a-priori idle time every strategy is granted.
    let t_init = estimate_initial_idle(&holistic, &events);

    // --- Scan: cannot exploit idle time. --------------------------------
    let (mut scan_db, scan_cols) =
        build_database(IndexingStrategy::ScanOnly, HolisticConfig::default(), 1, n);
    let scan = replay_session(&mut scan_db, &scan_cols, &events, false);

    // --- Adaptive (database cracking): idle windows are wasted. ---------
    let (mut crack_db, crack_cols) =
        build_database(IndexingStrategy::Adaptive, HolisticConfig::default(), 1, n);
    let cracking = replay_session(&mut crack_db, &crack_cols, &events, false);

    // --- Offline: full sort, but only T_init of it is free. -------------
    let (mut offline_db, offline_cols) =
        build_database(IndexingStrategy::Offline, HolisticConfig::default(), 1, n);
    let mut summary = WorkloadSummary::new();
    summary.declare(offline_cols[0], queries as u64, 0.01);
    let build_start = Instant::now();
    let report = offline_db.prepare_offline(&summary, None);
    let t_sort = build_start.elapsed();
    assert_eq!(report.built.len(), 1);
    if t_sort > t_init {
        offline_db.charge_pending_penalty(t_sort - t_init);
    }
    let offline = replay_session(&mut offline_db, &offline_cols, &events, false);

    let outcomes = vec![scan, offline, cracking, holistic];
    print_series(
        &format!(
            "Figure 3, X={x} (T_init≈{:.1} ms, T_sort≈{:.1} ms)",
            t_init.as_secs_f64() * 1e3,
            t_sort.as_secs_f64() * 1e3
        ),
        &outcomes,
    );
    print_totals(&format!("Table 2 column X={x}"), &outcomes);
}

/// Wall-clock length of the initial idle window of a holistic run: the
/// tuning time divided by the number of idle windows in the trace (all
/// windows carry the same action budget in this experiment).
fn estimate_initial_idle(
    outcome: &holistic_bench::RunOutcome,
    events: &[WorkloadEvent],
) -> Duration {
    let idle_windows = events.iter().filter(|e| e.is_idle()).count().max(1) as u32;
    outcome.tuning_time / idle_windows
}
