//! Ablation A3: the cache-resident piece target as a stop condition.
//!
//! The paper observes that "once columns are cracked enough such that
//! pieces fit into the CPU caches, performance does not further improve by
//! extra index refinement", and uses that as the stop condition of its
//! ranking model. This bench refines one column to different average piece
//! sizes and measures query latency, showing the diminishing returns, and
//! then compares the tuning effort spent with and without the stop
//! condition.

use std::time::Instant;

use holistic_bench::{scale, uniform_column};
use holistic_core::{Database, HolisticConfig, IdleBudget, IndexingStrategy, Query};

fn main() {
    let n = scale();
    println!("Ablation A3: refinement benefit vs average piece size (N={n})\n");
    latency_vs_piece_size(n);
    stop_condition_effort(n);
}

fn latency_vs_piece_size(n: usize) {
    let values = uniform_column(n, 5);
    let mut db = Database::new(
        HolisticConfig::default().with_seed(5),
        IndexingStrategy::Holistic,
    );
    let t = db.create_table("r", vec![("a", values)]).unwrap();
    let col = db.column_id(t, "a").unwrap();
    println!(
        "{:>14} {:>12} {:>22}",
        "avg piece", "pieces", "avg query latency (µs)"
    );
    // Progressively refine and measure a fixed probe set after each step.
    let mut actions_so_far = 0u64;
    for &target_actions in &[0u64, 8, 32, 128, 512, 2048, 8192] {
        let delta = target_actions - actions_so_far;
        if delta > 0 {
            db.warm_column(col, delta).unwrap();
            actions_so_far = target_actions;
        }
        // Measure with queries that do not shift the piece size much
        // (repeated narrow probes over a fixed set of ranges).
        let probes = 64;
        let start = Instant::now();
        for i in 0..probes {
            let lo = 1 + (i as i64 * 9973) % (n as i64 - n as i64 / 100);
            db.execute(&Query::range(col, lo, lo + n as i64 / 100))
                .unwrap();
        }
        let avg_latency = start.elapsed().as_micros() as f64 / f64::from(probes);
        let pieces = db.piece_count(col).max(1);
        println!(
            "{:>14.0} {:>12} {:>22.1}",
            n as f64 / pieces as f64,
            pieces,
            avg_latency
        );
    }
    println!();
}

fn stop_condition_effort(n: usize) {
    println!(
        "Idle-tuning effort until convergence, with and without the cache-size stop condition:"
    );
    println!(
        "{:>24} {:>16} {:>16}",
        "cache_piece_target", "actions spent", "tuning time (ms)"
    );
    for &(label, target) in &[
        ("L2-sized (128Ki values)", 128 * 1024usize),
        ("tiny (1Ki values)", 1024usize),
    ] {
        let values = uniform_column(n, 6);
        let mut config = HolisticConfig::default().with_seed(6);
        config.cache_piece_target = target;
        let mut db = Database::new(config, IndexingStrategy::Holistic);
        let t = db.create_table("r", vec![("a", values)]).unwrap();
        let col = db.column_id(t, "a").unwrap();
        db.execute(&Query::range(col, 1, 1 + n as i64 / 100))
            .unwrap();
        // Give effectively unlimited idle time and let the stop condition
        // decide when tuning is done.
        let mut total_actions = 0u64;
        for _ in 0..1000 {
            let report = db.run_idle(IdleBudget::Actions(256));
            total_actions += report.actions_applied;
            if report.converged {
                break;
            }
        }
        println!(
            "{:>24} {:>16} {:>16.1}",
            label,
            total_actions,
            db.metrics().tuning_time().as_secs_f64() * 1e3
        );
    }
    println!("(a smaller target keeps refining long after queries stop getting faster)");
}
