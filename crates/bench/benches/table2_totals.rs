//! Table 2: overall gains of holistic indexing in total time for the Exp1
//! workload, for X ∈ {10, 100, 1000} refinement actions per idle window.
//!
//! The paper reports (for 10^8 values, 10^4 queries):
//!
//! | Indexing | X=10   | X=100  | X=1000 |
//! |----------|--------|--------|--------|
//! | Scan     | 6746 s | 6746 s | 6746 s |
//! | Offline  | 28.5 s | 28.5 s | 28.5 s |
//! | Adaptive | 13 s   | 13 s   | 13 s   |
//! | Holistic | 7.3 s  | 3.6 s  | 1.6 s  |
//!
//! At the scaled-down default size the absolute numbers are smaller, but the
//! ordering (Scan ≫ Offline > Adaptive > Holistic) and the trend that
//! holistic improves as X grows are expected to hold.

use std::time::{Duration, Instant};

use holistic_bench::{build_database, query_count, replay_session, scale};
use holistic_core::{HolisticConfig, IndexingStrategy};
use holistic_offline::WorkloadSummary;
use holistic_workload::{ArrivalModel, IdleWindow, SessionBuilder, UniformRangeGenerator};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let n = scale();
    let queries = query_count();
    println!("Table 2: total time to run {queries} queries over one column of {n} values");
    println!(
        "{:>10} {:>14} {:>14} {:>14}",
        "Indexing", "X=10", "X=100", "X=1000"
    );
    let xs = [10u64, 100, 1000];
    let mut rows: Vec<(&str, Vec<Duration>)> = vec![
        ("Scan", Vec::new()),
        ("Offline", Vec::new()),
        ("Adaptive", Vec::new()),
        ("Holistic", Vec::new()),
    ];
    for &x in &xs {
        let totals = totals_for_x(n, queries, x);
        for (row, total) in rows.iter_mut().zip(totals) {
            row.1.push(total);
        }
    }
    for (name, totals) in &rows {
        print!("{name:>10}");
        for t in totals {
            print!(" {:>13.1}s", t.as_secs_f64());
        }
        println!();
    }
    println!("(query response time only, as in the paper: idle/tuning time is free by definition)");
}

/// Returns total query time for (scan, offline, adaptive, holistic).
fn totals_for_x(n: usize, queries: usize, x: u64) -> [Duration; 4] {
    let mut generator = UniformRangeGenerator::new(0, 1, n as i64 + 1, 0.01);
    let mut rng = StdRng::seed_from_u64(7 + x);
    let events = SessionBuilder::new(ArrivalModel::PeriodicIdle {
        every: 100,
        actions: x,
    })
    .with_initial_idle(IdleWindow::Actions(x))
    .build(&mut generator, queries, &mut rng);

    let (mut holistic_db, cols) =
        build_database(IndexingStrategy::Holistic, HolisticConfig::default(), 1, n);
    let holistic = replay_session(&mut holistic_db, &cols, &events, true);
    let idle_windows = events.iter().filter(|e| e.is_idle()).count().max(1) as u32;
    let t_init = holistic.tuning_time / idle_windows;

    let (mut scan_db, scan_cols) =
        build_database(IndexingStrategy::ScanOnly, HolisticConfig::default(), 1, n);
    let scan = replay_session(&mut scan_db, &scan_cols, &events, false);

    let (mut crack_db, crack_cols) =
        build_database(IndexingStrategy::Adaptive, HolisticConfig::default(), 1, n);
    let adaptive = replay_session(&mut crack_db, &crack_cols, &events, false);

    let (mut offline_db, offline_cols) =
        build_database(IndexingStrategy::Offline, HolisticConfig::default(), 1, n);
    let mut summary = WorkloadSummary::new();
    summary.declare(offline_cols[0], queries as u64, 0.01);
    let start = Instant::now();
    offline_db.prepare_offline(&summary, None);
    let t_sort = start.elapsed();
    if t_sort > t_init {
        offline_db.charge_pending_penalty(t_sort - t_init);
    }
    let offline = replay_session(&mut offline_db, &offline_cols, &events, false);

    [
        scan.total_query_time,
        offline.total_query_time,
        adaptive.total_query_time,
        holistic.total_query_time,
    ]
}
