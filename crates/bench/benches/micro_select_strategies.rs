//! Criterion micro-benchmarks for a single range select under the different
//! access paths: full scan, binary search on a full sorted index, and a
//! cracked column at different stages of refinement.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use holistic_cracking::CrackerColumn;
use holistic_offline::SortedIndex;
use holistic_storage::scan_count;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 1_000_000;
const SELECTIVITY: i64 = (N as i64) / 100;

fn dataset() -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(3);
    (0..N).map(|_| rng.gen_range(1..=N as i64)).collect()
}

fn cracked_column(refinements: u64) -> CrackerColumn {
    let mut cracker = CrackerColumn::from_values(dataset());
    let mut rng = StdRng::seed_from_u64(4);
    cracker.random_cracks(refinements, &mut rng);
    cracker
}

fn bench_selects(c: &mut Criterion) {
    let data = dataset();
    let sorted = SortedIndex::build_from_values(&data);
    let mut group = c.benchmark_group("range_select");

    group.bench_function("scan", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let lo = rng.gen_range(1..=(N as i64 - SELECTIVITY));
            black_box(scan_count(&data, lo, lo + SELECTIVITY))
        });
    });

    group.bench_function("sorted_index", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| {
            let lo = rng.gen_range(1..=(N as i64 - SELECTIVITY));
            black_box(sorted.count(lo, lo + SELECTIVITY))
        });
    });

    for &refinements in &[0u64, 64, 1024] {
        let mut cracker = cracked_column(refinements);
        group.bench_with_input(
            BenchmarkId::new("cracked_after_refinements", refinements),
            &refinements,
            |b, _| {
                let mut rng = StdRng::seed_from_u64(7);
                b.iter(|| {
                    let lo = rng.gen_range(1..=(N as i64 - SELECTIVITY));
                    black_box(cracker.crack_count(lo, lo + SELECTIVITY))
                });
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_selects
}
criterion_main!(benches);
