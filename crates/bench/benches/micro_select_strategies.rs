//! Criterion micro-benchmarks for a single range select under the different
//! access paths: full scan (count / sum / full materialization), binary
//! search on a full sorted index, and a cracked column at different stages
//! of refinement — the latter once per kernel dispatch policy, so the
//! branchy and predicated physical forms (and the `auto` dispatcher) can be
//! compared on the exact same query stream.

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use holistic_cracking::{CrackKernel, CrackerColumn};
use holistic_offline::SortedIndex;
use holistic_storage::{scan_count, scan_full, scan_sum};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const N: usize = 1_000_000;
const SELECTIVITY: i64 = (N as i64) / 100;

fn dataset() -> Vec<i64> {
    let mut rng = StdRng::seed_from_u64(3);
    (0..N).map(|_| rng.gen_range(1..=N as i64)).collect()
}

fn cracked_column(refinements: u64, kernel: CrackKernel) -> CrackerColumn {
    let mut cracker = CrackerColumn::from_values(dataset()).with_kernel(kernel);
    let mut rng = StdRng::seed_from_u64(4);
    cracker.random_cracks(refinements, &mut rng);
    cracker
}

fn bench_scans(c: &mut Criterion) {
    let data = dataset();
    let mut group = c.benchmark_group("bulk_scan");

    group.bench_function("count", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let lo = rng.gen_range(1..=(N as i64 - SELECTIVITY));
            black_box(scan_count(&data, lo, lo + SELECTIVITY))
        });
    });

    group.bench_function("sum", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let lo = rng.gen_range(1..=(N as i64 - SELECTIVITY));
            black_box(scan_sum(&data, lo, lo + SELECTIVITY))
        });
    });

    group.bench_function("full", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let lo = rng.gen_range(1..=(N as i64 - SELECTIVITY));
            black_box(scan_full(&data, lo, lo + SELECTIVITY).count)
        });
    });

    group.finish();
}

fn bench_selects(c: &mut Criterion) {
    let data = dataset();
    let sorted = SortedIndex::build_from_values(&data);
    let mut group = c.benchmark_group("range_select");

    group.bench_function("scan", |b| {
        let mut rng = StdRng::seed_from_u64(5);
        b.iter(|| {
            let lo = rng.gen_range(1..=(N as i64 - SELECTIVITY));
            black_box(scan_count(&data, lo, lo + SELECTIVITY))
        });
    });

    group.bench_function("sorted_index", |b| {
        let mut rng = StdRng::seed_from_u64(6);
        b.iter(|| {
            let lo = rng.gen_range(1..=(N as i64 - SELECTIVITY));
            black_box(sorted.count(lo, lo + SELECTIVITY))
        });
    });

    // The cracked select under every kernel policy. The per-query cost is
    // dominated by the first cracks of large pieces, which is exactly where
    // the predicated kernels pull ahead.
    let kernels = [
        ("cracked_branchy", CrackKernel::Branchy),
        ("cracked_predicated", CrackKernel::Predicated),
        ("cracked_auto", CrackKernel::auto()),
    ];
    for (name, kernel) in kernels {
        for &refinements in &[0u64, 64, 1024] {
            group.bench_with_input(
                BenchmarkId::new(name, refinements),
                &refinements,
                |b, &refinements| {
                    let mut cracker = cracked_column(refinements, kernel);
                    let mut rng = StdRng::seed_from_u64(7);
                    b.iter(|| {
                        let lo = rng.gen_range(1..=(N as i64 - SELECTIVITY));
                        black_box(cracker.crack_count(lo, lo + SELECTIVITY))
                    });
                },
            );
        }
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_scans, bench_selects
}
criterion_main!(benches);
